#!/usr/bin/env python3
"""Check that every relative markdown link in the docs resolves.

Stdlib only - this runs in CI ahead of the test suite, so it must not
drag in a markdown parser.  It covers the failure modes docs actually
regress with:

* ``[text](path)`` / ``![alt](path)`` pointing at a file that moved or
  was never committed;
* ``[text](path#anchor)`` / ``[text](#anchor)`` pointing at a heading
  that was renamed (anchors are matched against GitHub-style slugs of
  the target file's headings, including ``-1``/``-2`` duplicate
  suffixes);
* absolute paths, which render on GitHub but break in local checkouts.

External ``http(s)://`` and ``mailto:`` links are skipped - CI must not
depend on the network.  Link syntax inside fenced code blocks and
inline code spans is ignored.

Usage::

    python tools/check_doc_links.py [FILE_OR_DIR ...]

With no arguments, checks ``README.md`` and ``docs/*.md`` relative to
the repository root (the parent of this script's directory).  Exits
non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# inline links/images: [text](target "optional title")
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE_RE = re.compile(r"^\s*(```|~~~)")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _strip_code(lines: "list[str]") -> "list[str]":
    """Blank out fenced code blocks and inline code spans."""
    out = []
    in_fence = False
    for line in lines:
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else _CODE_SPAN_RE.sub("", line))
    return out


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = _CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    # drop markdown emphasis markers and link syntax, keep the text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.replace("*", "").replace("_", "_")
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> "set[str]":
    """All heading anchors a markdown file exposes."""
    slugs: "dict[str, int]" = {}
    anchors: "set[str]" = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if not match:
            continue
        slug = _slugify(match.group(2))
        n = slugs.get(slug, 0)
        slugs[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_file(path: Path, root: Path) -> "list[str]":
    """Return a list of broken-link descriptions for one markdown file."""
    problems = []
    lines = _strip_code(path.read_text(encoding="utf-8").splitlines())
    for lineno, line in enumerate(lines, start=1):
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL_PREFIXES):
                continue
            try:
                shown = path.relative_to(root)
            except ValueError:
                shown = path
            where = f"{shown}:{lineno}"
            if target.startswith("/"):
                problems.append(
                    f"{where}: absolute link {target!r} breaks local checkouts"
                )
                continue
            ref, _, anchor = target.partition("#")
            dest = path if not ref else (path.parent / ref).resolve()
            if not dest.exists():
                problems.append(f"{where}: {target!r} -> missing file {ref!r}")
                continue
            if anchor:
                if dest.is_dir() or dest.suffix.lower() not in (".md", ".markdown"):
                    continue  # anchors into non-markdown are out of scope
                if anchor.lower() not in _anchors(dest):
                    problems.append(
                        f"{where}: {target!r} -> no heading for anchor "
                        f"#{anchor} in {dest.name}"
                    )
    return problems


def main(argv: "list[str]") -> int:
    root = Path(__file__).resolve().parent.parent
    if argv:
        targets = [Path(a).resolve() for a in argv]
    else:
        targets = [root / "README.md", root / "docs"]

    files: "list[Path]" = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.glob("*.md")))
        elif target.exists():
            files.append(target)
        else:
            print(f"check_doc_links: no such file: {target}", file=sys.stderr)
            return 2

    problems = []
    for path in files:
        problems.extend(check_file(path, root))

    if problems:
        print(f"{len(problems)} broken link(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"checked {len(files)} file(s): all links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
