"""SGD trainer and the four proxy CNNs of the accuracy study.

The paper's Table V evaluates GoogleNet / ResNet50 / MobileNet_V2 /
ShuffleNet_V2 on ImageNet; with no pretrained weights or dataset
available offline we train four proxies of graded capacity/width on the
synthetic dataset.  The axis Table V actually probes - larger networks
with wide accumulation (large S) tolerate SC error better than compact
networks built from narrow layers - is preserved:

========== ============================= =========================
proxy       mirrors                       character
========== ============================= =========================
gnet_proxy  GoogleNet (large, wide)       3 convs, wide channels
rnet_proxy  ResNet50 (large, deep)        4 convs, widest
mnet_proxy  MobileNet_V2 (compact)        3 narrow convs (small S)
snet_proxy  ShuffleNet_V2 (compact)       2 convs, tiny
========== ============================= =========================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cnn.datasets import Dataset, IMAGE_SHAPE, N_CLASSES
from repro.cnn.micro import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    softmax_cross_entropy,
)
from repro.utils.rng import make_rng


def build_proxy(name: str, seed: int = 0) -> Sequential:
    """Construct one of the four Table V proxy networks."""
    rng = make_rng(seed)
    c, h, w = IMAGE_SHAPE
    if name == "gnet_proxy":
        return Sequential(
            Conv2d(c, 24, 3, padding=1, rng=rng), ReLU(), MaxPool2d(2),
            Conv2d(24, 48, 3, padding=1, rng=rng), ReLU(), MaxPool2d(2),
            Conv2d(48, 64, 3, padding=1, rng=rng), ReLU(),
            Flatten(), Linear(64 * 6 * 6, N_CLASSES, rng=rng),
        )
    if name == "rnet_proxy":
        return Sequential(
            Conv2d(c, 32, 3, padding=1, rng=rng), ReLU(), MaxPool2d(2),
            Conv2d(32, 48, 3, padding=1, rng=rng), ReLU(),
            Conv2d(48, 64, 3, padding=1, rng=rng), ReLU(), MaxPool2d(2),
            Conv2d(64, 64, 3, padding=1, rng=rng), ReLU(),
            Flatten(), Linear(64 * 6 * 6, N_CLASSES, rng=rng),
        )
    if name == "mnet_proxy":
        return Sequential(
            Conv2d(c, 8, 3, padding=1, rng=rng), ReLU(), MaxPool2d(2),
            Conv2d(8, 12, 3, padding=1, rng=rng), ReLU(), MaxPool2d(2),
            Conv2d(12, 16, 3, padding=1, rng=rng), ReLU(),
            Flatten(), Linear(16 * 6 * 6, N_CLASSES, rng=rng),
        )
    if name == "snet_proxy":
        return Sequential(
            Conv2d(c, 10, 5, padding=2, rng=rng), ReLU(), MaxPool2d(2),
            Conv2d(10, 16, 3, padding=1, rng=rng), ReLU(), MaxPool2d(2),
            Flatten(), Linear(16 * 6 * 6, N_CLASSES, rng=rng),
        )
    raise ValueError(f"unknown proxy {name!r}")


#: proxy -> the paper model it stands in for (Table V rows)
PROXY_MODELS = {
    "gnet_proxy": "GoogleNet",
    "rnet_proxy": "ResNet50",
    "mnet_proxy": "MobileNet_V2",
    "snet_proxy": "ShuffleNet_V2",
}


@dataclass
class TrainResult:
    model: Sequential
    train_losses: list[float]
    test_accuracy: float


def evaluate_top_k(
    model: Sequential, dataset: Dataset, k: int = 1, batch_size: int = 64
) -> float:
    """Top-k accuracy of the float model on a dataset."""
    if k < 1:
        raise ValueError("k must be >= 1")
    correct = 0
    for images, labels in dataset.batches(batch_size):
        logits = model.forward(images.astype(np.float64))
        topk = np.argsort(logits, axis=1)[:, -k:]
        correct += int((topk == labels[:, None]).any(axis=1).sum())
    return correct / len(dataset)


def train(
    model: Sequential,
    dataset: Dataset,
    epochs: int = 6,
    batch_size: int = 32,
    lr: float = 0.05,
    momentum: float = 0.9,
    seed: int = 0,
    test_set: Dataset | None = None,
) -> TrainResult:
    """Plain SGD with momentum and cosine-free step decay."""
    if epochs <= 0 or batch_size <= 0:
        raise ValueError("epochs and batch_size must be positive")
    rng = make_rng(seed)
    velocity = [np.zeros_like(p) for p, _ in model.parameters()]
    losses = []
    for epoch in range(epochs):
        step_lr = lr * (0.5 ** (epoch // 3))
        epoch_loss = 0.0
        n_batches = 0
        for images, labels in dataset.batches(batch_size, rng=rng):
            model.zero_grad()
            logits = model.forward(images.astype(np.float64))
            loss, grad = softmax_cross_entropy(logits, labels)
            model.backward(grad)
            for v, (p, g) in zip(velocity, model.parameters()):
                v *= momentum
                v -= step_lr * g
                p += v
            epoch_loss += loss
            n_batches += 1
        losses.append(epoch_loss / max(n_batches, 1))
    acc = evaluate_top_k(model, test_set, 1) if test_set is not None else float("nan")
    return TrainResult(model=model, train_losses=losses, test_accuracy=acc)
