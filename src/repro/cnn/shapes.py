"""Layer-shape IR for CNN workloads.

The accelerator simulator and Table II only need the *shapes* of each
VDP-producing layer (convolutions and fully-connected layers), which are
architectural facts of the published networks.  A
:class:`ConvLayerShape` captures one layer; a :class:`ModelDescriptor`
is an ordered list of them plus bookkeeping helpers.

Key quantities (paper Section II):

* ``S = K*K*D`` - kernel/DKV vector size (``D`` = input channels *per
  group* for grouped/depthwise convolutions),
* ``L`` (here ``out_channels``) - kernels per layer = ``TL`` contribution,
* VDP count per layer = ``out_h * out_w * L``, each of size ``S``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cnn.functional import conv_output_hw


@dataclass(frozen=True)
class ConvLayerShape:
    """Shape of one convolutional (or FC, as 1x1 conv) layer."""

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    padding: int
    in_h: int
    in_w: int
    groups: int = 1

    def __post_init__(self) -> None:
        if self.in_channels <= 0 or self.out_channels <= 0:
            raise ValueError(f"{self.name}: channels must be positive")
        if self.kernel <= 0 or self.stride <= 0:
            raise ValueError(f"{self.name}: kernel/stride must be positive")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError(f"{self.name}: groups must divide channels")
        # fail early if the window does not fit the input map
        conv_output_hw(self.in_h, self.in_w, self.kernel, self.stride, self.padding)

    @property
    def out_hw(self) -> tuple[int, int]:
        return conv_output_hw(
            self.in_h, self.in_w, self.kernel, self.stride, self.padding
        )

    @property
    def vector_size(self) -> int:
        """S = K*K*D with D the per-group input depth."""
        return self.kernel * self.kernel * (self.in_channels // self.groups)

    @property
    def n_kernels(self) -> int:
        """Kernel tensors in this layer (the TL contribution)."""
        return self.out_channels

    @property
    def is_fc(self) -> bool:
        """Fully-connected layer (1x1 conv on a 1x1 map).

        Plain 1x1 convolutions inside blocks run on H, W > 1 maps, so
        this exactly identifies classifier layers.
        """
        return self.kernel == 1 and self.in_h == 1 and self.in_w == 1

    @property
    def n_vdps(self) -> int:
        """VDP operations to produce the output tensor."""
        out_h, out_w = self.out_hw
        return out_h * out_w * self.out_channels

    @property
    def macs(self) -> int:
        return self.n_vdps * self.vector_size

    def scaled_spatial(self) -> tuple[int, int]:
        return self.out_hw


def fc_shape(name: str, in_features: int, out_features: int) -> ConvLayerShape:
    """A fully-connected layer as a 1x1 convolution on a 1x1 map."""
    return ConvLayerShape(
        name=name,
        in_channels=in_features,
        out_channels=out_features,
        kernel=1,
        stride=1,
        padding=0,
        in_h=1,
        in_w=1,
    )


@dataclass
class ModelDescriptor:
    """An ordered collection of VDP-producing layers of one CNN."""

    name: str
    layers: list[ConvLayerShape] = field(default_factory=list)

    def add(self, layer: ConvLayerShape) -> None:
        self.layers.append(layer)

    @property
    def total_kernels(self) -> int:
        return sum(l.n_kernels for l in self.layers)

    @property
    def total_vdps(self) -> int:
        return sum(l.n_vdps for l in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(l.macs for l in self.layers)

    def kernels_by_vector_size(
        self, threshold: int = 44, exclude_fc: bool = False
    ) -> tuple[int, int]:
        """Table II split: kernels with S <= threshold vs S > threshold.

        ``exclude_fc`` reproduces the paper's counting convention (its
        Keras TL extraction omitted classifier layers; with it our
        S > 44 counts match Table II to within a few kernels).
        """
        layers = [l for l in self.layers if not (exclude_fc and l.is_fc)]
        small = sum(l.n_kernels for l in layers if l.vector_size <= threshold)
        large = sum(l.n_kernels for l in layers if l.vector_size > threshold)
        return small, large

    def max_vector_size(self) -> int:
        return max(l.vector_size for l in self.layers)

    def summary(self) -> str:
        lines = [f"{self.name}: {len(self.layers)} VDP layers"]
        lines.append(
            f"  kernels={self.total_kernels}  VDPs={self.total_vdps:,}"
            f"  MACs={self.total_macs:,}  maxS={self.max_vector_size()}"
        )
        return "\n".join(lines)
