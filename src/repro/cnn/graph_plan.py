"""Whole-network fused execution plans (graph-level compiler).

The per-layer engine runs each quantized layer as an island: float64
activations flow between layers, every layer re-quantizes from float,
and every kernel choice is hard-coded.  This module compiles the whole
layer sequence into a :class:`NetworkPlan` - fused
quantize -> im2col -> count-matmul -> remainder -> requantize chains
with a single buffer-lifetime plan - and executes it with inter-layer
activations held in preallocated *integer* workspaces.

**Fusion rules (and why they are bit-exact).**  Activation quantization
is ``clip(rint(max(x, 0) / s), 0, levels)`` with a positive scale: a
monotone non-decreasing elementwise map.  Monotone maps commute with
max-pooling (``f(max(a, b)) == max(f(a), f(b))``) and absorb ReLU (the
lower clip already sends every negative input to 0).  So the fused path
requantizes *immediately* at each layer's output into an integer grid
and runs the inter-layer ReLU/MaxPool2d/Flatten ops in the integer
domain - bit-identical to the reference per-layer path, which pools in
float and re-quantizes at the next layer's input.  The dequantize ->
bias -> requantize chain between two matmuls replays the reference's
exact float64 op sequence (same values; in-place ops on a pooled
scratch), and the count matmuls themselves are exact-integer sums in
float64, so *every* kernel variant the autotuner can pick produces the
same bits.  ``tests/test_cnn_graph_plan.py`` locks fused == per-layer
for every zoo model in int8 and sconna (ideal and seeded) modes.

**Buffer-lifetime plan.**  At shape-program build time the compiler
walks the step sequence (entry quantize, integer pools, im2col, count
matmul, requantize emit), assigns every intermediate a byte-arena slot
with linear-scan liveness (a slot is recycled as soon as its last
reader finishes), and records the per-slot capacities.  At run time the
slots are thread-local pooled buffers (:class:`~repro.cnn.engine._BufferPool`
tags ``gp<slot>``), so a steady-state forward pass performs **no
tensor-sized allocations**: integer grids, column buffers, and count
buffers all live in the arena; the engine's own float64 workspaces
(``af``/``a_lo``/``rem``/``s``) are pooled by the engine itself.

**Autotuning.**  Per (stage, shape) the builder times the engine's
kernel variants - BLAS vs einsum for the matmul term; column-layout /
sign-split / stacked native C / NumPy for the remainder term - on the
real pooled buffers and records the winner in the model's ``autotune``
dict, which :mod:`repro.cnn.serialization` persists so a served model
loads pre-tuned.  ``REPRO_AUTOTUNE=0`` pins deterministic defaults and
ignores stored choices.  Because every variant computes the same exact
integer sums, autotuning can never change logits - only wall time.

The per-layer path in :class:`~repro.cnn.inference.QuantizedModel`
remains untouched as the bit-exactness reference; ``forward(...,
fused=False)`` forces it.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cnn.functional import conv_output_hw, im2col, max_pool2d
from repro.cnn.micro import Flatten, MaxPool2d, ReLU
from repro.utils import native

AUTOTUNE_ENV = "REPRO_AUTOTUNE"

_MATMUL_KINDS = ("blas", "einsum")
_REMAINDER_KINDS = ("cols", "split", "native", "auto", "numpy")


def autotune_enabled() -> bool:
    """Timing-based variant selection is on unless ``REPRO_AUTOTUNE=0``."""
    return os.environ.get(AUTOTUNE_ENV, "1") != "0"


class _Unsupported(Exception):
    """This structure/shape/config cannot run fused; use the reference."""


@dataclass
class _Stage:
    """One quantized layer plus the monotone integer ops feeding it."""

    index: int                       #: position in model.structure
    layer: "object"                  #: the QuantLayer
    pre_ops: "list[tuple]" = field(default_factory=list)


@dataclass
class _BufRef:
    """A view spec into one arena slot.

    ``pad`` > 0 marks a *pre-padded* grid: ``shape`` includes a
    ``pad``-wide zero halo on both spatial axes, writers fill only the
    interior, and the consuming conv's im2col strides over the buffer
    directly with padding 0 - eliminating the per-forward ``np.pad``
    allocation (the halo zeros are exactly the zeros ``np.pad`` would
    have produced on the quantized grid).
    """

    slot: int
    shape: "tuple[int, ...]"
    dtype: np.dtype
    pad: int = 0
    idx: int = -1                    #: position in the program's ref list

    @property
    def nbytes(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n * np.dtype(self.dtype).itemsize


class _ArenaPlanner:
    """Linear-scan liveness allocation of byte-arena slots.

    ``take`` hands out a free slot (growing its capacity if needed) and
    ``give`` returns it; because program construction walks the steps in
    execution order, take/give pairs are exactly the buffer lifetimes
    and two live buffers can never share a slot.
    """

    def __init__(self) -> None:
        self.caps: "list[int]" = []
        self._free: "list[int]" = []
        self.n_buffers = 0

    def take(self, nbytes: int) -> int:
        self.n_buffers += 1
        if self._free:
            # prefer the smallest free slot that already fits, else the
            # largest (which then grows): keeps total capacity tight
            fitting = [s for s in self._free if self.caps[s] >= nbytes]
            slot = (
                min(fitting, key=lambda s: self.caps[s])
                if fitting
                else max(self._free, key=lambda s: self.caps[s])
            )
            self._free.remove(slot)
            self.caps[slot] = max(self.caps[slot], nbytes)
            return slot
        self.caps.append(nbytes)
        return len(self.caps) - 1

    def give(self, slot: int) -> None:
        self._free.append(slot)


@dataclass
class _StageExec:
    """Everything one fused stage needs at run time."""

    kind: str                        #: "conv" or "linear"
    layer: "object"
    plan: "object | None"            #: engine plan (sconna; None for int8)
    w_f: "np.ndarray | None"         #: (L, Q) float64 weights (int8 path)
    in_ref: _BufRef                  #: integer grid feeding this stage
    in_spatial: "tuple[int, ...]"    #: grid viewed as (b, c, h, w) / (b, q)
    cols_ref: "_BufRef | None"       #: gather target (None: grid reused)
    out_ref: _BufRef                 #: (b, l, p) float64 counts
    kernel: int = 0
    stride: int = 1
    padding: int = 0
    scale_eff: float = 1.0
    bias: "np.ndarray | None" = None
    #: requantize target: (next_scale, levels, grid_ref, spatial_shape),
    #: or None when this is the final stage
    requant: "tuple | None" = None
    matmul_kind: str = "blas"
    remainder_kind: str = "auto"
    pre_steps: "list[tuple]" = field(default_factory=list)


class _ShapeProgram:
    """A compiled step sequence for one (mode, input shape) pair."""

    def __init__(self, plan: "NetworkPlan", mode: str, in_shape: tuple):
        self.net = plan
        self.model = plan.model
        self.mode = mode
        self.in_shape = in_shape
        self.planner = _ArenaPlanner()
        levels = 1 << self.model.precision_bits
        self.grid_dtype = np.dtype(np.uint16 if levels <= 65535 else np.uint32)
        self.entry_params = plan.stages[0].layer.act_params
        self._luts: "dict[np.dtype, np.ndarray]" = {}
        self.stages: "list[_StageExec]" = []
        self.final_shape: "tuple[int, ...]" = ()
        self._refs: "list[_BufRef]" = []
        self._tls = threading.local()
        self._compile()

    # -- compilation -----------------------------------------------------
    def _compile(self) -> None:
        model, mode = self.model, self.mode
        bits = model.precision_bits
        b = self.in_shape[0]
        geom = tuple(self.in_shape[1:])
        take, give = self.planner.take, self.planner.give

        def ref(shape, dtype, pad=0):
            if pad:
                bb, cc, hh, ww = shape
                shape = (bb, cc, hh + 2 * pad, ww + 2 * pad)
            r = _BufRef(0, tuple(int(d) for d in shape), np.dtype(dtype), pad)
            r.slot = take(r.nbytes)
            r.idx = len(self._refs)
            self._refs.append(r)
            return r

        def feed_pad(si, remaining_pre_ops, out_geom):
            """Halo width to pre-bake into a grid created here: the
            consuming conv's padding when the grid flows straight into
            its im2col (no pooling in between), else 0."""
            if len(out_geom) != 3 or any(
                op[0] == "pool" for op in remaining_pre_ops
            ):
                return 0
            layer = self.net.stages[si].layer
            return layer.padding if layer.kind == "conv" else 0

        cur = ref(
            (b, *geom),
            self.grid_dtype,
            feed_pad(0, self.net.stages[0].pre_ops, geom),
        )
        self.entry_ref = cur
        n_stages = len(self.net.stages)
        for si, stage in enumerate(self.net.stages):
            pre_steps: "list[tuple]" = []
            for oi, op in enumerate(stage.pre_ops):
                if op[0] == "pool":
                    if len(geom) != 3:
                        raise _Unsupported("pool needs a (c, h, w) grid")
                    c, h, w = geom
                    k, s = op[1], op[2]
                    oh, ow = conv_output_hw(h, w, k, s, 0)
                    if oh < 1 or ow < 1:
                        raise _Unsupported("pool output is empty")
                    dst = ref(
                        (b, c, oh, ow),
                        self.grid_dtype,
                        feed_pad(
                            si, stage.pre_ops[oi + 1:], (c, oh, ow)
                        ),
                    )
                    pre_steps.append(("pool", cur, dst, k, s))
                    give(cur.slot)
                    cur, geom = dst, (c, oh, ow)
                elif op[0] == "flatten":
                    q = 1
                    for d in geom:
                        q *= d
                    geom = (q,)
                # ("relu",) is a no-op on an unsigned grid and is dropped
                # at parse time
            layer = stage.layer
            if layer.kind == "conv":
                if len(geom) != 3:
                    raise _Unsupported("conv needs a (c, h, w) grid")
                l, c_w, k, _ = layer.weight_q.shape
                c, h, w = geom
                if c != c_w:
                    raise _Unsupported("channel mismatch")
                oh, ow = conv_output_hw(h, w, k, layer.stride, layer.padding)
                if oh < 1 or ow < 1:
                    raise _Unsupported("conv output is empty")
                q_len, p = c * k * k, oh * ow
                out_geom = (l, oh, ow)
            else:
                if len(geom) != 1:
                    raise _Unsupported("linear needs a flattened grid")
                l, q_w = layer.weight_q.shape
                q_len, p = geom[0], 1
                if q_len != q_w:
                    raise _Unsupported("linear width mismatch")
                out_geom = (l,)

            plan = w_f = None
            if mode == "sconna":
                plan = model._plan_for(layer)
                if plan is None:
                    raise _Unsupported("outside the vectorized envelope")
            else:
                # the float64 BLAS contraction is exact only below 2**53
                if q_len * (1 << (2 * bits)) >= 2**53:
                    raise _Unsupported("int8 contraction exceeds 2**53")
                w_f = (
                    layer.plan.w_float
                    if layer.plan is not None
                    else layer.weight_q.reshape(l, -1).astype(np.float64)
                )

            in_ref = cur
            in_spatial = cur.shape if layer.kind == "conv" else (b, *geom)
            cols_ref = None
            if layer.kind == "conv":
                # float64 columns: the im2col gather fuses the cast and
                # the engine uses the buffer directly as its exact BLAS
                # operand (no af copy)
                cols_ref = ref((b, q_len, p), np.float64)
            elif mode == "int8":
                cols_ref = ref((b, q_len), np.float64)
            out_ref = ref((b, l, p), np.float64)
            # grid dies once its columns are gathered (or, when the grid
            # itself is the engine's column view, once the matmul has
            # copied it); cols die after the matmul
            give(in_ref.slot)
            if cols_ref is not None:
                give(cols_ref.slot)

            scale = layer.act_params.scale * layer.weight_params.scale
            scale_eff = scale * (1 << bits) if mode == "sconna" else scale
            requant = None
            if si + 1 < n_stages:
                nxt = self.net.stages[si + 1].layer
                grid_ref = ref(
                    (b, *out_geom),
                    self.grid_dtype,
                    feed_pad(
                        si + 1, self.net.stages[si + 1].pre_ops, out_geom
                    ),
                )
                requant = (
                    nxt.act_params.scale,
                    float(nxt.act_params.levels),
                    grid_ref,
                    (b, *out_geom),
                )
                give(out_ref.slot)
                cur, geom = grid_ref, out_geom
            else:
                self.final_shape = (b, *out_geom)

            self.stages.append(
                _StageExec(
                    kind=layer.kind,
                    layer=layer,
                    plan=plan,
                    w_f=w_f,
                    in_ref=in_ref,
                    in_spatial=in_spatial,
                    cols_ref=cols_ref,
                    out_ref=out_ref,
                    kernel=k if layer.kind == "conv" else 0,
                    stride=layer.stride if layer.kind == "conv" else 1,
                    # a pre-padded input grid already carries the halo
                    padding=(
                        0
                        if in_ref.pad
                        else (layer.padding if layer.kind == "conv" else 0)
                    ),
                    scale_eff=scale_eff,
                    bias=layer.bias,
                    requant=requant,
                    pre_steps=pre_steps,
                )
            )
        if mode == "sconna":
            self._tune()

    # -- autotuning ------------------------------------------------------
    def _default_kinds(self, stage: _StageExec) -> "tuple[str, str]":
        """Deterministic pinned choice (``REPRO_AUTOTUNE=0``): BLAS plus
        the column-layout remainder kernel for pixel-parallel shapes."""
        plan = stage.plan
        split_ok = (
            plan is not None
            and plan.w_pos_mask is not None
            and self.model._engine.use_native
            and native.native_available()
        )
        if split_ok:
            p = stage.out_ref.shape[2]
            return "blas", ("cols" if p >= 8 else "split")
        return "blas", "auto"

    def _tune(self) -> None:
        """Resolve each sconna stage's kernel variants.

        Order of precedence: pinned defaults when autotuning is off; a
        persisted choice whose (Q, P) still matches this stage (so a
        registry-loaded model never re-times); otherwise time every
        available variant on the real pooled buffers and persist the
        winner in ``model.autotune``.
        """
        model = self.model
        tune = autotune_enabled()
        for stage in self.stages:
            if not tune:
                stage.matmul_kind, stage.remainder_kind = self._default_kinds(
                    stage
                )
                continue
            b, l, p = stage.out_ref.shape
            q = stage.plan.n_in
            key = f"{self._stage_key(stage)}:sconna"
            stored = model.autotune.get(key)
            if (
                isinstance(stored, dict)
                and stored.get("q") == q
                and stored.get("p") == p
                and stored.get("matmul") in _MATMUL_KINDS
                and stored.get("remainder") in _REMAINDER_KINDS
            ):
                stage.matmul_kind = stored["matmul"]
                stage.remainder_kind = stored["remainder"]
                continue
            mk, rk = self._time_stage(stage)
            stage.matmul_kind, stage.remainder_kind = mk, rk
            with model._plan_lock:
                model.autotune[key] = {
                    "q": int(q), "p": int(p), "matmul": mk, "remainder": rk,
                }

    def _stage_key(self, stage: _StageExec) -> int:
        for s in self.net.stages:
            if s.layer is stage.layer:
                return s.index
        return -1

    def _time_stage(self, stage: _StageExec) -> "tuple[str, str]":
        eng = self.model._engine
        plan = stage.plan
        cols = (
            self._view(stage.cols_ref)
            if stage.cols_ref is not None
            else self._view(stage.in_ref).reshape(stage.out_ref.shape[0], -1, 1)
        )
        out = self._view(stage.out_ref)
        cols[...] = 0  # garbage-free operands for stable timings
        if (
            plan.w_pos_mask is not None
            and eng.use_native
            and native.native_available()
        ):
            # the chunked-broadcast fallback never beats a native kernel;
            # don't waste plan time measuring it
            cand_r = ["cols", "split", "auto"]
        else:
            cand_r = ["auto"]
        best = None
        for rk in cand_r:
            for mk in _MATMUL_KINDS:
                def run(mk=mk, rk=rk):
                    eng.matmul_ideal(
                        plan, cols, out=out, matmul_kind=mk, remainder_kind=rk
                    )
                run()  # warm the pools / JIT the code paths
                dt = min(_timed(run), _timed(run))
                if best is None or dt < best[0]:
                    best = (dt, mk, rk)
        return best[1], best[2]

    # -- execution -------------------------------------------------------
    def _view(self, ref: _BufRef) -> np.ndarray:
        base = self.model._engine.pool.get(
            f"gp{ref.slot}", (self.planner.caps[ref.slot],), np.uint8
        )
        return base[: ref.nbytes].view(ref.dtype).reshape(ref.shape)

    def _resolved(self) -> "tuple[list, list]":
        """This thread's arena views, resolved once and cached.

        Deriving ~20 views per forward (pool lookup, byte-slice, dtype
        view, reshape) is measurable interpreter overhead, so the
        resolved arrays are cached per thread and revalidated each run
        by identity against the pool's slot buffers (the pool LRU-evicts
        per tag, so a slot's backing buffer can change under us).
        Returns ``(views, grids)`` indexed by ``_BufRef.idx``: the full
        buffer view and, for pre-padded grids, the interior writer view
        (identical otherwise).
        """
        pool = self.model._engine.pool
        caps = self.planner.caps
        bases = [
            pool.get(f"gp{i}", (caps[i],), np.uint8)
            for i in range(len(caps))
        ]
        tls = self._tls
        if getattr(tls, "bases", None) is not None and all(
            a is b for a, b in zip(bases, tls.bases)
        ):
            return tls.views, tls.grids
        views, grids = [], []
        for r in self._refs:
            v = bases[r.slot][: r.nbytes].view(r.dtype).reshape(r.shape)
            views.append(v)
            pd = r.pad
            grids.append(v[:, :, pd:-pd, pd:-pd] if pd else v)
        tls.bases, tls.views, tls.grids = bases, views, grids
        return views, grids

    def _lut_for(self, dtype: np.dtype) -> "np.ndarray | None":
        """Quantization lookup table for small integer input dtypes.

        Indexed by the input's raw bit pattern (via a zero-copy view to
        the matching unsigned type), so an int8/uint8/int16/uint16 batch
        quantizes with one gather and never materialises float64.  The
        table itself applies the reference's exact float op sequence per
        distinct value.
        """
        dtype = np.dtype(dtype)
        lut = self._luts.get(dtype)
        if lut is None:
            if dtype.kind not in "ui" or dtype.itemsize > 2:
                return None
            n = 1 << (8 * dtype.itemsize)
            raw = np.arange(n, dtype=np.int64)
            if dtype.kind == "i":
                raw = np.where(raw < n // 2, raw, raw - n)
            vals = raw.astype(np.float64)
            params = self.entry_params
            q = np.clip(
                np.rint(np.maximum(vals, 0.0) / params.scale),
                0.0,
                float(params.levels),
            )
            lut = q.astype(self.grid_dtype)
            self._luts[dtype] = lut
        return lut

    def run(
        self,
        x: np.ndarray,
        error_model: "object | None",
        trace: "list | None" = None,
        profile: "list | None" = None,
    ) -> np.ndarray:
        # ``profile`` (optional) collects ``(name, start_s, end_s, tags)``
        # timing tuples per stage - quantize / pool / im2col / matmul /
        # requantize / tail - for the telemetry plane.  Clock reads wrap
        # unchanged arithmetic, so logits are bit-identical either way,
        # and a None profile adds one predicate per stage, nothing more.
        pool = self.model._engine.pool
        eng = self.model._engine
        views, grids = self._resolved()
        clock = time.monotonic

        def wgrid(ref):
            # writer view: pre-padded grids re-zero their halo (the
            # slot is pooled and may hold another program's bytes); the
            # memset replaces the reference's per-forward ``np.pad``
            if ref.pad:
                views[ref.idx].fill(0)
            return grids[ref.idx]

        grid = wgrid(self.entry_ref)
        t0 = clock() if profile is not None else 0.0
        lut = self._lut_for(x.dtype)
        if lut is not None:
            idx_dtype = np.uint8 if x.dtype.itemsize == 1 else np.uint16
            np.take(lut, x.view(idx_dtype), out=grid)
            if trace is not None:
                trace.append(("entry", f"lut:{x.dtype.name}"))
        else:
            ws = pool.get("gp_entry_f", grid.shape, np.float64)
            params = self.entry_params
            np.maximum(x, 0.0, out=ws)
            ws /= params.scale
            np.rint(ws, out=ws)
            np.clip(ws, 0.0, float(params.levels), out=ws)
            np.copyto(grid, ws, casting="unsafe")
            if trace is not None:
                trace.append(("entry", "float64-ws"))
        if profile is not None:
            profile.append(("quantize", t0, clock(),
                            {"entry": "lut" if lut is not None else "float"}))

        apply_err = (
            self.mode == "sconna"
            and error_model is not None
            and not error_model.ideal()
        )
        final: "np.ndarray | None" = None
        for si, stage in enumerate(self.stages):
            if stage.pre_steps:
                t0 = clock() if profile is not None else 0.0
                for step in stage.pre_steps:
                    _, src, dst, k, s = step
                    _max_pool_int(views[src.idx], wgrid(dst), k, s)
                if profile is not None:
                    profile.append(("pool", t0, clock(), {"stage": si}))
            src = views[stage.in_ref.idx].reshape(stage.in_spatial)
            counts = views[stage.out_ref.idx]
            if stage.kind == "conv":
                cols = views[stage.cols_ref.idx]
                t0 = clock() if profile is not None else 0.0
                im2col(src, stage.kernel, stage.stride, stage.padding, out=cols)
                if profile is not None:
                    profile.append(("im2col", t0, clock(), {"stage": si}))
            elif stage.cols_ref is not None:  # int8 linear
                cols = views[stage.cols_ref.idx]
                np.copyto(cols, src)
            else:  # sconna linear: the grid already is the column view
                cols = src.reshape(*src.shape, 1)
            if self.mode == "sconna":
                if apply_err:
                    eng.matmul(
                        stage.plan, cols, error_model, out=counts,
                        matmul_kind=stage.matmul_kind,
                        remainder_kind=stage.remainder_kind,
                        profile=profile,
                    )
                else:
                    eng.matmul_ideal(
                        stage.plan, cols, out=counts,
                        matmul_kind=stage.matmul_kind,
                        remainder_kind=stage.remainder_kind,
                        profile=profile,
                    )
            else:
                t0 = clock() if profile is not None else 0.0
                if stage.kind == "conv":
                    np.matmul(stage.w_f[None], cols, out=counts)
                else:
                    np.matmul(cols, stage.w_f.T, out=counts[:, :, 0])
                if profile is not None:
                    profile.append(("matmul", t0, clock(), {"stage": si}))

            # dequantize -> bias -> (requantize | finalize), in place:
            # the same float64 op sequence as the per-layer reference
            t0 = clock() if profile is not None else 0.0
            t = counts
            t *= stage.scale_eff
            if stage.bias is not None:
                t += stage.bias[:, None]
            if stage.requant is not None:
                next_scale, levels, grid_ref, spatial = stage.requant
                t /= next_scale
                np.rint(t, out=t)
                np.clip(t, 0.0, levels, out=t)
                nxt = wgrid(grid_ref)
                np.copyto(nxt, t.reshape(spatial), casting="unsafe")
                if trace is not None:
                    trace.append(("grid", nxt.dtype.name))
            else:
                final = t.reshape(self.final_shape).copy()
            if profile is not None:
                profile.append(("requantize", t0, clock(), {"stage": si}))
        if self.net.tail_ops:
            t0 = clock() if profile is not None else 0.0
            for op in self.net.tail_ops:
                if op[0] == "pool":
                    final = max_pool2d(final, op[1], op[2])
                elif op[0] == "relu":
                    final = np.maximum(final, 0.0)
                elif op[0] == "flatten":
                    final = final.reshape(final.shape[0], -1)
            if profile is not None:
                profile.append(("tail", t0, clock(), {}))
        if trace is not None:
            trace.append(("logits", final.dtype.name))
        return final

    # -- introspection ---------------------------------------------------
    @property
    def n_slots(self) -> int:
        return len(self.planner.caps)

    @property
    def n_buffers(self) -> int:
        return self.planner.n_buffers

    @property
    def arena_bytes(self) -> int:
        return sum(self.planner.caps)


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _max_pool_int(src: np.ndarray, dst: np.ndarray, kernel: int, stride: int):
    """Integer-domain max pooling into a preallocated grid.

    Same window geometry as :func:`repro.cnn.functional.max_pool2d`;
    exact on the quantized grid because quantization is monotone.
    """
    oh, ow = dst.shape[2], dst.shape[3]
    first = True
    for i in range(kernel):
        for j in range(kernel):
            win = src[
                :,
                :,
                i : i + (oh - 1) * stride + 1 : stride,
                j : j + (ow - 1) * stride + 1 : stride,
            ]
            if first:
                np.copyto(dst, win)
                first = False
            else:
                np.maximum(dst, win, out=dst)


class NetworkPlan:
    """Graph-level compiled execution plans for one quantized model.

    Parses the model structure once (quant layers plus the monotone
    inter-layer ops the fused path supports), then builds and caches a
    :class:`_ShapeProgram` per (mode, input shape).  Unsupported
    structures, modes, or shapes simply return ``None`` from
    :meth:`try_execute`, and the caller falls back to the per-layer
    reference path - fused execution is an optimization, never a
    behaviour change.
    """

    def __init__(self, model: "object") -> None:
        self.model = model
        self.stages: "list[_Stage]" = []
        self.tail_ops: "list[tuple]" = []
        self.ok = self._parse()
        self._programs: "dict[tuple, _ShapeProgram | None]" = {}
        self._lock = threading.Lock()

    def _parse(self) -> bool:
        from repro.cnn.inference import QuantLayer  # deferred: cycle

        pre: "list[tuple]" = []
        for idx, item in enumerate(self.model.structure):
            if isinstance(item, QuantLayer):
                if item.kind not in ("conv", "linear"):
                    return False
                self.stages.append(_Stage(index=idx, layer=item, pre_ops=pre))
                pre = []
            elif isinstance(item, MaxPool2d):
                pre.append(("pool", item.kernel, item.stride))
            elif isinstance(item, ReLU):
                if self.stages:
                    # absorbed by the next quantization's lower clip when
                    # feeding a quant layer; kept verbatim if it ends up
                    # in the float tail
                    pre.append(("relu",))
                # a leading ReLU is absorbed by the entry quantization
            elif isinstance(item, Flatten):
                pre.append(("flatten",))
            else:
                return False
        if not self.stages:
            return False
        self.tail_ops = pre
        # drop absorbed ReLUs from every pre-op list (they are not tail)
        for stage in self.stages:
            stage.pre_ops = [op for op in stage.pre_ops if op[0] != "relu"]
        return True

    def supports(self, mode: str) -> bool:
        return self.ok and mode in ("int8", "sconna")

    def program_for(self, mode: str, in_shape: tuple) -> "_ShapeProgram | None":
        """The cached shape program (built on first use); None when the
        combination cannot run fused."""
        if not self.supports(mode):
            return None
        key = (mode, tuple(int(d) for d in in_shape))
        prog = self._programs.get(key, _MISSING)
        if prog is _MISSING:
            with self._lock:
                prog = self._programs.get(key, _MISSING)
                if prog is _MISSING:
                    try:
                        prog = _ShapeProgram(self, mode, key[1])
                    except _Unsupported:
                        prog = None
                    self._programs[key] = prog
        return prog

    def try_execute(
        self,
        images: np.ndarray,
        mode: str,
        error_model: "object | None" = None,
        trace: "list | None" = None,
        profile: "list | None" = None,
    ) -> "np.ndarray | None":
        """Run fused, or return None so the caller takes the reference
        path."""
        x = np.asarray(images)
        if x.ndim < 2:
            return None
        prog = self.program_for(mode, x.shape)
        if prog is None:
            return None
        return prog.run(x, error_model, trace, profile)


_MISSING = object()
