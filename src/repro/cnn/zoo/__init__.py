"""Model zoo: layer-shape descriptors of the paper's six CNN workloads.

Table II uses ResNet50 / GoogleNet / VGG16 / DenseNet; the performance
and accuracy studies (Fig. 9, Table V) use GoogleNet / ResNet50 /
MobileNet_V2 / ShuffleNet_V2.
"""

from repro.cnn.shapes import ModelDescriptor
from repro.cnn.zoo.resnet import resnet50
from repro.cnn.zoo.googlenet import googlenet
from repro.cnn.zoo.vgg import vgg16
from repro.cnn.zoo.densenet import densenet121
from repro.cnn.zoo.mobilenet import mobilenet_v2
from repro.cnn.zoo.shufflenet import shufflenet_v2

MODEL_BUILDERS = {
    "ResNet50": resnet50,
    "GoogleNet": googlenet,
    "VGG16": vgg16,
    "DenseNet": densenet121,
    "MobileNet_V2": mobilenet_v2,
    "ShuffleNet_V2": shufflenet_v2,
}

#: the four CNNs of the paper's system evaluation (Fig. 9, Table V)
EVALUATION_MODELS = ["GoogleNet", "ResNet50", "MobileNet_V2", "ShuffleNet_V2"]

#: the four CNNs of Table II
TABLE2_MODELS = ["ResNet50", "GoogleNet", "VGG16", "DenseNet"]


def build_model(name: str, input_hw: int = 224) -> ModelDescriptor:
    """Build a descriptor by canonical name (raises for unknown names)."""
    try:
        return MODEL_BUILDERS[name](input_hw)
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}"
        ) from None


__all__ = [
    "MODEL_BUILDERS",
    "EVALUATION_MODELS",
    "TABLE2_MODELS",
    "build_model",
    "resnet50",
    "googlenet",
    "vgg16",
    "densenet121",
    "mobilenet_v2",
    "shufflenet_v2",
]
