"""VGG-16 layer descriptor (Simonyan & Zisserman).

Thirteen 3x3 convolutions in five pooled stages plus three FC layers.
Its first layer (3x3x3, S = 27) supplies most of Table II's S <= 44
kernels.
"""

from __future__ import annotations

from repro.cnn.shapes import ModelDescriptor
from repro.cnn.zoo.builder import DescriptorBuilder

_STAGES = [[64, 64], [128, 128], [256, 256, 256], [512, 512, 512], [512, 512, 512]]


def vgg16(input_hw: int = 224) -> ModelDescriptor:
    b = DescriptorBuilder("VGG16", in_channels=3, in_hw=input_hw)
    for s_idx, widths in enumerate(_STAGES, start=1):
        for c_idx, width in enumerate(widths, start=1):
            b.conv(f"conv{s_idx}_{c_idx}", width, kernel=3, padding=1)
        b.pool(2, stride=2)
    b.fc("fc6", 4096)
    b.fc("fc7", 4096)
    b.fc("fc8", 1000)
    return b.build()
