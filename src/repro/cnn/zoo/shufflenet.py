"""ShuffleNet-V2 (x1.0) layer descriptor (Zhang/Ma et al.).

Channel-split units whose right branch is 1x1 -> 3x3 depthwise -> 1x1;
stride-2 units process both branches on the full input.  Like MobileNet,
its depthwise 3x3 kernels (S = 9) dominate the kernel count.
"""

from __future__ import annotations

from repro.cnn.shapes import ModelDescriptor
from repro.cnn.zoo.builder import DescriptorBuilder

# stage channels for the x1.0 width multiplier
_STAGE_CH = [116, 232, 464]
_STAGE_REPEATS = [4, 8, 4]


def shufflenet_v2(input_hw: int = 224) -> ModelDescriptor:
    b = DescriptorBuilder("ShuffleNet_V2", in_channels=3, in_hw=input_hw)
    b.conv("conv1", 24, kernel=3, stride=2, padding=1)
    b.pool(3, stride=2, padding=1)

    for s_idx, (out_ch, repeats) in enumerate(
        zip(_STAGE_CH, _STAGE_REPEATS), start=2
    ):
        half = out_ch // 2
        for unit in range(repeats):
            prefix = f"stage{s_idx}.{unit}"
            if unit == 0:
                # downsampling unit: both branches see the full input
                in_ch = b.channels
                # left branch: 3x3 depthwise stride 2 + 1x1
                b.conv_branch(
                    f"{prefix}.left.dw", in_ch, kernel=3, stride=2,
                    padding=1, groups=in_ch, in_channels=in_ch,
                )
                b.conv_branch(
                    f"{prefix}.left.pw", half, kernel=1, in_channels=in_ch
                )
                # right branch
                b.conv_branch(f"{prefix}.right.pw1", half, kernel=1, in_channels=in_ch)
                b.conv_branch(
                    f"{prefix}.right.dw", half, kernel=3, stride=2,
                    padding=1, groups=half, in_channels=half,
                )
                b.conv_branch(f"{prefix}.right.pw2", half, kernel=1, in_channels=half)
                # merge: spatial halves, channels become out_ch
                b.pool(3, stride=2, padding=1)
                b.set_shape(out_ch)
            else:
                # basic unit: only the split right half is convolved
                b.conv_branch(f"{prefix}.right.pw1", half, kernel=1, in_channels=half)
                b.conv_branch(
                    f"{prefix}.right.dw", half, kernel=3, stride=1,
                    padding=1, groups=half, in_channels=half,
                )
                b.conv_branch(f"{prefix}.right.pw2", half, kernel=1, in_channels=half)

    b.conv("conv5", 1024, kernel=1)
    b.global_pool()
    b.fc("fc", 1000)
    return b.build()
