"""GoogLeNet / Inception-v1 layer descriptor (Szegedy et al.).

Nine inception modules; each module contributes six convolutions (1x1,
3x3-reduce, 3x3, 5x5-reduce, 5x5, pool-proj) running on the same input
map, concatenated along channels.
"""

from __future__ import annotations

from repro.cnn.shapes import ModelDescriptor
from repro.cnn.zoo.builder import DescriptorBuilder

# (name, #1x1, #3x3red, #3x3, #5x5red, #5x5, #poolproj)
_INCEPTION_CFG = [
    ("3a", 64, 96, 128, 16, 32, 32),
    ("3b", 128, 128, 192, 32, 96, 64),
    ("pool", 0, 0, 0, 0, 0, 0),
    ("4a", 192, 96, 208, 16, 48, 64),
    ("4b", 160, 112, 224, 24, 64, 64),
    ("4c", 128, 128, 256, 24, 64, 64),
    ("4d", 112, 144, 288, 32, 64, 64),
    ("4e", 256, 160, 320, 32, 128, 128),
    ("pool", 0, 0, 0, 0, 0, 0),
    ("5a", 256, 160, 320, 32, 128, 128),
    ("5b", 384, 192, 384, 48, 128, 128),
]


def googlenet(input_hw: int = 224) -> ModelDescriptor:
    b = DescriptorBuilder("GoogleNet", in_channels=3, in_hw=input_hw)
    b.conv("conv1", 64, kernel=7, stride=2, padding=3)
    b.pool(3, stride=2, padding=1)
    b.conv("conv2", 64, kernel=1)
    b.conv("conv3", 192, kernel=3, padding=1)
    b.pool(3, stride=2, padding=1)

    for cfg in _INCEPTION_CFG:
        name = cfg[0]
        if name == "pool":
            b.pool(3, stride=2, padding=1)
            continue
        _, c1, c3r, c3, c5r, c5, cp = cfg
        b.conv_branch(f"inception{name}.1x1", c1, kernel=1)
        b.conv_branch(f"inception{name}.3x3red", c3r, kernel=1)
        b.conv_branch(
            f"inception{name}.3x3", c3, kernel=3, padding=1, in_channels=c3r
        )
        b.conv_branch(f"inception{name}.5x5red", c5r, kernel=1)
        b.conv_branch(
            f"inception{name}.5x5", c5, kernel=5, padding=2, in_channels=c5r
        )
        b.conv_branch(f"inception{name}.poolproj", cp, kernel=1)
        b.set_shape(c1 + c3 + c5 + cp)  # concat along channels

    b.global_pool()
    b.fc("fc", 1000)
    return b.build()
