"""ResNet-50 layer descriptor (He et al., the paper's large-CNN workload).

Bottleneck residual architecture with stage widths (64, 128, 256, 512)
and block counts (3, 4, 6, 3).  Its 3x3x512 convolutions give the
maximum DKV size S = 4608 the paper repeatedly cites.
"""

from __future__ import annotations

from repro.cnn.shapes import ModelDescriptor
from repro.cnn.zoo.builder import DescriptorBuilder


def resnet50(input_hw: int = 224) -> ModelDescriptor:
    b = DescriptorBuilder("ResNet50", in_channels=3, in_hw=input_hw)
    b.conv("conv1", 64, kernel=7, stride=2, padding=3)
    b.pool(3, stride=2, padding=1)

    stage_cfg = [  # (bottleneck width, output channels, blocks, first stride)
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    ]
    for s_idx, (width, out_ch, blocks, first_stride) in enumerate(stage_cfg, start=1):
        for blk in range(blocks):
            stride = first_stride if blk == 0 else 1
            prefix = f"layer{s_idx}.{blk}"
            if blk == 0:
                # projection shortcut runs on the block input in parallel
                b.conv_branch(
                    f"{prefix}.downsample", out_ch, kernel=1, stride=stride
                )
            b.conv(f"{prefix}.conv1", width, kernel=1, stride=1)
            b.conv(f"{prefix}.conv2", width, kernel=3, stride=stride, padding=1)
            b.conv(f"{prefix}.conv3", out_ch, kernel=1, stride=1)

    b.global_pool()
    b.fc("fc", 1000)
    return b.build()
