"""DenseNet-121 layer descriptor (Huang et al.).

Four dense blocks of (6, 12, 24, 16) layers with growth rate 32; each
dense layer = 1x1 bottleneck (4 x growth) + 3x3 conv (growth), input
channels growing by 32 per layer; 1x1 transition convs halve channels
between blocks.
"""

from __future__ import annotations

from repro.cnn.shapes import ModelDescriptor
from repro.cnn.zoo.builder import DescriptorBuilder

_GROWTH = 32
_BLOCKS = [6, 12, 24, 16]


def densenet121(input_hw: int = 224) -> ModelDescriptor:
    b = DescriptorBuilder("DenseNet", in_channels=3, in_hw=input_hw)
    b.conv("conv1", 64, kernel=7, stride=2, padding=3)
    b.pool(3, stride=2, padding=1)

    channels = 64
    for blk_idx, n_layers in enumerate(_BLOCKS, start=1):
        for l_idx in range(n_layers):
            prefix = f"denseblock{blk_idx}.layer{l_idx}"
            b.set_shape(channels)
            b.conv(f"{prefix}.bottleneck", 4 * _GROWTH, kernel=1)
            b.conv(f"{prefix}.conv", _GROWTH, kernel=3, padding=1)
            channels += _GROWTH
        if blk_idx < len(_BLOCKS):
            b.set_shape(channels)
            channels //= 2
            b.conv(f"transition{blk_idx}.conv", channels, kernel=1)
            b.pool(2, stride=2)

    b.set_shape(channels)
    b.global_pool()
    b.fc("fc", 1000)
    return b.build()
