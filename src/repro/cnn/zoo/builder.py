"""Shared helper for constructing model descriptors layer by layer.

Tracks the activation's ``(channels, h, w)`` through convolutions and
pooling so each architecture file reads like its published block table.
"""

from __future__ import annotations

from repro.cnn.functional import conv_output_hw
from repro.cnn.shapes import ConvLayerShape, ModelDescriptor, fc_shape


class DescriptorBuilder:
    """Stateful builder threading spatial dims through a network."""

    def __init__(self, name: str, in_channels: int = 3, in_hw: int = 224) -> None:
        self.model = ModelDescriptor(name)
        self.channels = in_channels
        self.h = in_hw
        self.w = in_hw

    def conv(
        self,
        name: str,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
    ) -> "DescriptorBuilder":
        layer = ConvLayerShape(
            name=name,
            in_channels=self.channels,
            out_channels=out_channels,
            kernel=kernel,
            stride=stride,
            padding=padding,
            in_h=self.h,
            in_w=self.w,
            groups=groups,
        )
        self.model.add(layer)
        self.channels = out_channels
        self.h, self.w = layer.out_hw
        return self

    def conv_branch(
        self,
        name: str,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        in_channels: int | None = None,
    ) -> tuple[int, int, int]:
        """Add a conv *without* updating the tracked main-path shape.

        Used for parallel branches (inception modules, residual
        downsamples, shuffle units); returns the branch's
        ``(out_channels, out_h, out_w)``.
        """
        layer = ConvLayerShape(
            name=name,
            in_channels=self.channels if in_channels is None else in_channels,
            out_channels=out_channels,
            kernel=kernel,
            stride=stride,
            padding=padding,
            in_h=self.h,
            in_w=self.w,
            groups=groups,
        )
        self.model.add(layer)
        out_h, out_w = layer.out_hw
        return out_channels, out_h, out_w

    def pool(
        self, kernel: int, stride: int | None = None, padding: int = 0
    ) -> "DescriptorBuilder":
        stride = stride or kernel
        self.h, self.w = conv_output_hw(self.h, self.w, kernel, stride, padding)
        return self

    def global_pool(self) -> "DescriptorBuilder":
        self.h = self.w = 1
        return self

    def set_shape(self, channels: int, h: int | None = None, w: int | None = None) -> "DescriptorBuilder":
        """Override tracked shape after branch merges (concat/add)."""
        self.channels = channels
        if h is not None:
            self.h = h
        if w is not None:
            self.w = w
        return self

    def fc(self, name: str, out_features: int, in_features: int | None = None) -> "DescriptorBuilder":
        feats = in_features if in_features is not None else self.channels * self.h * self.w
        self.model.add(fc_shape(name, feats, out_features))
        self.channels = out_features
        self.h = self.w = 1
        return self

    def build(self) -> ModelDescriptor:
        if not self.model.layers:
            raise ValueError("descriptor has no layers")
        return self.model
