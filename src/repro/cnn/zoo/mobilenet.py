"""MobileNet-V2 layer descriptor (Sandler et al.).

Inverted residual blocks: 1x1 expansion (factor t), 3x3 *depthwise*
convolution (groups = channels, so S = 9), 1x1 projection.  The
prevalence of S = 9 depthwise kernels is why the paper's speedups are
smaller on MobileNet/ShuffleNet than on ResNet/GoogleNet.
"""

from __future__ import annotations

from repro.cnn.shapes import ModelDescriptor
from repro.cnn.zoo.builder import DescriptorBuilder

# (expansion t, output channels c, repeats n, first stride s)
_CFG = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def mobilenet_v2(input_hw: int = 224) -> ModelDescriptor:
    b = DescriptorBuilder("MobileNet_V2", in_channels=3, in_hw=input_hw)
    b.conv("conv1", 32, kernel=3, stride=2, padding=1)

    for blk, (t, c, n, s) in enumerate(_CFG):
        for rep in range(n):
            stride = s if rep == 0 else 1
            prefix = f"block{blk}.{rep}"
            hidden = b.channels * t
            if t != 1:
                b.conv(f"{prefix}.expand", hidden, kernel=1)
            b.conv(
                f"{prefix}.depthwise",
                hidden,
                kernel=3,
                stride=stride,
                padding=1,
                groups=hidden,
            )
            b.conv(f"{prefix}.project", c, kernel=1)

    b.conv("conv_last", 1280, kernel=1)
    b.global_pool()
    b.fc("fc", 1000)
    return b.build()
