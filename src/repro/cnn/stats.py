"""Kernel-size statistics (paper Table II and Section III-B).

Counts, per CNN, the kernel tensors whose flattened size
``S = K*K*D`` falls at or below / above the analog-VDPC limit of 44 -
the observation (">98 % of kernels need S > 44") that motivates
stochastic computing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cnn.shapes import ModelDescriptor
from repro.cnn.zoo import build_model


@dataclass(frozen=True)
class KernelSizeStats:
    """Table II row for one model."""

    model: str
    small_kernels: int       #: TL with S <= threshold
    large_kernels: int       #: TL with S > threshold
    threshold: int

    @property
    def total(self) -> int:
        return self.small_kernels + self.large_kernels

    @property
    def large_fraction(self) -> float:
        return self.large_kernels / self.total if self.total else 0.0


def kernel_size_stats(
    model: ModelDescriptor | str, threshold: int = 44, exclude_fc: bool = True
) -> KernelSizeStats:
    """Compute the Table II split for one model (name or descriptor).

    ``exclude_fc=True`` (default) follows the paper's convention of
    counting convolution kernels only.
    """
    desc = build_model(model) if isinstance(model, str) else model
    small, large = desc.kernels_by_vector_size(threshold, exclude_fc=exclude_fc)
    return KernelSizeStats(
        model=desc.name,
        small_kernels=small,
        large_kernels=large,
        threshold=threshold,
    )


def vector_size_histogram(model: ModelDescriptor | str) -> dict[int, int]:
    """Kernel count per distinct DKV size S - the workload fingerprint."""
    desc = build_model(model) if isinstance(model, str) else model
    hist: dict[int, int] = {}
    for layer in desc.layers:
        hist[layer.vector_size] = hist.get(layer.vector_size, 0) + layer.n_kernels
    return dict(sorted(hist.items()))


def psum_workload(
    model: ModelDescriptor | str, vdpe_size: int
) -> dict[str, int]:
    """Total decomposed-VDP pieces a model generates at a given N.

    The quantity that drives psum-reduction traffic in the system
    simulator: ``sum over layers of n_vdps * ceil(S / N)``.
    """
    import math

    desc = build_model(model) if isinstance(model, str) else model
    pieces = sum(
        layer.n_vdps * math.ceil(layer.vector_size / vdpe_size)
        for layer in desc.layers
    )
    return {
        "model": desc.name,
        "vdpe_size": vdpe_size,
        "total_vdps": desc.total_vdps,
        "total_pieces": pieces,
    }
