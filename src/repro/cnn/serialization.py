"""NPZ + JSON serialization of :class:`~repro.cnn.inference.QuantizedModel`.

A saved model is a single compressed ``.npz`` archive holding

* ``__meta__`` - a JSON document describing the model structure (layer
  kinds and geometry, quantization parameters, the
  :class:`~repro.core.config.SconnaConfig` operating point, format
  version), and
* one array entry per tensor (``L{i}_weight_q``, ``L{i}_weight_f``,
  ``L{i}_bias``) referenced from the structure records.

Everything derived from the tensors - in particular the compiled
:class:`~repro.cnn.engine.SconnaLayerPlan` per layer - is rebuilt on
load by ``QuantizedModel.__init__``, so the archive stays a pure data
format: no pickled code, stable across engine refactors.  The arrays
are stored exactly (integer grids and float64 weights), which makes the
round-trip bit-identical: a reloaded model produces the same logits in
every datapath (for ``sconna`` under an ideal or equal-seeded error
model).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.cnn.micro import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.cnn.quantize import QuantParams
from repro.core.config import SconnaConfig
from repro.photonics.tir import TIRParams

#: bump when the archive layout changes incompatibly
FORMAT_VERSION = 1
FORMAT_NAME = "sconna-quantized-model"


# -- QuantParams / SconnaConfig <-> plain dicts ---------------------------
def _params_to_dict(p: QuantParams) -> dict:
    return {"scale": p.scale, "levels": p.levels, "signed": p.signed}


def _params_from_dict(d: dict) -> QuantParams:
    return QuantParams(
        scale=float(d["scale"]), levels=int(d["levels"]), signed=bool(d["signed"])
    )


def _config_to_dict(config: SconnaConfig) -> dict:
    return dataclasses.asdict(config)


def _config_from_dict(d: dict) -> SconnaConfig:
    fields = dict(d)
    tir = fields.pop("tir", None)
    known = {f.name for f in dataclasses.fields(SconnaConfig)}
    unknown = set(fields) - known
    if unknown:
        raise ValueError(f"unknown SconnaConfig fields in archive: {sorted(unknown)}")
    if tir is not None:
        fields["tir"] = TIRParams(**tir)
    return SconnaConfig(**fields)


# -- structure items <-> records ------------------------------------------
def _describe_structure(qmodel) -> "tuple[list[dict], dict[str, np.ndarray]]":
    """Flatten the model structure into JSON records + named arrays."""
    from repro.cnn.inference import QuantLayer  # local: avoid import cycle

    records: list[dict] = []
    arrays: dict[str, np.ndarray] = {}
    for i, item in enumerate(qmodel.structure):
        if isinstance(item, QuantLayer):
            rec: dict[str, Any] = {
                "type": f"quant_{item.kind}",
                "weight_params": _params_to_dict(item.weight_params),
                "act_params": _params_to_dict(item.act_params),
            }
            if item.kind == "conv":
                rec["stride"] = item.stride
                rec["padding"] = item.padding
            arrays[f"L{i}_weight_q"] = item.weight_q
            arrays[f"L{i}_weight_f"] = item.float_layer.weight
            if item.bias is not None:
                rec["has_bias"] = True
                arrays[f"L{i}_bias"] = item.bias
            else:
                rec["has_bias"] = False
        elif isinstance(item, ReLU):
            rec = {"type": "relu"}
        elif isinstance(item, MaxPool2d):
            rec = {"type": "maxpool", "kernel": item.kernel, "stride": item.stride}
        elif isinstance(item, Flatten):
            rec = {"type": "flatten"}
        else:
            raise ValueError(
                f"cannot serialize structure item {type(item).__name__!r}; "
                "supported: QuantLayer, ReLU, MaxPool2d, Flatten"
            )
        records.append(rec)
    return records, arrays


def _rebuild_quant_layer(rec: dict, i: int, archive) -> "object":
    from repro.cnn.inference import QuantLayer  # local: avoid import cycle

    weight_q = np.asarray(archive[f"L{i}_weight_q"])
    weight_f = np.asarray(archive[f"L{i}_weight_f"], dtype=np.float64)
    bias = (
        np.asarray(archive[f"L{i}_bias"], dtype=np.float64)
        if rec["has_bias"]
        else None
    )
    kind = rec["type"].removeprefix("quant_")
    if kind == "conv":
        l, c, k, _ = weight_f.shape
        stride, padding = int(rec["stride"]), int(rec["padding"])
        float_layer: Conv2d | Linear = Conv2d(
            c, l, k, stride=stride, padding=padding, bias=bias is not None
        )
    else:
        out_f, in_f = weight_f.shape
        stride, padding = 1, 0
        float_layer = Linear(in_f, out_f)
    # overwrite the randomly-initialised parameters with the saved ones
    float_layer.weight = weight_f
    float_layer.grad_weight = np.zeros_like(weight_f)
    if bias is not None:
        float_layer.bias = bias.copy()
        float_layer.grad_bias = np.zeros_like(float_layer.bias)
    return QuantLayer(
        kind=kind,
        weight_q=weight_q,
        weight_params=_params_from_dict(rec["weight_params"]),
        act_params=_params_from_dict(rec["act_params"]),
        float_layer=float_layer,
        stride=stride,
        padding=padding,
        bias=bias,
    )


# -- public API ------------------------------------------------------------
def _write_archive(qmodel, target) -> None:
    """Serialize ``qmodel`` into ``target`` (a path or binary file object)."""
    records, arrays = _describe_structure(qmodel)
    meta = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "precision_bits": qmodel.precision_bits,
        "config": _config_to_dict(qmodel.config),
        "structure": records,
    }
    # persisted autotune choices (additive, version-1 compatible): a
    # loaded model starts pre-tuned instead of re-timing kernel variants
    # on its first forward.  Stale entries (a shape that no longer
    # matches) are re-validated and re-tuned by the graph planner.
    if getattr(qmodel, "autotune", None):
        meta["autotune"] = qmodel.autotune
    np.savez_compressed(target, __meta__=np.array(json.dumps(meta)), **arrays)


def _read_archive(source, label: str):
    """Rebuild a model from ``source`` (a path or binary file object)."""
    from repro.cnn.inference import QuantizedModel  # local: avoid import cycle

    with np.load(source, allow_pickle=False) as archive:
        if "__meta__" not in archive:
            raise ValueError(f"{label} is not a {FORMAT_NAME} archive")
        meta = json.loads(str(archive["__meta__"]))
        if meta.get("format") != FORMAT_NAME:
            raise ValueError(f"{label}: unexpected format {meta.get('format')!r}")
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{label}: unsupported archive version {meta.get('version')!r} "
                f"(expected {FORMAT_VERSION})"
            )
        structure: list[object] = []
        for i, rec in enumerate(meta["structure"]):
            kind = rec["type"]
            if kind in ("quant_conv", "quant_linear"):
                structure.append(_rebuild_quant_layer(rec, i, archive))
            elif kind == "relu":
                structure.append(ReLU())
            elif kind == "maxpool":
                structure.append(
                    MaxPool2d(kernel=int(rec["kernel"]), stride=int(rec["stride"]))
                )
            elif kind == "flatten":
                structure.append(Flatten())
            else:
                raise ValueError(f"{label}: unknown structure record {kind!r}")
    qmodel = QuantizedModel(
        structure,
        precision_bits=int(meta["precision_bits"]),
        config=_config_from_dict(meta["config"]),
    )
    autotune = meta.get("autotune")
    if isinstance(autotune, dict):
        qmodel.autotune = {
            str(k): dict(v) for k, v in autotune.items() if isinstance(v, dict)
        }
    return qmodel


def save_quantized_model(qmodel, path: "str | Path") -> Path:
    """Write ``qmodel`` as a compressed NPZ archive; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _write_archive(qmodel, path)
    return path


def load_quantized_model(path: "str | Path"):
    """Rebuild a :class:`~repro.cnn.inference.QuantizedModel` from disk.

    Layer plans are recompiled eagerly by the model constructor, so a
    loaded model is immediately ready to serve.
    """
    path = Path(path)
    return _read_archive(path, str(path))


def dumps_quantized_model(qmodel) -> bytes:
    """The NPZ archive as in-memory bytes (same format as :func:`save_quantized_model`).

    Used to ship a not-yet-registered model over a pipe to a shard
    worker process without touching disk; :func:`loads_quantized_model`
    is the inverse and the round trip is bit-identical, exactly like the
    file-based one.
    """
    import io

    buf = io.BytesIO()
    _write_archive(qmodel, buf)
    return buf.getvalue()


def loads_quantized_model(data: bytes):
    """Rebuild a model from :func:`dumps_quantized_model` bytes."""
    import io

    return _read_archive(io.BytesIO(data), "<bytes>")
