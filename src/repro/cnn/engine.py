"""Vectorized count-domain SCONNA execution engine.

The functional simulator's hot path is the count-domain SC matmul: for
every output channel ``l`` and output pixel ``p`` it needs the psum-group
sums ``sum_q floor(a_q * |w_lq| / 2**B)``, sign-split into the positive
and negative PCA accumulations.  The seed implementation walked output
channels in a Python loop (kept below as
:func:`sconna_matmul_reference`); this module replaces it with a fully
vectorized engine built on an exact algebraic decomposition.

**The floor-decomposition identity.**  For non-negative integers,

.. math::

    \\sum_q \\lfloor a_q w_q / 2^B \\rfloor
      = \\Big( \\sum_q a_q w_q \\;-\\; \\sum_q (a_q w_q \\bmod 2^B) \\Big)
        \\, / \\, 2^B

so the per-product floor division - the one thing that kept the kernel
from being a matmul - splits into

* a **BLAS matmul** ``sum_q a_q w_q`` over sign-split weight magnitudes
  (run in float64, exact for integer sums below ``2**53``), and
* a **remainder reduction** ``sum_q (a_q w_q mod 2**B)``.  Because
  ``x*y mod 2**k`` is the natural wraparound of k-bit machine
  multiplication, the remainder term is a fused low-bits
  multiply-accumulate: a native C kernel when available
  (:mod:`repro.utils.native`), a chunked uint8/uint16 broadcast in pure
  NumPy otherwise.  Both are bit-identical to the reference.

A :class:`SconnaLayerPlan` caches everything derivable from the weights
(sign-split magnitudes, low bits, psum-group slices, dtype choices) so a
layer pays the preparation cost once at quantization time, not per
forward pass.  :class:`SconnaEngine` adds reusable activation/workspace
buffers on top.

**RNG-stream caveat.**  The engine draws the per-psum-group ADC noise in
one vectorized ``(B, 2L, P)`` batch instead of the reference's two
``(B, L, P)`` draws (positive then negative), so with an active error
model the noisy logits are *statistically* - not bitwise - equivalent to
the reference implementation.  With ``error_model=None`` (or an ideal
model) the two paths are exactly equal, which the property tests lock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SconnaConfig
from repro.stochastic.error_models import SconnaErrorModel
from repro.utils import native

#: elements per chunk of the NumPy fallback's remainder broadcast
_REM_CHUNK_ELEMS = 1 << 24


def psum_group_size(config: SconnaConfig) -> int:
    """Kernel-vector points accumulated per electrical psum readout."""
    return config.vdpe_size * config.pca_accumulation_passes


def vector_path_supported(precision_bits: int, group: int) -> bool:
    """Is the vectorized engine exact for this (B, group) combination?

    Three requirements: the low-bits layout fits uint16 (B <= 16), the
    BLAS term's per-group integer sums stay below float64's 2**53 exact
    range, and the remainder sums fit int32.  Every paper configuration
    qualifies by orders of magnitude; callers fall back to
    :func:`sconna_matmul_reference` otherwise.
    """
    mask = (1 << precision_bits) - 1
    return (
        precision_bits <= 16
        and group * (1 << (2 * precision_bits)) < 2**53
        and group * mask < 2**31
    )


@dataclass
class SconnaLayerPlan:
    """Compiled per-layer constants for the vectorized engine.

    Built once from the quantized weights (see :func:`compile_layer_plan`)
    and reused by every forward pass.
    """

    precision_bits: int
    group: int                       #: psum-group size in vector points
    n_out: int                       #: L - output channels
    n_in: int                        #: Q - flattened kernel length
    w_stacked: np.ndarray            #: (2L, Q) float64 [pos mags; neg mags]
    w_float: np.ndarray              #: (L, Q) float64 signed weights
    w_lo: np.ndarray                 #: (2L, Q) low bits of the magnitudes
    group_slices: "list[slice]" = field(default_factory=list)
    #: (L, Q) uint8 low bits of |w| for the sign-split remainder kernel
    #: (B <= 8 layouts only; None otherwise)
    w_mag_lo: "np.ndarray | None" = None
    #: (L, Q) uint8 steering mask, 0xFF where w > 0 (None when B > 8)
    w_pos_mask: "np.ndarray | None" = None

    @property
    def shift(self) -> int:
        return self.precision_bits

    @property
    def mask(self) -> int:
        return (1 << self.precision_bits) - 1

    @property
    def lo_dtype(self) -> np.dtype:
        return self.w_lo.dtype

    @property
    def native_eligible(self) -> bool:
        """The C kernel handles the uint8 (B <= 8) layout only."""
        return self.w_lo.dtype == np.uint8


def compile_layer_plan(
    w_flat: np.ndarray, precision_bits: int, group: int
) -> SconnaLayerPlan:
    """Precompute the weight-side constants of the vectorized kernel.

    ``w_flat``: ``(L, Q)`` signed integer weights with magnitudes in
    ``[0, 2**B]``; ``group``: psum-group size (vdpe_size x accumulation
    passes).
    """
    if w_flat.ndim != 2:
        raise ValueError("w_flat must be 2-D (L, Q)")
    if group < 1:
        raise ValueError("group must be >= 1")
    if not vector_path_supported(precision_bits, group):
        raise ValueError(
            f"vectorized engine is not exact for B={precision_bits}, "
            f"group={group}; use sconna_matmul_reference"
        )
    l, q = w_flat.shape
    w_mag = np.abs(w_flat).astype(np.int64)
    if (w_mag > (1 << precision_bits)).any():
        raise ValueError(f"|weights| must lie in [0, {1 << precision_bits}]")
    w_stacked = np.ascontiguousarray(
        np.concatenate(
            [np.where(w_flat > 0, w_mag, 0), np.where(w_flat < 0, w_mag, 0)],
            axis=0,
        ).astype(np.float64)
    )
    lo_dtype = np.uint8 if precision_bits <= 8 else np.uint16
    mask = (1 << precision_bits) - 1
    # casting wraps mod 2**{8,16}; both are multiples of 2**B, so the
    # subsequent & mask yields the exact mod-2**B low bits.
    w_lo = np.ascontiguousarray(w_stacked.astype(np.int64).astype(lo_dtype))
    w_lo &= lo_dtype(mask)
    w_mag_lo = w_pos_mask = None
    if lo_dtype == np.uint8:
        w_mag_lo = np.ascontiguousarray(w_mag.astype(np.uint8) & np.uint8(mask))
        w_pos_mask = np.ascontiguousarray(
            np.where(w_flat > 0, 0xFF, 0).astype(np.uint8)
        )
    slices = [slice(s, min(s + group, q)) for s in range(0, q, group)]
    return SconnaLayerPlan(
        precision_bits=precision_bits,
        group=group,
        n_out=l,
        n_in=q,
        w_stacked=w_stacked,
        w_float=np.ascontiguousarray(w_flat.astype(np.float64)),
        w_lo=w_lo,
        group_slices=slices,
        w_mag_lo=w_mag_lo,
        w_pos_mask=w_pos_mask,
    )


class _BufferPool:
    """Reusable scratch arrays keyed by (tag, shape, dtype), LRU-bounded.

    Forward passes over fixed-shape batches re-run the same layer
    geometry thousands of times during a Table V / Fig. 9 sweep; keeping
    one buffer per (tag, shape) avoids a fresh large allocation (and the
    page-zeroing behind it) on every call.  Shapes cycle layer-by-layer
    within a forward pass, so each tag keeps the most recent
    ``max_per_tag`` shapes and evicts older ones - a ragged final batch
    or a batch-size sweep cannot grow the pool without bound.
    """

    def __init__(self, max_per_tag: int = 16) -> None:
        from collections import OrderedDict

        self.max_per_tag = max_per_tag
        self._bufs: "dict[str, OrderedDict]" = {}
        self._odict = OrderedDict

    def get(self, tag: str, shape: tuple, dtype) -> np.ndarray:
        per_tag = self._bufs.setdefault(tag, self._odict())
        key = (shape, np.dtype(dtype))
        buf = per_tag.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            per_tag[key] = buf
            while len(per_tag) > self.max_per_tag:
                per_tag.popitem(last=False)
        else:
            per_tag.move_to_end(key)
        return buf

    def clear(self) -> None:
        self._bufs.clear()


class SconnaEngine:
    """Vectorized count-domain executor with reusable workspaces.

    One engine per :class:`~repro.cnn.inference.QuantizedModel`; it is
    stateless apart from scratch buffers, so results do not depend on
    call history.  Buffer ownership is **per thread**: each thread that
    runs a forward pass gets (and keeps, warm) its own
    :class:`_BufferPool`, so concurrent calls into one engine - the
    serving worker pool's steady state - never share workspaces.  A
    worker's first batch pays the allocation cost once; every later
    batch of the same geometry reuses the warm buffers.
    """

    def __init__(self, use_native: bool = True) -> None:
        self.use_native = use_native
        self._local = threading.local()
        self._native_ready: "bool | None" = None

    # An engine is stateless apart from per-thread scratch buffers, so it
    # pickles as configuration only: a copy that crosses a process
    # boundary (multi-process serving shards) arrives cold and rebuilds
    # its thread-local pools - and its compiled plans' native-kernel
    # binding - on first use in the new process.
    def __getstate__(self) -> dict:
        return {"use_native": self.use_native}

    def __setstate__(self, state: dict) -> None:
        self.use_native = state["use_native"]
        self._local = threading.local()
        self._native_ready = None

    @property
    def pool(self) -> _BufferPool:
        """This thread's private scratch-buffer pool (created lazily)."""
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = _BufferPool()
            self._local.pool = pool
        return pool

    # -- main kernel -----------------------------------------------------
    def matmul(
        self,
        plan: SconnaLayerPlan,
        cols: np.ndarray,
        error_model: SconnaErrorModel | None = None,
        *,
        out: "np.ndarray | None" = None,
        matmul_kind: str = "blas",
        remainder_kind: str = "auto",
        profile: "list | None" = None,
    ) -> np.ndarray:
        """Count-domain SC matmul with per-psum-group ADC error.

        ``cols``: ``(B, Q, P)`` unsigned integer activations.  Returns
        float64 ``(B, L, P)`` signed counts, bit-exact with
        :func:`sconna_matmul_reference`.

        ``out`` (optional) is a preallocated float64 ``(B, L, P)`` result
        buffer; ``matmul_kind``/``remainder_kind`` select autotuned
        kernel variants (see :meth:`_remainder`) - every variant computes
        exact integer sums, so the choice can never change the result.
        ``profile`` (optional) collects ``(name, start_s, end_s, tags)``
        timing tuples for the BLAS and remainder terms; timing reads the
        clock around unchanged arithmetic, so results stay bit-identical
        with profiling on or off.
        """
        b, q, p = cols.shape
        if q != plan.n_in:
            raise ValueError(f"cols Q={q} does not match plan Q={plan.n_in}")
        l = plan.n_out
        shift, mask = plan.shift, plan.mask
        apply_error = error_model is not None and not error_model.ideal()

        remainder_kind = self._resolve_remainder_kind(plan, remainder_kind)
        af, a_lo = self._load_activations(plan, cols, remainder_kind)
        rem = self.pool.get("rem", (b, 2 * l, p), np.int32)
        s_buf = self.pool.get("s", (b, 2 * l, p), np.float64)
        if out is None:
            out = np.zeros((b, l, p), dtype=np.float64)
        else:
            out.fill(0.0)
        inv_scale = 1.0 / (1 << shift)
        for sl in plan.group_slices:
            # BLAS term: exact integer sums in float64.
            t0 = time.monotonic() if profile is not None else 0.0
            if matmul_kind == "einsum":
                s = np.einsum(
                    "lq,bqp->blp", plan.w_stacked[:, sl], af[:, sl, :],
                    out=s_buf,
                )
            else:
                s = np.matmul(
                    plan.w_stacked[None, :, sl], af[:, sl, :], out=s_buf
                )
            if profile is not None:
                t1 = time.monotonic()
                profile.append(("engine.matmul", t0, t1,
                                {"kind": matmul_kind}))
                t0 = t1
            # remainder term: fused native kernel or chunked broadcast.
            self._remainder(plan, a_lo, sl, rem, remainder_kind)
            if profile is not None:
                profile.append(("engine.remainder", t0, time.monotonic(),
                                {"kind": remainder_kind}))
            np.subtract(s, rem, out=s)
            s *= inv_scale  # exact: s - rem is a multiple of 2**B
            if apply_error:
                s = error_model.apply_to_counts(s).astype(np.float64)
            out += s[:, :l, :]
            out -= s[:, l:, :]
        return out

    def matmul_ideal(
        self,
        plan: SconnaLayerPlan,
        cols: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
        matmul_kind: str = "blas",
        remainder_kind: str = "auto",
        profile: "list | None" = None,
    ) -> np.ndarray:
        """Ideal-datapath SC matmul: half the BLAS and remainder work.

        With no error model the sign-split stacks collapse: the counts
        are ``(S_pos - R_pos - S_neg + R_neg) / 2**B`` where
        ``S_pos - S_neg`` is a single *signed* L-row matmul (instead of
        the stacked 2L rows, half of which multiply structural zeros)
        and ``R_pos - R_neg`` comes from the one-pass sign-split
        remainder kernel.  Every term is an exact integer below 2**53 and
        the result is a multiple of ``2**-B``, so this is bit-identical
        to ``matmul(plan, cols, error_model=None)`` - locked by
        ``tests/test_cnn_engine.py``.  An active error model needs the
        full stacked counts for its noise draw, so noisy callers must use
        :meth:`matmul`.
        """
        b, q, p = cols.shape
        if q != plan.n_in:
            raise ValueError(f"cols Q={q} does not match plan Q={plan.n_in}")
        l = plan.n_out

        remainder_kind = self._resolve_remainder_kind(plan, remainder_kind)
        af, a_lo = self._load_activations(plan, cols, remainder_kind)
        rem = self.pool.get("rem", (b, 2 * l, p), np.int32)
        s_buf = self.pool.get("s_signed", (b, l, p), np.float64)
        if out is None:
            out = np.empty((b, l, p), dtype=np.float64)
        single = len(plan.group_slices) == 1
        if not single:
            out.fill(0.0)
        inv_scale = 1.0 / (1 << plan.shift)
        for sl in plan.group_slices:
            t0 = time.monotonic() if profile is not None else 0.0
            if matmul_kind == "einsum":
                s = np.einsum(
                    "lq,bqp->blp", plan.w_float[:, sl], af[:, sl, :], out=s_buf
                )
            else:
                s = np.matmul(
                    plan.w_float[None, :, sl], af[:, sl, :], out=s_buf
                )
            if profile is not None:
                t1 = time.monotonic()
                profile.append(("engine.matmul", t0, t1,
                                {"kind": matmul_kind}))
                t0 = t1
            self._remainder(plan, a_lo, sl, rem, remainder_kind)
            if profile is not None:
                profile.append(("engine.remainder", t0, time.monotonic(),
                                {"kind": remainder_kind}))
            np.subtract(s, rem[:, :l, :], out=s)
            s += rem[:, l:, :]
            if single:
                np.multiply(s, inv_scale, out=out)
            else:
                s *= inv_scale
                out += s
        return out

    def _resolve_remainder_kind(self, plan: SconnaLayerPlan, kind: str) -> str:
        """Downgrade a variant request the current plan/build can't run.

        ``cols`` and ``split`` need the sign-split plan arrays plus the
        native library; a pre-tuned choice persisted on one machine must
        degrade gracefully (to ``auto``: stacked native else numpy) when
        loaded on another.
        """
        if kind not in ("cols", "split"):
            return kind
        ready = self._native_ready
        if ready is None:
            # memoized: the library load outcome is stable for the
            # process lifetime, and the per-call env check was hot.  A
            # later REPRO_NATIVE=0 still takes effect for correctness -
            # the kernel wrappers re-check and fall back to NumPy.
            ready = self._native_ready = native.native_available()
        if not (
            self.use_native
            and plan.native_eligible
            and plan.w_pos_mask is not None
            and ready
        ):
            return "auto"
        return kind

    def _load_activations(
        self, plan: SconnaLayerPlan, cols: np.ndarray, kind: str = "auto"
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Per-call activation views from the pool: exact float64 for the
        BLAS term, low bits for the remainder term.  Row-contraction
        variants want the low bits transposed to ``(B, P, Q)``; the
        ``cols`` variant consumes the native ``(B, Q, P)`` layout and so
        skips the transposed copy."""
        b, q, p = cols.shape
        if cols.dtype == np.float64 and cols.flags.c_contiguous:
            # the fused graph path gathers columns straight into a
            # float64 arena buffer: it already *is* the exact BLAS
            # operand (integer-valued, <= 2**B < 2**53), so skip the copy
            af = cols
        else:
            af = self.pool.get("af", (b, q, p), np.float64)
            np.copyto(af, cols)
        lo_dtype = plan.lo_dtype
        if kind == "cols":
            a_lo = self.pool.get("a_lo_cols", (b, q, p), lo_dtype)
            np.copyto(a_lo, cols, casting="unsafe")
        else:
            a_lo = self.pool.get("a_lo", (b, p, q), lo_dtype)
            np.copyto(a_lo, cols.transpose(0, 2, 1), casting="unsafe")
        if plan.mask != (1 << (8 * lo_dtype.itemsize)) - 1:
            a_lo &= lo_dtype.type(plan.mask)
        return af, a_lo

    def _remainder(
        self,
        plan: SconnaLayerPlan,
        a_lo: np.ndarray,
        sl: slice,
        rem: np.ndarray,
        kind: str,
    ) -> None:
        """Fill ``rem`` for the group ``sl`` with the requested kernel
        variant: ``cols`` (column-layout C kernel, vectorised over
        pixels), ``split`` (one-pass sign-split C kernel), ``native``
        (stacked C kernel), ``numpy`` (chunked broadcast).  ``auto``
        preserves the per-layer reference behaviour (stacked native else
        numpy).  All variants produce identical int32 sums; kind must
        already be resolved via :meth:`_resolve_remainder_kind` so the
        activation layout matches.
        """
        mask = plan.mask
        if self.use_native and plan.native_eligible and kind != "numpy":
            if kind == "cols":
                if native.remainder_group_sums_cols(
                    a_lo, plan.w_mag_lo, plan.w_pos_mask,
                    sl.start, sl.stop, mask, rem,
                ):
                    return
            elif kind == "split":
                if native.remainder_group_sums_split(
                    a_lo, plan.w_mag_lo, plan.w_pos_mask,
                    sl.start, sl.stop, mask, rem,
                ):
                    return
            if kind != "cols" and native.remainder_group_sums(
                a_lo, plan.w_lo, sl.start, sl.stop, mask, rem
            ):
                return
        # the NumPy fallback wants the (B, P, Q) row layout; give it a
        # transposed view when the activations were loaded cols-style
        a_rows = a_lo.transpose(0, 2, 1) if kind == "cols" else a_lo
        _remainder_fallback(a_rows, plan.w_lo, sl, mask, rem)


def _remainder_fallback(
    a_lo: np.ndarray,
    w_lo: np.ndarray,
    sl: slice,
    mask: int,
    out: np.ndarray,
) -> None:
    """Pure-NumPy remainder reduction (chunked over output pixels).

    Broadcast-multiplies the low bits with natural wraparound (machine
    multiplication *is* modular), masks down to ``2**B``, and widens to
    int32 sums.  Chunked over the P axis so the intermediate stays
    cache-sized.
    """
    b, p, _ = a_lo.shape
    l2, qg = w_lo.shape[0], sl.stop - sl.start
    wl = w_lo[None, :, None, sl]
    lo_dtype = a_lo.dtype
    masked = mask != np.iinfo(lo_dtype).max
    chunk = max(1, _REM_CHUNK_ELEMS // max(1, b * l2 * qg))
    for ps in range(0, p, chunk):
        psl = slice(ps, min(ps + chunk, p))
        r = a_lo[:, None, psl, sl] * wl
        if masked:
            r &= lo_dtype.type(mask)
        # accumulate in int32 to match the buffer dtype: the sums are
        # bounded by group * mask < 2**31 (vector_path_supported), so
        # int32 cannot overflow and the assignment never wraps through
        # an unsigned intermediate.
        out[:, :, psl] = r.sum(axis=-1, dtype=np.int32)


def sconna_matmul_reference(
    cols: np.ndarray,
    w_flat: np.ndarray,
    precision_bits: int,
    group: int,
    error_model: SconnaErrorModel | None = None,
) -> np.ndarray:
    """The seed per-output-channel implementation (golden reference).

    Kept verbatim for the bit-exactness property tests and as the
    fallback for configurations outside the vectorized engine's exactness
    envelope.  ``cols``: (B, Q, P) unsigned activations; ``w_flat``:
    (L, Q) signed weights.  Returns float (B, L, P) signed counts.
    """
    b, q, p = cols.shape
    l = w_flat.shape[0]
    shift = precision_bits
    w_mag = np.abs(w_flat)
    w_pos = w_flat > 0
    out = np.zeros((b, l, p), dtype=np.float64)
    for start in range(0, q, group):
        sl = slice(start, min(start + group, q))
        a_chunk = cols[:, sl, :]
        pos = np.empty((b, l, p), dtype=np.int64)
        neg = np.empty((b, l, p), dtype=np.int64)
        for li in range(l):
            prods = (a_chunk * w_mag[li, sl][None, :, None]) >> shift
            mask = w_pos[li, sl][None, :, None]
            pos[:, li, :] = (prods * mask).sum(axis=1)
            neg[:, li, :] = (prods * ~mask).sum(axis=1)
        if error_model is not None and not error_model.ideal():
            pos = error_model.apply_to_counts(pos)
            neg = error_model.apply_to_counts(neg)
        out += pos.astype(np.float64) - neg.astype(np.float64)
    return out
