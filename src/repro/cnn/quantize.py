"""Post-training integer quantization (the paper's 8-bit setting).

Standard affine scheme:

* **activations** - unsigned ``B``-bit with zero-point 0 (all layer
  inputs are RELU outputs or normalised images, i.e. non-negative -
  exactly the assumption SCONNA's sign-free input stream ``I`` makes),
  scale calibrated from a representative batch;
* **weights** - signed symmetric ``B``-bit (sign handled by the VDPE's
  steering filter MRRs).

The integer convolution computes ``sum(i_q * w_q)``; dequantisation
multiplies by ``s_i * s_w``.  SCONNA's stochastic pipeline computes the
same sum pre-scaled by ``2**-B`` (with per-product floor), so its
dequantisation scale is ``s_i * s_w * 2**B``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantParams:
    """Scale/range of one tensor's affine quantization (zero-point 0)."""

    scale: float
    levels: int         #: number of positive levels (2**B for activations)
    signed: bool

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.levels < 1:
            raise ValueError("levels must be >= 1")


def calibrate_activation(
    samples: np.ndarray, precision_bits: int = 8, percentile: float = 99.9
) -> QuantParams:
    """Choose an unsigned activation scale from representative data.

    A high percentile (not the max) absorbs outliers - standard
    post-training calibration practice.
    """
    if samples.size == 0:
        raise ValueError("cannot calibrate on empty samples")
    levels = 1 << precision_bits
    hi = float(np.percentile(np.abs(samples), percentile))
    hi = max(hi, 1e-8)
    return QuantParams(scale=hi / levels, levels=levels, signed=False)


def calibrate_weight(weights: np.ndarray, precision_bits: int = 8) -> QuantParams:
    """Symmetric signed weight scale from the extreme magnitude."""
    if weights.size == 0:
        raise ValueError("cannot calibrate on empty weights")
    levels = 1 << precision_bits
    hi = max(float(np.max(np.abs(weights))), 1e-8)
    return QuantParams(scale=hi / levels, levels=levels, signed=True)


def quantize(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Real -> integer grid (int64), clipped to the representable range."""
    q = np.rint(x / params.scale)
    if params.signed:
        return np.clip(q, -params.levels, params.levels).astype(np.int64)
    return np.clip(q, 0, params.levels).astype(np.int64)


def dequantize(q: np.ndarray, params: QuantParams) -> np.ndarray:
    return np.asarray(q, dtype=np.float64) * params.scale


def quantization_error(x: np.ndarray, params: QuantParams) -> float:
    """Max absolute round-trip error; bounded by scale/2 inside range."""
    return float(np.max(np.abs(dequantize(quantize(x, params), params) - x)))
