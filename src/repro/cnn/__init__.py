"""CNN substrate: kernels, shapes, zoo, quantization, training, inference.

* :mod:`repro.cnn.functional` - NumPy conv/pool/FC kernels,
* :mod:`repro.cnn.shapes` / :mod:`repro.cnn.zoo` - layer-shape IR and
  the six-model zoo driving Table II and the Fig. 9 workloads,
* :mod:`repro.cnn.stats` - kernel-size statistics (Table II),
* :mod:`repro.cnn.quantize` - post-training int-8 quantization,
* :mod:`repro.cnn.micro` / :mod:`repro.cnn.train` - the trainable
  micro-framework and the four Table V proxy networks,
* :mod:`repro.cnn.datasets` - the synthetic ImageNet substitute,
* :mod:`repro.cnn.inference` - float / int8 / SCONNA datapaths.
"""

from repro.cnn.shapes import ConvLayerShape, ModelDescriptor, fc_shape
from repro.cnn.stats import (
    KernelSizeStats,
    kernel_size_stats,
    psum_workload,
    vector_size_histogram,
)
from repro.cnn.zoo import (
    EVALUATION_MODELS,
    MODEL_BUILDERS,
    TABLE2_MODELS,
    build_model,
)
from repro.cnn.quantize import (
    QuantParams,
    calibrate_activation,
    calibrate_weight,
    dequantize,
    quantization_error,
    quantize,
)
from repro.cnn.datasets import (
    Dataset,
    IMAGE_SHAPE,
    N_CLASSES,
    generate_dataset,
    make_image,
    train_test_split,
)
from repro.cnn.train import PROXY_MODELS, TrainResult, build_proxy, evaluate_top_k, train
from repro.cnn.engine import (
    SconnaEngine,
    SconnaLayerPlan,
    compile_layer_plan,
    psum_group_size,
    sconna_matmul_reference,
    vector_path_supported,
)
from repro.cnn.inference import (
    AccuracyReport,
    QuantizedModel,
    evaluate_accuracy,
)

__all__ = [
    "ConvLayerShape",
    "ModelDescriptor",
    "fc_shape",
    "KernelSizeStats",
    "kernel_size_stats",
    "psum_workload",
    "vector_size_histogram",
    "EVALUATION_MODELS",
    "MODEL_BUILDERS",
    "TABLE2_MODELS",
    "build_model",
    "QuantParams",
    "calibrate_activation",
    "calibrate_weight",
    "dequantize",
    "quantization_error",
    "quantize",
    "Dataset",
    "IMAGE_SHAPE",
    "N_CLASSES",
    "generate_dataset",
    "make_image",
    "train_test_split",
    "PROXY_MODELS",
    "TrainResult",
    "build_proxy",
    "evaluate_top_k",
    "train",
    "SconnaEngine",
    "SconnaLayerPlan",
    "compile_layer_plan",
    "psum_group_size",
    "sconna_matmul_reference",
    "vector_path_supported",
    "AccuracyReport",
    "QuantizedModel",
    "evaluate_accuracy",
]
