"""NumPy CNN compute kernels (the PyTorch substitute).

Layout convention: activations are ``(C, H, W)`` (single image - the
paper evaluates batch size 1) or ``(B, C, H, W)`` batches; weights are
``(L, C/groups, K, K)``.

``conv2d`` uses im2col + matmul (the same VDP decomposition the
accelerators perform: each output point is a dot product between a
flattened kernel and a flattened input patch); ``conv2d_direct`` is the
slow nested-loop reference used only by the equivalence tests.
"""

from __future__ import annotations

import numpy as np


def _as_batch(x: np.ndarray) -> tuple[np.ndarray, bool]:
    if x.ndim == 3:
        return x[None], True
    if x.ndim == 4:
        return x, False
    raise ValueError(f"expected 3-D or 4-D input, got {x.ndim}-D")


def conv_output_hw(
    h: int, w: int, kernel: int, stride: int, padding: int
) -> tuple[int, int]:
    """Spatial output size of a convolution/pool window."""
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"window k={kernel} s={stride} p={padding} does not fit {h}x{w}"
        )
    return out_h, out_w


def im2col(
    x: np.ndarray,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Unfold ``(B, C, H, W)`` into ``(B, C*K*K, out_h*out_w)`` patches.

    Column ``j`` of the result is the flattened receptive field of output
    pixel ``j`` - exactly the decomposed input vector (DIV source) a VDPC
    consumes.

    ``out``, when given, must be a C-contiguous ``(B, C*K*K, P)`` array
    (batched shape, even for 3-D inputs); the patches are gathered
    straight into it - the quantized engine reuses one such buffer per
    layer shape instead of allocating a fresh copy every forward pass.
    A dtype mismatch is cast on the fly, fusing the gather and the cast.
    """
    xb, squeeze = _as_batch(x)
    b, c, h, w = xb.shape
    out_h, out_w = conv_output_hw(h, w, kernel, stride, padding)
    if padding:
        xb = np.pad(
            xb, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    s0, s1, s2, s3 = xb.strides
    windows = np.lib.stride_tricks.as_strided(
        xb,
        shape=(b, c, out_h, out_w, kernel, kernel),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    patches = windows.transpose(0, 1, 4, 5, 2, 3)
    shape = (b, c * kernel * kernel, out_h * out_w)
    if out is not None:
        if out.shape != shape or not out.flags.c_contiguous:
            raise ValueError(
                f"out must be C-contiguous with shape {shape}, "
                f"got {out.shape}"
            )
        np.copyto(
            out.reshape(b, c, kernel, kernel, out_h, out_w),
            patches,
            casting="unsafe",
        )
        cols = out
    else:
        cols = patches.reshape(shape)
    return cols[0] if squeeze else cols


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """2-D convolution via im2col.  Supports grouped/depthwise convs."""
    xb, squeeze = _as_batch(x)
    b, c, h, w = xb.shape
    l, c_per_group, k, k2 = weight.shape
    if k != k2:
        raise ValueError("only square kernels supported")
    if c % groups or l % groups:
        raise ValueError("channels must divide groups")
    if c_per_group != c // groups:
        raise ValueError(
            f"weight expects {c_per_group} channels/group, input has {c // groups}"
        )
    out_h, out_w = conv_output_hw(h, w, k, stride, padding)

    # np.matmul dispatches the (L, Q) x (B, Q, P) contraction to BLAS for
    # float inputs, unlike np.einsum's generic SIMD loop.
    if groups == 1:
        cols = im2col(xb, k, stride, padding)  # (B, C*K*K, P)
        out = np.matmul(weight.reshape(l, -1)[None], cols)
    else:
        cg, lg = c // groups, l // groups
        outs = []
        for g in range(groups):
            cols = im2col(xb[:, g * cg : (g + 1) * cg], k, stride, padding)
            wg = weight[g * lg : (g + 1) * lg].reshape(lg, -1)
            outs.append(np.matmul(wg[None], cols))
        out = np.concatenate(outs, axis=1)
    out = out.reshape(b, l, out_h, out_w)
    if bias is not None:
        out = out + bias.reshape(1, l, 1, 1)
    return out[0] if squeeze else out


def conv2d_direct(
    x: np.ndarray,
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Nested-loop reference convolution (tests only; groups=1)."""
    if x.ndim != 3:
        raise ValueError("reference conv takes a single (C,H,W) image")
    c, h, w = x.shape
    l, cw, k, _ = weight.shape
    if cw != c:
        raise ValueError("channel mismatch")
    out_h, out_w = conv_output_hw(h, w, k, stride, padding)
    xp = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((l, out_h, out_w), dtype=np.result_type(x, weight))
    for ll in range(l):
        for i in range(out_h):
            for j in range(out_w):
                patch = xp[:, i * stride : i * stride + k, j * stride : j * stride + k]
                out[ll, i, j] = np.sum(patch * weight[ll])
    return out


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0)


def max_pool2d(x: np.ndarray, kernel: int = 2, stride: int | None = None) -> np.ndarray:
    """Max pooling (no padding).

    Computed as an elementwise maximum over the ``K*K`` window-offset
    slices (each a strided view of shape ``(B, C, out_h, out_w)``) - for
    the small kernels CNNs use this is far faster than reducing a
    windowed view along a tiny trailing axis, where the ufunc reduce
    machinery pays its per-reduction overhead at every output pixel.
    """
    stride = stride or kernel
    xb, squeeze = _as_batch(x)
    out_h, out_w = conv_output_hw(xb.shape[2], xb.shape[3], kernel, stride, 0)
    out: np.ndarray | None = None
    for i in range(kernel):
        for j in range(kernel):
            window = xb[
                :,
                :,
                i : i + (out_h - 1) * stride + 1 : stride,
                j : j + (out_w - 1) * stride + 1 : stride,
            ]
            if out is None:
                out = window.copy()
            else:
                np.maximum(out, window, out=out)
    return out[0] if squeeze else out


def avg_pool2d(x: np.ndarray, kernel: int = 2, stride: int | None = None) -> np.ndarray:
    """Average pooling (no padding)."""
    stride = stride or kernel
    xb, squeeze = _as_batch(x)
    b, c, h, w = xb.shape
    out_h, out_w = conv_output_hw(h, w, kernel, stride, 0)
    s0, s1, s2, s3 = xb.strides
    windows = np.lib.stride_tricks.as_strided(
        xb,
        shape=(b, c, out_h, out_w, kernel, kernel),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    out = windows.mean(axis=(4, 5))
    return out[0] if squeeze else out


def global_avg_pool(x: np.ndarray) -> np.ndarray:
    """(B, C, H, W) -> (B, C) spatial mean (or (C,) for single image)."""
    xb, squeeze = _as_batch(x)
    out = xb.mean(axis=(2, 3))
    return out[0] if squeeze else out


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Fully-connected layer: ``x @ weight.T + bias``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    z = x - x.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def batchnorm_inference(
    x: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Inference-time batch norm over the channel axis of (B?,C,H,W)."""
    scale = gamma / np.sqrt(var + eps)
    shift = beta - mean * scale
    if x.ndim == 4:
        return x * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)
    if x.ndim == 3:
        return x * scale.reshape(-1, 1, 1) + shift.reshape(-1, 1, 1)
    raise ValueError("expected 3-D or 4-D input")


def channel_shuffle(x: np.ndarray, groups: int) -> np.ndarray:
    """ShuffleNet channel shuffle on (B?,C,H,W)."""
    xb, squeeze = _as_batch(x)
    b, c, h, w = xb.shape
    if c % groups:
        raise ValueError("channels must divide groups")
    out = (
        xb.reshape(b, groups, c // groups, h, w)
        .transpose(0, 2, 1, 3, 4)
        .reshape(b, c, h, w)
    )
    return out[0] if squeeze else out
