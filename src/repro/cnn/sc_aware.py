"""Stochastic-computing-aware fine-tuning (paper Section VI-D future work).

The paper notes that "SCONNA's accuracy drop can be improved by
performing stochastic computing aware training of the CNN models on
SCONNA".  This module implements that extension: quantization-aware
fine-tuning whose *forward* pass runs the exact count-domain SC datapath
(per-product floor, sign-split accumulation) while the *backward* pass
uses the straight-through estimator (gradients flow as if the layer were
the plain float convolution evaluated at the SC activations) - the
standard QAT recipe extended with SCONNA's floor semantics.

ADC noise is zero-mean, so it is not simulated during fine-tuning; the
systematic error the network learns to absorb is the floor bias
(~ -Q/2 counts per output), which is exactly the component a network
*can* compensate.
"""

from __future__ import annotations

import numpy as np

from repro.cnn.datasets import Dataset
from repro.cnn.micro import Conv2d, Linear, Sequential, softmax_cross_entropy
from repro.cnn.quantize import calibrate_activation, calibrate_weight, quantize
from repro.utils.rng import make_rng


def _sc_matmul_counts(
    cols: np.ndarray, w_q: np.ndarray, precision_bits: int
) -> np.ndarray:
    """Signed count-domain SC products summed over the contraction axis.

    ``cols``: (B, Q, P) unsigned int; ``w_q``: (L, Q) signed int.
    Returns float (B, L, P).
    """
    b, q, p = cols.shape
    l = w_q.shape[0]
    out = np.empty((b, l, p), dtype=np.float64)
    w_mag = np.abs(w_q)
    w_sign = np.sign(w_q)
    for li in range(l):
        prods = (cols * w_mag[li][None, :, None]) >> precision_bits
        out[:, li, :] = (prods * w_sign[li][None, :, None]).sum(axis=1)
    return out


class ScAwareConv2d(Conv2d):
    """Conv2d whose forward runs the SCONNA count-domain datapath.

    Each forward quantizes the (RELU-clipped) input and the current
    weights at ``precision_bits``, computes the floor-product VDP counts
    and dequantises them.  The im2col cache holds the *actual* (SC)
    inputs, so the inherited backward implements the straight-through
    estimator.
    """

    precision_bits: int = 8

    @classmethod
    def from_conv(cls, conv: Conv2d, precision_bits: int = 8) -> "ScAwareConv2d":
        obj = cls.__new__(cls)
        obj.weight = conv.weight  # shared: fine-tuning updates the original
        obj.grad_weight = conv.grad_weight
        obj.bias = conv.bias
        obj.grad_bias = conv.grad_bias
        obj.stride = conv.stride
        obj.padding = conv.padding
        obj._cache = None
        obj.precision_bits = precision_bits
        return obj

    def forward(self, x: np.ndarray) -> np.ndarray:
        from repro.cnn.functional import conv_output_hw, im2col

        l, c, k, _ = self.weight.shape
        act = calibrate_activation(x, self.precision_bits)
        wqp = calibrate_weight(self.weight, self.precision_bits)
        x_q = quantize(np.maximum(x, 0.0), act)
        w_q = quantize(self.weight, wqp).reshape(l, -1)

        cols_q = im2col(x_q, k, self.stride, self.padding)
        counts = _sc_matmul_counts(cols_q, w_q, self.precision_bits)
        scale = act.scale * wqp.scale * (1 << self.precision_bits)

        # STE cache: float im2col of the real input for the backward pass
        cols = im2col(x, k, self.stride, self.padding)
        self._cache = (x.shape, cols)

        b = x.shape[0]
        out_h, out_w = conv_output_hw(
            x.shape[2], x.shape[3], k, self.stride, self.padding
        )
        out = (counts * scale).reshape(b, l, out_h, out_w)
        if self.bias is not None:
            out = out + self.bias.reshape(1, l, 1, 1)
        return out


def make_sc_aware(model: Sequential, precision_bits: int = 8) -> Sequential:
    """Clone a trained network with SC-aware convolutions.

    Weights are *shared* with the original model, so fine-tuning the
    returned network updates the original's parameters in place (the
    usual QAT deployment flow: fine-tune, then re-quantize).  Linear
    layers are left float - the classifier's contribution to SC error is
    covered by its own quantization during deployment.
    """
    layers = []
    for layer in model.layers:
        if isinstance(layer, Conv2d) and not isinstance(layer, Linear):
            layers.append(ScAwareConv2d.from_conv(layer, precision_bits))
        else:
            layers.append(layer)
    return Sequential(*layers)


def sc_aware_finetune(
    model: Sequential,
    dataset: Dataset,
    epochs: int = 2,
    batch_size: int = 32,
    lr: float = 0.005,
    momentum: float = 0.9,
    precision_bits: int = 8,
    seed: int = 0,
) -> "list[float]":
    """Fine-tune ``model`` (in place) through the SC forward path.

    Returns the per-epoch mean losses.  A small learning rate is
    essential: the network only needs to nudge its weights to absorb the
    floor bias, not re-learn the task.
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    sc_model = make_sc_aware(model, precision_bits)
    rng = make_rng(seed)
    velocity = [np.zeros_like(p) for p, _ in sc_model.parameters()]
    losses = []
    for _ in range(epochs):
        total, batches = 0.0, 0
        for images, labels in dataset.batches(batch_size, rng=rng):
            sc_model.zero_grad()
            logits = sc_model.forward(images.astype(np.float64))
            loss, grad = softmax_cross_entropy(logits, labels)
            sc_model.backward(grad)
            for v, (p, g) in zip(velocity, sc_model.parameters()):
                v *= momentum
                v -= lr * g
                p += v
            total += loss
            batches += 1
        losses.append(total / max(batches, 1))
    return losses
