"""Trainable micro-framework: the layers, forward *and* backward.

The Table V accuracy study needs trained CNNs; with no framework
available offline we implement the necessary autograd by hand.  Layers
follow the classic design: each caches what its backward pass needs and
exposes ``forward(x)`` / ``backward(grad)``; :class:`Sequential` chains
them; parameters are ``(array, grad)`` pairs consumed by the SGD trainer
in :mod:`repro.cnn.train`.

Only the operations the proxy models need are implemented (conv via
im2col/col2im, ReLU, max-pool, flatten, linear, softmax cross-entropy) -
this is a deliberately small, well-tested kernel, not a general-purpose
autograd.
"""

from __future__ import annotations

import numpy as np

from repro.cnn.functional import conv_output_hw, im2col
from repro.utils.rng import make_rng


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`repro.cnn.functional.im2col` (scatter-add)."""
    b, c, h, w = x_shape
    out_h, out_w = conv_output_hw(h, w, kernel, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    xp = np.zeros((b, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(b, c, kernel, kernel, out_h, out_w)
    for ki in range(kernel):
        for kj in range(kernel):
            xp[
                :,
                :,
                ki : ki + out_h * stride : stride,
                kj : kj + out_w * stride : stride,
            ] += cols6[:, :, ki, kj]
    if padding:
        return xp[:, :, padding:-padding, padding:-padding]
    return xp


class Layer:
    """Base layer: stateless unless it has parameters."""

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def parameters(self) -> "list[tuple[np.ndarray, np.ndarray]]":
        return []


class Conv2d(Layer):
    """Convolution with He-initialised weights.

    ``bias=False`` by default: the paper's quantized datapath maps
    cleanly onto VDPs without per-channel offsets, and the proxy models
    train without them.  A per-output-channel bias can be enabled for
    networks that need it; the quantized inference engine applies it in
    every datapath (float, int8, sconna) after dequantisation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator | None = None,
        bias: bool = False,
    ) -> None:
        rng = make_rng(rng)
        fan_in = in_channels * kernel * kernel
        self.weight = rng.normal(
            0.0, np.sqrt(2.0 / fan_in), size=(out_channels, in_channels, kernel, kernel)
        ).astype(np.float64)
        self.grad_weight = np.zeros_like(self.weight)
        self.bias = np.zeros(out_channels, dtype=np.float64) if bias else None
        self.grad_bias = np.zeros_like(self.bias) if bias else None
        self.stride = stride
        self.padding = padding
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        l, c, k, _ = self.weight.shape
        cols = im2col(x, k, self.stride, self.padding)  # (B, CKK, P)
        out = np.matmul(self.weight.reshape(l, -1)[None], cols)
        if self.bias is not None:
            out = out + self.bias[None, :, None]
        b = x.shape[0]
        out_h, out_w = conv_output_hw(
            x.shape[2], x.shape[3], k, self.stride, self.padding
        )
        self._cache = (x.shape, cols)
        return out.reshape(b, l, out_h, out_w)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        x_shape, cols = self._cache
        l, c, k, _ = self.weight.shape
        b = grad.shape[0]
        g = grad.reshape(b, l, -1)  # (B, L, P)
        self.grad_weight += np.einsum("blp,bqp->lq", g, cols).reshape(
            self.weight.shape
        )
        if self.bias is not None:
            self.grad_bias += g.sum(axis=(0, 2))
        dcols = np.einsum("lq,blp->bqp", self.weight.reshape(l, -1), g)
        return col2im(dcols, x_shape, k, self.stride, self.padding)

    def parameters(self):
        params = [(self.weight, self.grad_weight)]
        if self.bias is not None:
            params.append((self.bias, self.grad_bias))
        return params


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward")
        return grad * self._mask


class MaxPool2d(Layer):
    def __init__(self, kernel: int = 2, stride: int | None = None) -> None:
        self.kernel = kernel
        self.stride = stride or kernel
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        b, c, h, w = x.shape
        k, s = self.kernel, self.stride
        out_h, out_w = conv_output_hw(h, w, k, s, 0)
        s0, s1, s2, s3 = x.strides
        win = np.lib.stride_tricks.as_strided(
            x,
            shape=(b, c, out_h, out_w, k, k),
            strides=(s0, s1, s2 * s, s3 * s, s2, s3),
            writeable=False,
        ).reshape(b, c, out_h, out_w, k * k)
        arg = win.argmax(axis=4)
        self._cache = (x.shape, arg)
        return np.take_along_axis(win, arg[..., None], axis=4)[..., 0]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        x_shape, arg = self._cache
        b, c, h, w = x_shape
        k, s = self.kernel, self.stride
        out_h, out_w = grad.shape[2], grad.shape[3]
        dx = np.zeros(x_shape, dtype=grad.dtype)
        ki, kj = np.divmod(arg, k)
        bi, ci, oi, oj = np.meshgrid(
            np.arange(b), np.arange(c), np.arange(out_h), np.arange(out_w),
            indexing="ij",
        )
        np.add.at(dx, (bi, ci, oi * s + ki, oj * s + kj), grad)
        return dx


class Flatten(Layer):
    def __init__(self) -> None:
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward before forward")
        return grad.reshape(self._shape)


class Linear(Layer):
    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = make_rng(rng)
        self.weight = rng.normal(
            0.0, np.sqrt(2.0 / in_features), size=(out_features, in_features)
        ).astype(np.float64)
        self.bias = np.zeros(out_features, dtype=np.float64)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight.T + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward before forward")
        self.grad_weight += grad.T @ self._x
        self.grad_bias += grad.sum(axis=0)
        return grad @ self.weight

    def parameters(self):
        return [(self.weight, self.grad_weight), (self.bias, self.grad_bias)]


class Sequential(Layer):
    def __init__(self, *layers: Layer) -> None:
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self):
        return [p for layer in self.layers for p in layer.parameters()]

    def zero_grad(self) -> None:
        for _, g in self.parameters():
            g[...] = 0.0


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean CE loss and its gradient wrt logits."""
    if logits.ndim != 2:
        raise ValueError("logits must be (batch, classes)")
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    p = e / e.sum(axis=1, keepdims=True)
    n = logits.shape[0]
    loss = float(-np.log(p[np.arange(n), labels] + 1e-12).mean())
    grad = p.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n
