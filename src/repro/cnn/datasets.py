"""Synthetic image-classification dataset (the ImageNet substitute).

The accuracy study (paper Table V) measures the *drop* in Top-1/Top-5
accuracy caused by SCONNA's stochastic pipeline relative to exact int-8
inference.  That quantity needs a classification task that trained CNNs
solve well but not trivially, which a procedural dataset provides
without any network access:

Ten classes of 3x24x24 images, each a parametric texture family
(oriented gratings at several frequencies, checkerboards, radial blobs,
corner gradients), perturbed with per-sample phase/position jitter,
amplitude variation and additive Gaussian noise.  Class information is
spread across many pixels - like natural images, robustness to small
per-VDP errors is high but not unlimited, so the SC error model produces
small, measurable accuracy drops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng

N_CLASSES = 10
IMAGE_SHAPE = (3, 24, 24)


def _grating(yy, xx, angle, freq, phase):
    t = np.cos(angle) * xx + np.sin(angle) * yy
    return 0.5 + 0.5 * np.sin(2 * np.pi * freq * t + phase)


def _checker(yy, xx, cells, phase):
    return (
        (np.floor(yy * cells + phase) + np.floor(xx * cells + phase)) % 2
    ).astype(float)


def _blob(yy, xx, cy, cx, sigma):
    return np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2))


def make_image(class_id: int, rng: np.random.Generator) -> np.ndarray:
    """One random sample of class ``class_id`` (float32 in [0, 1])."""
    if not (0 <= class_id < N_CLASSES):
        raise ValueError(f"class_id must be in [0, {N_CLASSES})")
    c, h, w = IMAGE_SHAPE
    yy, xx = np.meshgrid(
        np.linspace(0, 1, h), np.linspace(0, 1, w), indexing="ij"
    )
    phase = rng.uniform(0, 2 * np.pi)
    jitter = rng.uniform(-0.12, 0.12, size=2)

    # Class families are deliberately close (adjacent orientations and
    # frequencies, similar textures) and heavily jittered/noised so that
    # trained accuracy sits below 100 % and per-VDP errors have headroom
    # to show up as accuracy drops - mirroring the regime of Table V.
    if class_id < 4:  # gratings at four close orientations
        angle = class_id * np.pi / 7 + rng.uniform(-0.22, 0.22)
        base = _grating(yy, xx, angle, freq=3.2, phase=phase)
    elif class_id < 6:  # gratings at two nearby higher frequencies
        freq = 4.2 if class_id == 4 else 5.4
        angle = np.pi / 3 + rng.uniform(-0.25, 0.25)
        base = _grating(yy, xx, angle, freq, phase)
    elif class_id == 6:  # coarse checkerboard
        base = _checker(yy, xx, cells=4, phase=rng.uniform(0, 1))
    elif class_id == 7:  # fine checkerboard
        base = _checker(yy, xx, cells=5, phase=rng.uniform(0, 1))
    elif class_id == 8:  # off-centre blob of varying extent
        base = _blob(
            yy, xx, 0.5 + jitter[0], 0.5 + jitter[1],
            sigma=rng.uniform(0.12, 0.2),
        )
    else:  # corner gradient
        corner = rng.integers(0, 4)
        gx = xx if corner % 2 == 0 else 1 - xx
        gy = yy if corner < 2 else 1 - yy
        base = 0.5 * (gx + gy)

    amp = rng.uniform(0.35, 1.0)
    img = np.empty(IMAGE_SHAPE, dtype=np.float32)
    # three channels: texture, its complement, and a mixed channel -
    # gives convs colour-like structure to exploit
    img[0] = base
    img[1] = 1.0 - base
    img[2] = 0.5 * base + 0.25
    img *= amp
    img += rng.normal(0, 0.28, size=IMAGE_SHAPE).astype(np.float32)
    return np.clip(img, 0.0, 1.0).astype(np.float32)


@dataclass(frozen=True)
class Dataset:
    """Images ``(N, 3, 24, 24)`` float32 and integer labels ``(N,)``."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError("images/labels length mismatch")

    def __len__(self) -> int:
        return int(self.labels.shape[0])

    def batches(self, batch_size: int, rng: np.random.Generator | None = None):
        """Yield shuffled (images, labels) minibatches."""
        order = np.arange(len(self))
        if rng is not None:
            rng.shuffle(order)
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.images[idx], self.labels[idx]


def generate_dataset(
    n_per_class: int, seed: int | None = 0
) -> Dataset:
    """Balanced dataset with ``n_per_class`` samples of each class."""
    if n_per_class <= 0:
        raise ValueError("n_per_class must be positive")
    rng = make_rng(seed)
    images, labels = [], []
    for cls in range(N_CLASSES):
        for _ in range(n_per_class):
            images.append(make_image(cls, rng))
            labels.append(cls)
    order = rng.permutation(len(labels))
    return Dataset(
        images=np.stack(images)[order],
        labels=np.asarray(labels, dtype=np.int64)[order],
    )


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.25, seed: int | None = 1
) -> tuple[Dataset, Dataset]:
    if not (0.0 < test_fraction < 1.0):
        raise ValueError("test_fraction must be in (0, 1)")
    rng = make_rng(seed)
    order = rng.permutation(len(dataset))
    n_test = int(len(dataset) * test_fraction)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return (
        Dataset(dataset.images[train_idx], dataset.labels[train_idx]),
        Dataset(dataset.images[test_idx], dataset.labels[test_idx]),
    )
