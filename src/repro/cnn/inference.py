"""Quantized inference engines: float, exact int-8, and SCONNA.

``QuantizedModel.from_trained`` takes a trained float network and a
calibration batch and produces a post-training-quantized model that can
run in three modes:

* ``float``  - the original network (reference accuracy),
* ``int8``   - exact integer arithmetic (``sum(i_q * w_q)`` then
  dequantise): the accuracy an ideal 8-bit accelerator achieves,
* ``sconna`` - the stochastic pipeline: every product is the count-
  domain OSM result ``floor(i_q * |w_q| / 2**B)`` sign-steered into
  positive/negative PCA accumulations, grouped into electrical psums by
  the multi-pass accumulation rule, each psum perturbed by the 1.3 %
  MAPE ADC error model, then dequantised with the extra ``2**B`` scale.

Table V is the Top-1/Top-5 gap between ``int8`` and ``sconna``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cnn.engine import (
    SconnaEngine,
    SconnaLayerPlan,
    compile_layer_plan,
    psum_group_size,
    sconna_matmul_reference,
    vector_path_supported,
)
from repro.cnn.functional import conv2d, conv_output_hw, im2col, linear, max_pool2d
from repro.cnn.micro import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.cnn.quantize import (
    QuantParams,
    calibrate_activation,
    calibrate_weight,
    quantize,
)
from repro.core.config import SconnaConfig
from repro.stochastic.error_models import SconnaErrorModel

Mode = str  # "float" | "int8" | "sconna"


@dataclass
class QuantLayer:
    """One quantized compute layer (conv or linear)."""

    kind: str                     #: "conv" or "linear"
    weight_q: np.ndarray          #: signed integer weights
    weight_params: QuantParams
    act_params: QuantParams
    float_layer: Conv2d | Linear
    stride: int = 1
    padding: int = 0
    bias: np.ndarray | None = None
    plan: SconnaLayerPlan | None = None  #: compiled engine constants


class QuantizedModel:
    """Post-training-quantized view of a trained Sequential network."""

    def __init__(
        self,
        structure: "list[object]",
        precision_bits: int = 8,
        config: SconnaConfig | None = None,
    ) -> None:
        self.structure = structure
        self.precision_bits = precision_bits
        self.config = config or SconnaConfig(precision_bits=precision_bits)
        self._engine = SconnaEngine()
        self._plan_lock = threading.Lock()
        #: persisted per-stage kernel-variant choices (see
        #: :mod:`repro.cnn.graph_plan`); saved in the NPZ meta and the
        #: registry manifest so a served model loads pre-tuned
        self.autotune: "dict[str, dict]" = {}
        self._network_plan: "object | None" = None
        for item in structure:
            if isinstance(item, QuantLayer):
                self._plan_for(item)

    # A model must survive a trip into a fresh worker process (the
    # multi-process serving backend, multiprocessing sweeps): the plan
    # arrays and weights pickle as data, while the lock - process-local
    # by nature - is recreated on the other side.  The engine's own
    # __getstate__ drops its thread-local buffers, so the copy warms up
    # from scratch exactly like a newly loaded model.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_plan_lock"]
        # the network plan holds locks and cached shape programs; it is
        # rebuilt (and re-reads the persisted autotune choices) on first
        # fused forward in the new process
        state["_network_plan"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._plan_lock = threading.Lock()
        # models pickled by older revisions predate these fields
        self.__dict__.setdefault("autotune", {})
        self.__dict__.setdefault("_network_plan", None)

    @property
    def network_plan(self) -> "object":
        """The graph-level compiled plan (built lazily; see
        :class:`repro.cnn.graph_plan.NetworkPlan`)."""
        plan = self._network_plan
        if plan is None:
            with self._plan_lock:
                plan = self._network_plan
                if plan is None:
                    from repro.cnn.graph_plan import NetworkPlan

                    plan = NetworkPlan(self)
                    self._network_plan = plan
        return plan

    # -- construction ------------------------------------------------------
    @classmethod
    def from_trained(
        cls,
        model: Sequential,
        calibration_images: np.ndarray,
        precision_bits: int = 8,
        config: SconnaConfig | None = None,
    ) -> "QuantizedModel":
        """Calibrate activation scales layer by layer on real data."""
        structure: list[object] = []
        x = calibration_images.astype(np.float64)
        for layer in model.layers:
            if isinstance(layer, Conv2d):
                act = calibrate_activation(x, precision_bits)
                wq_params = calibrate_weight(layer.weight, precision_bits)
                structure.append(
                    QuantLayer(
                        kind="conv",
                        weight_q=quantize(layer.weight, wq_params),
                        weight_params=wq_params,
                        act_params=act,
                        float_layer=layer,
                        stride=layer.stride,
                        padding=layer.padding,
                        bias=None if layer.bias is None else layer.bias.copy(),
                    )
                )
            elif isinstance(layer, Linear):
                act = calibrate_activation(x, precision_bits)
                wq_params = calibrate_weight(layer.weight, precision_bits)
                structure.append(
                    QuantLayer(
                        kind="linear",
                        weight_q=quantize(layer.weight, wq_params),
                        weight_params=wq_params,
                        act_params=act,
                        float_layer=layer,
                        bias=layer.bias.copy(),
                    )
                )
            else:
                structure.append(layer)
            x = layer.forward(x)
        return cls(structure, precision_bits, config)

    # -- persistence -------------------------------------------------------
    def save(self, path: "str | object") -> "object":
        """Serialize to a compressed NPZ archive (see
        :mod:`repro.cnn.serialization`); returns the written path."""
        from repro.cnn.serialization import save_quantized_model

        return save_quantized_model(self, path)

    @classmethod
    def load(cls, path: "str | object") -> "QuantizedModel":
        """Rebuild a saved model; layer plans are recompiled eagerly."""
        from repro.cnn.serialization import load_quantized_model

        return load_quantized_model(path)

    # -- execution ---------------------------------------------------------
    def forward(
        self,
        images: np.ndarray,
        mode: Mode = "int8",
        error_model: SconnaErrorModel | None = None,
        *,
        fused: "bool | None" = None,
        trace: "list | None" = None,
        profile: "list | None" = None,
    ) -> np.ndarray:
        """Run a batch through the selected datapath; returns logits.

        ``fused`` selects the execution strategy: ``None`` (default)
        uses the whole-network fused plan when this model/mode/shape
        supports it and falls back to the per-layer reference path
        otherwise; ``False`` forces the reference path; ``True`` demands
        the fused path and raises if it cannot run.  Both paths return
        bit-identical logits.  ``trace``, when a list, collects the
        fused path's dtype checkpoints at the inter-layer seams.
        ``profile``, when a list, collects ``(name, start_s, end_s,
        tags)`` per-stage timing tuples (quantize / im2col / matmul /
        requantize on the fused path, coarse per-layer timings on the
        reference path) without perturbing the arithmetic.
        """
        if mode not in ("float", "int8", "sconna"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "sconna" and error_model is None:
            error_model = SconnaErrorModel(seed=0)
        if fused is not False and mode in ("int8", "sconna"):
            out = self.network_plan.try_execute(
                images, mode, error_model, trace=trace, profile=profile
            )
            if out is not None:
                return out
            if fused is True:
                raise ValueError(
                    "fused execution is unsupported for this "
                    "model/mode/input-shape combination"
                )
        x = images.astype(np.float64)
        # the trainable layers' forwards cache backward-pass state on
        # shared instances; inference dispatches to the stateless
        # functional kernels instead, so concurrent forward passes into
        # one model (the serving worker pool) never share mutable state
        for i, item in enumerate(self.structure):
            t0 = time.monotonic() if profile is not None else 0.0
            if isinstance(item, QuantLayer):
                x = self._run_quant_layer(item, x, mode, error_model)
            elif isinstance(item, MaxPool2d):
                x = max_pool2d(x, item.kernel, item.stride)
            elif isinstance(item, ReLU):
                x = np.maximum(x, 0.0)
            elif isinstance(item, Flatten):
                x = x.reshape(x.shape[0], -1)
            else:
                x = item.forward(x)
            if profile is not None:
                profile.append(("layer", t0, time.monotonic(),
                                {"index": i,
                                 "op": type(item).__name__}))
        return x

    def _run_quant_layer(
        self,
        layer: QuantLayer,
        x: np.ndarray,
        mode: Mode,
        error_model: SconnaErrorModel | None,
    ) -> np.ndarray:
        if mode == "float":
            # stateless equivalents of the trainable forwards (bit-equal:
            # same im2col/matmul/bias order), again so a shared model
            # serves concurrent float-mode requests safely
            fl = layer.float_layer
            if layer.kind == "conv":
                return conv2d(
                    x, fl.weight, stride=layer.stride,
                    padding=layer.padding, bias=fl.bias,
                )
            return linear(x, fl.weight, fl.bias)

        scale = layer.act_params.scale * layer.weight_params.scale
        pool = self._engine.pool

        if layer.kind == "conv":
            l, c, k, _ = layer.weight_q.shape
            b = x.shape[0]
            out_h, out_w = conv_output_hw(
                x.shape[2], x.shape[3], k, layer.stride, layer.padding
            )
            q_len, p = c * k * k, out_h * out_w
            if mode == "int8":
                # the BLAS path is exact only while the full-Q integer
                # contraction stays below float64's 2**53 exact range
                # (independent of the sconna engine's group envelope)
                if q_len * (1 << (2 * self.precision_bits)) < 2**53:
                    # fused quantization: the integer activation grid is
                    # built in-place in a float64 workspace (values are
                    # exact small integers), skipping quantize()'s int64
                    # intermediate, and gathered straight into the
                    # matmul's reusable column buffer
                    aq_f = pool.get("aq_f", x.shape, np.float64)
                    np.maximum(x, 0.0, out=aq_f)
                    aq_f /= layer.act_params.scale
                    np.rint(aq_f, out=aq_f)
                    np.clip(aq_f, 0.0, float(layer.act_params.levels), out=aq_f)
                    cols_f = im2col(
                        aq_f, k, layer.stride, layer.padding,
                        out=pool.get("cols_f", (b, q_len, p), np.float64),
                    )
                    w_f = (
                        layer.plan.w_float
                        if layer.plan is not None
                        else layer.weight_q.reshape(l, -1).astype(np.float64)
                    )
                    mm = np.matmul(
                        w_f[None], cols_f,
                        out=pool.get("mm", (b, l, p), np.float64),
                    )
                    out = mm * scale
                else:
                    # keep the seed's exact integer contraction
                    a_q = quantize(np.maximum(x, 0.0), layer.act_params)
                    cols = im2col(a_q, k, layer.stride, layer.padding)
                    w_flat = layer.weight_q.reshape(l, -1)
                    out = np.einsum("lq,bqp->blp", w_flat, cols) * scale
            else:
                a_q = quantize(np.maximum(x, 0.0), layer.act_params)
                plan = self._plan_for(layer)
                cols = im2col(
                    a_q, k, layer.stride, layer.padding,
                    out=pool.get("cols", (b, q_len, p), np.int64),
                )
                counts = self._sconna_counts(cols, layer, plan, error_model)
                out = counts * (scale * (1 << self.precision_bits))
            out = out.reshape(b, l, out_h, out_w)
            if layer.bias is not None:
                out = out + layer.bias.reshape(1, l, 1, 1)
            return out

        # linear: treat activations as (B, Q, 1) columns
        a_q = quantize(np.maximum(x, 0.0), layer.act_params)
        if mode == "int8":
            out = (a_q @ layer.weight_q.T).astype(np.float64) * scale
        else:
            cols = a_q[:, :, None]
            plan = self._plan_for(layer)
            counts = self._sconna_counts(cols, layer, plan, error_model)
            out = counts[:, :, 0] * (scale * (1 << self.precision_bits))
        if layer.bias is not None:
            out = out + layer.bias
        return out

    # -- count-domain kernels ----------------------------------------------
    def _plan_for(self, layer: QuantLayer) -> SconnaLayerPlan | None:
        """The layer's compiled engine plan (built on first use).

        Returns None when the configuration falls outside the vectorized
        engine's exactness envelope; callers then take the reference
        path.  Compilation is serialized behind a lock so concurrent
        first requests into a shared model cannot race on ``layer.plan``
        (plans are normally compiled eagerly at construction, but a
        config/precision change re-triggers the lazy path).
        """
        group = psum_group_size(self.config)
        if not vector_path_supported(self.precision_bits, group):
            return None

        def stale(p: SconnaLayerPlan | None) -> bool:
            return (
                p is None
                or p.group != group
                or p.precision_bits != self.precision_bits
            )

        plan = layer.plan
        if stale(plan):
            with self._plan_lock:
                plan = layer.plan  # double-checked: another thread may have won
                if stale(plan):
                    l = layer.weight_q.shape[0]
                    plan = compile_layer_plan(
                        layer.weight_q.reshape(l, -1), self.precision_bits, group
                    )
                    layer.plan = plan
        return plan

    def _sconna_counts(
        self,
        cols: np.ndarray,
        layer: QuantLayer,
        plan: SconnaLayerPlan | None,
        error_model: SconnaErrorModel | None,
    ) -> np.ndarray:
        l = layer.weight_q.shape[0]
        if plan is not None:
            return self._engine.matmul(plan, cols, error_model)
        return self._sconna_matmul_reference(
            cols, layer.weight_q.reshape(l, -1), error_model
        )

    def _sconna_matmul_reference(
        self,
        cols: np.ndarray,
        w_flat: np.ndarray,
        error_model: SconnaErrorModel | None,
    ) -> np.ndarray:
        """The seed per-output-channel implementation (golden reference)."""
        return sconna_matmul_reference(
            cols,
            w_flat,
            self.precision_bits,
            psum_group_size(self.config),
            error_model,
        )

    # -- evaluation ----------------------------------------------------------
    def predict_logits(
        self,
        images: np.ndarray,
        mode: Mode = "int8",
        error_model: SconnaErrorModel | None = None,
        batch_size: int = 50,
        *,
        fused: "bool | None" = None,
    ) -> np.ndarray:
        """Batched forward pass returning all logits."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        outs = []
        for start in range(0, images.shape[0], batch_size):
            outs.append(
                self.forward(
                    images[start : start + batch_size],
                    mode=mode,
                    error_model=error_model,
                    fused=fused,
                )
            )
        return np.concatenate(outs, axis=0)

    @staticmethod
    def count_top_k(
        logits: np.ndarray, labels: np.ndarray, ks: "tuple[int, ...]"
    ) -> "dict[int, int]":
        """Correct-prediction counts for several k at once (one argsort).

        The single scoring rule behind :meth:`top_k_from_logits`,
        :meth:`top_k_accuracy` and :func:`evaluate_accuracy` - streamed
        evaluation accumulates these per-batch counts.
        """
        order = np.argsort(logits, axis=1)[:, -max(ks):]
        return {
            k: int((order[:, -k:] == labels[:, None]).any(axis=1).sum())
            for k in ks
        }

    @staticmethod
    def top_k_from_logits(logits: np.ndarray, labels: np.ndarray, k: int) -> float:
        counts = QuantizedModel.count_top_k(logits, labels, (k,))
        return counts[k] / max(labels.shape[0], 1)

    def top_k_accuracy(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        k: int = 1,
        mode: Mode = "int8",
        error_model: SconnaErrorModel | None = None,
        batch_size: int = 50,
    ) -> float:
        if images.shape[0] != labels.shape[0]:
            raise ValueError("images/labels length mismatch")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        # streamed: per-batch correct counts, never the full logit matrix
        correct = 0
        for start in range(0, images.shape[0], batch_size):
            logits = self.forward(
                images[start : start + batch_size],
                mode=mode,
                error_model=error_model,
            )
            lab = labels[start : start + batch_size]
            correct += self.count_top_k(logits, lab, (k,))[k]
        return correct / max(images.shape[0], 1)


@dataclass(frozen=True)
class AccuracyReport:
    """Accuracy of one model across the three datapaths."""

    model_name: str
    top1_float: float
    top1_int8: float
    top1_sconna: float
    top5_float: float
    top5_int8: float
    top5_sconna: float

    @property
    def top1_drop_percent(self) -> float:
        """Table V metric: int8 -> SCONNA Top-1 drop in % points."""
        return (self.top1_int8 - self.top1_sconna) * 100.0

    @property
    def top5_drop_percent(self) -> float:
        return (self.top5_int8 - self.top5_sconna) * 100.0


def evaluate_accuracy(
    model_name: str,
    qmodel: QuantizedModel,
    images: np.ndarray,
    labels: np.ndarray,
    error_model: SconnaErrorModel | None = None,
    batch_size: int = 50,
) -> AccuracyReport:
    """Measure float / int8 / SCONNA Top-1 and Top-5 on a test set.

    Streams the test set in ``batch_size`` chunks and accumulates
    correct-prediction counts, so peak memory is one batch of logits per
    datapath rather than the full ``(N, classes)`` logit matrix - the
    difference between "fits" and "does not" on ImageNet-scale sets.
    """
    if images.shape[0] != labels.shape[0]:
        raise ValueError("images/labels length mismatch")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    error_model = error_model or SconnaErrorModel(seed=0)
    n = images.shape[0]
    correct = {(mode, k): 0 for mode in ("float", "int8", "sconna") for k in (1, 5)}
    for start in range(0, n, batch_size):
        img = images[start : start + batch_size]
        lab = labels[start : start + batch_size]
        for mode in ("float", "int8", "sconna"):
            em = error_model if mode == "sconna" else None
            logits = qmodel.forward(img, mode=mode, error_model=em)
            counts = qmodel.count_top_k(logits, lab, (1, 5))
            correct[(mode, 1)] += counts[1]
            correct[(mode, 5)] += counts[5]
    out = {key: count / max(n, 1) for key, count in correct.items()}
    return AccuracyReport(
        model_name=model_name,
        top1_float=out[("float", 1)],
        top1_int8=out[("int8", 1)],
        top1_sconna=out[("sconna", 1)],
        top5_float=out[("float", 5)],
        top5_int8=out[("int8", 5)],
        top5_sconna=out[("sconna", 5)],
    )
