"""Optional native (C) acceleration for the hottest SC kernel.

The vectorized count-domain engine (:mod:`repro.cnn.engine`) reduces the
SCONNA matmul to one BLAS call plus a *remainder reduction*:
``R[b, l, p] = sum_q ((a[b, q, p] * w[l, q]) mod 2**B)``.  NumPy has no
fused modular multiply-accumulate, so the pure-NumPy path must
materialise the ``(B, L, Q, P)`` remainder tensor in chunks and pay a
slow widening ``uint8 -> uint32`` reduction.  A ~40-line C loop does the
same thing fused, in registers, at memory speed.

This module compiles that loop **at runtime** with the system C compiler
(``cc``), caches the shared object in the platform temp directory keyed
by a hash of the source, and loads it through :mod:`ctypes`.  Everything
is best-effort: if there is no compiler, the build fails, or the
environment variable ``REPRO_NATIVE=0`` is set, callers transparently
fall back to the pure-NumPy implementation - results are bit-identical
either way (locked by ``tests/test_cnn_engine.py``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import stat
import subprocess
import tempfile

import numpy as np

_SOURCE = r"""
#include <stdint.h>
#include <stddef.h>

static inline uint32_t row_dot_wrap(const uint8_t *restrict ar,
                                    const uint8_t *restrict wr, long q) {
    uint32_t acc = 0;
    long qi = 0;
    for (; qi + 255 <= q; qi += 255) {
        uint16_t part = 0;
        const uint8_t *restrict a2 = ar + qi;
        const uint8_t *restrict w2 = wr + qi;
        for (long k = 0; k < 255; k++)
            part += (uint8_t)(a2[k] * w2[k]);
        acc += part;
    }
    {
        uint16_t part = 0;
        for (; qi < q; qi++)
            part += (uint8_t)(ar[qi] * wr[qi]);
        acc += part;
    }
    return acc;
}

static inline uint32_t row_dot_mask(const uint8_t *restrict ar,
                                    const uint8_t *restrict wr, long q,
                                    uint8_t mask) {
    uint32_t acc = 0;
    long qi = 0;
    for (; qi + 255 <= q; qi += 255) {
        uint16_t part = 0;
        const uint8_t *restrict a2 = ar + qi;
        const uint8_t *restrict w2 = wr + qi;
        for (long k = 0; k < 255; k++)
            part += (uint8_t)((uint8_t)(a2[k] * w2[k]) & mask);
        acc += part;
    }
    {
        uint16_t part = 0;
        for (; qi < q; qi++)
            part += (uint8_t)((uint8_t)(ar[qi] * wr[qi]) & mask);
        acc += part;
    }
    return acc;
}

/* a: rows of length q at byte stride a_stride, laid out as (bn, p) rows;
   w: (l2, q) rows at byte stride w_stride; out: (bn, l2, p) int32. */
void rem_group_sums(const uint8_t *restrict a, long a_stride,
                    const uint8_t *restrict w, long w_stride,
                    int32_t *restrict out,
                    long bn, long l2, long p, long q, uint8_t mask) {
    for (long bi = 0; bi < bn; bi++) {
        const uint8_t *ab = a + (size_t)bi * p * a_stride;
        for (long li = 0; li < l2; li++) {
            const uint8_t *wr = w + (size_t)li * w_stride;
            int32_t *orow = out + ((size_t)bi * l2 + li) * p;
            if (mask == 0xFF) {
                for (long pi = 0; pi < p; pi++)
                    orow[pi] =
                        (int32_t)row_dot_wrap(ab + (size_t)pi * a_stride, wr, q);
            } else {
                for (long pi = 0; pi < p; pi++)
                    orow[pi] = (int32_t)row_dot_mask(
                        ab + (size_t)pi * a_stride, wr, q, mask);
            }
        }
    }
}

/* Sign-split single-pass variant: one multiply per (weight, activation)
   pair instead of two.  w_mag holds the |w| low bits for all L rows,
   w_sgn is 0xFF where w > 0 and 0x00 elsewhere; each wrapped product is
   steered into the positive or negative accumulation with a byte mask
   (w == 0 rows have w_mag == 0, so both sides receive 0).  out is the
   same (bn, 2l, p) int32 layout rem_group_sums fills from the stacked
   (2l, q) weights: rows [0, l) positive sums, rows [l, 2l) negative. */
void rem_group_sums_split(const uint8_t *restrict a, long a_stride,
                          const uint8_t *restrict w_mag,
                          const uint8_t *restrict w_sgn, long w_stride,
                          int32_t *restrict out,
                          long bn, long l, long p, long q, uint8_t mask) {
    for (long bi = 0; bi < bn; bi++) {
        const uint8_t *ab = a + (size_t)bi * p * a_stride;
        for (long li = 0; li < l; li++) {
            const uint8_t *wr = w_mag + (size_t)li * w_stride;
            const uint8_t *sr = w_sgn + (size_t)li * w_stride;
            int32_t *opos = out + ((size_t)bi * 2 * l + li) * p;
            int32_t *oneg = out + ((size_t)bi * 2 * l + l + li) * p;
            for (long pi = 0; pi < p; pi++) {
                const uint8_t *ar = ab + (size_t)pi * a_stride;
                uint32_t accp = 0, accn = 0;
                long qi = 0;
                for (; qi + 255 <= q; qi += 255) {
                    uint16_t pp = 0, pn = 0;
                    const uint8_t *restrict a2 = ar + qi;
                    const uint8_t *restrict w2 = wr + qi;
                    const uint8_t *restrict s2 = sr + qi;
                    for (long k = 0; k < 255; k++) {
                        uint8_t m = (uint8_t)((uint8_t)(a2[k] * w2[k]) & mask);
                        pp += (uint8_t)(m & s2[k]);
                        pn += (uint8_t)(m & (uint8_t)~s2[k]);
                    }
                    accp += pp;
                    accn += pn;
                }
                {
                    uint16_t pp = 0, pn = 0;
                    for (; qi < q; qi++) {
                        uint8_t m = (uint8_t)((uint8_t)(ar[qi] * wr[qi]) & mask);
                        pp += (uint8_t)(m & sr[qi]);
                        pn += (uint8_t)(m & (uint8_t)~sr[qi]);
                    }
                    accp += pp;
                    accn += pn;
                }
                opos[pi] = (int32_t)accp;
                oneg[pi] = (int32_t)accn;
            }
        }
    }
}

/* Column-layout variant for conv shapes (small Q, large P): a stays in
   the engine's (bn, q, p) cols layout and the inner loop runs over the
   contiguous P axis, so the compiler vectorises across output pixels
   instead of across a 20-odd-element contraction row.  Weights with
   zero low bits (w == 0, or |w| == 2**8 whose products are exact
   multiples of 256) contribute nothing to the remainder and are skipped
   outright.  Fills the same (bn, 2l, p) int32 layout as
   rem_group_sums. */
void rem_group_sums_cols(const uint8_t *restrict a, long a_q_stride,
                         long a_b_stride,
                         const uint8_t *restrict w_mag,
                         const uint8_t *restrict w_sgn, long w_stride,
                         int32_t *restrict out,
                         long bn, long l, long p, long q, uint8_t mask) {
    for (long bi = 0; bi < bn; bi++) {
        const uint8_t *ab = a + (size_t)bi * a_b_stride;
        for (long li = 0; li < l; li++) {
            const uint8_t *wr = w_mag + (size_t)li * w_stride;
            const uint8_t *sr = w_sgn + (size_t)li * w_stride;
            int32_t *opos = out + ((size_t)bi * 2 * l + li) * p;
            int32_t *oneg = out + ((size_t)bi * 2 * l + l + li) * p;
            for (long pi = 0; pi < p; pi++) {
                opos[pi] = 0;
                oneg[pi] = 0;
            }
            for (long qi = 0; qi < q; qi++) {
                uint8_t wv = wr[qi];
                if (wv == 0)
                    continue;
                const uint8_t *restrict ar = ab + (size_t)qi * a_q_stride;
                int32_t *restrict acc = sr[qi] ? opos : oneg;
                if (mask == 0xFF) {
                    for (long pi = 0; pi < p; pi++)
                        acc[pi] += (uint8_t)(ar[pi] * wv);
                } else {
                    for (long pi = 0; pi < p; pi++)
                        acc[pi] += (uint8_t)((uint8_t)(ar[pi] * wv) & mask);
                }
            }
        }
    }
}
"""

#: sentinel distinguishing "never tried" from "tried and failed"
_UNSET = object()
_lib: "object" = _UNSET


def _enabled() -> bool:
    return os.environ.get("REPRO_NATIVE", "1") != "0"


def _cache_dir() -> "str | None":
    """Per-user 0700 cache directory; None if it cannot be trusted.

    The .so is loaded into the process, so it must never be readable
    from a world-writable location another user could pre-seed: the
    directory is created mode 0700 and its ownership/permissions are
    re-checked before use.
    """
    path = os.path.join(tempfile.gettempdir(), f"repro_native_{os.getuid()}")
    os.makedirs(path, mode=0o700, exist_ok=True)
    st = os.stat(path)
    if st.st_uid != os.getuid() or (stat.S_IMODE(st.st_mode) & 0o077):
        return None
    return path


def _compile() -> "ctypes.CDLL | None":
    """Build (or reuse) the cached shared object; None on any failure."""
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache_root = _cache_dir()
    if cache_root is None:
        return None
    cache = os.path.join(cache_root, f"rem_{digest}.so")
    if not os.path.exists(cache):
        workdir = tempfile.mkdtemp(prefix="repro_native_build_")
        try:
            src = os.path.join(workdir, "rem.c")
            tmp_so = os.path.join(workdir, "rem.so")
            with open(src, "w") as fh:
                fh.write(_SOURCE)
            base = [
                "cc", "-O3", "-funroll-loops", "-shared", "-fPIC", src, "-o", tmp_so
            ]
            for flags in (["-march=native"], []):  # retry portably if -march fails
                cmd = base[:2] + flags + base[2:]
                try:
                    res = subprocess.run(
                        cmd, capture_output=True, timeout=120, check=False
                    )
                except (OSError, subprocess.SubprocessError):
                    return None
                if res.returncode == 0:
                    break
            else:
                return None
            os.replace(tmp_so, cache)  # atomic publish
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    try:
        lib = ctypes.CDLL(cache)
    except OSError:
        return None
    lib.rem_group_sums.argtypes = [
        ctypes.c_void_p, ctypes.c_long,
        ctypes.c_void_p, ctypes.c_long,
        ctypes.c_void_p,
        ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_long,
        ctypes.c_uint8,
    ]
    lib.rem_group_sums.restype = None
    lib.rem_group_sums_split.argtypes = [
        ctypes.c_void_p, ctypes.c_long,
        ctypes.c_void_p,
        ctypes.c_void_p, ctypes.c_long,
        ctypes.c_void_p,
        ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_long,
        ctypes.c_uint8,
    ]
    lib.rem_group_sums_split.restype = None
    lib.rem_group_sums_cols.argtypes = [
        ctypes.c_void_p, ctypes.c_long, ctypes.c_long,
        ctypes.c_void_p,
        ctypes.c_void_p, ctypes.c_long,
        ctypes.c_void_p,
        ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_long,
        ctypes.c_uint8,
    ]
    lib.rem_group_sums_cols.restype = None
    return lib


def get_kernel() -> "ctypes.CDLL | None":
    """The loaded native library, or None when unavailable/disabled."""
    global _lib
    if not _enabled():
        return None
    if _lib is _UNSET:
        try:
            _lib = _compile()
        except Exception:  # any build-environment failure -> pure NumPy
            _lib = None
    return _lib  # type: ignore[return-value]


def native_available() -> bool:
    return get_kernel() is not None


def remainder_group_sums(
    a_lo: np.ndarray,
    w_lo: np.ndarray,
    q_start: int,
    q_stop: int,
    mask: int,
    out: np.ndarray,
) -> bool:
    """Fused ``out[b,l,p] = sum_q (a_lo[b,p,q]*w_lo[l,q]) & mask``.

    ``a_lo``: C-contiguous ``(B, P, Q)`` uint8; ``w_lo``: C-contiguous
    ``(L2, Q)`` uint8; the contraction runs over ``q_start:q_stop``;
    ``out``: C-contiguous ``(B, L2, P)`` int32.  Returns False (without
    touching ``out``) when the native kernel is unavailable.
    """
    lib = get_kernel()
    if lib is None:
        return False
    bn, p, q_total = a_lo.shape
    l2 = w_lo.shape[0]
    qg = q_stop - q_start
    lib.rem_group_sums(
        a_lo.ctypes.data + q_start, q_total,
        w_lo.ctypes.data + q_start, w_lo.shape[1],
        out.ctypes.data,
        bn, l2, p, qg, mask,
    )
    return True


def remainder_group_sums_split(
    a_lo: np.ndarray,
    w_mag_lo: np.ndarray,
    w_pos_mask: np.ndarray,
    q_start: int,
    q_stop: int,
    mask: int,
    out: np.ndarray,
) -> bool:
    """Sign-split remainder reduction: one multiply per (w, a) pair.

    ``w_mag_lo``: C-contiguous ``(L, Q)`` uint8 low bits of ``|w|``;
    ``w_pos_mask``: C-contiguous ``(L, Q)`` uint8, 0xFF where ``w > 0``.
    Fills the same ``(B, 2L, P)`` int32 ``out`` layout as
    :func:`remainder_group_sums` called with the stacked weights -
    positive-row sums in ``out[:, :L]``, negative in ``out[:, L:]``.
    Returns False (without touching ``out``) when unavailable.
    """
    lib = get_kernel()
    if lib is None:
        return False
    bn, p, q_total = a_lo.shape
    l = w_mag_lo.shape[0]
    qg = q_stop - q_start
    lib.rem_group_sums_split(
        a_lo.ctypes.data + q_start, q_total,
        w_mag_lo.ctypes.data + q_start,
        w_pos_mask.ctypes.data + q_start, w_mag_lo.shape[1],
        out.ctypes.data,
        bn, l, p, qg, mask,
    )
    return True


def remainder_group_sums_cols(
    a_lo_cols: np.ndarray,
    w_mag_lo: np.ndarray,
    w_pos_mask: np.ndarray,
    q_start: int,
    q_stop: int,
    mask: int,
    out: np.ndarray,
) -> bool:
    """Column-layout remainder reduction, vectorised over output pixels.

    ``a_lo_cols``: C-contiguous ``(B, Q, P)`` uint8 masked low bits in
    the engine's cols layout (no transpose needed); ``w_mag_lo`` /
    ``w_pos_mask`` as in :func:`remainder_group_sums_split`.  Fills the
    ``(B, 2L, P)`` int32 ``out``.  Returns False when unavailable.
    """
    lib = get_kernel()
    if lib is None:
        return False
    bn, q_total, p = a_lo_cols.shape
    l = w_mag_lo.shape[0]
    qg = q_stop - q_start
    lib.rem_group_sums_cols(
        a_lo_cols.ctypes.data + q_start * p, p, q_total * p,
        w_mag_lo.ctypes.data + q_start,
        w_pos_mask.ctypes.data + q_start, w_mag_lo.shape[1],
        out.ctypes.data,
        bn, l, p, qg, mask,
    )
    return True
