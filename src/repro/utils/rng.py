"""Deterministic random-number-generator construction.

Every stochastic component in the repository accepts either a seed or a
``numpy.random.Generator``; this helper normalises both so experiment
harnesses stay reproducible run-to-run (the benchmarks print tables whose
values must be stable enough to compare against the paper).
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def make_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for fresh OS entropy, an ``int`` for a seeded PCG64
        generator, or an existing ``Generator`` which is returned as-is.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
