"""Shared utilities: unit conversions, physical constants, table rendering.

These helpers are deliberately dependency-light; every other subpackage
builds on them.  All optical powers in the photonic models are tracked in
dB/dBm wherever the paper's link-budget equations operate in the log
domain, and converted at the boundaries with :func:`db_to_linear` /
:func:`dbm_to_watts` so that unit bugs cannot hide inside ad-hoc ``10**``
expressions scattered through device code.
"""

from repro.utils.units import (
    db_to_linear,
    linear_to_db,
    dbm_to_watts,
    watts_to_dbm,
    dbm_to_mw,
    mw_to_dbm,
)
from repro.utils.constants import (
    ELEMENTARY_CHARGE,
    BOLTZMANN,
    SPEED_OF_LIGHT,
    PLANCK,
    C_BAND_CENTER_M,
)
from repro.utils.tables import Table, format_engineering, geometric_mean
from repro.utils.rng import make_rng

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "dbm_to_mw",
    "mw_to_dbm",
    "ELEMENTARY_CHARGE",
    "BOLTZMANN",
    "SPEED_OF_LIGHT",
    "PLANCK",
    "C_BAND_CENTER_M",
    "Table",
    "format_engineering",
    "geometric_mean",
    "make_rng",
]
