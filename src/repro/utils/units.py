"""Log-domain unit conversions.

The paper's scalability analysis (Eqs. 2-4, Table III) mixes dB losses,
dBm powers and linear quantities.  Centralising the conversions keeps the
link-budget code readable and makes the property tests
(`tests/test_utils.py`) trivial to state: the pairs below are exact
inverses of each other.
"""

from __future__ import annotations

import math


def db_to_linear(db: float) -> float:
    """Convert a dB ratio to a linear ratio (``10**(db/10)``)."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.  ``ratio`` must be positive."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def dbm_to_mw(dbm: float) -> float:
    """Convert a power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power in milliwatts to dBm.  ``mw`` must be positive."""
    if mw <= 0.0:
        raise ValueError(f"power must be positive, got {mw!r}")
    return 10.0 * math.log10(mw)


def dbm_to_watts(dbm: float) -> float:
    """Convert a power in dBm to watts."""
    return dbm_to_mw(dbm) * 1e-3


def watts_to_dbm(watts: float) -> float:
    """Convert a power in watts to dBm.  ``watts`` must be positive."""
    return mw_to_dbm(watts * 1e3)
