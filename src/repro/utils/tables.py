"""Plain-text table rendering for the experiment harnesses.

The paper's evaluation artefacts are tables and bar/line figures; with no
plotting stack available offline, every ``repro.analysis`` harness renders
its result through :class:`Table` so `pytest benchmarks/` output shows the
same rows/series the paper reports, next to the paper's published values.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def format_engineering(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix (e.g. ``1.23 G``, ``45.6 m``).

    Useful for FPS / power / latency columns spanning many decades.
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:g} {unit}".rstrip()
    prefixes = [
        (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""),
        (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"), (1e-15, "f"),
    ]
    mag = abs(value)
    for scale, prefix in prefixes:
        if mag >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports all cross-CNN speedups as gmean."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


class Table:
    """Monospace table builder.

    >>> t = Table(["model", "FPS"], title="Fig 9(a)")
    >>> t.add_row(["ResNet50", "12.3"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.headers = [str(h) for h in headers]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, row: Sequence[object]) -> None:
        cells = [str(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.render()
