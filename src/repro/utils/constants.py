"""Physical constants (SI units) used by the photonic device models.

Values follow CODATA 2018; the receiver-noise model (paper Eq. 3) is
insensitive to digits beyond the fourth significant figure.
"""

#: Elementary charge ``q`` [C].
ELEMENTARY_CHARGE: float = 1.602176634e-19

#: Boltzmann constant ``k`` [J/K].
BOLTZMANN: float = 1.380649e-23

#: Speed of light in vacuum ``c`` [m/s].
SPEED_OF_LIGHT: float = 2.99792458e8

#: Planck constant ``h`` [J*s].
PLANCK: float = 6.62607015e-34

#: Conventional C-band centre wavelength used for the DWDM grid [m].
C_BAND_CENTER_M: float = 1550e-9
