"""Optical Stochastic Multiplier (paper Section IV-B, Fig. 5).

An OSM = peripherals (scratchpad access, eDRAM lookup table, two
high-speed serializers, drivers) + the Optical AND Gate.  Three levels of
fidelity are exposed, all provably consistent:

* :meth:`OpticalStochasticMultiplier.multiply` - count-domain result
  (``floor(ib*wb/2**B)``), the fast path used everywhere at scale;
* :meth:`~OpticalStochasticMultiplier.multiply_streams` - fetch LUT
  streams, AND them electrically (what the OAG's truth table computes);
* :meth:`~OpticalStochasticMultiplier.multiply_optical` - full transient
  simulation through the OAG device model at the configured bitrate,
  thresholded by the PCA's decision level.

Timing/energy bookkeeping lives in the returned :class:`OsmTiming`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SconnaConfig
from repro.photonics.mrr import MicroringResonator
from repro.photonics.oag import OpticalAndGate
from repro.stochastic.arithmetic import exact_sc_product
from repro.stochastic.lut import OsmLookupTable


@dataclass(frozen=True)
class OsmTiming:
    """Latency breakdown of one stochastic multiplication."""

    buffer_s: float
    lut_s: float
    serializer_s: float
    stream_s: float

    @property
    def total_s(self) -> float:
        return self.buffer_s + self.lut_s + self.serializer_s + self.stream_s


class OpticalStochasticMultiplier:
    """One OSM: LUT peripherals + optical AND gate on one wavelength."""

    def __init__(
        self,
        config: SconnaConfig | None = None,
        wavelength_nm: float = 1550.0,
        input_power_dbm: float = 0.0,
        lut: OsmLookupTable | None = None,
    ) -> None:
        self.config = config or SconnaConfig()
        self.wavelength_nm = wavelength_nm
        # The LUT is physically per-OSM (Table IV charges one per OSM);
        # sharing the Python object across OSMs is a memory optimisation
        # with identical contents.
        self.lut = lut or OsmLookupTable(self.config.precision_bits)
        ring = MicroringResonator(
            resonance_nm=wavelength_nm,
            fwhm_nm=self.config.oag_fwhm_nm,
            junction_shift_nm=self.config.oag_junction_shift_nm,
        )
        self.gate = OpticalAndGate(
            ring=ring,
            input_wavelength_nm=wavelength_nm,
            input_power_dbm=input_power_dbm,
        )

    # -- functional paths ------------------------------------------------
    def multiply(self, ib: int, wb: int) -> int:
        """Count-domain stochastic product ``floor(ib * wb / 2**B)``."""
        return exact_sc_product(ib, wb, self.config.precision_bits)

    def multiply_streams(self, ib: int, wb: int) -> int:
        """Electrical-AND of the fetched LUT streams (bit-true)."""
        return self.lut.fetch_product_count(ib, wb)

    def multiply_streams_batch(
        self, i_values: np.ndarray, w_values: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`multiply_streams` over operand arrays."""
        return self.lut.fetch_product_counts(i_values, w_values)

    def multiply_optical(self, ib: int, wb: int) -> int:
        """Full optical transient through the OAG at the configured BR.

        The two serialized streams drive the OAG's PN junctions; the
        drop-port power is thresholded per bit slot (as the PCA's
        photodetector does) and the resulting ones are counted.
        """
        i_s, w_s = self.lut.fetch(ib, wb)
        tr = self.gate.transient_response(
            i_s.bits.astype(np.int64),
            w_s.bits.astype(np.int64),
            self.config.bitrate_hz,
            samples_per_bit=8,
        )
        return int(tr.decide_bits().sum())

    # -- timing ------------------------------------------------------------
    def timing(self) -> OsmTiming:
        """Latency breakdown per multiplication (Section V-A)."""
        c = self.config
        return OsmTiming(
            buffer_s=c.buffer_latency_s,
            lut_s=c.lut_latency_s,
            serializer_s=c.serializer_latency_s,
            stream_s=c.stream_duration_s,
        )

    def supported_bitrate_ok(self) -> bool:
        """Is the configured BR within the OAG's Fig. 7(a) envelope?"""
        from repro.photonics.oag import max_bitrate_for_fwhm

        return (
            max_bitrate_for_fwhm(self.config.oag_fwhm_nm)
            >= self.config.bitrate_hz
        )
