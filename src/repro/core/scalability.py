"""Section V scalability analysis of SCONNA, end to end.

Combines the photonic solvers into the three published results:

* **V-A** - OSM operating speed: max bitrate vs ring FWHM (Fig. 7(a));
  the paper conservatively picks BR = 30 Gb/s.
* **V-B** - achievable VDPC size: Eqs. 2-4 with Table III values give
  N = M = 176 (at an effective receiver sensitivity of -30 dBm; the
  paper prints -28 dBm, at which our faithful solver yields N = 138 -
  both are reported).
* **V-C** - PCA accumulation capacity: the calibrated TIR stays linear
  through a full 176 x 256-ones pass and holds ~4 passes of typical
  activity before needing a readout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import SconnaConfig
from repro.photonics.link_budget import sconna_vdpc_budget, solve_max_n
from repro.photonics.oag import max_bitrate_for_fwhm
from repro.photonics.photodetector import PhotodetectorParams
from repro.photonics.sensitivity import solve_sensitivity_dbm
from repro.photonics.tir import TimeIntegratingReceiver


@dataclass(frozen=True)
class ScalabilityReport:
    """All Section V results in one record."""

    max_bitrate_at_fwhm_hz: float
    operating_bitrate_hz: float
    sensitivity_dbm_digital: float
    max_n_at_paper_sensitivity: int
    max_n_at_minus_30_dbm: int
    paper_published_n: int
    pca_capacity_ones: int
    pca_full_scale_ones: int
    pca_linear_at_full_scale: bool
    pca_accumulation_passes: int


def analyze_scalability(config: SconnaConfig | None = None) -> ScalabilityReport:
    """Run the full Section V analysis for a configuration."""
    cfg = config or SconnaConfig()

    # V-A: OSM speed envelope.
    max_br = max_bitrate_for_fwhm(cfg.oag_fwhm_nm)

    # V-B: receiver sensitivity at BRes = 1 (digital streams).  The
    # paper solves Eq. 2 at DR = BR * 2**B and quotes -28 dBm; our
    # faithful Eq. 2/3 solver at the stream bitrate gives a similar
    # figure; both bracketing max-N solutions are reported.
    sens = solve_sensitivity_dbm(
        1.0, cfg.bitrate_hz, PhotodetectorParams()
    )
    n_paper_sens = solve_max_n(
        lambda n, m: sconna_vdpc_budget(n, m, cfg.laser_power_dbm), -28.0
    )
    n_30 = solve_max_n(
        lambda n, m: sconna_vdpc_budget(n, m, cfg.laser_power_dbm), -30.0
    )

    # V-C: PCA capacity.
    tir = TimeIntegratingReceiver(cfg.tir)
    full_scale = cfg.vdpe_size * cfg.stream_length
    linear = tir.is_linear_up_to(
        cfg.vdpe_size, cfg.stream_length, 1.0 / cfg.bitrate_hz
    )

    return ScalabilityReport(
        max_bitrate_at_fwhm_hz=max_br,
        operating_bitrate_hz=cfg.bitrate_hz,
        sensitivity_dbm_digital=sens,
        max_n_at_paper_sensitivity=n_paper_sens,
        max_n_at_minus_30_dbm=n_30,
        paper_published_n=176,
        pca_capacity_ones=cfg.pca_capacity_ones,
        pca_full_scale_ones=full_scale,
        pca_linear_at_full_scale=linear,
        pca_accumulation_passes=cfg.pca_accumulation_passes,
    )


def sweep_max_n_vs_laser_power(
    laser_powers_dbm: "list[float]", sensitivity_dbm: float = -30.0
) -> "list[tuple[float, int]]":
    """Design-space helper: max N as laser power varies."""
    out = []
    for p in laser_powers_dbm:
        n = solve_max_n(
            lambda n, m, _p=p: sconna_vdpc_budget(n, m, laser_power_dbm=_p),
            sensitivity_dbm,
        )
        out.append((p, n))
    return out


def stream_bits_vs_precision(max_bits: int = 12) -> "list[tuple[int, int]]":
    """Stream length 2**B per precision - the linear-vs-exponential
    trade-off stochastic computing accepts for precision flexibility."""
    if max_bits < 1:
        raise ValueError("max_bits must be >= 1")
    return [(b, 1 << b) for b in range(1, max_bits + 1)]


def psum_counts_for_vector(
    s: int, config: SconnaConfig | None = None
) -> dict[str, int]:
    """Optical pieces vs electrical psums for an S-point kernel vector.

    Shows the two-level reduction: ``ceil(S/176)`` optical passes shrink
    to ``ceil(passes/4)`` electrical psums via multi-pass accumulation -
    versus ``ceil(S/22) * 2`` ADC conversions for the bit-sliced MAM
    baseline.
    """
    cfg = config or SconnaConfig()
    if s <= 0:
        raise ValueError("s must be positive")
    pieces = math.ceil(s / cfg.vdpe_size)
    return {
        "vector_size": s,
        "optical_passes": pieces,
        "electrical_psums": cfg.electrical_psums(s),
        "mam_psums_8bit": math.ceil(s / 22) * 2,
        "amm_psums_8bit": math.ceil(s / 16) * 2,
    }
