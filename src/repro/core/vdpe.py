"""SCONNA Vector-Dot-Product Element (paper Section IV-A, Fig. 4(a)).

A VDPE = a cascade of N OSMs (one per wavelength) + a bank of N
sign-steering filter MRRs + one signed PCA pair.  It multiplies an
N-point decomposed input vector (DIV) against an N-point decomposed
kernel vector (DKV) and accumulates the N product streams optically.

For kernel vectors longer than N the VDPE iterates over the
``C = ceil(S/N)`` pieces; thanks to the PCA's charge-domain accumulation
it only emits an electrical partial sum every
``pca_accumulation_passes`` pieces.

Functional contract (locked by tests): the signed result equals
``sum(floor(i_k * |w_k| / 2**B) * sign(w_k))`` over the whole vector,
i.e. the exact integer VDP scaled by ``2**-B`` with per-product floor
rounding - before optional ADC error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SconnaConfig
from repro.core.pca import SignedPcaPair
from repro.stochastic.arithmetic import sc_vdp, sc_vdp_batch


@dataclass(frozen=True)
class VdpeResult:
    """Outcome of a full (possibly multi-piece) VDP on one VDPE."""

    signed_count: int
    optical_passes: int
    electrical_psums: int
    latency_s: float


class SconnaVDPE:
    """One SCONNA vector-dot-product element."""

    def __init__(
        self, config: SconnaConfig | None = None, seed: int | None = None
    ) -> None:
        self.config = config or SconnaConfig()
        self.pca_pair = SignedPcaPair(self.config, seed=seed)

    @property
    def size(self) -> int:
        return self.config.vdpe_size

    def compute_piece(self, i_piece: np.ndarray, w_piece: np.ndarray) -> tuple[int, int]:
        """One optical pass: (positive_ones, negative_ones) for <=N points."""
        i_arr = np.asarray(i_piece, dtype=np.int64)
        w_arr = np.asarray(w_piece, dtype=np.int64)
        if i_arr.size != w_arr.size:
            raise ValueError("DIV and DKV pieces must have equal size")
        if i_arr.size == 0 or i_arr.size > self.size:
            raise ValueError(
                f"piece size {i_arr.size} out of range [1, {self.size}]"
            )
        return sc_vdp(i_arr, w_arr, self.config.precision_bits)

    def compute_vdp(
        self,
        i_vector: np.ndarray,
        w_vector: np.ndarray,
        apply_adc_error: bool = True,
    ) -> VdpeResult:
        """Full S-point VDP with multi-pass PCA accumulation.

        The vector is cut into N-point pieces; each piece is one optical
        pass; the PCA pair converts after every
        ``pca_accumulation_passes`` passes (or at the end), and the
        converted partial results are summed digitally.
        """
        i_arr = np.asarray(i_vector, dtype=np.int64)
        w_arr = np.asarray(w_vector, dtype=np.int64)
        if i_arr.shape != w_arr.shape or i_arr.ndim != 1:
            raise ValueError("vectors must be equal-length and 1-D")
        if i_arr.size == 0:
            raise ValueError("vectors must be non-empty")

        n = self.size
        passes_per_readout = self.config.pca_accumulation_passes
        # All optical passes are independent AND-accumulate pieces, so
        # their (pos, neg) counts are computed in one vectorized batch;
        # only the PCA charge/readout bookkeeping stays sequential.
        n_pieces = -(-i_arr.size // n)
        pad = n_pieces * n - i_arr.size
        i_mat = np.pad(i_arr, (0, pad)).reshape(n_pieces, n)
        w_mat = np.pad(w_arr, (0, pad)).reshape(n_pieces, n)
        pos_arr, neg_arr = sc_vdp_batch(i_mat, w_mat, self.config.precision_bits)
        total = 0
        passes = 0
        psums = 0
        passes_since_readout = 0
        for piece in range(n_pieces):
            self.pca_pair.accumulate(int(pos_arr[piece]), int(neg_arr[piece]))
            passes += 1
            passes_since_readout += 1
            if passes_since_readout >= passes_per_readout:
                total += self._read(apply_adc_error)
                psums += 1
                passes_since_readout = 0
        if passes_since_readout > 0:
            total += self._read(apply_adc_error)
            psums += 1

        latency = (
            self.config.vdp_pipeline_latency_s
            + (passes - 1) * self.config.vdp_issue_interval_s
            + psums * self.config.adc_latency_s
        )
        return VdpeResult(
            signed_count=total,
            optical_passes=passes,
            electrical_psums=psums,
            latency_s=latency,
        )

    def _read(self, apply_adc_error: bool) -> int:
        if apply_adc_error:
            return self.pca_pair.readout_signed()
        return self.pca_pair.drain_signed_ideal()

    # -- golden reference --------------------------------------------------
    @staticmethod
    def exact_reference(
        i_vector: np.ndarray, w_vector: np.ndarray, precision_bits: int
    ) -> int:
        """Noise-free count-domain result for equivalence tests."""
        from repro.stochastic.arithmetic import sc_products

        return int(
            sc_products(
                np.asarray(i_vector), np.asarray(w_vector), precision_bits
            ).sum(dtype=np.int64)
        )
