"""SCONNA core - the paper's primary contribution.

* :mod:`repro.core.config` - the full design point (Tables III-IV
  defaults) and derived quantities,
* :mod:`repro.core.osm` - the Optical Stochastic Multiplier,
* :mod:`repro.core.pca` - the Photo-Charge Accumulator (+ signed pair),
* :mod:`repro.core.vdpe` / :mod:`repro.core.vdpc` - SCONNA's vector
  dot-product element and core,
* :mod:`repro.core.scalability` - the Section V analysis.
"""

from repro.core.config import SconnaConfig
from repro.core.osm import OpticalStochasticMultiplier, OsmTiming
from repro.core.pca import PcaReadout, PhotoChargeAccumulator, SignedPcaPair
from repro.core.vdpe import SconnaVDPE, VdpeResult
from repro.core.vdpc import SconnaVDPC, VdpcBatchResult
from repro.core.scalability import (
    ScalabilityReport,
    analyze_scalability,
    psum_counts_for_vector,
    stream_bits_vs_precision,
    sweep_max_n_vs_laser_power,
)

__all__ = [
    "SconnaConfig",
    "OpticalStochasticMultiplier",
    "OsmTiming",
    "PcaReadout",
    "PhotoChargeAccumulator",
    "SignedPcaPair",
    "SconnaVDPE",
    "VdpeResult",
    "SconnaVDPC",
    "VdpcBatchResult",
    "ScalabilityReport",
    "analyze_scalability",
    "psum_counts_for_vector",
    "stream_bits_vs_precision",
    "sweep_max_n_vs_laser_power",
]
