"""Photo-Charge Accumulator (paper Sections IV-C, V-C, Fig. 4(b)).

The PCA turns incident optical '1' pulses into capacitor charge and
reads the accrued voltage out through an ADC.  A VDPE carries a *pair*
of PCAs: the filter-MRR bank steers positively-signed product streams to
the OWA-coupled PCA and negatively-signed ones to the OWA'-coupled PCA;
the signed VDP result is the difference of the two readouts.

Multi-pass accumulation: because the accumulation is charge-domain, the
PCA can integrate several consecutive DKV pieces before converting
(bounded by the TIR's rail headroom - see
:attr:`repro.core.config.SconnaConfig.pca_accumulation_passes`), which is
what divides SCONNA's electrical psum traffic by ~4x versus one ADC
conversion per optical piece.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SconnaConfig
from repro.photonics.converters import AdcErrorModel
from repro.photonics.tir import TimeIntegratingReceiver


@dataclass(frozen=True)
class PcaReadout:
    """One ADC conversion of an accumulated charge."""

    ones_accumulated: int
    analog_voltage_v: float
    converted_count: int
    saturated: bool


class PhotoChargeAccumulator:
    """Single-polarity PCA: photodetector + ping-pong TIR + ADC."""

    def __init__(
        self, config: SconnaConfig | None = None, seed: int | None = None
    ) -> None:
        self.config = config or SconnaConfig()
        self.tir = TimeIntegratingReceiver(self.config.tir)
        self.error_model = AdcErrorModel(mape=self.config.adc_mape, seed=seed)
        self._accumulated = 0

    # -- charge-domain interface ----------------------------------------
    def accumulate(self, ones: int) -> None:
        """Integrate ``ones`` optical '1' pulses onto the active capacitor."""
        if ones < 0:
            raise ValueError("ones cannot be negative")
        self._accumulated += ones

    @property
    def pending_ones(self) -> int:
        return self._accumulated

    def would_saturate(self, additional_ones: int) -> bool:
        """Check rail headroom before another accumulation pass."""
        return self._accumulated + additional_ones > self.config.pca_capacity_ones

    def drain(self) -> int:
        """Read the pending count without ADC conversion and reset."""
        ones = self._accumulated
        self._accumulated = 0
        return ones

    def readout(self) -> PcaReadout:
        """Convert the accrued voltage and reset (ping-pong discharge).

        The conversion applies the calibrated 1.3 %-MAPE ADC error model;
        saturation clips at the capacity (the simulator schedules
        readouts so this never triggers in normal operation).
        """
        ones = self._accumulated
        capacity = self.config.pca_capacity_ones
        saturated = ones > capacity
        effective = min(ones, capacity)
        bit_period = 1.0 / self.config.bitrate_hz
        voltage = float(self.tir.output_voltage_v(effective, bit_period))
        converted = int(self.error_model.apply(np.array([float(effective)]))[0])
        self._accumulated = 0
        return PcaReadout(
            ones_accumulated=ones,
            analog_voltage_v=voltage,
            converted_count=max(converted, 0),
            saturated=saturated,
        )


class SignedPcaPair:
    """The OWA / OWA' PCA pair of one VDPE (sign-split accumulation)."""

    def __init__(
        self, config: SconnaConfig | None = None, seed: int | None = None
    ) -> None:
        self.config = config or SconnaConfig()
        self.positive = PhotoChargeAccumulator(self.config, seed=seed)
        self.negative = PhotoChargeAccumulator(
            self.config, seed=None if seed is None else seed + 1
        )

    def accumulate(self, positive_ones: int, negative_ones: int) -> None:
        self.positive.accumulate(positive_ones)
        self.negative.accumulate(negative_ones)

    def readout_signed(self) -> int:
        """Signed VDP result: positive count minus negative count."""
        return (
            self.positive.readout().converted_count
            - self.negative.readout().converted_count
        )

    def drain_signed_ideal(self) -> int:
        """Noise-free drain (no ADC error), for reference computations."""
        return self.positive.drain() - self.negative.drain()

    def pending(self) -> tuple[int, int]:
        return self.positive.pending_ones, self.negative.pending_ones
