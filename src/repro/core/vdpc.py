"""SCONNA Vector-Dot-Product Core (paper Fig. 4(a)).

A VDPC = N laser diodes -> DWDM mux -> 1xM splitter -> M input waveguide
arms, each feeding one :class:`~repro.core.vdpe.SconnaVDPE`.  The core
computes up to M independent VDPs concurrently (all arms share the same
wavelength comb but carry independent DIV/DKV streams).

The class provides the functional batch interface used by the CNN
inference engine plus the static power/area/link-budget views consumed by
the system simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SconnaConfig
from repro.core.vdpe import SconnaVDPE, VdpeResult
from repro.photonics.laser import DwdmGrid, LaserDiode
from repro.photonics.link_budget import LinkBudget, sconna_vdpc_budget


@dataclass(frozen=True)
class VdpcBatchResult:
    """Results of one batch of up to M concurrent VDPs."""

    signed_counts: np.ndarray
    latency_s: float
    optical_passes: int
    electrical_psums: int


class SconnaVDPC:
    """One SCONNA vector-dot-product core with M VDPE arms."""

    def __init__(
        self, config: SconnaConfig | None = None, seed: int | None = None
    ) -> None:
        self.config = config or SconnaConfig()
        base = 0 if seed is None else seed
        self.vdpes = [
            SconnaVDPE(self.config, seed=None if seed is None else base + 97 * k)
            for k in range(self.config.vdpes_per_vdpc)
        ]
        self.grid = DwdmGrid()
        if self.config.vdpe_size > self.grid.max_channels():
            raise ValueError(
                f"vdpe_size {self.config.vdpe_size} exceeds DWDM capacity "
                f"{self.grid.max_channels()}"
            )

    @property
    def m(self) -> int:
        return len(self.vdpes)

    @property
    def n(self) -> int:
        return self.config.vdpe_size

    # -- functional --------------------------------------------------------
    def compute_batch(
        self,
        i_vectors: "list[np.ndarray]",
        w_vectors: "list[np.ndarray]",
        apply_adc_error: bool = True,
    ) -> VdpcBatchResult:
        """Run up to M VDPs concurrently (one per arm).

        Latency is the slowest arm (arms run in lock-step off the shared
        comb); counts are per-arm signed results.
        """
        if len(i_vectors) != len(w_vectors):
            raise ValueError("need equal numbers of input and kernel vectors")
        if not (1 <= len(i_vectors) <= self.m):
            raise ValueError(f"batch size must be in [1, {self.m}]")
        results: list[VdpeResult] = []
        for vdpe, iv, wv in zip(self.vdpes, i_vectors, w_vectors):
            results.append(vdpe.compute_vdp(iv, wv, apply_adc_error))
        return VdpcBatchResult(
            signed_counts=np.array([r.signed_count for r in results]),
            latency_s=max(r.latency_s for r in results),
            optical_passes=sum(r.optical_passes for r in results),
            electrical_psums=sum(r.electrical_psums for r in results),
        )

    # -- physical views ------------------------------------------------------
    def link_budget(self) -> LinkBudget:
        """Per-wavelength optical budget of this core (Eq. 4)."""
        return sconna_vdpc_budget(
            self.n, self.m, laser_power_dbm=self.config.laser_power_dbm
        )

    def laser_electrical_power_w(self) -> float:
        """Wall-plug draw of the N-diode source array."""
        diode = LaserDiode(
            power_dbm=self.config.laser_power_dbm,
            eta_wpe=self.config.laser_wall_plug_efficiency,
        )
        return self.n * diode.electrical_power_w

    def wavelengths_nm(self) -> np.ndarray:
        return self.grid.wavelengths_nm(self.n)
