"""SCONNA configuration (Sections IV-V, Tables III-IV).

One dataclass gathers every architectural constant so experiments can
sweep them; defaults are the paper's published operating point:

* ``precision_bits = 8``        - 8-bit integer-quantized CNNs,
* ``vdpe_size = 176``           - Section V-B scalability result,
* ``vdpes_per_vdpc = 16``       - with 4 VDPCs/tile and 16 tiles this
  gives the evaluated 1024-VDPE accelerator,
* ``bitrate_hz = 30e9``         - conservative OSM operating point,
* ``pca_accumulation_passes``   - how many consecutive DKV pieces one
  PCA integrates before an ADC readout (see below).

**PCA multi-pass accumulation.**  The PCA integrates charge, so a VDPE
working through the ``C = ceil(S/N)`` pieces of a long kernel vector can
keep accumulating *optically* and convert only every few pieces; only
those readouts become electrical partial sums for the reduction network.
Section V-C sizes the TIR for a full-scale pass (176 x 256 ones ->
0.91 V on a 1 V rail); at the design activity factor (mean product
density ~0.25 of full scale, with 2x margin over the statistical mean of
~0.125 for uniform operands) the capacitor accommodates ~4 passes before
a readout is required.  This multi-pass factor is the architectural
reason SCONNA's psum-reduction traffic is vastly lower than the analog
baselines' (every analog piece needs its own ADC conversion), and it is
the one calibration point of the performance model - set
``pca_accumulation_passes = 1`` to disable it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.photonics.tir import TIRParams, TimeIntegratingReceiver


@dataclass(frozen=True)
class SconnaConfig:
    """Full SCONNA design point."""

    precision_bits: int = 8
    vdpe_size: int = 176               #: N - OSMs (wavelengths) per VDPE
    vdpes_per_vdpc: int = 16           #: M - parallel arms per VDPC
    vdpcs_per_tile: int = 4
    n_tiles: int = 16
    bitrate_hz: float = 30e9           #: BR - OSM stream rate
    oag_fwhm_nm: float = 0.6
    oag_junction_shift_nm: float = 0.75
    laser_power_dbm: float = 10.0
    laser_wall_plug_efficiency: float = 0.1
    adc_mape: float = 0.013
    buffer_latency_s: float = 2e-9     #: scratchpad access (Section V-A)
    lut_latency_s: float = 2e-9        #: eDRAM LUT access (Section V-A)
    serializer_latency_s: float = 0.03e-9
    adc_latency_s: float = 0.78e-9
    pca_design_activity: float = 0.25  #: assumed mean ones-density per pass
    tir: TIRParams = field(default_factory=TIRParams)

    def __post_init__(self) -> None:
        if self.precision_bits <= 0:
            raise ValueError("precision_bits must be positive")
        if self.vdpe_size <= 0 or self.vdpes_per_vdpc <= 0:
            raise ValueError("vdpe_size and vdpes_per_vdpc must be positive")
        if self.bitrate_hz <= 0:
            raise ValueError("bitrate_hz must be positive")
        if not (0.0 < self.pca_design_activity <= 1.0):
            raise ValueError("pca_design_activity must be in (0, 1]")

    # -- derived quantities ---------------------------------------------
    @property
    def stream_length(self) -> int:
        """Bits per stochastic stream: 2**B (256 at B=8)."""
        return 1 << self.precision_bits

    @property
    def stream_duration_s(self) -> float:
        """Time to play one stream: 2**B / BR (8.53 ns at the defaults)."""
        return self.stream_length / self.bitrate_hz

    @property
    def vdp_issue_interval_s(self) -> float:
        """Steady-state interval between VDP results per VDPE.

        The buffer -> LUT -> serializer -> OAG -> PCA chain is pipelined;
        the stream duration dominates every other stage at the defaults.
        """
        return max(
            self.stream_duration_s,
            self.buffer_latency_s,
            self.lut_latency_s,
            self.adc_latency_s,
        )

    @property
    def vdp_pipeline_latency_s(self) -> float:
        """End-to-end latency of a single VDP (pipeline fill)."""
        return (
            self.buffer_latency_s
            + self.lut_latency_s
            + self.serializer_latency_s
            + self.stream_duration_s
            + self.adc_latency_s
        )

    @property
    def total_vdpes(self) -> int:
        return self.n_tiles * self.vdpcs_per_tile * self.vdpes_per_vdpc

    @property
    def pca_capacity_ones(self) -> int:
        """Ones one TIR capacitor can hold before reaching the rail."""
        tir = TimeIntegratingReceiver(self.tir)
        bit_period = 1.0 / self.bitrate_hz
        per_one = self.tir.amplifier_gain * self.tir.pulse_charge_c(
            bit_period
        ) / self.tir.capacitance_f
        return int(self.tir.supply_rail_v / per_one)

    @property
    def pca_accumulation_passes(self) -> int:
        """Consecutive DKV pieces one PCA integrates per ADC readout.

        ``floor(capacity / (N * 2**B * design_activity))``, clamped to at
        least 1.  At the paper's design point this evaluates to 4.
        """
        per_pass = self.vdpe_size * self.stream_length * self.pca_design_activity
        return max(1, int(self.pca_capacity_ones / per_pass))

    def electrical_psums(self, vector_size: int) -> int:
        """Electrical partial sums emitted for an S-point VDP.

        ``ceil(ceil(S/N) / pca_accumulation_passes)`` - optical pieces
        grouped by multi-pass PCA accumulation.
        """
        if vector_size <= 0:
            raise ValueError("vector_size must be positive")
        pieces = math.ceil(vector_size / self.vdpe_size)
        return math.ceil(pieces / self.pca_accumulation_passes)

    def with_overrides(self, **kwargs) -> "SconnaConfig":
        """Functional update helper for sweeps/ablations."""
        return replace(self, **kwargs)
