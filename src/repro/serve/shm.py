"""Shared-memory ring transport for the process backend.

The pipe-pickle transport pays for every batch twice: ~44 KB/image of
float64 pixels is pickled into the pipe on dispatch and the logits are
pickled back on completion.  On a one-core container that serialization
is the entire measured overhead of ``ProcessBackend`` (0.82x of
thread-dynamic, see ``BENCH_serve.json``).  This module moves the bulk
payloads into ``multiprocessing.shared_memory`` segments so only small
*descriptors* (offset, shape, dtype - plus the request ids and pickled
RNG state that must travel anyway) cross the pipe:

* :class:`RingAllocator` - a next-fit circular allocator over a byte
  arena.  Regions are reclaimed out of completion order (batches finish
  whenever they finish), so the classic head/tail ring is generalized to
  interval tracking with a circular allocation cursor: the cursor walks
  forward through free gaps and wraps to offset 0, which is exactly the
  ring wrap-around behaviour, without requiring in-order frees.
* :class:`ShmArena` - one shared-memory segment, created by the serving
  parent (``create=True``) and attached by the shard (``name=...``),
  with exact-bytes array read/write at explicit offsets.

Ownership and cleanup invariants (the part that must never be wrong):

* The **parent creates every segment and is the only process that ever
  calls** :meth:`ShmArena.unlink`.  Shards only attach and ``close()``.
* Segment names carry the :data:`SEGMENT_PREFIX` (``repro_``) so a CI
  leak check can assert ``/dev/shm/repro_*`` is empty after a suite.
* On Python < 3.13 an *attachment* registers with the resource tracker
  exactly like a creation; :func:`attach_arena` suppresses that, so the
  only tracker entry is the parent's creation - which is what reclaims
  the segments even if the parent is SIGKILLed mid-serve.
* Ring-full (or a batch larger than the ring) is *backpressure*, not an
  error: the backend degrades that batch to the classic pipe-pickle
  path, so memory stays bounded and nothing stalls.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

#: every segment name starts with this - the CI leak check greps for it
SEGMENT_PREFIX = "repro_"

#: default per-direction ring capacity per shard (a 32-image float64
#: batch of 24x24 RGB images is ~1.4 MB; shards execute serially, so a
#: few in-flight batches is the realistic high-water mark)
DEFAULT_RING_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class ShmDescriptor:
    """What crosses the pipe instead of the array bytes."""

    offset: int
    shape: "tuple[int, ...]"
    dtype: str

    @classmethod
    def for_array(cls, offset: int, array: np.ndarray) -> "ShmDescriptor":
        return cls(offset=offset, shape=tuple(array.shape), dtype=str(array.dtype))

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


class RingAllocator:
    """Next-fit circular allocator over ``capacity`` bytes.

    ``alloc`` returns a byte offset or ``None`` when no free gap is
    large enough (the caller's backpressure signal); ``free`` reclaims
    a region by its offset, in any order.  The allocation cursor
    continues from the previous allocation's end and wraps to 0, so a
    steady stream of transient regions marches around the arena the way
    a head/tail ring would - but out-of-order frees (batch N+1 finishing
    before batch N) cannot strand capacity.

    Not thread-safe: the process backend serializes calls under its own
    lock (parent side) or the single shard loop (worker side).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._regions: "dict[int, int]" = {}  # offset -> size
        self._cursor = 0
        #: lifetime occupancy telemetry: peak concurrent bytes and
        #: alloc/backpressure counts (read by stats() for the metrics
        #: plane; never consulted by the allocation logic itself)
        self.high_water = 0
        self.allocs = 0
        self.alloc_failures = 0

    def alloc(self, nbytes: int) -> "int | None":
        """Reserve ``nbytes``: the ring offset, or ``None`` when full/fragmented."""
        nbytes = max(1, int(nbytes))
        if nbytes > self.capacity:
            self.alloc_failures += 1
            return None
        gaps = self._gaps()
        # next-fit: first gap at/after the cursor, else wrap to the start
        candidates = [g for g in gaps if g[1] - max(g[0], self._cursor) >= nbytes]
        if candidates:
            start, _ = candidates[0]
            offset = max(start, self._cursor)
        else:
            wrapped = [g for g in gaps if g[1] - g[0] >= nbytes]
            if not wrapped:
                self.alloc_failures += 1
                return None
            offset = wrapped[0][0]
        self._regions[offset] = nbytes
        self._cursor = offset + nbytes
        if self._cursor >= self.capacity:
            self._cursor = 0
        self.allocs += 1
        used = self.in_use
        if used > self.high_water:
            self.high_water = used
        return offset

    def free(self, offset: int) -> None:
        """Release the region at ``offset`` (``KeyError`` if not allocated)."""
        if self._regions.pop(offset, None) is None:
            raise KeyError(f"no allocated region at offset {offset}")

    def _gaps(self) -> "list[tuple[int, int]]":
        """Free intervals ``[start, end)`` in offset order."""
        gaps = []
        prev_end = 0
        for offset in sorted(self._regions):
            if offset > prev_end:
                gaps.append((prev_end, offset))
            prev_end = offset + self._regions[offset]
        if prev_end < self.capacity:
            gaps.append((prev_end, self.capacity))
        return gaps

    @property
    def in_use(self) -> int:
        return sum(self._regions.values())

    @property
    def regions(self) -> int:
        return len(self._regions)

    def stats(self) -> dict:
        """JSON-ready occupancy snapshot for the telemetry plane."""
        return {
            "capacity": self.capacity,
            "in_use": self.in_use,
            "regions": len(self._regions),
            "high_water": self.high_water,
            "allocs": self.allocs,
            "alloc_failures": self.alloc_failures,
        }


class ShmArena:
    """One shared-memory segment with offset-addressed array I/O.

    Created by the owner (``name=None``: a fresh prefixed segment) or
    attached by name.  :meth:`read_array` always copies out of the
    segment - the region may be reclaimed the moment the caller's reply
    or free message is processed, so no view may outlive it.
    """

    def __init__(
        self, capacity: int, name: "str | None" = None
    ) -> None:
        self.owner = name is None
        if self.owner:
            self._shm = _make_owned_segment(capacity)
            # commit the backing pages now: tmpfs ftruncate is sparse,
            # so without this an overfull /dev/shm surfaces as a SIGBUS
            # on the first batch write mid-serve instead of a clean
            # OSError here (which the backend turns into pipe fallback)
            fd = getattr(self._shm, "_fd", -1)
            if fd >= 0 and hasattr(os, "posix_fallocate"):
                try:
                    os.posix_fallocate(fd, 0, int(capacity))
                except OSError:
                    self._shm.close()
                    try:
                        self._shm.unlink()
                    except FileNotFoundError:
                        pass
                    raise
        else:
            self._shm = shared_memory.SharedMemory(name=name)
        self.capacity = int(capacity)
        self._closed = False
        self._unlinked = False

    @property
    def name(self) -> str:
        return self._shm.name

    def write_array(self, offset: int, array: np.ndarray) -> ShmDescriptor:
        """Copy ``array``'s bytes into the arena at ``offset``."""
        array = np.ascontiguousarray(array)
        end = offset + array.nbytes
        if end > self.capacity:
            raise ValueError(
                f"write of {array.nbytes} B at {offset} exceeds arena "
                f"capacity {self.capacity}"
            )
        dest = np.frombuffer(self._shm.buf, dtype=np.uint8, count=array.nbytes,
                             offset=offset)
        dest[:] = array.view(np.uint8).reshape(-1)
        return ShmDescriptor.for_array(offset, array)

    def read_array(self, desc: ShmDescriptor, copy: bool = True) -> np.ndarray:
        """The described region as an array (bit-exact).

        ``copy=True`` (default) returns a fresh array that survives the
        region's reclamation.  ``copy=False`` returns a view straight
        into the segment - valid only while the region stays allocated,
        which the shard's reply protocol guarantees for exactly the
        duration of the batch's forward pass (the parent frees a tx
        region when the reply for that batch arrives, and the
        single-threaded shard replies only after ``forward`` returns).
        """
        flat = np.frombuffer(
            self._shm.buf, dtype=np.dtype(desc.dtype),
            count=int(np.prod(desc.shape, dtype=np.int64)), offset=desc.offset,
        )
        shaped = flat.reshape(desc.shape)
        return shaped.copy() if copy else shaped

    def close(self) -> None:
        """Release this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        """Remove the segment from the system (owner only, idempotent)."""
        if not self.owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def destroy(self) -> None:
        """close() + unlink(): the owner's teardown."""
        self.close()
        self.unlink()


def _make_owned_segment(capacity: int) -> shared_memory.SharedMemory:
    """Create a fresh prefixed segment, retrying on name collisions."""
    import secrets

    for _ in range(16):
        name = f"{SEGMENT_PREFIX}{secrets.token_hex(6)}"
        try:
            return shared_memory.SharedMemory(create=True, name=name,
                                              size=int(capacity))
        except FileExistsError:
            continue
    raise OSError("could not allocate a unique shared-memory segment name")


def attach_arena(name: str, capacity: int) -> ShmArena:
    """Shard-side constructor: attach *without* resource-tracker
    registration.

    On Python < 3.13 ``SharedMemory(name=...)`` registers the attachment
    with the resource tracker exactly like a creation.  The tracker
    process is shared with the spawning parent, so that second
    registration is at best a no-op, and *unregistering* it would delete
    the parent's entry - losing the only thing that reclaims segments
    when the parent is SIGKILLed.  The clean ownership model is: the
    parent's creation is tracked, attachments are invisible; 3.13 spells
    that ``track=False``, and here registration is suppressed for the
    duration of the attach.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        arena = ShmArena(capacity, name=name)
    finally:
        resource_tracker.register = original
    return arena
