"""Thread worker pool executing coalesced inference batches.

This is the substrate of the in-process execution backend
(:class:`repro.serve.backends.ThreadBackend`).  Threads - not processes
- because the engine's hot path spends its time inside BLAS matmuls and
the native remainder kernel, both of which release the GIL; two workers
keep one core on compute while another fills im2col buffers.  When that
single runtime becomes the bottleneck, the process backend in
:mod:`repro.serve.backends` shards work across worker *processes*
instead.  Each worker thread owns warm scratch buffers automatically:
:class:`repro.cnn.engine.SconnaEngine` keeps its :class:`_BufferPool`
in thread-local storage, so a worker's first batch allocates the
im2col / remainder workspaces and every later batch of the same
geometry reuses them.  :meth:`WorkerPool.warm` lets a service pre-pay
that first-batch cost at registration time.
"""

from __future__ import annotations

import queue
import threading

#: queue marker that terminates one worker
_SENTINEL = object()


class WorkerPool:
    """Fixed-size pool of daemon threads draining a task queue.

    Tasks are zero-argument callables that must not raise (the service
    layer routes per-request failures through futures); a task that does
    raise is swallowed after marking the pool's error counter, so one
    poisoned batch cannot kill a worker.
    """

    def __init__(self, n_workers: int = 2, name: str = "sconna-worker") -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self._tasks: "queue.Queue[object]" = queue.Queue()
        self._closed = False
        self._task_errors = 0
        self._error_lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._run, name=f"{name}-{i}", daemon=True)
            for i in range(n_workers)
        ]
        for t in self._threads:
            t.start()

    # -- client side -----------------------------------------------------
    def submit(self, task) -> None:
        """Enqueue a zero-argument task (``RuntimeError`` once closed)."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        self._tasks.put(task)

    def warm(self, fn, timeout: float = 30.0) -> None:
        """Run ``fn`` once in *every* worker thread (barrier-synchronised).

        Used to pre-warm per-thread engine buffers: each worker executes
        ``fn`` exactly once - a barrier keeps a fast worker from stealing
        a sibling's warm-up task.
        """
        barrier = threading.Barrier(self.n_workers + 1)

        def warmer() -> None:
            try:
                fn()
            finally:
                barrier.wait(timeout)

        for _ in range(self.n_workers):
            self.submit(warmer)
        barrier.wait(timeout)

    @property
    def task_errors(self) -> int:
        return self._task_errors

    @property
    def closed(self) -> bool:
        return self._closed

    def pending(self) -> int:
        """Tasks queued but not yet picked up (approximate, for metrics)."""
        return self._tasks.qsize()

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain queued tasks, then stop and join every worker."""
        if not self._closed:
            self._closed = True
            for _ in self._threads:
                self._tasks.put(_SENTINEL)
        for t in self._threads:
            t.join(timeout)
            if t.is_alive():
                raise RuntimeError(f"worker {t.name} did not stop in time")

    # -- worker side -----------------------------------------------------
    def _run(self) -> None:
        while True:
            task = self._tasks.get()
            if task is _SENTINEL:
                return
            try:
                task()
            except BaseException:
                with self._error_lock:
                    self._task_errors += 1
