"""The serving facade: named models, batched predict, cost annotations.

One :class:`SconnaService` hosts any number of named models.  Each model
gets its own :class:`~repro.serve.batching.MicroBatcher` lane (batches
never mix models); all lanes dispatch into one shared
:class:`~repro.serve.workers.WorkerPool`.  The request path is::

    predict()  ->  lane queue  ->  scheduler coalesces  ->  worker runs
    qmodel.forward(batch)  ->  logits split per request  ->  futures

Reproducibility: a ``seed``-carrying request in the ``sconna`` datapath
gets its own :class:`~repro.stochastic.error_models.SconnaErrorModel`,
applied to its slice of the batch through
:class:`~repro.stochastic.error_models.PerRequestErrorModels` - so its
logits are bit-identical no matter which other requests shared the
batch.  ``ideal=True`` requests the noiseless datapath; ``seed=None``
(the default) draws fresh ADC noise per request.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent import futures
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.cnn.inference import QuantizedModel
from repro.serve.batching import BatchingPolicy, InferenceRequest, MicroBatcher
from repro.serve.costs import CostAccountant, RequestCost, descriptor_from_quantized
from repro.serve.metrics import ServeMetrics
from repro.serve.workers import WorkerPool
from repro.stochastic.error_models import PerRequestErrorModels, SconnaErrorModel


@dataclass(frozen=True)
class Prediction:
    """Result of one request."""

    request_id: int
    model: str
    logits: np.ndarray              #: (n, classes) float64
    top_k: "list[list[tuple[int, float]]]"  #: per image: [(class, logit), ...]
    batch_images: int               #: images in the coalesced batch it rode in
    latency_s: float                #: enqueue -> completion
    cost: RequestCost | None = None

    @property
    def top_class(self) -> int:
        """Top-1 class of the first (usually only) image."""
        return self.top_k[0][0][0]


@dataclass
class _ModelEntry:
    name: str
    qmodel: QuantizedModel
    mode: str
    batcher: MicroBatcher
    descriptor: object | None = None      #: ModelDescriptor for costs
    input_shape: "tuple[int, int, int] | None" = None   #: lane (C, H, W)
    lock: threading.Lock = field(default_factory=threading.Lock)


class SconnaService:
    """In-process serving API over quantized SCONNA models."""

    def __init__(
        self,
        policy: BatchingPolicy | None = None,
        n_workers: int = 2,
        mode: str = "sconna",
        cost_accountant: CostAccountant | None = None,
        metrics: ServeMetrics | None = None,
    ) -> None:
        if mode not in ("float", "int8", "sconna"):
            raise ValueError(f"unknown default mode {mode!r}")
        self.default_policy = policy or BatchingPolicy()
        self.default_mode = mode
        self.metrics = metrics or ServeMetrics()
        self.costs = cost_accountant or CostAccountant()
        self._pool = WorkerPool(n_workers)
        self._models: "dict[str, _ModelEntry]" = {}
        self._ids = itertools.count(1)
        self._closed = False

    # -- model management ------------------------------------------------
    def add_model(
        self,
        name: str,
        qmodel: QuantizedModel,
        mode: str | None = None,
        policy: BatchingPolicy | None = None,
        arch_model: str | None = None,
        warm_shape: "tuple[int, int, int] | None" = None,
    ) -> None:
        """Register a model under ``name`` and open its batching lane.

        ``arch_model`` links cost annotations to a published zoo
        descriptor; otherwise the descriptor is derived from the model
        structure on first cost-annotated request.  ``warm_shape`` (a
        ``(C, H, W)`` image shape) pre-warms every worker's engine
        buffers with one dummy batch so the first real request does not
        pay allocation costs.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        if name in self._models:
            raise ValueError(f"model {name!r} is already registered")
        mode = mode or self.default_mode
        if mode not in ("float", "int8", "sconna"):
            raise ValueError(f"unknown mode {mode!r}")
        descriptor = None
        if arch_model is not None:
            from repro.cnn.zoo import build_model

            descriptor = build_model(arch_model)
        entry = _ModelEntry(name=name, qmodel=qmodel, mode=mode, batcher=None,  # type: ignore[arg-type]
                            descriptor=descriptor)
        entry.batcher = MicroBatcher(
            dispatch=lambda batch: self._pool.submit(
                lambda: self._run_batch(entry, batch)
            ),
            policy=policy or self.default_policy,
            name=f"batcher-{name}",
        )
        self._models[name] = entry
        if warm_shape is not None:
            entry.input_shape = tuple(int(d) for d in warm_shape)
            c, h, w = warm_shape
            dummy = np.zeros(
                (min(entry.batcher.policy.max_batch_size, 4), c, h, w)
            )
            em = (
                SconnaErrorModel(adc_mape=0.0) if mode == "sconna" else None
            )
            self._pool.warm(
                lambda: qmodel.forward(dummy, mode=mode, error_model=em)
            )

    def add_from_registry(
        self,
        registry,
        name: str,
        mode: str | None = None,
        policy: BatchingPolicy | None = None,
        warm_shape: "tuple[int, int, int] | None" = None,
    ) -> None:
        """Load a registry entry and serve it under its registered name."""
        reg_entry = registry.entry(name)
        self.add_model(
            name,
            registry.load(name),
            mode=mode,
            policy=policy,
            arch_model=reg_entry.arch_model,
            warm_shape=warm_shape,
        )

    def models(self) -> "list[str]":
        return sorted(self._models)

    # -- request path ----------------------------------------------------
    def predict_async(
        self,
        model: str,
        image: np.ndarray,
        seed: int | None = None,
        ideal: bool = False,
        top_k: int = 1,
        with_cost: bool = False,
    ) -> Future:
        """Enqueue one request; returns a future of :class:`Prediction`.

        ``image`` is one ``(C, H, W)`` image or an ``(n, C, H, W)``
        stack (served as one indivisible request).
        """
        if self._closed:
            raise RuntimeError("service is closed")
        entry = self._models.get(model)
        if entry is None:
            raise KeyError(f"unknown model {model!r}; registered: {self.models()}")
        # no dtype coercion here: forward() casts the *coalesced* batch
        # to float64 once, so the copy cost amortizes across the batch
        images = np.asarray(image)
        if images.ndim == 3:
            images = images[None]
        if images.ndim != 4:
            raise ValueError("image must be (C, H, W) or (n, C, H, W)")
        # lane-shape gate: a geometry mismatch must fail *this* caller,
        # not poison the strangers it would be coalesced with
        shape = tuple(int(d) for d in images.shape[1:])
        if entry.input_shape is None:
            with entry.lock:
                if entry.input_shape is None:
                    entry.input_shape = shape
        if shape != entry.input_shape:
            raise ValueError(
                f"image shape {shape} does not match this model's "
                f"serving shape {entry.input_shape}"
            )
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        error_model = None
        if entry.mode == "sconna":
            error_model = (
                SconnaErrorModel(adc_mape=0.0)
                if ideal
                else SconnaErrorModel(seed=seed)
            )
        request = InferenceRequest(
            request_id=next(self._ids),
            images=images,
            error_model=error_model,
            top_k=top_k,
            with_cost=with_cost,
        )
        # queue depth is a gauge - sampling every 16th request keeps the
        # submit path off the metrics lock at high request rates
        if request.request_id % 16 == 0:
            self.metrics.record_enqueue(entry.batcher.queue_depth())
        return entry.batcher.submit(request)

    def predict(
        self,
        model: str,
        image: np.ndarray,
        seed: int | None = None,
        ideal: bool = False,
        top_k: int = 1,
        with_cost: bool = False,
        timeout: float | None = 30.0,
    ) -> Prediction:
        """Blocking :meth:`predict_async`."""
        return self.predict_async(
            model, image, seed=seed, ideal=ideal, top_k=top_k, with_cost=with_cost
        ).result(timeout)

    # -- batch execution (worker threads) --------------------------------
    def _run_batch(self, entry: _ModelEntry, batch: "list[InferenceRequest]") -> None:
        try:
            exec_start = time.monotonic()
            stacked = (
                batch[0].images
                if len(batch) == 1
                else np.concatenate([r.images for r in batch], axis=0)
            )
            error_model = None
            if entry.mode == "sconna":
                error_model = PerRequestErrorModels(
                    [r.error_model for r in batch],
                    [r.n_images for r in batch],
                )
            logits = entry.qmodel.forward(
                stacked, mode=entry.mode, error_model=error_model
            )
            self.metrics.record_batch(len(batch), int(stacked.shape[0]))
            # one descending argsort for the whole coalesced batch; each
            # request slices its own rows below
            order = np.argsort(logits, axis=1)[:, ::-1]
            done = time.monotonic()
            samples: list[tuple[float, float, int]] = []
            start = 0
            for req in batch:
                sl = logits[start : start + req.n_images]
                req_order = order[start : start + req.n_images]
                start += req.n_images
                cost = None
                if req.with_cost:
                    cost = self.costs.annotate(
                        self._descriptor_for(entry, req), req.n_images
                    )
                latency = done - req.enqueued_at
                samples.append(
                    (latency, exec_start - req.enqueued_at, req.n_images)
                )
                prediction = Prediction(
                    request_id=req.request_id,
                    model=entry.name,
                    logits=sl,
                    top_k=_top_k_lists(sl, req_order, req.top_k),
                    batch_images=int(stacked.shape[0]),
                    latency_s=latency,
                    cost=cost,
                )
                if not req.future.done():  # client may have cancelled
                    try:
                        req.future.set_result(prediction)
                    except futures.InvalidStateError:
                        pass  # lost the race with a cancel
            self.metrics.record_requests(samples)
        except BaseException as exc:  # route failures to the waiting clients
            self.metrics.record_error(len(batch))
            for req in batch:
                if not req.future.done():
                    try:
                        req.future.set_exception(exc)
                    except futures.InvalidStateError:
                        pass  # lost the race with a cancel

    def _descriptor_for(self, entry: _ModelEntry, req: InferenceRequest):
        if entry.descriptor is None:
            with entry.lock:
                if entry.descriptor is None:
                    c, h, w = req.images.shape[1:]
                    entry.descriptor = descriptor_from_quantized(
                        entry.qmodel, entry.name, (int(c), int(h), int(w))
                    )
        return entry.descriptor

    # -- metrics / lifecycle ---------------------------------------------
    def metrics_snapshot(self) -> dict:
        snap = self.metrics.snapshot()
        snap["models"] = self.models()
        return snap

    def close(self, timeout: float | None = 10.0) -> None:
        """Graceful shutdown: drain every lane, then stop the workers.

        Requests already submitted complete; new submissions raise.
        """
        if self._closed:
            return
        self._closed = True
        for entry in self._models.values():
            entry.batcher.close(timeout)
        self._pool.close(timeout)

    def __enter__(self) -> "SconnaService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _top_k_lists(
    logits: np.ndarray, order: np.ndarray, k: int
) -> "list[list[tuple[int, float]]]":
    """Per-image (class, logit) pairs, best first (``order`` precomputed)."""
    k = min(k, logits.shape[1])
    return [
        [(int(c), float(logits[i, c])) for c in order[i, :k]]
        for i in range(logits.shape[0])
    ]
