"""The serving facade: named models, batched predict, cost annotations.

One :class:`SconnaService` hosts any number of named models.  Each model
gets its own :class:`~repro.serve.batching.MicroBatcher` lane (batches
never mix models); all lanes dispatch into one shared
:class:`~repro.serve.backends.ExecutionBackend` - a thread pool in this
process (``backend="thread"``) or a set of shard worker processes
(``backend="process"``).  The request path is::

    predict()  ->  lane queue  ->  scheduler coalesces  ->  backend runs
    qmodel.forward(batch)  ->  logits return  ->  service splits per
    request, annotates costs, resolves futures

The service owns everything request-shaped - futures, top-k, cost
annotations (computed once in this parent process via the shared
:class:`~repro.arch.simulator.SimulationCache`), request-level metrics -
while the backend owns execution: model hosting, warm buffers, and
execution-side metrics.  :meth:`metrics_snapshot` merges both sides
(plus every shard's counters under the process backend) into one view.

Reproducibility: a ``seed``-carrying request in the ``sconna`` datapath
gets its own :class:`~repro.stochastic.error_models.SconnaErrorModel`,
applied to its slice of the batch through
:class:`~repro.stochastic.error_models.PerRequestErrorModels` - so its
logits are bit-identical no matter which other requests shared the
batch, *and* no matter which backend (or shard process) executed it:
the error model's RNG state pickles exactly, so the shard consumes the
same noise stream the in-process path would.  ``ideal=True`` requests
the noiseless datapath; ``seed=None`` (the default) draws fresh ADC
noise per request.
"""

from __future__ import annotations

import itertools
import signal as signal_module
import threading
import time
from concurrent import futures
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.cnn.inference import QuantizedModel
from repro.serve.admission import AdmissionController, AdmissionError, AdmissionPolicy
from repro.serve.backends import (
    BatchResult,
    ExecutionBackend,
    make_backend,
)
from repro.serve.batching import BatchingPolicy, InferenceRequest, MicroBatcher
from repro.serve.costs import CostAccountant, RequestCost, descriptor_from_quantized
from repro.serve.metrics import ServeMetrics
from repro.serve.telemetry import TracePolicy, Tracer
from repro.stochastic.error_models import SconnaErrorModel


@dataclass(frozen=True)
class Prediction:
    """Result of one request."""

    request_id: int
    model: str
    logits: np.ndarray              #: (n, classes) float64
    top_k: "list[list[tuple[int, float]]]"  #: per image: [(class, logit), ...]
    batch_images: int               #: images in the coalesced batch it rode in
    latency_s: float                #: enqueue -> completion
    cost: RequestCost | None = None

    @property
    def top_class(self) -> int:
        """Top-1 class of the first (usually only) image."""
        return self.top_k[0][0][0]


@dataclass
class _ModelEntry:
    name: str
    qmodel: QuantizedModel
    mode: str
    batcher: MicroBatcher
    descriptor: object | None = None      #: ModelDescriptor for costs
    input_shape: "tuple[int, int, int] | None" = None   #: lane (C, H, W)
    lock: threading.Lock = field(default_factory=threading.Lock)
    unit_cost: "tuple[float, float] | None" = None  #: per-image (energy_j, latency_s)
    cost_disabled: bool = False           #: unit-cost derivation failed; stop trying


class SconnaService:
    """In-process serving API over quantized SCONNA models."""

    def __init__(
        self,
        policy: BatchingPolicy | None = None,
        n_workers: int = 2,
        mode: str = "sconna",
        cost_accountant: CostAccountant | None = None,
        metrics: ServeMetrics | None = None,
        backend: "ExecutionBackend | str" = "thread",
        n_shards: int = 2,
        transport: str = "shm",
        placement: "object | None" = None,
        admission: "AdmissionPolicy | None" = None,
        affinity: "str | None" = None,
        tracer: "Tracer | None" = None,
        trace_policy: "TracePolicy | None" = None,
        request_log: "object | None" = None,
    ) -> None:
        if mode not in ("float", "int8", "sconna"):
            raise ValueError(f"unknown default mode {mode!r}")
        self.default_policy = policy or BatchingPolicy()
        self.default_mode = mode
        self.metrics = metrics or ServeMetrics()
        self.costs = cost_accountant or CostAccountant()
        self.admission = AdmissionController(admission, metrics=self.metrics)
        #: the telemetry front door: ``tracer`` wins when given, else a
        #: fresh one from ``trace_policy`` (default policy: sampled).
        #: ``request_log`` is an optional StructuredLogger the HTTP
        #: layer (and in-process callers) emit per-request lines through.
        self.tracer = tracer if tracer is not None else Tracer(trace_policy)
        self.request_log = request_log
        self._backend = make_backend(
            backend, n_workers=n_workers, n_shards=n_shards,
            transport=transport, placement=placement, affinity=affinity,
        )
        self._models: "dict[str, _ModelEntry]" = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._started_at = time.monotonic()
        self._inflight_lock = threading.Lock()
        self._inflight_by_model: "dict[str, int]" = {}

    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    # -- model management ------------------------------------------------
    def add_model(
        self,
        name: str,
        qmodel: QuantizedModel,
        mode: str | None = None,
        policy: BatchingPolicy | None = None,
        arch_model: str | None = None,
        warm_shape: "tuple[int, int, int] | None" = None,
        archive: "object | None" = None,
        placement: "object | None" = None,
    ) -> None:
        """Register a model under ``name`` and open its batching lane.

        ``arch_model`` links cost annotations to a published zoo
        descriptor (its simulation is prewarmed here, off the request
        path); otherwise the descriptor is derived from the model
        structure on first cost-annotated request.  ``warm_shape`` (a
        ``(C, H, W)`` image shape) pre-warms every backend worker's
        engine buffers with one dummy batch so the first real request
        does not pay allocation costs.  ``archive`` is the model's NPZ
        path when one exists (e.g. from a registry): the process backend
        has its shards load from it instead of re-serializing.
        ``placement`` routes this model's lane to a shard-slot subset
        under the process backend (default: every shard); only those
        shards load the model, and its batches dispatch only to them.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        if name in self._models:
            raise ValueError(f"model {name!r} is already registered")
        mode = mode or self.default_mode
        if mode not in ("float", "int8", "sconna"):
            raise ValueError(f"unknown mode {mode!r}")
        descriptor = None
        if arch_model is not None:
            from repro.cnn.zoo import build_model

            descriptor = build_model(arch_model)
        entry = _ModelEntry(name=name, qmodel=qmodel, mode=mode, batcher=None,  # type: ignore[arg-type]
                            descriptor=descriptor)
        lane_policy = policy or self.default_policy
        warm = None
        if warm_shape is not None:
            entry.input_shape = tuple(int(d) for d in warm_shape)
            c, h, w = entry.input_shape
            warm = (min(lane_policy.max_batch_size, 4), c, h, w)
        # the backend must be able to execute the model before the lane
        # opens; under the process backend this blocks until every
        # placed shard acknowledges the load
        self._backend.add_model(
            name, qmodel, mode, archive=archive, warm=warm, placement=placement
        )
        if descriptor is not None:
            self.costs.prewarm(descriptor)
        entry.batcher = MicroBatcher(
            dispatch=lambda batch: self._backend.submit(
                entry.name, batch,
                lambda result: self._complete_batch(entry, batch, result),
            ),
            policy=lane_policy,
            name=f"batcher-{name}",
        )
        self._models[name] = entry

    def add_from_registry(
        self,
        registry,
        name: str,
        mode: str | None = None,
        policy: BatchingPolicy | None = None,
        warm_shape: "tuple[int, int, int] | None" = None,
        placement: "object | None" = None,
    ) -> None:
        """Load a registry entry and serve it under its registered name.

        The registry archive doubles as the hand-off point to shard
        worker processes, so a registry-backed model is never
        re-serialized for the process backend.  Shard placement comes
        from the manifest's ``placement`` field unless overridden here.
        """
        reg_entry = registry.entry(name)
        self.add_model(
            name,
            registry.load(name),
            mode=mode,
            policy=policy,
            arch_model=reg_entry.arch_model,
            warm_shape=warm_shape,
            archive=registry.archive_path(name),
            placement=placement if placement is not None else reg_entry.placement,
        )

    def models(self) -> "list[str]":
        """Names of the models added to this service, sorted."""
        return sorted(self._models)

    # -- request path ----------------------------------------------------
    def predict_async(
        self,
        model: str,
        image: np.ndarray,
        seed: int | None = None,
        ideal: bool = False,
        top_k: int = 1,
        with_cost: bool = False,
        trace: "object | None" = None,
    ) -> Future:
        """Enqueue one request; returns a future of :class:`Prediction`.

        ``image`` is one ``(C, H, W)`` image or an ``(n, C, H, W)``
        stack (served as one indivisible request).

        ``trace`` attaches an externally-owned telemetry Trace (the
        HTTP layer passes the one it started so decode/encode spans and
        service-side spans land in one tree).  When ``None``, the
        service consults its own :attr:`tracer` and - if the request is
        sampled - owns the trace end to end, committing it when the
        future resolves.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        entry = self._models.get(model)
        if entry is None:
            raise KeyError(f"unknown model {model!r}; registered: {self.models()}")
        # no dtype coercion here: integer batches ride the fused plan's
        # LUT entry natively (uint8/int8 never touches float64 between
        # socket and logits), and float batches are quantized once per
        # coalesced batch by the model itself
        images = np.asarray(image)
        if images.ndim == 3:
            images = images[None]
        if images.ndim != 4:
            raise ValueError("image must be (C, H, W) or (n, C, H, W)")
        # lane-shape gate: a geometry mismatch must fail *this* caller,
        # not poison the strangers it would be coalesced with
        shape = tuple(int(d) for d in images.shape[1:])
        if entry.input_shape is None:
            with entry.lock:
                if entry.input_shape is None:
                    entry.input_shape = shape
        if shape != entry.input_shape:
            raise ValueError(
                f"image shape {shape} does not match this model's "
                f"serving shape {entry.input_shape}"
            )
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        owns_trace = False
        if trace is None:
            trace = self.tracer.start("request", model=model)
            owns_trace = trace is not None
        elif trace.root.tags.get("model") is None:
            trace.set_tags(model=model)
        # the admission gate sits after validation (malformed requests
        # are client errors, not load) and before any queue is touched:
        # a shed request never allocates a lane slot or payload copy
        nbytes = int(images.nbytes)
        try:
            self.admission.admit(nbytes, trace=trace)
        except BaseException as exc:
            if owns_trace:
                self.tracer.finish(trace, status=type(exc).__name__)
            raise
        try:
            error_model = None
            if entry.mode == "sconna":
                error_model = (
                    SconnaErrorModel(adc_mape=0.0)
                    if ideal
                    else SconnaErrorModel(seed=seed)
                )
            request = InferenceRequest(
                request_id=next(self._ids),
                images=images,
                error_model=error_model,
                top_k=top_k,
                with_cost=with_cost,
                trace=trace,
            )
            # queue depth is a gauge - sampling every 16th request keeps
            # the submit path off the metrics lock at high request rates
            if request.request_id % 16 == 0:
                self.metrics.record_enqueue(entry.batcher.queue_depth())
            future = entry.batcher.submit(request)
        except BaseException as exc:
            self.admission.release(nbytes)
            if owns_trace:
                self.tracer.finish(trace, status=type(exc).__name__)
            raise
        with self._inflight_lock:
            self._inflight_by_model[model] = (
                self._inflight_by_model.get(model, 0) + 1
            )

        def _resolved(f, model=model, nbytes=nbytes,
                      trace=trace, owns_trace=owns_trace) -> None:
            self.admission.release(nbytes)
            with self._inflight_lock:
                self._inflight_by_model[model] -= 1
            if owns_trace:
                exc = f.exception() if not f.cancelled() else None
                self.tracer.finish(
                    trace,
                    status="ok" if exc is None and not f.cancelled()
                    else type(exc).__name__ if exc is not None
                    else "cancelled",
                )

        future.add_done_callback(_resolved)
        return future

    def predict(
        self,
        model: str,
        image: np.ndarray,
        seed: int | None = None,
        ideal: bool = False,
        top_k: int = 1,
        with_cost: bool = False,
        timeout: float | None = 30.0,
        trace: "object | None" = None,
    ) -> Prediction:
        """Blocking :meth:`predict_async`."""
        return self.predict_async(
            model, image, seed=seed, ideal=ideal, top_k=top_k,
            with_cost=with_cost, trace=trace,
        ).result(timeout)

    # -- batch completion (backend callback threads) ----------------------
    def _complete_batch(
        self,
        entry: _ModelEntry,
        batch: "list[InferenceRequest]",
        result: "BatchResult | BaseException",
    ) -> None:
        """Split a finished batch back into per-request predictions.

        Runs on whatever thread the backend completes on (a worker
        thread, or a shard collector); execution failures arrive as the
        raised exception and are routed to every waiting future.
        """
        if isinstance(result, BaseException):
            self._fail_batch(batch, result)
            return
        try:
            logits = result.logits
            # one descending argsort for the whole coalesced batch; each
            # request slices its own rows below
            order = np.argsort(logits, axis=1)[:, ::-1]
            done = time.monotonic()
            samples: list[tuple[float, float, int]] = []
            failed = 0
            start = 0
            for req in batch:
                sl = logits[start : start + req.n_images]
                req_order = order[start : start + req.n_images]
                start += req.n_images
                # per-request isolation: a failure here (cost annotation
                # is the usual suspect) fails only this caller, never the
                # strangers that shared the batch
                try:
                    cost = None
                    if req.with_cost:
                        cost = self.costs.annotate(
                            self._descriptor_for(entry, req), req.n_images
                        )
                    latency = done - req.enqueued_at
                    prediction = Prediction(
                        request_id=req.request_id,
                        model=entry.name,
                        logits=sl,
                        top_k=_top_k_lists(sl, req_order, req.top_k),
                        batch_images=result.n_images,
                        latency_s=latency,
                        cost=cost,
                    )
                except BaseException as exc:
                    failed += 1
                    self._fail_batch([req], exc)
                    continue
                samples.append(
                    (latency, result.exec_start - req.enqueued_at, req.n_images)
                )
                if not req.future.done():  # client may have cancelled
                    try:
                        req.future.set_result(prediction)
                    except futures.InvalidStateError:
                        pass  # lost the race with a cancel
            self.metrics.record_requests(samples)
            if failed:
                self.metrics.record_error(failed)
            unit = self._unit_cost(entry, batch[0])
            if unit is not None:
                energy_j, latency_s = unit
                n = int(result.n_images)
                self.metrics.record_cost(
                    entry.name, energy_j * n, latency_s * n, n
                )
        except BaseException as exc:  # completion-side failure (e.g. costs)
            self.metrics.record_error(len(batch))
            self._fail_batch(batch, exc)

    @staticmethod
    def _fail_batch(batch: "list[InferenceRequest]", exc: BaseException) -> None:
        for req in batch:
            if not req.future.done():
                try:
                    req.future.set_exception(exc)
                except futures.InvalidStateError:
                    pass  # lost the race with a cancel

    def _unit_cost(
        self, entry: _ModelEntry, req: InferenceRequest
    ) -> "tuple[float, float] | None":
        """Cached per-image simulated (energy_j, latency_s) for a lane.

        Every completed batch accumulates this into
        :meth:`ServeMetrics.record_cost`, so the metrics endpoint exports
        monotonic per-model energy/latency counters.  Zoo-linked models
        are prewarmed at registration; otherwise the first batch pays one
        cached simulation.  A derivation failure disables cost accounting
        for the lane instead of failing requests.
        """
        if entry.unit_cost is None and not entry.cost_disabled:
            try:
                res = self.costs.perf(self._descriptor_for(entry, req))
                entry.unit_cost = (float(res.energy_j), float(res.latency_s))
            except BaseException:
                entry.cost_disabled = True
        return entry.unit_cost

    def _descriptor_for(self, entry: _ModelEntry, req: InferenceRequest):
        if entry.descriptor is None:
            with entry.lock:
                if entry.descriptor is None:
                    c, h, w = req.images.shape[1:]
                    entry.descriptor = descriptor_from_quantized(
                        entry.qmodel, entry.name, (int(c), int(h), int(w))
                    )
        return entry.descriptor

    # -- metrics / lifecycle ---------------------------------------------
    def reset_metrics(self) -> None:
        """Discard request-side *and* every backend worker's metrics
        (benchmarks use this to keep warm-up traffic out of results)."""
        self.metrics.reset()
        self._backend.reset_metrics()

    def metrics_state(self) -> dict:
        """The raw mergeable counter export behind
        ``/v1/metrics?format=state``: this service's request-side and
        every backend worker's execution-side counters pre-merged into
        one :meth:`~repro.serve.metrics.ServeMetrics.state` dict, plus
        the identity a fleet router needs (models, backend topology).
        Feed the ``metrics`` field back through
        :meth:`ServeMetrics.merge` to aggregate across replicas."""
        agg = ServeMetrics.merged([self.metrics, *self._backend.metrics_states()])
        return {
            "metrics": agg.state(),
            "models": self.models(),
            "backend": self._backend.info(),
        }

    def metrics_snapshot(self) -> dict:
        """One aggregated view: request-side metrics (this object) merged
        with every backend worker's / shard's execution-side metrics."""
        agg = ServeMetrics.merged([self.metrics, *self._backend.metrics_states()])
        snap = agg.snapshot()
        snap["models"] = self.models()
        snap["backend"] = self._backend.info()
        snap["costs"] = self.costs.stats()
        snap["admission"] = self.admission.stats()
        snap["uptime_s"] = round(time.monotonic() - self._started_at, 3)
        snap["queue_depth_current"] = sum(
            entry.batcher.queue_depth()
            for entry in self._models.values()
            if entry.batcher is not None
        )
        with self._inflight_lock:
            snap["inflight_by_model"] = {
                name: count
                for name, count in sorted(self._inflight_by_model.items())
                if count
            }
        snap["telemetry"] = self.tracer.stats()
        return snap

    def close(self, timeout: float | None = 10.0) -> None:
        """Graceful shutdown: drain every lane, then stop the backend.

        Requests already submitted complete; new submissions raise.
        Under the process backend this also reaps every shard process.
        A lane that fails to drain in time does not block the rest of
        the teardown - every lane and the backend are always attempted
        (otherwise one stuck scheduler would leak shard processes
        forever), and the first failure is re-raised at the end.
        """
        if self._closed:
            return
        self._closed = True
        errors: "list[BaseException]" = []
        for entry in self._models.values():
            try:
                entry.batcher.close(timeout)
            except BaseException as exc:
                errors.append(exc)
        try:
            self._backend.close(timeout)
        except BaseException as exc:
            errors.append(exc)
        if errors:
            raise errors[0]

    def __enter__(self) -> "SconnaService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _top_k_lists(
    logits: np.ndarray, order: np.ndarray, k: int
) -> "list[list[tuple[int, float]]]":
    """Per-image (class, logit) pairs, best first (``order`` precomputed)."""
    k = min(k, logits.shape[1])
    return [
        [(int(c), float(logits[i, c])) for c in order[i, :k]]
        for i in range(logits.shape[0])
    ]


class ShutdownHandlers:
    """Installed SIGINT/SIGTERM handlers that drain a service on signal.

    Relying on garbage collection to stop a service leaks shard worker
    processes when the interpreter is killed mid-serve; these handlers
    make a signal perform the orderly teardown instead: HTTP servers
    stop accepting, every lane drains, the backend reaps its workers -
    no orphaned children.  After cleanup the previous handler is
    restored and (when ``chain=True``) the signal re-raised, so default
    process-exit semantics still apply.

    Use :func:`install_shutdown_handlers`; call from the main thread
    (CPython only delivers signals there).  HTTP servers passed in must
    be running ``serve_forever`` on *another* thread (as
    :func:`~repro.serve.httpd.serve_http` does) - ``shutdown()`` blocks
    until that loop exits.
    """

    def __init__(
        self,
        service,
        servers: "tuple | list" = (),
        signals: "tuple[int, ...]" = (signal_module.SIGINT, signal_module.SIGTERM),
        chain: bool = True,
        timeout: float | None = 10.0,
    ) -> None:
        self.service = service
        self.servers = tuple(servers)
        self.chain = chain
        self.timeout = timeout
        self.triggered: "int | None" = None
        self._done = threading.Event()
        self._previous: "dict[int, object]" = {}
        for signum in signals:
            self._previous[signum] = signal_module.signal(signum, self._handle)

    def _handle(self, signum, frame) -> None:
        self.trigger(signum)
        if self.chain:
            signal_module.raise_signal(signum)

    def trigger(self, signum: int) -> None:
        """Run the teardown (idempotent); restores the previous handlers."""
        first = self.triggered is None
        self.triggered = signum
        if not first:
            return
        for server in self.servers:
            try:
                server.shutdown()
            except Exception:
                pass
        try:
            self.service.close(self.timeout)
        finally:
            self.restore()
            self._done.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until a signal has completed the teardown."""
        return self._done.wait(timeout)

    def restore(self) -> None:
        """Put the previous signal handlers back."""
        for signum, previous in self._previous.items():
            try:
                signal_module.signal(signum, previous)
            except (ValueError, TypeError):
                pass  # not the main thread / handler not restorable
        self._previous = {}


def install_shutdown_handlers(
    service,
    servers: "tuple | list" = (),
    signals: "tuple[int, ...]" = (signal_module.SIGINT, signal_module.SIGTERM),
    chain: bool = True,
    timeout: float | None = 10.0,
) -> ShutdownHandlers:
    """Install SIGINT/SIGTERM handlers that drain ``service`` (and shut
    down the given HTTP ``servers`` first); returns the handle."""
    return ShutdownHandlers(
        service, servers=servers, signals=signals, chain=chain, timeout=timeout
    )
