"""On-disk model registry: named, versionable QuantizedModel storage.

Layout under the registry root::

    <root>/<name>.npz    the model archive (repro.cnn.serialization)
    <root>/<name>.json   manifest: arch link, precision, user metadata

The manifest's optional ``arch_model`` field links a stored model to one
of the published :mod:`repro.cnn.zoo` architectures (``MODEL_BUILDERS``
names) so the serving layer can annotate its requests with the paper
network's simulated cost; without it the cost module derives a
descriptor from the quantized structure itself.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.cnn.inference import QuantizedModel
from repro.cnn.zoo import MODEL_BUILDERS

#: registry names double as file stems - keep them path-safe
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid registry name {name!r}: use letters, digits, '.', '_', '-'"
        )
    return name


@dataclass(frozen=True)
class RegistryEntry:
    """Manifest of one registered model."""

    name: str
    path: Path                      #: the .npz archive
    precision_bits: int
    arch_model: str | None = None   #: linked zoo architecture, if any
    created_at: float = 0.0         #: unix timestamp of registration
    metadata: dict = field(default_factory=dict)
    #: preferred shard slots under the process backend (None: every
    #: shard) - the serving layer's default placement for this model
    placement: "tuple[int, ...] | None" = None
    #: kernel-variant choices recorded by the graph planner's autotuner
    #: (mirrored from the archive so operators can inspect a served
    #: model's tuning without opening the NPZ; the archive copy is what
    #: the loaded model actually uses)
    autotune: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-serializable entry summary (what ``/v1/models`` lists)."""
        return {
            "name": self.name,
            "file": self.path.name,
            "precision_bits": self.precision_bits,
            "arch_model": self.arch_model,
            "created_at": self.created_at,
            "metadata": self.metadata,
            "placement": None if self.placement is None else list(self.placement),
            "autotune": self.autotune,
        }


class ModelRegistry:
    """Directory-backed store of named quantized models."""

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- writing ---------------------------------------------------------
    def save(
        self,
        name: str,
        qmodel: QuantizedModel,
        arch_model: str | None = None,
        metadata: dict | None = None,
        placement: "object | None" = None,
    ) -> RegistryEntry:
        """Store ``qmodel`` under ``name`` (overwrites an existing entry).

        ``placement`` persists a preferred shard-slot subset in the
        manifest; ``SconnaService.add_from_registry`` applies it as the
        model's default placement under the process backend.
        """
        _check_name(name)
        if arch_model is not None and arch_model not in MODEL_BUILDERS:
            raise ValueError(
                f"unknown arch_model {arch_model!r}; "
                f"available: {sorted(MODEL_BUILDERS)}"
            )
        if placement is not None:
            # one source of truth for slot normalization/validation
            from repro.serve.backends import ShardPlacement

            placement = ShardPlacement({name: placement}).assignments[name]
        path = self.root / f"{name}.npz"
        qmodel.save(path)
        entry = RegistryEntry(
            name=name,
            path=path,
            precision_bits=qmodel.precision_bits,
            arch_model=arch_model,
            created_at=time.time(),
            metadata=dict(metadata or {}),
            placement=placement,
            autotune=dict(getattr(qmodel, "autotune", {}) or {}),
        )
        manifest = entry.as_dict()
        (self.root / f"{name}.json").write_text(json.dumps(manifest, indent=2))
        return entry

    def delete(self, name: str) -> None:
        """Remove a registered model's weights and manifest from disk."""
        _check_name(name)
        found = False
        for suffix in (".npz", ".json"):
            p = self.root / f"{name}{suffix}"
            if p.exists():
                p.unlink()
                found = True
        if not found:
            raise KeyError(f"no registered model named {name!r}")

    # -- reading ---------------------------------------------------------
    def entry(self, name: str) -> RegistryEntry:
        """The manifest-backed entry for ``name`` (``KeyError`` if unknown)."""
        _check_name(name)
        manifest_path = self.root / f"{name}.json"
        if not manifest_path.exists():
            raise KeyError(f"no registered model named {name!r}")
        manifest = json.loads(manifest_path.read_text())
        placement = manifest.get("placement")
        return RegistryEntry(
            name=manifest["name"],
            path=self.root / manifest["file"],
            precision_bits=int(manifest["precision_bits"]),
            arch_model=manifest.get("arch_model"),
            created_at=float(manifest.get("created_at", 0.0)),
            metadata=manifest.get("metadata", {}),
            placement=None if placement is None
            else tuple(int(s) for s in placement),
            autotune=manifest.get("autotune", {}) or {},
        )

    def load(self, name: str) -> QuantizedModel:
        """Rebuild the named model, plans compiled and ready to serve."""
        return QuantizedModel.load(self.entry(name).path)

    def archive_path(self, name: str) -> Path:
        """The on-disk NPZ archive of a registered model.

        Shard worker processes load models straight from this path, so a
        shared registry directory is the natural hand-off point between a
        serving parent and its workers.
        """
        path = self.entry(name).path
        if not path.exists():
            raise KeyError(
                f"registry manifest for {name!r} points at missing archive {path}"
            )
        return path

    def names(self) -> "list[str]":
        """Registered model names, sorted."""
        return sorted(p.stem for p in self.root.glob("*.json"))

    def __contains__(self, name: str) -> bool:
        return (self.root / f"{name}.json").exists()

    def __len__(self) -> int:
        return len(self.names())
