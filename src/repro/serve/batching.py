"""Dynamic micro-batching: coalesce requests into engine-sized batches.

The vectorized engine's throughput comes from amortizing Python and
kernel-launch overhead across the batch axis, but serving traffic
arrives one image at a time.  The :class:`MicroBatcher` closes that gap:
requests enter a queue; a scheduler thread pops the first request and
scoops everything already queued into one batch (up to
``max_batch_size`` images), dispatching the moment the queue is
momentarily drained - *continuous batching*, where coalescing emerges
from backpressure: while a worker computes one batch, new arrivals pile
up and become the next batch.  Under load batches grow toward the cap;
a lone request at a quiet moment is dispatched immediately, paying no
batching latency at all.

For open-loop trickle traffic a policy can instead trade latency for
batch size: with ``min_fill > 1`` an open batch below ``min_fill``
images blocks for more work until ``max_wait_ms`` has elapsed since the
batch opened, then flushes whatever it has.

Coalescing rules:

* requests are never split - a request carrying more images than
  ``max_batch_size`` is dispatched as its own oversized batch (this
  keeps each request's RNG stream contiguous, see
  :class:`repro.stochastic.error_models.PerRequestErrorModels`);
* a gathered request that would overflow the open batch is carried over
  as the first member of the next batch, preserving arrival order.

Shutdown is graceful by default: :meth:`close` rejects new submissions,
drains everything already queued through the dispatcher, then joins the
scheduler thread - in-flight requests complete rather than error.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent import futures
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

#: queue marker that wakes the scheduler for shutdown
_SENTINEL = object()


@dataclass(frozen=True)
class BatchingPolicy:
    """Coalescing limits of one scheduler."""

    max_batch_size: int = 32     #: images per dispatched batch
    max_wait_ms: float = 2.0     #: max hold time while below ``min_fill``
    min_fill: int = 1            #: images below which an open batch waits

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0.0:
            raise ValueError("max_wait_ms must be >= 0")
        if not (1 <= self.min_fill <= self.max_batch_size):
            raise ValueError("min_fill must be in [1, max_batch_size]")


@dataclass
class InferenceRequest:
    """One client request travelling through the scheduler."""

    request_id: int
    images: np.ndarray               #: (n, C, H, W) batch slice; dtype is
                                     #: preserved end to end (uint8/int8
                                     #: frames stay integer-native)
    error_model: object | None       #: per-request SconnaErrorModel (or None)
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    top_k: int = 1
    with_cost: bool = False
    trace: object | None = None      #: sampled telemetry Trace (or None);
                                     #: duck-typed so this module stays
                                     #: import-independent of telemetry

    @property
    def n_images(self) -> int:
        return int(self.images.shape[0])


class MicroBatcher:
    """Queue + scheduler thread implementing one model's batching lane.

    ``dispatch`` receives ``list[InferenceRequest]`` for every coalesced
    batch; it must not raise (the service wraps execution and routes
    failures to the request futures).
    """

    def __init__(
        self,
        dispatch,
        policy: BatchingPolicy | None = None,
        name: str = "microbatcher",
    ) -> None:
        self.policy = policy or BatchingPolicy()
        self._dispatch = dispatch
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._batch_ids = itertools.count(1)
        self._carry: InferenceRequest | None = None
        self._closed = False
        self._submit_lock = threading.Lock()
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self._thread.start()

    # -- client side -----------------------------------------------------
    def submit(self, request: InferenceRequest) -> Future:
        """Enqueue a request; returns its future."""
        # the lock orders the closed-check + put against close()'s
        # sentinel: a request either precedes the sentinel in the queue
        # (and is drained) or the submitter sees closed and raises -
        # never silently enqueued behind a finished scheduler
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._queue.put(request)
        return request.future

    def queue_depth(self) -> int:
        """Requests waiting for a batch (approximate, for metrics)."""
        return self._queue.qsize() + (1 if self._carry is not None else 0)

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop accepting work, drain the queue, join the scheduler."""
        with self._submit_lock:
            if not self._closed:
                self._closed = True
                self._queue.put(_SENTINEL)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("scheduler thread did not drain in time")

    @property
    def closed(self) -> bool:
        return self._closed

    # -- scheduler side --------------------------------------------------
    def _safe_dispatch(self, batch: "list[InferenceRequest]") -> None:
        """Dispatch one batch; a raising dispatcher fails the batch's
        futures instead of killing the scheduler thread.

        The execution backend behind ``dispatch`` normally routes
        failures through the futures itself, but the *submission* can
        raise (e.g. the backend lost its last shard, or was closed by a
        racing shutdown) - those requests must still get an answer.
        """
        batch_id = next(self._batch_ids)
        traced = [req for req in batch if req.trace is not None]
        if traced:
            now = time.monotonic()
            opened_at = min(req.enqueued_at for req in batch)
            n_images = sum(req.n_images for req in batch)
            for req in traced:
                req.trace.add_span("queue.wait", req.enqueued_at, now)
                req.trace.add_span(
                    "batch.form", opened_at, now,
                    tags={"batch_requests": len(batch),
                          "batch_images": n_images},
                )
                req.trace.set_tags(batch_id=batch_id,
                                   batch_requests=len(batch),
                                   batch_images=n_images)
        try:
            self._dispatch(batch)
        except BaseException as exc:
            for req in batch:
                if not req.future.done():
                    try:
                        req.future.set_exception(exc)
                    except futures.InvalidStateError:
                        pass  # lost the race with a cancel

    def _next(self, timeout: float | None) -> object | None:
        """Carry-over first, then the queue; None on timeout."""
        if self._carry is not None:
            req, self._carry = self._carry, None
            return req
        try:
            return self._queue.get(timeout=timeout) if timeout is not None else self._queue.get()
        except queue.Empty:
            return None

    def _loop(self) -> None:
        cap = self.policy.max_batch_size
        min_fill = self.policy.min_fill
        max_wait_s = self.policy.max_wait_ms / 1e3
        stopping = False
        while not stopping:
            first = self._next(timeout=None)
            if first is _SENTINEL:
                break
            batch: list[InferenceRequest] = [first]
            n = first.n_images
            deadline = time.monotonic() + max_wait_s
            while n < cap:
                # scoop whatever is already queued without waiting
                item = self._next(timeout=0.0)
                if item is None:
                    if stopping or n >= min_fill:
                        break
                    # below min_fill: hold the batch open until the
                    # deadline, hoping for companions
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    item = self._next(timeout=remaining)
                    if item is None:
                        break
                if item is _SENTINEL:
                    stopping = True
                    continue
                if n + item.n_images > cap:
                    self._carry = item
                    break
                batch.append(item)
                n += item.n_images
            self._safe_dispatch(batch)
            if stopping and self._carry is None and self._queue.empty():
                break
        # a carried-over request can outlive the sentinel; flush it
        while self._carry is not None or not self._queue.empty():
            item = self._next(timeout=0.0)
            if item is None:
                break
            if item is not _SENTINEL:
                self._safe_dispatch([item])
