"""``python -m repro.serve`` - the standalone HTTP serving CLI.

Serves registry models over HTTP/1.1 (JSON and the binary tensor wire
of :mod:`repro.serve.wire`), with backend selection (``--backend
--shards --transport --placement --affinity``) and admission control
(``--max-inflight --max-queued-mb``).

Delegates to :func:`repro.serve.httpd.main` (this entry avoids the
runpy double-import warning that ``python -m repro.serve.httpd`` prints
because the package's ``__init__`` already imports that module).  The
``__main__`` guard matters: shard worker processes re-import the parent
main module under ``__mp_main__`` and must not start a second server.
"""

from repro.serve.httpd import main

if __name__ == "__main__":
    main()
