"""Replica-tier router: one front-end, N ``repro.serve`` replicas.

Everything below ``repro.serve.router`` scales *within* one process
tree (threads, shard processes, shm rings); this module is the first
step from "a server" to "a fleet": a stdlib HTTP front-end that
load-balances keep-alive connections across multiple independent
server replicas (``python -m repro.serve`` processes, typically one
per host or one per NUMA domain), each fronting the same model
registry.

Design, in the order an operator cares:

* **Per-model consistent routing.**  Each model name is rendezvous-
  hashed over the replica set (highest-random-weight: score =
  ``sha256(model | replica_url)``), and its requests prefer the top
  ``lanes_per_model`` replicas.  This is the
  :class:`~repro.serve.backends.ShardPlacement` idiom one level up:
  a model's batching lane, warm engine buffers, and autotuned plans
  stay hot on a small replica subset instead of being diluted across
  the whole fleet, and adding/removing a replica only remaps the
  models that hashed onto it.
* **Health checks with ejection and re-admission.**  A background
  prober GETs every replica's ``/healthz`` on an interval; after
  ``eject_after`` consecutive failures the replica stops receiving
  traffic, and after ``readmit_after`` consecutive successes it
  rejoins.  Connection-level forwarding failures count as health
  failures too, so a crashed replica is ejected by live traffic
  before the prober's next tick.
* **Redispatch.**  A request caught on a dying replica (connection
  refused, reset, or the replica vanished before a status line was
  written) is transparently re-sent to the next replica in its
  routing order, up to ``max_retries`` attempts.  This honours the
  seeded-request reproducibility contract: replicas serve the same
  registry, and a seeded request's logits are a pure function of
  (weights, seed), so a redispatched seeded request returns the
  bit-identical answer the dead replica would have.  Once response
  bytes have been relayed the request is never re-sent (the replica
  executed it; a retry would double noise draws for unseeded
  requests) - a mid-response death surfaces as a 502.
* **Graceful drain.**  :meth:`Router.drain` (or ``POST
  /v1/router/drain?replica=...``) marks a replica draining: no new
  requests are routed to it, in-flight ones complete, and the call
  returns when the replica is idle - restart it, and the health
  prober re-admits it.  ``undrain`` reverses the mark.
* **Fleet-wide metrics.**  ``GET /v1/metrics`` fetches every live
  replica's raw counter state (``/v1/metrics?format=state``, the same
  export shards ship to their parent) and folds them through
  :meth:`~repro.serve.metrics.ServeMetrics.merge` into one snapshot
  that reads exactly like a single server's, plus a ``fleet`` section
  (per-replica health/traffic topology) and a ``router`` section
  (forward/retry/shed counters).  ``?format=prometheus`` renders the
  same text exposition single servers serve.
* **Telemetry.**  The router runs its own
  :class:`~repro.serve.telemetry.Tracer`: a sampled request's trace
  carries ``router.route`` and per-attempt ``router.forward`` spans,
  and the router's trace id is propagated to the replica in the
  ``X-Sconna-Parent-Trace`` header - the replica traces the request
  under the *same* id, so ``/v1/trace/<id>`` on the router shows the
  hop and the same path on the replica shows queue/backend/shard
  spans: router -> replica -> shard, one id end to end.

Routes (the predict/metrics/trace surface mirrors a single server, so
``SconnaClient`` points at a router unchanged)::

    GET  /healthz               -> router liveness + replica counts
    GET  /v1/models             -> union of live replicas' models
    GET  /v1/metrics            -> fleet-merged snapshot (+ fleet/router
                                   sections); ?format=prometheus
    GET  /v1/trace[...]         -> the router's own trace store
    GET  /v1/router             -> routing topology (per-replica state,
                                   per-model preferred lanes)
    POST /v1/router/drain       -> ?replica=<url|id> graceful drain
    POST /v1/router/undrain     -> ?replica=<url|id> accept traffic again
    POST /v1/predict            -> routed + relayed (streaming included)

CLI - front an existing fleet, or spawn one::

    python -m repro.serve.router --replica http://127.0.0.1:8001 \
        --replica http://127.0.0.1:8002 --port 8000
    python -m repro.serve.router --replica-of MODELS_DIR --n-replicas 2 \
        --port 8000 -- --backend process --shards 1
"""

from __future__ import annotations

import hashlib
import http.client
import itertools
import json
import socket
import threading
import time
import urllib.parse
from dataclasses import dataclass

from repro.serve.httpd import _ServeHandler, ServeHTTPServer
from repro.serve.metrics import ServeMetrics
from repro.serve.telemetry import Tracer, TracePolicy
from repro.serve.wire import CONTENT_TYPE_FRAME, CONTENT_TYPE_NPY

#: request header the router sets so replicas join the router's trace
PARENT_TRACE_HEADER = "X-Sconna-Parent-Trace"
#: response header naming the replica that served a routed request
REPLICA_HEADER = "X-Sconna-Replica"

#: hop-by-hop headers that must not be relayed verbatim (the router
#: re-frames the body and owns its own connection lifecycle)
_HOP_HEADERS = frozenset((
    "connection", "keep-alive", "transfer-encoding", "content-length",
    "te", "trailer", "upgrade", "proxy-connection",
))


class ReplicaError(RuntimeError):
    """A replica could not take (or finish receiving) a request."""


@dataclass(frozen=True)
class RouterPolicy:
    """Tunables of one :class:`Router`.

    ``lanes_per_model`` is the preferred replica-subset size per model
    (the consistent-routing fan-out; requests spill past it only when
    every preferred replica is out).  ``eject_after`` /
    ``readmit_after`` are consecutive health-probe failures/successes
    before a replica leaves/rejoins the rotation.  ``max_retries``
    bounds forward attempts per request (1 = never redispatch).
    """

    lanes_per_model: int = 2
    health_interval_s: float = 1.0
    eject_after: int = 2
    readmit_after: int = 2
    max_retries: int = 3
    retry_after_s: float = 0.25     #: Retry-After hint on a 503
    connect_timeout_s: float = 5.0
    request_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.lanes_per_model < 1:
            raise ValueError("lanes_per_model must be >= 1")
        if self.eject_after < 1 or self.readmit_after < 1:
            raise ValueError("eject_after/readmit_after must be >= 1")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")

    def as_dict(self) -> dict:
        """JSON-serializable policy knobs (reported under ``/v1/router``)."""
        return {
            "lanes_per_model": self.lanes_per_model,
            "health_interval_s": self.health_interval_s,
            "eject_after": self.eject_after,
            "readmit_after": self.readmit_after,
            "max_retries": self.max_retries,
        }


class Replica:
    """One upstream server: its address, health state, and a small
    keep-alive connection pool (connections are reused across routed
    requests, so the router adds no per-request TCP handshake)."""

    def __init__(self, url: str, policy: RouterPolicy) -> None:
        parsed = urllib.parse.urlsplit(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"only http:// replicas are supported: {url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.url = f"http://{self.host}:{self.port}"
        self.policy = policy
        self.replica_id: "str | None" = None   #: learned from /healthz
        self._lock = threading.Lock()
        self._pool: "list[http.client.HTTPConnection]" = []
        # health state (guarded by _lock)
        self.healthy = True
        self.draining = False
        self._consecutive_fails = 0
        self._consecutive_oks = 0
        # traffic counters (guarded by _lock)
        self.inflight = 0
        self.routed = 0
        self.failures = 0
        self.ejections = 0
        self.last_error: "str | None" = None

    # -- connection pool -------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.policy.connect_timeout_s
        )
        conn.connect()
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn.sock.settimeout(self.policy.request_timeout_s)
        return conn

    def _acquire(self) -> "tuple[http.client.HTTPConnection, bool]":
        """An idle pooled connection (True: may be stale) or a fresh one."""
        with self._lock:
            if self._pool:
                return self._pool.pop(), True
        return self._connect(), False

    def release(self, conn: http.client.HTTPConnection, ok: bool = True) -> None:
        """Hand a connection back after its response body was consumed.

        ``ok=False`` closes it instead of pooling - a half-read
        response would desync the next request on that connection.
        """
        if ok:
            with self._lock:
                self._pool.append(conn)
            return
        try:
            conn.close()
        except Exception:
            pass

    def _close_pool(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, []
        for conn in pool:
            try:
                conn.close()
            except Exception:
                pass

    def request(
        self, method: str, path: str, body: "bytes | None" = None,
        headers: "dict[str, str] | None" = None,
    ) -> "tuple[http.client.HTTPConnection, http.client.HTTPResponse]":
        """One upstream round trip to the status line.

        Returns the live ``(connection, response)`` pair - the caller
        relays the body, then hands the connection back with
        :meth:`_release` (or closes it on a relay error).  A stale
        pooled keep-alive connection is rebuilt once; any other failure
        raises :class:`ReplicaError` - the request never produced a
        status line, so the router may safely redispatch it.
        """
        for attempt in (0, 1):
            conn = None
            pooled = False
            try:
                conn, pooled = self._acquire()
                conn.request(method, path, body=body, headers=headers or {})
                return conn, conn.getresponse()
            except (http.client.HTTPException, TimeoutError, OSError) as exc:
                if conn is not None:
                    try:
                        conn.close()
                    except Exception:
                        pass
                # a pooled connection the replica idled out is not a
                # replica failure - rebuild once; a fresh connection
                # failing (refused, timed out, reset) is the real thing
                if attempt or not pooled or isinstance(
                        exc, (ConnectionRefusedError, TimeoutError)):
                    raise ReplicaError(
                        f"{self.url}: {type(exc).__name__}: {exc}"
                    ) from exc
        raise AssertionError("unreachable")

    # -- health accounting -----------------------------------------------
    def record_success(self) -> "bool":
        """One good probe/forward; returns True on an ejected->healthy
        transition (re-admission)."""
        with self._lock:
            self._consecutive_fails = 0
            self._consecutive_oks += 1
            if (not self.healthy
                    and self._consecutive_oks >= self.policy.readmit_after):
                self.healthy = True
                self.last_error = None
                return True
        return False

    def record_failure(self, error: str) -> "bool":
        """One failed probe/forward; returns True on a healthy->ejected
        transition."""
        self._close_pool()
        with self._lock:
            self._consecutive_oks = 0
            self._consecutive_fails += 1
            self.failures += 1
            self.last_error = error
            if (self.healthy
                    and self._consecutive_fails >= self.policy.eject_after):
                self.healthy = False
                self.ejections += 1
                return True
        return False

    @property
    def available(self) -> bool:
        """Eligible for new traffic (healthy and not draining)."""
        with self._lock:
            return self.healthy and not self.draining

    def state(self) -> dict:
        """Health/traffic snapshot (one ``replicas[]`` row of ``/v1/router``)."""
        with self._lock:
            return {
                "url": self.url,
                "replica_id": self.replica_id,
                "healthy": self.healthy,
                "draining": self.draining,
                "inflight": self.inflight,
                "routed": self.routed,
                "failures": self.failures,
                "ejections": self.ejections,
                "last_error": self.last_error,
            }

    def matches(self, key: str) -> bool:
        """Does ``key`` address this replica (id, URL, or URL suffix)?"""
        return key in (self.url, self.replica_id) or self.url.endswith(key)


class Router:
    """Routing brain: replica set, health prober, fleet aggregation.

    Pair it with :class:`RouterHTTPServer` for the HTTP front-end, or
    drive :meth:`forward` directly from tests.  The object deliberately
    quacks like a :class:`~repro.serve.service.SconnaService` where the
    shared GET routes are concerned (``models()``,
    ``metrics_snapshot()``, ``tracer``), so the single-server HTTP
    handler code serves a fleet unchanged.
    """

    def __init__(
        self,
        replica_urls: "list[str]",
        policy: "RouterPolicy | None" = None,
        tracer: "Tracer | None" = None,
        trace_policy: "TracePolicy | None" = None,
        request_log: "object | None" = None,
        probe_in_background: bool = True,
    ) -> None:
        if not replica_urls:
            raise ValueError("a router needs at least one replica URL")
        self.policy = policy or RouterPolicy()
        self.replicas = [Replica(url, self.policy) for url in replica_urls]
        if len({r.url for r in self.replicas}) != len(self.replicas):
            raise ValueError(f"duplicate replica URLs in {replica_urls!r}")
        self.tracer = tracer if tracer is not None else Tracer(trace_policy)
        self.request_log = request_log
        self._rr = itertools.count()
        self._lock = threading.Lock()
        self._started_at = time.monotonic()
        # router-level counters (not merged into fleet metrics - the
        # replicas already count every request they executed)
        self.routed_total = 0
        self.redispatches = 0
        self.unroutable = 0         #: 503s: no available replica
        self.proxy_errors = 0       #: 502s: replicas died mid-request
        self._closed = False
        self._probe_wake = threading.Event()
        self._prober: "threading.Thread | None" = None
        # probe_in_background=False leaves probing entirely to explicit
        # probe_now() calls - deterministic health transitions in tests
        if probe_in_background:
            self._prober = threading.Thread(
                target=self._probe_loop, name="router-health", daemon=True
            )
            self._prober.start()

    # -- consistent routing ----------------------------------------------
    @staticmethod
    def _score(model: str, url: str) -> int:
        digest = hashlib.sha256(f"{model}|{url}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def ranked(self, model: "str | None") -> "list[Replica]":
        """Every replica in this request's routing order.

        A named model gets its rendezvous-hash order (stable across
        requests, so its preferred ``lanes_per_model`` replicas keep
        its lanes warm; the rest follow as spill-over).  A model-less
        request round-robins so un-routable work still spreads.
        """
        if model:
            return sorted(
                self.replicas,
                key=lambda r: self._score(model, r.url),
                reverse=True,
            )
        n = len(self.replicas)
        start = next(self._rr) % n
        return [self.replicas[(start + i) % n] for i in range(n)]

    def lanes_for(self, model: str) -> "list[str]":
        """The model's preferred replica subset (the warm lanes)."""
        ranked = self.ranked(model)
        return [r.url for r in ranked[: self.policy.lanes_per_model]]

    def candidates(self, model: "str | None") -> "list[Replica]":
        """Available replicas in routing order, preferred lanes first."""
        ranked = self.ranked(model)
        available = [r for r in ranked if r.available]
        if model and len(available) > self.policy.lanes_per_model:
            lanes = set(self.lanes_for(model))
            available.sort(key=lambda r: r.url not in lanes)
        return available

    # -- forwarding ------------------------------------------------------
    def forward(
        self,
        model: "str | None",
        method: str,
        path: str,
        body: "bytes | None",
        headers: "dict[str, str]",
        trace=None,
        info: "dict | None" = None,
    ) -> "tuple[Replica, http.client.HTTPConnection, http.client.HTTPResponse]":
        """Route one request; redispatch across replicas on failure.

        Returns the winning ``(replica, connection, response)`` with
        the response read up to the status line - the caller relays
        the body and settles the connection via
        :meth:`settle_forward`.  Raises :class:`ReplicaError` when no
        available replica accepted the request (mapped to 503/502 by
        the HTTP front-end).  ``info``, when given, is filled in place
        with routing facts for the access log: the ``replica`` chosen,
        how many ``redispatches`` it took to land, and the upstream
        ``status`` - filled even on the failure paths, so the log
        tells the truth about requests that never found a home.
        """
        if info is not None:
            info.setdefault("redispatches", 0)
        candidates = self.candidates(model)[: self.policy.max_retries]
        if not candidates:
            with self._lock:
                self.unroutable += 1
            raise ReplicaError(
                f"no available replica for model {model!r} "
                f"({len(self.replicas)} configured)"
            )
        last_error: "ReplicaError | None" = None
        for attempt, replica in enumerate(candidates):
            with replica._lock:
                replica.inflight += 1
            t0 = time.monotonic() if trace is not None else 0.0
            try:
                conn, resp = replica.request(method, path, body, headers)
            except ReplicaError as exc:
                with replica._lock:
                    replica.inflight -= 1
                replica.record_failure(str(exc))
                with self._lock:
                    if attempt + 1 < len(candidates):
                        self.redispatches += 1
                last_error = exc
                if trace is not None:
                    trace.add_span(
                        "router.forward", t0, time.monotonic(),
                        tags={"replica": replica.url, "error": str(exc)},
                    )
                continue
            replica.record_success()
            with replica._lock:
                replica.routed += 1
            with self._lock:
                self.routed_total += 1
            if info is not None:
                info["replica"] = replica.replica_id or replica.url
                info["redispatches"] = attempt
                info["status"] = resp.status
            if trace is not None:
                trace.add_span(
                    "router.forward", t0, time.monotonic(),
                    tags={
                        "replica": replica.url,
                        "attempt": attempt,
                        "status": resp.status,
                    },
                )
            return replica, conn, resp
        with self._lock:
            self.proxy_errors += 1
        if info is not None:
            info["redispatches"] = len(candidates)
        raise ReplicaError(
            f"every candidate replica failed for model {model!r}: "
            f"{last_error}"
        )

    def settle_forward(
        self, replica: Replica, conn: http.client.HTTPConnection,
        ok: bool,
    ) -> None:
        """Return a forwarded request's connection after the relay.

        ``ok=False`` (the relay died mid-body) closes the connection
        instead of pooling it and counts a proxy error.
        """
        with replica._lock:
            replica.inflight -= 1
        if not ok:
            with self._lock:
                self.proxy_errors += 1
        replica.release(conn, ok=ok)

    # -- drain / admin ---------------------------------------------------
    def _find(self, key: str) -> Replica:
        for replica in self.replicas:
            if replica.matches(key):
                return replica
        raise KeyError(
            f"no replica matches {key!r}; configured: "
            f"{[r.url for r in self.replicas]}"
        )

    def drain(self, key: str, timeout: "float | None" = 30.0) -> dict:
        """Stop routing to a replica and wait until it is idle.

        Returns its final state; the replica can then be restarted
        safely - no request is in flight on it.  The health prober
        keeps probing a draining replica, so after a restart an
        ``undrain`` (or router restart) re-admits it with warm state.
        """
        replica = self._find(key)
        with replica._lock:
            replica.draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with replica._lock:
                idle = replica.inflight == 0
            if idle:
                return replica.state()
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"replica {replica.url} still has "
                    f"{replica.inflight} in-flight request(s)"
                )
            time.sleep(0.01)

    def undrain(self, key: str) -> dict:
        """Mark a drained replica eligible for traffic again."""
        replica = self._find(key)
        with replica._lock:
            replica.draining = False
        return replica.state()

    # -- health probing --------------------------------------------------
    def _probe_once(self, replica: Replica) -> None:
        try:
            conn, resp = replica.request("GET", "/healthz")
        except ReplicaError as exc:
            replica.record_failure(str(exc))
            return
        try:
            payload = resp.read()
        except OSError as exc:
            replica.record_failure(f"healthz read failed: {exc}")
            replica.release(conn, ok=False)
            return
        if resp.status == 200:
            try:
                doc = json.loads(payload)
                if doc.get("replica"):
                    replica.replica_id = str(doc["replica"])
            except (ValueError, AttributeError):
                pass
            replica.record_success()
            replica.release(conn, ok=True)
        else:
            replica.record_failure(f"healthz returned {resp.status}")
            replica.release(conn, ok=False)

    def _probe_loop(self) -> None:
        while not self._closed:
            for replica in self.replicas:
                if self._closed:
                    return
                self._probe_once(replica)
            self._probe_wake.wait(self.policy.health_interval_s)
            self._probe_wake.clear()

    def probe_now(self) -> None:
        """One synchronous probe sweep (tests use this to force
        ejection/re-admission without waiting out the interval)."""
        for replica in self.replicas:
            self._probe_once(replica)

    # -- the SconnaService-shaped surface --------------------------------
    def models(self) -> "list[str]":
        """Union of every live replica's served models."""
        names: "set[str]" = set()
        for replica in self.replicas:
            if not replica.available:
                continue
            try:
                conn, resp = replica.request("GET", "/v1/models")
                try:
                    payload = resp.read()
                finally:
                    replica.release(conn, ok=resp.status == 200)
                if resp.status == 200:
                    names.update(json.loads(payload).get("models", ()))
            except (ReplicaError, ValueError, OSError):
                continue
        return sorted(names)

    def metrics_snapshot(self) -> dict:
        """The fleet-merged snapshot ``GET /v1/metrics`` serves.

        Every reachable replica's raw counter state folds through
        :meth:`ServeMetrics.merge`; the result reads exactly like a
        single server's snapshot, with ``fleet`` (per-replica
        topology) and ``router`` (forward/retry/shed counters)
        sections on top.
        """
        agg = ServeMetrics()
        per_replica: "list[dict]" = []
        for replica in self.replicas:
            entry = replica.state()
            if replica.healthy:
                try:
                    conn, resp = replica.request(
                        "GET", "/v1/metrics?format=state"
                    )
                    try:
                        payload = resp.read()
                    finally:
                        replica.release(conn, ok=resp.status == 200)
                    if resp.status == 200:
                        doc = json.loads(payload)
                        agg.merge(doc["metrics"])
                        entry["models"] = doc.get("models")
                        entry["backend"] = (doc.get("backend") or {}).get("kind")
                        entry["shards"] = (doc.get("backend") or {}).get("shards")
                        entry["requests"] = doc["metrics"].get("n_requests")
                except (ReplicaError, ValueError, KeyError, OSError) as exc:
                    entry["metrics_error"] = str(exc)
            per_replica.append(entry)
        snap = agg.snapshot()
        with self._lock:
            router_stats = {
                "policy": self.policy.as_dict(),
                "routed_total": self.routed_total,
                "redispatches": self.redispatches,
                "unroutable": self.unroutable,
                "proxy_errors": self.proxy_errors,
            }
        snap["models"] = self.models()
        snap["fleet"] = {
            "replicas": per_replica,
            "healthy": sum(1 for r in self.replicas if r.healthy),
            "available": sum(1 for r in self.replicas if r.available),
            "size": len(self.replicas),
        }
        snap["router"] = router_stats
        snap["uptime_s"] = round(time.monotonic() - self._started_at, 3)
        snap["telemetry"] = self.tracer.stats()
        return snap

    def topology(self) -> dict:
        """The ``GET /v1/router`` document: replica states plus each
        served model's preferred lanes."""
        return {
            "policy": self.policy.as_dict(),
            "replicas": [r.state() for r in self.replicas],
            "model_lanes": {
                model: self.lanes_for(model) for model in self.models()
            },
        }

    def close(self) -> None:
        """Stop the prober and drop every pooled connection."""
        self._closed = True
        self._probe_wake.set()
        for replica in self.replicas:
            replica._close_pool()


class _RouterHandler(_ServeHandler):
    """The router's HTTP surface: shared GET routes are inherited from
    the single-server handler (the :class:`Router` quacks like a
    service for them); predict becomes a routed relay."""

    server: "RouterHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        path = self.path.partition("?")[0]
        if path == "/v1/router":
            self._trace = None
            self._send_json(self.server.router.topology())
            return
        if path == "/healthz":
            router = self.server.router
            self._trace = None
            self._send_json({
                "status": "ok",
                "role": "router",
                "replicas": len(router.replicas),
                "available": sum(
                    1 for r in router.replicas if r.available
                ),
            })
            return
        super().do_GET()

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        router = self.server.router
        path, _, query = self.path.partition("?")
        self._trace = None
        if path in ("/v1/router/drain", "/v1/router/undrain"):
            self._admin_route(router, path, query)
            return
        if path != "/v1/predict":
            self._send_error(404, f"unknown path {self.path!r}", close=True)
            return
        trace = router.tracer.start("router.request")
        self._trace = trace
        self._last_status = 0
        started = time.monotonic()
        model = None
        route: dict = {}
        try:
            model = self._proxy_predict(router, query, trace, route)
        finally:
            status = self._last_status
            router.tracer.finish(trace, status=status)
            if router.request_log is not None:
                upstream_ms = route.get("upstream_ms")
                router.request_log.log_request(
                    trace=trace, model=model, wire="proxy", status=status,
                    latency_ms=(time.monotonic() - started) * 1e3,
                    replica=route.get("replica"),
                    redispatches=route.get("redispatches", 0),
                    upstream_ms=(
                        round(upstream_ms, 3) if upstream_ms is not None
                        else None
                    ),
                )
            self._trace = None

    def _admin_route(self, router: Router, path: str, query: str) -> None:
        params = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(query).items()
        }
        key = params.get("replica")
        if not key:
            self._send_error(400, "the 'replica' parameter is required")
            return
        try:
            if path.endswith("/drain"):
                timeout = float(params.get("timeout", 30.0))
                state = router.drain(key, timeout=timeout)
            else:
                state = router.undrain(key)
        except KeyError as exc:
            self._send_error(404, str(exc))
        except TimeoutError as exc:
            self._send_error(504, str(exc))
        except ValueError as exc:
            self._send_error(400, str(exc))
        else:
            self._send_json({"replica": state})

    # -- the proxy path --------------------------------------------------
    def _proxy_predict(
        self, router: Router, query: str, trace, route: "dict | None" = None
    ) -> "str | None":
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._send_error(411, "Content-Length is required", close=True)
            return None
        if length <= 0:
            self._send_error(400, "missing request body", close=length < 0)
            return None
        body = self._read_exact(length)
        if body is None:
            return None  # client hung up mid-body
        ctype = (self.headers.get("Content-Type") or "").partition(";")[0]
        model = self._peek_model(ctype.strip().lower(), body, query)
        if trace is not None:
            trace.set_tags(model=model, nbytes=length)
        headers = {
            name: value
            for name, value in self.headers.items()
            if name.lower() not in _HOP_HEADERS
        }
        headers["Content-Length"] = str(length)
        if trace is not None:
            # the replica adopts this id: one trace id from the client
            # through the router hop to the replica's shard spans
            headers[PARENT_TRACE_HEADER] = trace.trace_id
        t0 = time.monotonic() if trace is not None else 0.0
        upstream_t0 = time.monotonic()
        try:
            replica, conn, resp = router.forward(
                model, "POST", self.path, body, headers, trace=trace,
                info=route,
            )
        except ReplicaError as exc:
            available = any(r.available for r in router.replicas)
            if available:
                self._send_error(502, f"fleet forward failed: {exc}")
            else:
                self._send_error(
                    503, f"no available replica: {exc}",
                    retry_after_s=router.policy.retry_after_s,
                )
            return model
        if trace is not None:
            trace.add_span("router.relay", t0, time.monotonic(),
                           tags={"replica": replica.url})
        ok = False
        try:
            ok = self._relay(replica, resp)
        finally:
            # upstream latency: forward (status line) through relayed body
            if route is not None:
                route["upstream_ms"] = (time.monotonic() - upstream_t0) * 1e3
            router.settle_forward(replica, conn, ok)
        return model

    def _peek_model(self, ctype: str, body: bytes, query: str) -> "str | None":
        """The model name a request routes on, from whichever encoding
        it rides (bad bodies route round-robin and let the replica
        produce the authoritative 400)."""
        try:
            if ctype == CONTENT_TYPE_NPY or query:
                params = {
                    key: values[-1]
                    for key, values in urllib.parse.parse_qs(query).items()
                }
                if params.get("model"):
                    return str(params["model"])
            if ctype == CONTENT_TYPE_FRAME:
                from repro.serve import wire

                meta, _ = wire.decode_frame(body)
                model = meta.get("model")
                return None if model is None else str(model)
            if ctype.endswith("json") or not ctype:
                model = json.loads(body).get("model")
                return None if model is None else str(model)
        except Exception:
            return None
        return None

    def _relay(self, replica: Replica, resp) -> bool:
        """Copy one upstream response to the client, preserving the
        status, the replica's headers (trace id, Retry-After, replica
        id included), and chunked framing for streamed responses.
        Returns False when either side died mid-relay."""
        self._last_status = resp.status
        chunked = (resp.headers.get("Transfer-Encoding") or "").lower() == "chunked"
        try:
            self.send_response(resp.status)
            relayed = set()
            for name, value in resp.headers.items():
                if name.lower() in _HOP_HEADERS:
                    continue
                self.send_header(name, value)
                relayed.add(name.lower())
            if REPLICA_HEADER.lower() not in relayed:
                self.send_header(
                    REPLICA_HEADER, replica.replica_id or replica.url
                )
            if chunked:
                self.send_header("Transfer-Encoding", "chunked")
                self.end_headers()
                while True:
                    chunk = resp.read(64 * 1024)
                    if not chunk:
                        break
                    self.wfile.write(
                        f"{len(chunk):X}\r\n".encode() + chunk + b"\r\n"
                    )
                    self.wfile.flush()
                self.wfile.write(b"0\r\n\r\n")
            else:
                payload = resp.read()
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)
            return True
        except (BrokenPipeError, ConnectionResetError, OSError,
                http.client.HTTPException):
            self.close_connection = True
            return False


class RouterHTTPServer(ServeHTTPServer):
    """HTTP front-end bound to one :class:`Router` (``port=0`` picks a
    free port).  Inherits the single-server handler plumbing; the
    router object stands in for the service on the shared GET routes."""

    def __init__(
        self,
        router: Router,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 120.0,
        verbose: bool = False,
    ) -> None:
        self.router = router
        # ServeHTTPServer wiring: the inherited handler's GET routes
        # read .service; the router provides that surface
        super().__init__(
            router, host=host, port=port,
            request_timeout_s=request_timeout_s, verbose=verbose,
            handler_class=_RouterHandler,
        )


def serve_router(
    router: Router,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> "tuple[RouterHTTPServer, threading.Thread]":
    """Start a background router front-end; returns (server, thread)."""
    server = RouterHTTPServer(router, host=host, port=port, verbose=verbose)
    thread = threading.Thread(
        target=server.serve_forever, name="sconna-router", daemon=True
    )
    thread.start()
    return server, thread


def spawn_replicas(
    registry: str,
    n_replicas: int,
    base_port: int,
    host: str = "127.0.0.1",
    extra_args: "list[str] | None" = None,
    wait_s: float = 30.0,
):
    """Spawn ``n_replicas`` local ``python -m repro.serve`` processes.

    Each replica serves the given registry on ``base_port + i`` with
    ``--replica-id replica-<i>``; the call blocks until every replica
    answers ``/healthz`` (or raises after ``wait_s``).  Returns
    ``(processes, urls)``; terminate the processes (SIGTERM drains
    them) when done.
    """
    import subprocess
    import sys

    processes = []
    urls = []
    for i in range(n_replicas):
        port = base_port + i
        cmd = [
            sys.executable, "-m", "repro.serve",
            "--registry", str(registry),
            "--host", host, "--port", str(port),
            "--replica-id", f"replica-{i}",
        ] + list(extra_args or ())
        processes.append(subprocess.Popen(cmd))
        urls.append(f"http://{host}:{port}")
    deadline = time.monotonic() + wait_s
    for url in urls:
        parsed = urllib.parse.urlsplit(url)
        while True:
            try:
                conn = http.client.HTTPConnection(
                    parsed.hostname, parsed.port, timeout=2.0
                )
                conn.request("GET", "/healthz")
                ok = conn.getresponse().status == 200
                conn.close()
                if ok:
                    break
            except OSError:
                pass
            if time.monotonic() >= deadline:
                for proc in processes:
                    proc.terminate()
                raise TimeoutError(f"replica {url} never became healthy")
            time.sleep(0.1)
    return processes, urls


def main(argv: "list[str] | None" = None) -> None:
    """CLI: front an existing replica fleet, or spawn one and front it."""
    import argparse
    import signal as signal_module

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.router",
        description="Load-balance requests across repro.serve replicas "
                    "(consistent per-model routing, health checks, "
                    "drain, fleet-wide /v1/metrics).",
    )
    parser.add_argument("--replica", action="append", default=None,
                        metavar="URL",
                        help="replica base URL (repeatable), e.g. "
                             "http://127.0.0.1:8001")
    parser.add_argument("--replica-of", default=None, metavar="REGISTRY",
                        help="spawn helper: start --n-replicas local "
                             "'python -m repro.serve' replicas of this "
                             "model registry and front them")
    parser.add_argument("--n-replicas", type=int, default=2,
                        help="replicas to spawn with --replica-of "
                             "(default: 2)")
    parser.add_argument("--base-port", type=int, default=8001,
                        help="first spawned replica port (default: 8001)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--lanes-per-model", type=int, default=2,
                        help="preferred replica-subset size per model "
                             "(consistent routing fan-out; default: 2)")
    parser.add_argument("--health-interval", type=float, default=1.0,
                        help="seconds between health-probe sweeps")
    parser.add_argument("--eject-after", type=int, default=2,
                        help="consecutive probe failures before ejection")
    parser.add_argument("--readmit-after", type=int, default=2,
                        help="consecutive probe successes before rejoin")
    parser.add_argument("--max-retries", type=int, default=3,
                        help="forward attempts per request across "
                             "replicas (1 disables redispatch)")
    parser.add_argument("--trace-sample-rate", type=float, default=1.0 / 16)
    parser.add_argument("--log-requests", action="store_true",
                        help="one JSON access-log line per routed request")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument("server_args", nargs="*",
                        help="after '--': extra args for spawned replicas "
                             "(e.g. -- --backend process --shards 1)")
    args = parser.parse_args(argv)

    if bool(args.replica) == bool(args.replica_of):
        parser.error("give either --replica URLs or --replica-of REGISTRY")

    processes = []
    if args.replica_of:
        processes, urls = spawn_replicas(
            args.replica_of, args.n_replicas, args.base_port,
            host=args.host, extra_args=args.server_args,
        )
    else:
        urls = args.replica

    from repro.serve.telemetry import StructuredLogger

    policy = RouterPolicy(
        lanes_per_model=args.lanes_per_model,
        health_interval_s=args.health_interval,
        eject_after=args.eject_after,
        readmit_after=args.readmit_after,
        max_retries=args.max_retries,
    )
    request_log = StructuredLogger() if args.log_requests else None
    router = Router(
        urls, policy=policy,
        trace_policy=TracePolicy(sample_rate=args.trace_sample_rate),
        request_log=request_log,
    )
    server, _ = serve_router(
        router, host=args.host, port=args.port, verbose=args.verbose
    )
    stop = threading.Event()
    triggered: "list[int]" = []

    def _stop(signum, frame):
        triggered.append(signum)
        stop.set()

    for signum in (signal_module.SIGINT, signal_module.SIGTERM):
        signal_module.signal(signum, _stop)
    print(f"routing {len(urls)} replica(s) at {server.url}  "
          f"(lanes_per_model={policy.lanes_per_model}, "
          f"eject_after={policy.eject_after})")
    for url in urls:
        print(f"  replica: {url}")
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    server.shutdown()
    router.close()
    # spawned replicas drain on SIGTERM (their shutdown handlers)
    for proc in processes:
        proc.terminate()
    for proc in processes:
        try:
            proc.wait(timeout=30.0)
        except Exception:
            proc.kill()
    snap = router.topology()
    print("fleet at exit: " + json.dumps(
        {r["url"]: {"routed": r["routed"], "ejections": r["ejections"]}
         for r in snap["replicas"]}, sort_keys=True))


if __name__ == "__main__":
    main()
