"""``SconnaClient`` - a stdlib-only keep-alive client for the HTTP API.

One client wraps one persistent ``http.client.HTTPConnection`` (HTTP/1.1
keep-alive: many requests, one TCP handshake) and speaks the binary wire
protocol by default:

* ``wire="frame"`` (default) - requests and responses as
  ``application/x-sconna-frame`` bodies (:mod:`repro.serve.wire`):
  parameters in frame metadata, the image tensor as raw bytes;
* ``wire="npy"``   - the image as an ``application/x-npy`` body with
  parameters in the query string (responses still arrive as frames);
* ``wire="json"``  - the classic JSON document.

A server that does not understand the binary types (``415``) downgrades
the client to JSON for the rest of its life - binary by default, JSON
fallback, no caller involvement.  Logits are bit-identical across all
three wires (locked by tests and the CI equivalence step).

When the server traced a request, its trace id arrives in the
``X-Sconna-Trace-Id`` response header and is surfaced as
``ClientPrediction.trace_id`` (and ``client.last_trace_id``); fetch the
full span tree with :meth:`SconnaClient.trace`.

Admission-control rejections (``429``) raise :class:`AdmissionRejected`
carrying the server's ``Retry-After`` hint; pass ``retry_429 > 0`` to
have the client sleep that hint and retry transparently.  A keep-alive
connection the server closed under us (idle reap, restart) is detected
and rebuilt once per request - ``opened`` counts how many TCP
connections the client ever made, which is 1 for a healthy session of
any length.

Usage::

    with SconnaClient(server.url) as client:
        result = client.predict(image, model="snet", seed=0, top_k=3)
        print(result.top_class, result.latency_ms)
        for part in client.predict_stream(stack, model="snet"):
            print(part.index, part.logits)
"""

from __future__ import annotations

import http.client
import json
import logging
import socket
import time
import urllib.parse
from dataclasses import dataclass

import numpy as np

from repro.serve import wire
from repro.serve.wire import (
    CONTENT_TYPE_FRAME,
    CONTENT_TYPE_JSON,
    CONTENT_TYPE_NPY,
    WireError,
)

#: the server's per-request trace id rides this response header
TRACE_ID_HEADER = "X-Sconna-Trace-Id"

#: which replica answered (set by replicas started with ``--replica-id``
#: and stamped by the router when relaying)
REPLICA_HEADER = "X-Sconna-Replica"

logger = logging.getLogger("repro.serve.client")


class ClientError(RuntimeError):
    """An HTTP-level failure; carries the response status and body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class AdmissionRejected(ClientError):
    """The server shed this request (429); retry after ``retry_after_s``.

    ``trace_id`` carries the server's trace id for the shed request
    (when the server traced it) so a 429 can be correlated with the
    server's ``/v1/trace`` view of the same decision.
    """

    def __init__(
        self, message: str, retry_after_s: float,
        trace_id: "str | None" = None,
    ) -> None:
        super().__init__(429, message)
        self.retry_after_s = retry_after_s
        self.trace_id = trace_id


class ServiceUnavailable(ClientError):
    """No backend could take this request right now (503).

    A router returns this when every replica is ejected or draining;
    ``retry_after_s`` carries its hint for when capacity may return.
    Like a 429, the request was never executed, so retrying is safe -
    ``retry_429 > 0`` covers both.
    """

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(503, message)
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class ClientPrediction:
    """One prediction as seen by the client (mirrors ``Prediction``)."""

    request_id: int
    model: str
    logits: np.ndarray
    top_k: "list[list[tuple[int, float]]]"
    batch_images: int
    latency_ms: float
    cost: "dict | None" = None
    index: "int | None" = None     #: position within a streamed response
    total: "int | None" = None     #: streamed-response frame count
    trace_id: "str | None" = None  #: server-side trace id (if traced)
    replica: "str | None" = None   #: replica id that answered (if known)

    @property
    def top_class(self) -> int:
        return self.top_k[0][0][0]


def _result_from(
    meta: dict, logits: np.ndarray, trace_id: "str | None" = None,
    replica: "str | None" = None,
) -> ClientPrediction:
    return ClientPrediction(
        request_id=int(meta.get("request_id", 0)),
        model=str(meta.get("model", "")),
        logits=logits,
        top_k=[
            [(int(e["class"]), float(e["logit"])) for e in per_image]
            for per_image in meta.get("top_k", [])
        ],
        batch_images=int(meta.get("batch_images", logits.shape[0])),
        latency_ms=float(meta.get("latency_ms", 0.0)),
        cost=meta.get("cost"),
        index=meta.get("index"),
        total=meta.get("total"),
        trace_id=trace_id,
        replica=replica,
    )


class SconnaClient:
    """Keep-alive HTTP client for one serving endpoint."""

    def __init__(
        self,
        url: str,
        wire_format: str = "frame",
        timeout: float = 60.0,
        retry_429: int = 0,
    ) -> None:
        if wire_format not in ("frame", "npy", "json"):
            raise ValueError(f"unknown wire format {wire_format!r}")
        parsed = urllib.parse.urlsplit(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"only http:// endpoints are supported: {url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.wire_format = wire_format
        self.timeout = timeout
        self.retry_429 = retry_429
        self.opened = 0          #: TCP connections made (1 == keep-alive held)
        self.last_trace_id: "str | None" = None  #: from the latest response
        self.last_replica: "str | None" = None   #: from the latest response
        self._conn: "http.client.HTTPConnection | None" = None
        self._json_fallback = False

    # -- connection plumbing ---------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.connect()
            # mirror the server's TCP_NODELAY: a request whose headers
            # and body leave in separate writes must not wait out the
            # server's delayed ACK between them
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self.opened += 1
        return self._conn

    def close(self) -> None:
        """Drop the pooled keep-alive connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SconnaClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(
        self, method: str, path: str, body: "bytes | None" = None,
        headers: "dict[str, str] | None" = None,
    ) -> http.client.HTTPResponse:
        """One round trip; a dead keep-alive connection is rebuilt once.

        The retry only covers failures *sending* the request or reading
        the status line of a connection the server already closed -
        the request never executed, so re-sending is safe.  A *timeout*
        is never retried: the server may well be executing the request
        right now, and re-sending it would double the load.
        """
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers or {})
                return conn.getresponse()
            except TimeoutError:
                self.close()
                raise
            except (http.client.NotConnected, http.client.BadStatusLine,
                    BrokenPipeError, ConnectionResetError,
                    ConnectionRefusedError, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def _raise_for_status(self, resp, body: bytes) -> None:
        try:
            message = json.loads(body)["error"]
        except Exception:
            message = body[:200].decode(errors="replace")
        if resp.status == 429:
            raise AdmissionRejected(
                message,
                retry_after_s=float(resp.headers.get("Retry-After", 0.05)),
                trace_id=resp.headers.get(TRACE_ID_HEADER),
            )
        if resp.status == 503 and resp.headers.get("Retry-After"):
            raise ServiceUnavailable(
                message, retry_after_s=float(resp.headers["Retry-After"])
            )
        raise ClientError(resp.status, message)

    # -- GET endpoints ---------------------------------------------------
    def _get_json(self, path: str) -> dict:
        resp = self._request("GET", path)
        body = resp.read()
        if resp.status != 200:
            self._raise_for_status(resp, body)
        return json.loads(body)

    def health(self) -> dict:
        """The server's ``/healthz`` document."""
        return self._get_json("/healthz")

    def models(self) -> "list[str]":
        """Model names the server currently serves."""
        return self._get_json("/v1/models")["models"]

    def metrics(self) -> dict:
        """The server's ``/v1/metrics`` JSON snapshot."""
        return self._get_json("/v1/metrics")

    def traces(self, limit: "int | None" = None) -> "list[dict]":
        """Summaries of the server's stored traces, newest first."""
        path = "/v1/trace" + (f"?limit={int(limit)}" if limit else "")
        return self._get_json(path)["traces"]

    def trace(self, trace_id: str = "latest") -> dict:
        """One stored trace in full (``'latest'`` for the newest)."""
        return self._get_json(f"/v1/trace/{trace_id}")

    # -- watchtower endpoints (when pointed at a watchtower) -------------
    def alerts(self) -> dict:
        """A watchtower's ``/v1/watch/alerts`` document: active and
        recently resolved alerts plus the remediation history."""
        return self._get_json("/v1/watch/alerts")

    def watch_series(
        self,
        name: "str | None" = None,
        labels: "dict | None" = None,
        derive: "str | None" = None,
    ) -> dict:
        """A watchtower's ``/v1/watch/series`` document.

        Without ``name``: the series directory.  With ``name``: every
        matching series' ``(t, value)`` points, optionally filtered by
        ``labels`` and derived (``derive="rate"`` for reset-aware
        counter rates).
        """
        params: "dict[str, str]" = {}
        if name:
            params["name"] = name
        if derive:
            params["derive"] = derive
        params.update(labels or {})
        query = urllib.parse.urlencode(params)
        return self._get_json("/v1/watch/series" + (f"?{query}" if query else ""))

    # -- predict ---------------------------------------------------------
    def predict(
        self,
        image: np.ndarray,
        model: "str | None" = None,
        seed: "int | None" = None,
        ideal: bool = False,
        top_k: int = 1,
        cost: bool = False,
        wire_format: "str | None" = None,
    ) -> ClientPrediction:
        """Run one request; binary wire by default, JSON on fallback."""
        fields = {
            "model": model, "seed": seed, "ideal": ideal,
            "top_k": top_k, "cost": cost,
        }
        retries = self.retry_429
        while True:
            try:
                return self._predict_once(image, fields, wire_format)
            except (AdmissionRejected, ServiceUnavailable) as exc:
                if retries <= 0:
                    raise
                retries -= 1
                logger.info(
                    "%d backoff: retrying in %.3fs (%d left)",
                    exc.status, exc.retry_after_s, retries,
                )
                time.sleep(exc.retry_after_s)

    def _effective_wire(self, wire_format: "str | None") -> str:
        chosen = wire_format or self.wire_format
        if self._json_fallback and wire_format is None:
            chosen = "json"
        return chosen

    def _predict_once(
        self, image, fields: dict, wire_format: "str | None"
    ) -> ClientPrediction:
        chosen = self._effective_wire(wire_format)
        path, body, headers = self._encode_request(image, fields, chosen)
        resp = self._request("POST", path, body=body, headers=headers)
        payload = resp.read()
        trace_id = resp.headers.get(TRACE_ID_HEADER)
        replica = resp.headers.get(REPLICA_HEADER)
        self.last_trace_id = trace_id
        self.last_replica = replica
        if resp.status == 415 and chosen != "json" and wire_format is None:
            # an endpoint predating the binary wire: downgrade for good
            self._json_fallback = True
            return self._predict_once(image, fields, None)
        if resp.status != 200:
            self._raise_for_status(resp, payload)
        ctype = (resp.headers.get("Content-Type") or "").partition(";")[0]
        if ctype == CONTENT_TYPE_FRAME:
            meta, tensors = wire.decode_frame(payload)
            if "error" in meta:
                raise ClientError(resp.status, meta["error"])
            return _result_from(meta, tensors["logits"], trace_id, replica)
        if ctype == CONTENT_TYPE_NPY:
            logits = wire.decode_npy(payload)
            meta = {
                "request_id": resp.headers.get("X-Sconna-Request-Id", 0),
                "model": resp.headers.get("X-Sconna-Model", ""),
                "batch_images": resp.headers.get(
                    "X-Sconna-Batch-Images", logits.shape[0]
                ),
                "latency_ms": resp.headers.get("X-Sconna-Latency-Ms", 0.0),
            }
            return _result_from(meta, logits, trace_id, replica)
        doc = json.loads(payload)
        return _result_from(
            doc, np.asarray(doc["logits"], dtype=np.float64), trace_id, replica
        )

    def predict_stream(
        self,
        images: np.ndarray,
        model: "str | None" = None,
        seed: "int | None" = None,
        ideal: bool = False,
        top_k: int = 1,
        cost: bool = False,
    ):
        """Stream an ``(n, C, H, W)`` stack; yields one
        :class:`ClientPrediction` per image, in order, as frames arrive.

        A frame carrying a server-side ``error`` raises
        :class:`ClientError` (or :class:`AdmissionRejected`) at its
        position; frames already yielded stand.
        """
        fields = {
            "model": model, "seed": seed, "ideal": ideal,
            "top_k": top_k, "cost": cost, "stream": True,
        }
        chosen = self._effective_wire(None)
        if chosen == "json":
            chosen = "frame"  # streaming is frame-only; force the wire
        path, body, headers = self._encode_request(images, fields, chosen)
        headers["Accept"] = CONTENT_TYPE_FRAME
        resp = self._request("POST", path, body=body, headers=headers)
        if resp.status != 200:
            self._raise_for_status(resp, resp.read())
        drained = False
        try:
            while True:
                item = wire.read_frame(resp.read)
                if item is None:
                    drained = True
                    return
                meta, tensors = item
                if "error" in meta:
                    if "retry_after_s" in meta:
                        raise AdmissionRejected(
                            meta["error"], retry_after_s=meta["retry_after_s"]
                        )
                    raise ClientError(200, meta["error"])
                yield _result_from(meta, tensors["logits"])
        finally:
            if not drained:
                # abandoned mid-stream: unread frames would desync the
                # next request on this connection, so drop it
                self.close()

    # -- request encoding ------------------------------------------------
    @staticmethod
    def _encode_request(
        image, fields: dict, wire_format: str
    ) -> "tuple[str, bytes, dict[str, str]]":
        """Build (path, body, headers) for one predict call."""
        fields = {k: v for k, v in fields.items()
                  if v is not None and v is not False}
        if wire_format == "frame":
            body = wire.encode_frame(fields, {"image": np.asarray(image)})
            headers = {
                "Content-Type": CONTENT_TYPE_FRAME,
                "Accept": CONTENT_TYPE_FRAME,
            }
            return "/v1/predict", body, headers
        if wire_format == "npy":
            query = urllib.parse.urlencode(
                {k: (int(v) if isinstance(v, bool) else v)
                 for k, v in fields.items()}
            )
            path = "/v1/predict" + (f"?{query}" if query else "")
            headers = {
                "Content-Type": CONTENT_TYPE_NPY,
                "Accept": CONTENT_TYPE_FRAME,
            }
            return path, wire.encode_npy(np.asarray(image)), headers
        if wire_format == "json":
            payload = dict(fields, image=np.asarray(image).tolist())
            headers = {
                "Content-Type": CONTENT_TYPE_JSON,
                "Accept": CONTENT_TYPE_JSON,
            }
            return "/v1/predict", json.dumps(payload).encode(), headers
        raise ValueError(f"unknown wire format {wire_format!r}")
