"""Pluggable execution backends: the seam between scheduling and compute.

:class:`~repro.serve.service.SconnaService` owns *scheduling* (lanes,
coalescing, futures, costs, request-level metrics); everything from "a
coalesced batch exists" to "its logits exist" sits behind the
:class:`ExecutionBackend` seam defined here::

    backend.submit(model, batch, on_done)
        -> on_done(BatchResult(logits, ...))   # or on_done(exception)

Two implementations:

* :class:`ThreadBackend` - the classic single-process path: a
  :class:`~repro.serve.workers.WorkerPool` of threads sharing the
  parent's models.  Bit-identical to the pre-seam service (same
  stacking, same :class:`~repro.stochastic.error_models.PerRequestErrorModels`
  construction, same per-request deterministic ADC noise).
* :class:`ProcessBackend` - N *shard worker processes*, mirroring the
  paper's array of independent TeNOCs at the serving layer: each shard
  owns a full Python runtime (its own GIL, BLAS pools, warm engine
  buffers) and loads models through the NPZ serialization - from the
  shared registry's archive when one exists, from in-memory archive
  bytes otherwise.  Batch tensors travel through per-shard
  ``multiprocessing.shared_memory`` rings with only descriptors on the
  pipe (``transport="shm"``, the default; ``"pipe"`` keeps the classic
  pickled-array transport, and ring-full backpressure degrades single
  batches to it); results return on per-shard collector threads.
  :class:`ShardPlacement` routes each model to a shard subset (default:
  all).  A shard that dies is reaped, respawned (up to
  ``max_restarts``), its placed models reloaded, its shm rings
  unlinked and recreated, and its in-flight batches redispatched to
  live shards.

**Determinism across backends.**  A request's ADC noise lives in its
:class:`~repro.stochastic.error_models.SconnaErrorModel`, whose RNG
state pickles exactly.  The shard applies the *same generator state* to
the *same contiguous batch slice* the thread path would, so a seeded
request's logits are bit-identical through either backend - and even a
``seed=None`` request is reproducible across a crash-redispatch,
because the parent re-sends the same pickled generator state.

**Metrics.**  Each backend worker records execution-side metrics
(batches, batch-size histogram, execution errors) into its own
:class:`~repro.serve.metrics.ServeMetrics`; :meth:`ExecutionBackend.metrics_states`
exports them for the service to merge with its request-side metrics
into one aggregated snapshot.
"""

from __future__ import annotations

import abc
import itertools
import multiprocessing
import os
import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.batching import InferenceRequest
from repro.serve.metrics import ServeMetrics
from repro.serve.shm import (
    DEFAULT_RING_BYTES,
    RingAllocator,
    ShmArena,
    attach_arena,
)
from repro.serve.workers import WorkerPool
from repro.stochastic.error_models import PerRequestErrorModels, SconnaErrorModel


@dataclass(frozen=True)
class BatchResult:
    """What execution hands back for one coalesced batch."""

    logits: np.ndarray        #: (n_images, classes) float64 for the whole batch
    n_images: int             #: batch-axis length (== logits.shape[0])
    exec_start: float         #: monotonic instant execution (or shard dispatch) began
    shard: int = 0            #: which worker/shard ran it


def stack_batch(batch: "list[InferenceRequest]") -> np.ndarray:
    """Concatenate a coalesced batch's images along the batch axis.

    Single-request batches pass through without a copy - identical to
    the historical service behaviour, which the bit-exactness contract
    is defined against.
    """
    if len(batch) == 1:
        return batch[0].images
    return np.concatenate([r.images for r in batch], axis=0)


def batch_error_model(
    mode: str, batch: "list[InferenceRequest]"
) -> PerRequestErrorModels | None:
    """The per-request composite error model for one coalesced batch
    (``None`` outside the sconna datapath)."""
    if mode != "sconna":
        return None
    return PerRequestErrorModels(
        [r.error_model for r in batch], [r.n_images for r in batch]
    )


class ShardPlacement:
    """Per-model shard placement policy for :class:`ProcessBackend`.

    Maps model names to the shard slots allowed to host them; a model
    with no assignment runs on every shard (the historical behaviour).
    Placement keeps a model with a big working set from occupying every
    shard runtime: its lane dispatches only to its subset, and only
    those shards ever load its weights.

    ``assignments`` is ``{model_name: [slot, ...]}``.  Slots are
    validated against the backend's shard count at ``add_model`` time,
    so one policy object can be built before the backend exists.
    """

    def __init__(self, assignments: "dict[str, object] | None" = None) -> None:
        self.assignments: "dict[str, tuple[int, ...]]" = {}
        for name, slots in (assignments or {}).items():
            resolved = tuple(sorted({int(s) for s in slots}))
            if not resolved:
                raise ValueError(f"placement for {name!r} is empty")
            if any(s < 0 for s in resolved):
                raise ValueError(f"placement for {name!r} has negative slots")
            self.assignments[str(name)] = resolved

    def shards_for(self, name: str, n_shards: int) -> "tuple[int, ...]":
        """The validated slot subset for ``name`` (default: all)."""
        slots = self.assignments.get(name)
        if slots is None:
            return tuple(range(n_shards))
        bad = [s for s in slots if s >= n_shards]
        if bad:
            raise ValueError(
                f"placement for {name!r} names shard(s) {bad} but the "
                f"backend has only {n_shards} shard(s)"
            )
        return slots

    @classmethod
    def parse(cls, spec: str) -> "ShardPlacement":
        """Parse a CLI spec: ``"modelA=0,1;modelB=2"``."""
        assignments: "dict[str, list[int]]" = {}
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad placement {part!r}; expected 'model=slot,slot,...'"
                )
            name, slots = part.split("=", 1)
            try:
                assignments[name.strip()] = [
                    int(tok) for tok in slots.split(",") if tok.strip()
                ]
            except ValueError:
                raise ValueError(f"bad placement slots in {part!r}") from None
        return cls(assignments)

    def as_dict(self) -> "dict[str, list[int]]":
        """JSON-serializable ``model -> shard slots`` map."""
        return {name: list(slots) for name, slots in self.assignments.items()}


class ExecutionBackend(abc.ABC):
    """Executes coalesced batches for named models.

    Implementations must be safe against concurrent :meth:`submit` calls
    from many scheduler threads, must invoke ``on_done`` exactly once
    per submitted batch (with a :class:`BatchResult` on success or the
    raised exception on failure), and must drain in-flight batches on
    :meth:`close`.
    """

    kind: str = "abstract"

    @abc.abstractmethod
    def add_model(
        self,
        name: str,
        qmodel,
        mode: str,
        archive: "object | None" = None,
        warm: "tuple[int, int, int, int] | None" = None,
        placement: "object | None" = None,
    ) -> None:
        """Make ``name`` executable.

        ``archive`` is the model's registry NPZ path when one exists
        (process shards load from it); ``warm`` is an optional
        ``(n, C, H, W)`` dummy-batch shape every worker runs once so
        first real batches find hot buffers.  ``placement`` is an
        optional shard-slot subset for this model (process backend
        only; backends without shards ignore it).
        """

    @abc.abstractmethod
    def submit(self, name: str, batch: "list[InferenceRequest]", on_done) -> None:
        """Execute ``batch`` asynchronously; ``on_done(result_or_exc)``."""

    @abc.abstractmethod
    def close(self, timeout: float | None = 10.0) -> None:
        """Drain in-flight work, then release every worker."""

    def metrics_states(self) -> "list[dict]":
        """Exported :class:`ServeMetrics` state of every worker/shard."""
        return []

    def reset_metrics(self) -> None:
        """Discard every worker's execution-side metrics (e.g. to keep
        warm-up traffic out of a benchmark's histograms)."""

    def info(self) -> dict:
        """JSON-ready description for the metrics endpoint."""
        return {"kind": self.kind}


class ThreadBackend(ExecutionBackend):
    """In-process execution on a thread pool (the historical datapath).

    The engine's hot path releases the GIL inside BLAS and the native
    remainder kernel, so a few threads exploit whatever parallelism one
    process can reach; per-thread warm buffers come from
    :class:`~repro.cnn.engine.SconnaEngine`'s thread-local pools.
    """

    kind = "thread"

    def __init__(self, n_workers: int = 2) -> None:
        self._pool = WorkerPool(n_workers)
        self._models: "dict[str, tuple[object, str]]" = {}
        self._closed = False
        self.metrics = ServeMetrics()

    def add_model(
        self, name, qmodel, mode, archive=None, warm=None, placement=None
    ) -> None:
        # placement is a sharding concept; the thread pool shares one
        # runtime, so it is accepted (the service passes it uniformly)
        # and ignored
        if self._closed:
            raise RuntimeError("backend is closed")
        self._models[name] = (qmodel, mode)
        if warm is not None:
            n, c, h, w = warm
            dummy = np.zeros((n, c, h, w))
            em = SconnaErrorModel(adc_mape=0.0) if mode == "sconna" else None
            self._pool.warm(
                lambda: qmodel.forward(dummy, mode=mode, error_model=em)
            )

    def submit(self, name, batch, on_done) -> None:
        if self._closed:
            raise RuntimeError("backend is closed")
        qmodel, mode = self._models[name]
        traces = [r.trace for r in batch if r.trace is not None]

        def task() -> None:
            exec_start = time.monotonic()
            # profile stays None unless some traced request asked for
            # engine timings, so untraced batches call forward() with
            # the exact historical argument list
            profile = None
            if traces and any(t.wants_profile for t in traces):
                profile = []
            try:
                stacked = stack_batch(batch)
                if profile is not None:
                    logits = qmodel.forward(
                        stacked, mode=mode,
                        error_model=batch_error_model(mode, batch),
                        profile=profile,
                    )
                else:
                    logits = qmodel.forward(
                        stacked, mode=mode,
                        error_model=batch_error_model(mode, batch),
                    )
                self.metrics.record_batch(len(batch), int(stacked.shape[0]))
            except BaseException as exc:
                self.metrics.record_error(len(batch))
                if traces:
                    end = time.monotonic()
                    for tr in traces:
                        tr.add_span(
                            "backend.execute", exec_start, end,
                            tags={"backend": self.kind,
                                  "error": type(exc).__name__},
                        )
                on_done(exc)
                return
            if traces:
                end = time.monotonic()
                for tr in traces:
                    parent = tr.add_span(
                        "backend.execute", exec_start, end,
                        tags={"backend": self.kind,
                              "images": int(stacked.shape[0])},
                    )
                    if profile:
                        tr.add_spans(profile, parent_id=parent)
            on_done(
                BatchResult(
                    logits=logits,
                    n_images=int(stacked.shape[0]),
                    exec_start=exec_start,
                )
            )

        self._pool.submit(task)

    def metrics_states(self) -> "list[dict]":
        return [self.metrics.state()]

    def reset_metrics(self) -> None:
        self.metrics.reset()

    def info(self) -> dict:
        return {
            "kind": self.kind,
            "workers": self._pool.n_workers,
            "pending": self._pool.pending(),
            "task_errors": self._pool.task_errors,
        }

    def close(self, timeout: float | None = 10.0) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.close(timeout)


# -- process sharding -------------------------------------------------------

#: per-model source shipped to shards: ("path", str) or ("bytes", bytes)
_ModelSrc = "tuple[str, object]"


@dataclass
class _Inflight:
    """Parent-side record of one dispatched batch (payload retained so a
    shard crash can redispatch it verbatim)."""

    name: str
    images: np.ndarray
    models: "list[object]"
    sizes: "list[int]"
    on_done: object
    dispatched_at: float
    slots: "tuple[int, ...]" = ()   #: shard slots this model is placed on
    #: telemetry Traces of the batch's sampled requests (retained across
    #: a crash-redispatch, like the payload) and the picklable span
    #: context the shard receives on the pipe alongside the RNG state
    traces: "list[object]" = field(default_factory=list)
    tctx: "dict | None" = None


@dataclass
class _Shard:
    """Parent-side handle of one worker process."""

    slot: int
    process: object
    conn: object
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    inflight: "dict[int, _Inflight]" = field(default_factory=dict)
    acks: "queue.Queue" = field(default_factory=queue.Queue)
    metrics_replies: "queue.Queue" = field(default_factory=queue.Queue)
    reader: "threading.Thread | None" = None
    alive: bool = True
    expected_exit: bool = False
    #: shm transport (None under transport="pipe"): parent-owned arenas -
    #: tx carries batch tensors parent->shard, rx carries logits back
    tx: "ShmArena | None" = None
    rx: "ShmArena | None" = None
    tx_alloc: "RingAllocator | None" = None
    tx_offsets: "dict[int, int]" = field(default_factory=dict)  #: bid -> tx offset
    cpus: "tuple[int, ...] | None" = None   #: CPU pin requested for this shard

    def send(self, msg: tuple) -> None:
        with self.send_lock:
            self.conn.send(msg)

    def destroy_arenas(self) -> None:
        """Owner-side teardown of both rings (idempotent; the parent is
        the only process that ever unlinks)."""
        for arena in (self.tx, self.rx):
            if arena is not None:
                arena.destroy()


def _shard_main(conn, shard_id: int, shm_spec=None, cpus=None) -> None:
    """Entry point of one shard worker process.

    A single-threaded loop: receive a message, act, reply.  One
    execution thread per shard is the sharding model - parallelism comes
    from running N of these processes.  The loop exits on a ``stop``
    message or when the pipe reaches EOF (the parent died), so shards
    can never outlive their parent as orphans.

    ``shm_spec`` is ``(tx_name, rx_name, ring_bytes)`` under the shm
    transport: the shard *attaches* to the parent-owned arenas (never
    creates or unlinks them), reads ``shmbatch`` tensors out of tx, and
    returns logits through rx when its ring has room - falling back to
    a pickled ``ok`` reply when it does not.  The shard-side rx
    allocator reclaims regions on the parent's ``freerx`` messages.

    SIGINT is ignored: a terminal Ctrl-C signals the whole foreground
    process group, and shards dying mid-batch would defeat the parent's
    graceful drain - the parent alone decides when a shard stops (pipe
    ``stop``/EOF, or SIGTERM as the parent's force-kill fallback).

    ``cpus`` is an optional CPU set to pin this shard to
    (``ProcessBackend(affinity="auto")``): without a pin the kernel
    migrates shards between cores, evicting their warm engine buffers
    from cache; with one, each shard's working set stays resident.
    Pinning is best-effort - platforms without ``sched_setaffinity``
    (or a CPU set the kernel rejects) just run unpinned.
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if cpus and hasattr(os, "sched_setaffinity"):
        try:
            os.sched_setaffinity(0, cpus)
        except OSError:
            pass  # a core went offline, or the mask is disallowed

    from repro.cnn.serialization import (
        load_quantized_model,
        loads_quantized_model,
    )

    tx = rx = rx_alloc = None
    if shm_spec is not None:
        tx_name, rx_name, ring_bytes = shm_spec
        tx = attach_arena(tx_name, ring_bytes)
        rx = attach_arena(rx_name, ring_bytes)
        rx_alloc = RingAllocator(ring_bytes)

    def run_batch(bid, name, images, emodels, sizes, tctx=None) -> tuple:
        # ``tctx`` is the parent's span context (piggybacked on the
        # batch message like the RNG state): when present, execution is
        # timed with time.monotonic() - system-wide on Linux, so these
        # readings are directly comparable to the parent's clock - and
        # the spans ride back with the logits for the parent to graft
        # into the request traces
        spans = None
        profile = None
        if tctx is not None:
            spans = []
            if tctx.get("profile"):
                profile = []
        t0 = time.monotonic() if spans is not None else 0.0
        try:
            entry = models.get(name)
            if entry is None:
                raise KeyError(
                    f"shard {shard_id} has no model {name!r} loaded"
                )
            qm, mode = entry
            error_model = (
                PerRequestErrorModels(emodels, sizes)
                if mode == "sconna"
                else None
            )
            if profile is not None:
                logits = qm.forward(
                    images, mode=mode, error_model=error_model,
                    profile=profile,
                )
            else:
                logits = qm.forward(images, mode=mode, error_model=error_model)
            metrics.record_batch(len(sizes), int(images.shape[0]))
        except BaseException as exc:
            metrics.record_error(len(sizes))
            return ("err", bid, exc)
        if spans is not None:
            spans.append(("shard.execute", t0, time.monotonic(),
                          {"shard": shard_id,
                           "images": int(images.shape[0])}))
            if profile:
                spans.extend(
                    (n, s, e, dict(tags, shard=shard_id))
                    for n, s, e, tags in profile
                )
        if rx_alloc is not None:
            logits = np.ascontiguousarray(logits)
            offset = rx_alloc.alloc(logits.nbytes)
            if offset is not None:
                return ("okshm", bid, rx.write_array(offset, logits), spans)
        return ("ok", bid, logits, spans)

    metrics = ServeMetrics()
    models: "dict[str, tuple[object, str]]" = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break  # parent closed the pipe or died
        op = msg[0]
        if op == "stop":
            break
        elif op == "load":
            _, token, name, src_kind, src, mode, warm = msg
            try:
                qm = (
                    load_quantized_model(src)
                    if src_kind == "path"
                    else loads_quantized_model(src)
                )
                if warm is not None:
                    n, c, h, w = warm
                    em = (
                        SconnaErrorModel(adc_mape=0.0)
                        if mode == "sconna"
                        else None
                    )
                    qm.forward(np.zeros((n, c, h, w)), mode=mode, error_model=em)
                models[name] = (qm, mode)
                reply = ("loaded", token, name, None)
            except BaseException as exc:
                reply = ("loaded", token, name, f"{type(exc).__name__}: {exc}")
            _shard_reply(conn, reply)
        elif op == "batch":
            _, bid, name, images, emodels, sizes, tctx = msg
            _shard_reply(
                conn, run_batch(bid, name, images, emodels, sizes, tctx)
            )
        elif op == "shmbatch":
            _, bid, name, desc, emodels, sizes, tctx = msg
            try:
                # zero-copy: the parent keeps this tx region allocated
                # until our reply arrives, and the reply is only sent
                # after forward() is done with the view
                images = tx.read_array(desc, copy=False)
            except BaseException as exc:
                metrics.record_error(len(sizes))
                _shard_reply(conn, ("err", bid, exc))
                continue
            _shard_reply(
                conn, run_batch(bid, name, images, emodels, sizes, tctx)
            )
            del images  # release the mmap export so close() can unmap
        elif op == "freerx":
            try:
                rx_alloc.free(msg[1])
            except (KeyError, AttributeError):
                # a free for a region this runtime never allocated (a
                # duplicate, or rx_alloc is None under the pipe
                # transport): losing one free is recoverable, dying
                # mid-serve is not
                pass
        elif op == "metrics":
            _shard_reply(conn, ("metrics", msg[1], metrics.state()))
        elif op == "reset_metrics":
            metrics.reset()
    for arena in (tx, rx):
        if arena is not None:
            arena.close()  # attachment only - the parent owns the unlink
    try:
        conn.close()
    except OSError:
        pass


def _shard_reply(conn, reply: tuple) -> None:
    """Send a reply, degrading an unpicklable error payload to a string
    wrapper rather than killing the shard loop."""
    try:
        conn.send(reply)
    except (EOFError, BrokenPipeError, OSError):
        raise SystemExit(0)  # parent is gone; nothing left to serve
    except Exception as exc:  # unpicklable exception object, etc.
        if reply[0] == "err":
            conn.send(
                ("err", reply[1], RuntimeError(f"shard error (unpicklable): {exc}"))
            )
        else:
            raise


class ProcessBackend(ExecutionBackend):
    """Multi-process sharded execution: N worker processes behind pipes.

    Dispatch is least-loaded over the live shards a model is *placed*
    on (``placement``; default every shard).  Each shard executes its
    batches serially in arrival order, so a model's ``load`` (sent
    first, pipe ordering) is always visible before its batches.  Crash
    handling: the shard's collector thread sees pipe EOF, the backend
    reaps the process, respawns the slot (replaying the model loads
    placed there), and redispatches the dead shard's in-flight batches -
    at-least-once execution whose results are identical because each
    batch carries its own pickled RNG state.

    **Transport.**  ``transport="shm"`` (default) moves batch tensors
    (and result logits on the return path) through per-shard
    ``multiprocessing.shared_memory`` ring arenas; only a small
    descriptor (offset, shape, dtype) plus the request ids and pickled
    RNG state cross the pipe.  The parent owns both arenas of every
    shard: it allocates tx regions (freed when that batch's reply
    arrives - the single-threaded shard is necessarily done reading by
    then), reads rx logits (freed shard-side on the parent's ``freerx``
    message), and **unlinks both segments** on shard death, respawn and
    ``close()`` - no ``/dev/shm/repro_*`` segment survives the backend,
    even when a shard dies mid-batch.  A ring-full condition or a batch
    larger than the ring degrades that batch to the classic pipe-pickle
    path (``transport="pipe"`` forces it everywhere), so backpressure
    bounds memory without stalling dispatch.  Bytes move verbatim in
    both transports, so the cross-backend bit-equivalence contract is
    transport-independent.
    """

    kind = "process"

    def __init__(
        self,
        n_shards: int = 2,
        start_method: str | None = None,
        max_restarts: int = 3,
        load_timeout_s: float = 180.0,
        transport: str = "shm",
        ring_bytes: int = DEFAULT_RING_BYTES,
        placement: "ShardPlacement | dict | None" = None,
        affinity: "str | None" = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if transport not in ("pipe", "shm"):
            raise ValueError(f"unknown transport {transport!r}; "
                             "expected 'pipe' or 'shm'")
        if ring_bytes < 1:
            raise ValueError("ring_bytes must be >= 1")
        if affinity not in (None, "auto"):
            raise ValueError(f"unknown affinity {affinity!r}; "
                             "expected 'auto' or None")
        #: "auto" pins shard slot i to core i (mod the allowed set) so
        #: shards stop migrating between cores; None leaves scheduling
        #: to the kernel.  Requires os.sched_setaffinity (Linux) - on
        #: other platforms the knob is accepted and ignored.
        self.affinity = affinity
        self._cores: "tuple[int, ...] | None" = None
        if affinity == "auto" and hasattr(os, "sched_getaffinity"):
            self._cores = tuple(sorted(os.sched_getaffinity(0)))
        # spawn by default: forking a parent that already runs scheduler
        # and HTTP threads is a deadlock lottery
        self._ctx = multiprocessing.get_context(start_method or "spawn")
        self.start_method = start_method or "spawn"
        self.max_restarts = max_restarts
        self.load_timeout_s = load_timeout_s
        self.ring_bytes = int(ring_bytes)
        self.requested_transport = transport
        if transport == "shm":
            try:  # probe: /dev/shm may be absent or unwritable
                ShmArena(4096).destroy()
            except Exception as exc:
                import warnings

                warnings.warn(
                    f"shared-memory transport unavailable "
                    f"({type(exc).__name__}: {exc}); falling back to the "
                    "pipe transport",
                    RuntimeWarning,
                    stacklevel=2,
                )
                transport = "pipe"
        self.transport = transport
        if placement is None or isinstance(placement, ShardPlacement):
            self.placement = placement
        else:
            self.placement = ShardPlacement(placement)
        self._lock = threading.RLock()
        self._drained = threading.Condition(self._lock)
        self._admin_lock = threading.Lock()  # serializes add_model acks
        self._metrics_lock = threading.Lock()  # serializes metrics rounds
        self._models: "dict[str, tuple[str, _ModelSrc, object, tuple[int, ...]]]" = {}
        self._bids = itertools.count(1)
        self._tokens = itertools.count(1)
        self._closed = False
        self.restarts = 0
        #: transport counters (under _lock): batches sent through shm,
        #: through the pipe by configuration, and pipe fallbacks forced
        #: by ring backpressure / oversized batches
        self._shm_batches = 0
        self._pipe_batches = 0
        self._pipe_fallbacks = 0
        #: every segment name this backend ever created (tests assert
        #: all of them are gone from /dev/shm after close)
        self.segment_names: "set[str]" = set()
        #: crashed-shard orphans currently between inflight tables (a
        #: drain must wait for them to land on a live shard or fail)
        self._rescuing = 0
        #: final metrics states captured from shards stopped by close()
        self._retired_states: "list[dict]" = []
        self._shards: "list[_Shard]" = []
        try:
            for slot in range(n_shards):
                self._shards.append(self._spawn(slot))
        except OSError:
            if self.transport != "shm":
                raise
            # the 4 KB probe passed but the full rings do not fit (e.g.
            # a container's small /dev/shm tmpfs - posix_fallocate in
            # ShmArena makes that a clean OSError here rather than a
            # SIGBUS mid-serve): release everything spawned so far and
            # retry wholesale on the pipe transport
            self._abort_spawned()
            import warnings

            warnings.warn(
                f"/dev/shm cannot hold {n_shards} x 2 rings of "
                f"{self.ring_bytes} B; falling back to the pipe "
                "transport (shrink ring_bytes or grow /dev/shm to keep "
                "shared-memory dispatch)",
                RuntimeWarning,
                stacklevel=2,
            )
            self.transport = "pipe"
            self._shards = [self._spawn(slot) for slot in range(n_shards)]

    def _abort_spawned(self) -> None:
        """Tear down the shards a failed ``__init__`` spawn loop already
        started - nothing may leak when construction cannot complete."""
        partial, self._shards = self._shards, []
        for shard in partial:
            shard.expected_exit = True
            try:
                shard.send(("stop",))
            except OSError:
                pass
        for shard in partial:
            self._reap_shard(shard, 2.0)

    @staticmethod
    def _reap_shard(shard: _Shard, join_timeout: float) -> None:
        """The one shard-reaping sequence (shared by close() and the
        __init__ fallback): join the process (terminate if it will not
        die), close the pipe, join the collector, destroy the rings."""
        shard.process.join(join_timeout)
        if shard.process.is_alive():
            shard.process.terminate()
            shard.process.join(2.0)
        try:
            shard.conn.close()
        except OSError:
            pass
        if shard.reader is not None:
            shard.reader.join(2.0)
        # every ring dies with its shard: unlink here so neither exit
        # path can leave /dev/shm entries behind
        shard.destroy_arenas()

    # -- shard lifecycle -------------------------------------------------
    def _spawn(self, slot: int) -> _Shard:
        tx = rx = tx_alloc = None
        shm_spec = None
        if self.transport == "shm":
            tx = ShmArena(self.ring_bytes)
            try:
                rx = ShmArena(self.ring_bytes)
            except BaseException:
                tx.destroy()
                raise
            tx_alloc = RingAllocator(self.ring_bytes)
            self.segment_names.update((tx.name, rx.name))
            shm_spec = (tx.name, rx.name, self.ring_bytes)
        cpus = None
        if self._cores:
            cpus = (self._cores[slot % len(self._cores)],)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_main,
            args=(child_conn, slot, shm_spec, cpus),
            name=f"sconna-shard-{slot}",
            daemon=True,  # belt: the pipe-EOF exit in _shard_main is the braces
        )
        try:
            process.start()
        except BaseException:
            for arena in (tx, rx):
                if arena is not None:
                    arena.destroy()
            raise
        child_conn.close()  # the parent keeps only its own end
        shard = _Shard(slot=slot, process=process, conn=parent_conn,
                       tx=tx, rx=rx, tx_alloc=tx_alloc, cpus=cpus)
        shard.reader = threading.Thread(
            target=self._collect, args=(shard,),
            name=f"sconna-shard-{slot}-collector", daemon=True,
        )
        shard.reader.start()
        # replay the models placed on this slot into the fresh runtime
        # (token None: respawn replays are fire-and-forget; pipe ordering
        # still guarantees the load lands before any redispatched batch)
        with self._lock:
            replay = list(self._models.items())
        for name, (mode, src, warm, slots) in replay:
            if slot in slots:
                shard.send(("load", None, name, src[0], src[1], mode, warm))
        return shard

    def _collect(self, shard: _Shard) -> None:
        """Per-shard collector: routes replies until the pipe dies."""
        while True:
            try:
                msg = shard.conn.recv()
            except (EOFError, OSError):
                break
            op = msg[0]
            if op == "loaded":
                if msg[1] is not None:  # respawn replays carry token None
                    shard.acks.put(msg)
            elif op == "metrics":
                shard.metrics_replies.put(msg)
            elif op in ("ok", "okshm", "err"):
                bid = msg[1]
                logits = None
                shard_spans = msg[3] if len(msg) > 3 else None
                if op == "okshm":
                    # copy the logits out *before* releasing anything;
                    # the freerx goes back even when the read fails -
                    # otherwise the shard's rx region would leak until
                    # its next respawn and shrink the ring for good
                    desc = msg[2]
                    try:
                        logits = shard.rx.read_array(desc)
                    except BaseException as exc:
                        op, msg = "err", ("err", bid, exc)
                    try:
                        shard.send(("freerx", desc.offset))
                    except OSError:
                        pass  # dying shard; respawn gets fresh rings
                elif op == "ok":
                    logits = msg[2]
                with self._lock:
                    item = shard.inflight.pop(bid, None)
                    tx_offset = shard.tx_offsets.pop(bid, None)
                    if tx_offset is not None and shard.tx_alloc is not None:
                        try:
                            shard.tx_alloc.free(tx_offset)
                        except KeyError:
                            pass
                    self._drained.notify_all()
                if item is None:
                    continue  # already redispatched elsewhere
                if item.traces:
                    # rejoin the shard-side spans: one backend.dispatch
                    # span per traced request (dispatch -> reply on the
                    # parent clock) with the shard's own spans grafted
                    # under it - the ServeMetrics.merge parent/worker
                    # aggregation idiom applied to spans
                    returned_at = time.monotonic()
                    transport = "shm" if tx_offset is not None else "pipe"
                    for tr in item.traces:
                        parent = tr.add_span(
                            "backend.dispatch", item.dispatched_at,
                            returned_at,
                            tags={"backend": "process",
                                  "shard": shard.slot,
                                  "transport": transport,
                                  **({"error": type(msg[2]).__name__}
                                     if op == "err" else {})},
                        )
                        if shard_spans:
                            tr.add_spans(shard_spans, parent_id=parent)
                if op == "err":
                    item.on_done(msg[2])
                else:
                    item.on_done(
                        BatchResult(
                            logits=logits,
                            n_images=int(logits.shape[0]),
                            exec_start=item.dispatched_at,
                            shard=shard.slot,
                        )
                    )
        self._on_shard_exit(shard)

    def _on_shard_exit(self, shard: _Shard) -> None:
        """Reap a dead shard; respawn its slot and rescue its batches."""
        with self._lock:
            shard.alive = False
            orphans = list(shard.inflight.values())
            shard.inflight.clear()
            shard.tx_offsets.clear()  # regions die with the arenas below
            # hold the drain open until every orphan is redispatched (or
            # failed): between the clear above and the re-add in
            # _dispatch, no inflight table owns these batches
            self._rescuing += len(orphans)
            self._drained.notify_all()
            respawn = (
                not shard.expected_exit
                and not self._closed
                and self.restarts < self.max_restarts
            )
            if respawn:
                self.restarts += 1
        try:
            shard.process.join(timeout=5.0)
        except Exception:
            pass
        # reclaim the dead shard's segments *now* - a respawn gets fresh
        # rings, and a shard that crashed mid-batch must not leak
        # /dev/shm entries for however long the backend lives
        shard.destroy_arenas()
        if respawn:
            try:
                replacement = self._spawn(shard.slot)
            except BaseException:
                pass  # slot stays dead; orphans go to surviving shards
            else:
                with self._lock:
                    self._shards[shard.slot] = replacement
        for item in orphans:
            try:
                self._dispatch(item)
            except BaseException as exc:
                item.on_done(exc)
            finally:
                with self._lock:
                    self._rescuing -= 1
                    self._drained.notify_all()

    # -- model management ------------------------------------------------
    def _resolve_placement(self, name, placement) -> "tuple[int, ...]":
        """The shard slots hosting ``name``: an explicit per-model
        subset wins, then the backend's :class:`ShardPlacement` policy,
        then every shard."""
        n = len(self._shards)
        if placement is not None:
            if isinstance(placement, ShardPlacement):
                return placement.shards_for(name, n)
            return ShardPlacement({name: placement}).shards_for(name, n)
        if self.placement is not None:
            return self.placement.shards_for(name, n)
        return tuple(range(n))

    def add_model(
        self, name, qmodel, mode, archive=None, warm=None, placement=None
    ) -> None:
        if archive is not None:
            src: _ModelSrc = ("path", str(archive))
        else:
            from repro.cnn.serialization import dumps_quantized_model

            src = ("bytes", dumps_quantized_model(qmodel))
        slots = self._resolve_placement(name, placement)
        with self._admin_lock:
            with self._lock:
                if self._closed:
                    raise RuntimeError("backend is closed")
                self._models[name] = (mode, src, warm, slots)
                shards = [
                    s for s in self._shards if s.alive and s.slot in slots
                ]
            token = next(self._tokens)
            for shard in shards:
                try:
                    shard.send(("load", token, name, src[0], src[1], mode, warm))
                except OSError:
                    pass  # dying shard; its respawn replays the load
            deadline = time.monotonic() + self.load_timeout_s
            for shard in shards:
                error = self._await_ack(shard, token, name, deadline)
                if error is not None:
                    raise RuntimeError(
                        f"shard {shard.slot} failed to load model {name!r}: {error}"
                    )

    def _await_ack(
        self, shard: _Shard, token: int, name: str, deadline: float
    ) -> "str | None":
        """Wait for this shard's load ack; stale acks are discarded."""
        while True:
            if not shard.alive:
                return None  # exit path replays the load on respawn
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return f"no ack within {self.load_timeout_s:.0f}s"
            try:
                _, ack_token, ack_name, error = shard.acks.get(
                    timeout=min(remaining, 0.25)
                )
            except queue.Empty:
                continue
            if ack_token == token and ack_name == name:
                return error

    # -- request path ----------------------------------------------------
    def submit(self, name, batch, on_done) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("backend is closed")
            entry = self._models.get(name)
            if entry is None:
                raise KeyError(f"backend has no model {name!r}")
            slots = entry[3]
        traces = [r.trace for r in batch if r.trace is not None]
        tctx = None
        if traces:
            # union of the requests' remote span contexts: the shard
            # profiles once per batch if any rider asked for it
            tctx = {"profile": any(t.wants_profile for t in traces)}
        self._dispatch(
            _Inflight(
                name=name,
                images=stack_batch(batch),
                models=[r.error_model for r in batch],
                sizes=[r.n_images for r in batch],
                on_done=on_done,
                dispatched_at=time.monotonic(),
                slots=slots,
                traces=traces,
                tctx=tctx,
            )
        )

    def _dispatch(self, item: _Inflight) -> None:
        """Assign one batch to the least-loaded live shard in the
        model's placement and send it - through the shard's shm tx ring
        when the transport is shm and the ring has room, over the pipe
        otherwise (ring-full backpressure and oversized batches degrade
        to the pipe path rather than stalling).

        Raises when no placed shard is alive; a send that fails because
        the chosen shard just died is *not* an error - the entry is
        already in that shard's in-flight table, so the collector's exit
        path redispatches it.
        """
        with self._lock:
            live = [
                s for s in self._shards if s.alive and s.slot in item.slots
            ]
            if not live:
                raise RuntimeError(
                    f"no live shards for model {item.name!r} "
                    f"(placement {sorted(item.slots)}; exceeded "
                    "max_restarts or closing)"
                )
            shard = min(live, key=lambda s: len(s.inflight))
            bid = next(self._bids)
            shard.inflight[bid] = item
            offset = None
            if shard.tx_alloc is not None:
                offset = shard.tx_alloc.alloc(item.images.nbytes)
                if offset is not None:
                    shard.tx_offsets[bid] = offset
                    self._shm_batches += 1
                else:
                    self._pipe_fallbacks += 1
            else:
                self._pipe_batches += 1
        if offset is not None:
            try:
                desc = shard.tx.write_array(offset, item.images)
                shard.send(
                    ("shmbatch", bid, item.name, desc, item.models,
                     item.sizes, item.tctx)
                )
            except (OSError, ValueError, BufferError, TypeError):
                # arena/pipe died under us (a closed SharedMemory's buf
                # is None, so frombuffer raises TypeError): the entry is
                # already in the shard's inflight table, the EOF path
                # rescues it
                pass
            return
        try:
            shard.send(("batch", bid, item.name, item.images, item.models,
                        item.sizes, item.tctx))
        except (OSError, ValueError):
            pass  # pipe broke: the collector's EOF path rescues the entry

    # -- metrics / lifecycle ---------------------------------------------
    def metrics_states(self, timeout: float = 2.0) -> "list[dict]":
        """Fetch each live shard's metrics state over its pipe.

        The request queues behind in-flight batches (shards are
        single-threaded), so a busy shard may miss the ``timeout`` and
        simply drop out of this aggregation round; a *crashed* shard's
        history is lost with it, while shards stopped by :meth:`close`
        have their final state captured first.  Rounds are serialized
        (one at a time) so concurrent pollers - an HTTP /v1/metrics
        client racing close()'s final capture, say - cannot consume
        each other's replies.
        """
        with self._metrics_lock:
            with self._lock:
                shards = [s for s in self._shards if s.alive]
                states: "list[dict]" = list(self._retired_states)
            pending: "list[tuple[_Shard, int]]" = []
            for shard in shards:
                token = next(self._tokens)
                try:
                    shard.send(("metrics", token))
                    pending.append((shard, token))
                except OSError:
                    continue
            deadline = time.monotonic() + timeout
            for shard, token in pending:
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not shard.alive:
                        break
                    try:
                        _, reply_token, state = shard.metrics_replies.get(
                            timeout=min(remaining, 0.1)
                        )
                    except queue.Empty:
                        continue
                    if reply_token == token:
                        states.append(state)
                        break
            return states

    def reset_metrics(self) -> None:
        """Fire-and-forget reset of every live shard's counters (call
        while idle: pipelined batches sent before the reset still count)."""
        with self._lock:
            self._retired_states.clear()
            shards = [s for s in self._shards if s.alive]
        for shard in shards:
            try:
                shard.send(("reset_metrics",))
            except OSError:
                pass

    def info(self) -> dict:
        with self._lock:
            placement = {
                name: list(entry[3]) for name, entry in self._models.items()
            }
            per_shard = [
                {
                    "shard": s.slot,
                    "alive": s.alive,
                    "pid": getattr(s.process, "pid", None),
                    "in_flight": len(s.inflight),
                    "models": sorted(
                        name for name, entry in self._models.items()
                        if s.slot in entry[3]
                    ),
                    "ring_bytes_in_use": (
                        s.tx_alloc.in_use if s.tx_alloc is not None else None
                    ),
                    "ring_stats": (
                        s.tx_alloc.stats() if s.tx_alloc is not None else None
                    ),
                    "cpus": None if s.cpus is None else list(s.cpus),
                }
                for s in self._shards
            ]
            return {
                "kind": self.kind,
                "shards": len(self._shards),
                "alive": sum(1 for s in self._shards if s.alive),
                "restarts": self.restarts,
                "start_method": self.start_method,
                "affinity": self.affinity,
                "transport": self.transport,
                "requested_transport": self.requested_transport,
                "ring_bytes": (
                    self.ring_bytes if self.transport == "shm" else None
                ),
                "shm_batches": self._shm_batches,
                "pipe_batches": self._pipe_batches,
                "pipe_fallbacks": self._pipe_fallbacks,
                "placement": placement,
                "per_shard": per_shard,
            }

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain in-flight batches, stop every shard, reap the processes."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._rescuing or any(
                s.inflight for s in self._shards if s.alive
            ):
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break  # drain window exhausted; fall through to reaping
                self._drained.wait(remaining if remaining is not None else 1.0)
            shards = list(self._shards)
            for shard in shards:
                shard.expected_exit = True
        # keep each shard's execution history past its death: fetch the
        # final metrics states before stopping anything
        final = self.metrics_states(timeout=2.0)
        with self._lock:
            self._retired_states.extend(final)
        for shard in shards:
            try:
                shard.send(("stop",))
            except OSError:
                pass
        for shard in shards:
            remaining = (
                2.0 if deadline is None else max(0.5, deadline - time.monotonic())
            )
            self._reap_shard(shard, remaining)
        # fail anything that never came back (shards killed mid-drain)
        leftovers: "list[_Inflight]" = []
        with self._lock:
            for shard in shards:
                leftovers.extend(shard.inflight.values())
                shard.inflight.clear()
        for item in leftovers:
            item.on_done(RuntimeError("backend closed before batch completed"))


def make_backend(
    backend: "ExecutionBackend | str",
    n_workers: int = 2,
    n_shards: int = 2,
    transport: str = "shm",
    placement: "ShardPlacement | dict | None" = None,
    affinity: "str | None" = None,
) -> ExecutionBackend:
    """Resolve a backend spec: an instance passes through; ``"thread"``
    and ``"process"`` construct the standard implementations
    (``transport``, ``placement`` and ``affinity`` apply to the process
    backend)."""
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend == "thread":
        return ThreadBackend(n_workers=n_workers)
    if backend == "process":
        return ProcessBackend(
            n_shards=n_shards, transport=transport, placement=placement,
            affinity=affinity,
        )
    raise ValueError(
        f"unknown backend {backend!r}; expected 'thread', 'process', "
        "or an ExecutionBackend instance"
    )
