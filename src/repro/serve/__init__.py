"""Batched inference serving on top of the SCONNA functional engine.

The subsystem turns the repo's kernel-level reproduction into a small
serving system with the throughput story the paper's comparisons are
framed in (sustained requests/s, tail latency, per-request accelerator
cost):

* :mod:`repro.serve.registry`  - named on-disk model store (NPZ + JSON
  manifests) with optional links to the :mod:`repro.cnn.zoo`
  descriptors for cost accounting,
* :mod:`repro.serve.batching`  - dynamic micro-batching scheduler
  coalescing single-image requests under ``max_batch_size`` /
  ``max_wait_ms`` policies,
* :mod:`repro.serve.backends`  - the :class:`ExecutionBackend` seam and
  its implementations: :class:`ThreadBackend` (one process, a warm
  thread pool) and :class:`ProcessBackend` (N shard worker processes
  loading models through the NPZ serialization, with crash respawn,
  in-flight redispatch, and per-model :class:`ShardPlacement`),
* :mod:`repro.serve.shm`       - the shared-memory ring transport the
  process backend moves batch tensors and logits through (descriptors
  on the pipe, payload bytes in ``/dev/shm``),
* :mod:`repro.serve.workers`   - the thread worker pool behind
  :class:`ThreadBackend`,
* :mod:`repro.serve.service`   - the :class:`SconnaService` facade
  (in-process ``predict``) plus :func:`install_shutdown_handlers` for
  signal-driven draining,
* :mod:`repro.serve.admission` - :class:`AdmissionPolicy` load shedding
  (bounded in-flight requests / payload bytes; 429 over the wire),
* :mod:`repro.serve.wire`      - the binary tensor wire protocol
  (NPY bodies and length-prefixed multi-tensor frames) the HTTP layer
  negotiates alongside JSON,
* :mod:`repro.serve.client`    - :class:`SconnaClient`, the stdlib-only
  keep-alive HTTP client (binary by default, JSON fallback, streamed
  multi-image responses),
* :mod:`repro.serve.httpd`     - stdlib HTTP/1.1 endpoint speaking JSON
  and the binary wire, with chunked per-image streaming (also a CLI:
  ``python -m repro.serve``),
* :mod:`repro.serve.metrics`   - throughput / latency-percentile /
  batch-shape accounting, mergeable across shard processes,
* :mod:`repro.serve.costs`     - per-request simulated accelerator cost
  annotations backed by :class:`repro.arch.simulator.SimulationCache`
  (always computed in the serving parent, never in shards),
* :mod:`repro.serve.telemetry` - the observability plane: sampled
  end-to-end request traces (``/v1/trace``, Chrome trace_event export),
  optional per-layer engine profiling, Prometheus text exposition for
  ``/v1/metrics``, and one-JSON-line-per-request structured logging,
* :mod:`repro.serve.router`    - the replica tier: an HTTP front-end
  load-balancing across N server replicas with per-model consistent
  routing (rendezvous hashing), health-probe ejection/re-admission,
  transparent redispatch of requests caught on a dying replica,
  graceful drain, and fleet-merged ``/v1/metrics`` (also a CLI:
  ``python -m repro.serve.router``).
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    AdmissionPolicy,
)
from repro.serve.backends import (
    BatchResult,
    ExecutionBackend,
    ProcessBackend,
    ShardPlacement,
    ThreadBackend,
    make_backend,
)
from repro.serve.batching import BatchingPolicy, InferenceRequest, MicroBatcher
from repro.serve.client import (
    AdmissionRejected,
    ClientError,
    ClientPrediction,
    SconnaClient,
    ServiceUnavailable,
)
from repro.serve.costs import CostAccountant, RequestCost, descriptor_from_quantized
from repro.serve.httpd import ServeHTTPServer, serve_http
from repro.serve.wire import (
    CONTENT_TYPE_FRAME,
    CONTENT_TYPE_JSON,
    CONTENT_TYPE_NPY,
    WireError,
    decode_frame,
    decode_npy,
    encode_frame,
    encode_npy,
    read_frame,
)
from repro.serve.metrics import ServeMetrics, percentile
from repro.serve.registry import ModelRegistry, RegistryEntry
from repro.serve.router import (
    Replica,
    ReplicaError,
    Router,
    RouterHTTPServer,
    RouterPolicy,
    serve_router,
    spawn_replicas,
)
from repro.serve.shm import RingAllocator, ShmArena, ShmDescriptor
from repro.serve.service import (
    Prediction,
    SconnaService,
    ShutdownHandlers,
    install_shutdown_handlers,
)
from repro.serve.telemetry import (
    Span,
    StructuredLogger,
    Trace,
    TracePolicy,
    Tracer,
    TraceStore,
    parse_exposition,
    render_exposition,
)
from repro.serve.workers import WorkerPool

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionPolicy",
    "AdmissionRejected",
    "ClientError",
    "ClientPrediction",
    "SconnaClient",
    "ServiceUnavailable",
    "CONTENT_TYPE_FRAME",
    "CONTENT_TYPE_JSON",
    "CONTENT_TYPE_NPY",
    "WireError",
    "decode_frame",
    "decode_npy",
    "encode_frame",
    "encode_npy",
    "read_frame",
    "BatchResult",
    "ExecutionBackend",
    "ProcessBackend",
    "ShardPlacement",
    "ThreadBackend",
    "make_backend",
    "RingAllocator",
    "ShmArena",
    "ShmDescriptor",
    "BatchingPolicy",
    "InferenceRequest",
    "MicroBatcher",
    "CostAccountant",
    "RequestCost",
    "descriptor_from_quantized",
    "ServeHTTPServer",
    "serve_http",
    "ServeMetrics",
    "percentile",
    "ModelRegistry",
    "RegistryEntry",
    "Replica",
    "ReplicaError",
    "Router",
    "RouterHTTPServer",
    "RouterPolicy",
    "serve_router",
    "spawn_replicas",
    "Prediction",
    "SconnaService",
    "ShutdownHandlers",
    "install_shutdown_handlers",
    "Span",
    "StructuredLogger",
    "Trace",
    "TracePolicy",
    "Tracer",
    "TraceStore",
    "parse_exposition",
    "render_exposition",
    "WorkerPool",
]
