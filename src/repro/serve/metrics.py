"""Serving metrics: throughput, latency percentiles, batch shapes.

One :class:`ServeMetrics` instance per recording site aggregates
everything the benchmark and the HTTP ``/v1/metrics`` endpoint report.
All recording methods are thread-safe (the scheduler, the workers, and
every client thread write concurrently); reading is a consistent
:meth:`snapshot`.

Under multi-process sharding the recording sites live in different
processes: the parent service records request-side samples (latency,
queue wait, queue depth) while each shard worker records execution-side
counters (batches, batch histogram, execution errors) into its own
instance.  :meth:`state` exports an instance's raw counters and samples
as a picklable dict that crosses the shard pipe, and :meth:`merge`
folds any number of such states (or live instances) into one aggregate
whose :meth:`snapshot` reads exactly like a single-process service's.

Latency and wait samples are kept in bounded deques - a long-lived
service keeps the most recent ``max_samples`` observations, so the
percentiles track current behaviour rather than boot-time history.
"""

from __future__ import annotations

import threading
import time
from collections import deque


def percentile(values: "list[float]", q: float) -> float:
    """Linear-interpolated percentile of an unsorted sample (q in [0, 100])."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not (0.0 <= q <= 100.0):
        raise ValueError("q must be in [0, 100]")
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    pos = (len(data) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


class ServeMetrics:
    """Thread-safe serving counters and samples."""

    def __init__(self, max_samples: int = 100_000) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.max_samples = max_samples
        self._lock = threading.Lock()
        self._latencies_s: "deque[float]" = deque(maxlen=max_samples)
        self._waits_s: "deque[float]" = deque(maxlen=max_samples)
        self._queue_depths: "deque[int]" = deque(maxlen=max_samples)
        self._batch_hist: "dict[int, int]" = {}
        self._n_requests = 0
        self._n_images = 0
        self._n_batches = 0
        self._n_batched_requests = 0
        self._n_errors = 0
        self._n_shed = 0
        self._first_done: float | None = None
        self._last_done: float | None = None
        #: per-model simulated accelerator spend: model -> {energy_j,
        #: latency_s, images}.  Monotonic counters, so the Prometheus
        #: exposition can export them as ``_total`` families and a
        #: scraper can derive energy-per-inference rates.
        self._accel_costs: "dict[str, dict]" = {}

    # -- recording -------------------------------------------------------
    def record_enqueue(self, queue_depth: int) -> None:
        """Sample the queue depth observed as a request is enqueued."""
        with self._lock:
            self._queue_depths.append(int(queue_depth))

    def record_batch(self, n_requests: int, n_images: int) -> None:
        """One coalesced batch: its request count and its image count
        (they differ when requests carry multi-image stacks)."""
        with self._lock:
            self._n_batches += 1
            self._n_batched_requests += n_requests
            self._batch_hist[n_images] = self._batch_hist.get(n_images, 0) + 1

    def record_request(self, latency_s: float, wait_s: float, n_images: int = 1) -> None:
        """Record one completed request (latency, queue wait, image count)."""
        self.record_requests([(latency_s, wait_s, n_images)])

    def record_requests(
        self, samples: "list[tuple[float, float, int]]"
    ) -> None:
        """Batch variant of :meth:`record_request`: one lock acquisition
        per coalesced batch instead of one per request."""
        if not samples:
            return
        now = time.monotonic()
        with self._lock:
            for latency_s, wait_s, n_images in samples:
                self._n_requests += 1
                self._n_images += n_images
                self._latencies_s.append(float(latency_s))
                self._waits_s.append(float(wait_s))
            if self._first_done is None:
                self._first_done = now
            self._last_done = now

    def record_error(self, n_requests: int = 1) -> None:
        """Count requests that resolved with an execution error."""
        with self._lock:
            self._n_errors += n_requests

    def record_shed(self, n_requests: int = 1) -> None:
        """Requests rejected by admission control (never enqueued; they
        are not errors - the client was told to back off and retry)."""
        with self._lock:
            self._n_shed += n_requests

    def record_cost(
        self, model: str, energy_j: float, latency_s: float, n_images: int
    ) -> None:
        """Accumulate one batch's simulated accelerator spend for
        ``model`` (energy in joules, device latency in seconds, and the
        image count the spend covers)."""
        with self._lock:
            acc = self._accel_costs.setdefault(
                model, {"energy_j": 0.0, "latency_s": 0.0, "images": 0}
            )
            acc["energy_j"] += float(energy_j)
            acc["latency_s"] += float(latency_s)
            acc["images"] += int(n_images)

    def reset(self) -> None:
        """Discard everything recorded so far (e.g. warm-up traffic)."""
        with self._lock:
            self._latencies_s.clear()
            self._waits_s.clear()
            self._queue_depths.clear()
            self._batch_hist.clear()
            self._n_requests = self._n_images = 0
            self._n_batches = self._n_batched_requests = 0
            self._n_errors = self._n_shed = 0
            self._first_done = self._last_done = None
            self._accel_costs.clear()

    # -- aggregation across shards ---------------------------------------
    def state(self) -> dict:
        """Raw counters and samples as a picklable/JSON-able dict.

        This is the wire format shard workers ship to the parent; feed
        it back through :meth:`merge` to aggregate.
        """
        with self._lock:
            return {
                "max_samples": self.max_samples,
                "latencies_s": list(self._latencies_s),
                "waits_s": list(self._waits_s),
                "queue_depths": list(self._queue_depths),
                "batch_hist": dict(self._batch_hist),
                "n_requests": self._n_requests,
                "n_images": self._n_images,
                "n_batches": self._n_batches,
                "n_batched_requests": self._n_batched_requests,
                "n_errors": self._n_errors,
                "n_shed": self._n_shed,
                "first_done": self._first_done,
                "last_done": self._last_done,
                "accel_costs": {m: dict(v) for m, v in self._accel_costs.items()},
            }

    def merge(self, other: "ServeMetrics | dict") -> "ServeMetrics":
        """Fold another instance's (or exported state's) data into this one.

        Counters add, histograms add per bucket, bounded sample deques
        extend (keeping the most recent ``max_samples``), and the
        completion span widens to cover both sources.  Completion
        timestamps are ``time.monotonic`` values; on Linux that clock is
        system-wide, so spans merged across shard processes on one
        machine stay coherent.  Returns ``self`` for chaining.
        """
        state = other.state() if isinstance(other, ServeMetrics) else other
        with self._lock:
            self._latencies_s.extend(state["latencies_s"])
            self._waits_s.extend(state["waits_s"])
            self._queue_depths.extend(state["queue_depths"])
            for size, count in state["batch_hist"].items():
                size = int(size)
                self._batch_hist[size] = self._batch_hist.get(size, 0) + count
            self._n_requests += state["n_requests"]
            self._n_images += state["n_images"]
            self._n_batches += state["n_batches"]
            self._n_batched_requests += state["n_batched_requests"]
            self._n_errors += state["n_errors"]
            # .get: shard states predating admission control lack the key
            self._n_shed += state.get("n_shed", 0)
            # .get: states predating cost accounting lack the key
            for model, theirs in state.get("accel_costs", {}).items():
                acc = self._accel_costs.setdefault(
                    model, {"energy_j": 0.0, "latency_s": 0.0, "images": 0}
                )
                acc["energy_j"] += float(theirs.get("energy_j", 0.0))
                acc["latency_s"] += float(theirs.get("latency_s", 0.0))
                acc["images"] += int(theirs.get("images", 0))
            for theirs, pick in (
                (state["first_done"], min), (state["last_done"], max)
            ):
                if theirs is not None:
                    attr = "_first_done" if pick is min else "_last_done"
                    ours = getattr(self, attr)
                    setattr(self, attr, theirs if ours is None else pick(ours, theirs))
        return self

    @classmethod
    def merged(cls, parts: "list[ServeMetrics | dict]") -> "ServeMetrics":
        """A fresh instance holding the union of every part's data."""
        agg = cls()
        for part in parts:
            agg.merge(part)
        return agg

    @classmethod
    def from_state(cls, state: dict) -> "ServeMetrics":
        """Rebuild a live instance from one exported :meth:`state` dict.

        The export is JSON-safe, so this also accepts a state that
        round-tripped through ``/v1/metrics?format=state`` (where JSON
        stringifies the batch-histogram keys - :meth:`merge` restores
        them).  This is how a fleet router re-hydrates each replica's
        counters before folding them together.
        """
        instance = cls(max_samples=int(state.get("max_samples", 100_000)))
        instance.merge(state)
        return instance

    # -- reading ---------------------------------------------------------
    def snapshot(self) -> dict:
        """A consistent, JSON-ready view of every aggregate."""
        with self._lock:
            latencies = list(self._latencies_s)
            waits = list(self._waits_s)
            depths = list(self._queue_depths)
            hist = dict(self._batch_hist)
            n_requests, n_images = self._n_requests, self._n_images
            n_batches, n_errors = self._n_batches, self._n_errors
            n_batched_requests, n_shed = self._n_batched_requests, self._n_shed
            first, last = self._first_done, self._last_done
            accel = {m: dict(v) for m, v in self._accel_costs.items()}

        def ms_stats(samples: "list[float]") -> dict:
            if not samples:
                return {"count": 0}
            return {
                "count": len(samples),
                "mean_ms": 1e3 * sum(samples) / len(samples),
                "p50_ms": 1e3 * percentile(samples, 50.0),
                "p95_ms": 1e3 * percentile(samples, 95.0),
                "p99_ms": 1e3 * percentile(samples, 99.0),
                "max_ms": 1e3 * max(samples),
            }

        span_s = (last - first) if (first is not None and last is not None) else 0.0
        total_batched = sum(size * count for size, count in hist.items())
        return {
            "requests": n_requests,
            "images": n_images,
            "batches": n_batches,
            "errors": n_errors,
            "shed": n_shed,
            # completions per second over the observed completion span;
            # needs >= 2 completions for a meaningful span
            "requests_per_s": (n_requests - 1) / span_s if span_s > 0 else None,
            "latency": ms_stats(latencies),
            "queue_wait": ms_stats(waits),
            "batch_size": {
                "histogram": {str(k): v for k, v in sorted(hist.items())},
                "mean": total_batched / n_batches if n_batches else None,
                "mean_requests": (
                    n_batched_requests / n_batches if n_batches else None
                ),
                "max": max(hist) if hist else None,
            },
            "queue_depth": {
                "mean": sum(depths) / len(depths) if depths else None,
                "max": max(depths) if depths else None,
            },
            "accel_costs": {
                model: {
                    "energy_j": acc["energy_j"],
                    "latency_s": acc["latency_s"],
                    "images": acc["images"],
                    "energy_j_per_image": (
                        acc["energy_j"] / acc["images"] if acc["images"] else None
                    ),
                    "latency_s_per_image": (
                        acc["latency_s"] / acc["images"] if acc["images"] else None
                    ),
                }
                for model, acc in sorted(accel.items())
            },
        }
