"""Request tracing: monotonic-clock span trees with sampling.

One :class:`Trace` follows one request across every serving seam - HTTP
parse, admission, batch queue, backend dispatch, shard execution, engine
stages, response encode - as a tree of :class:`Span` records.  The
design constraints, in order:

* **Low overhead when off.**  :meth:`Tracer.start` returns ``None`` for
  unsampled requests (one RNG draw under a lock), and every
  instrumentation site guards on ``trace is not None`` - an untraced
  request pays no clock reads and allocates nothing.
* **Cross-process span rejoining.**  Shard worker processes record
  spans with ``time.monotonic()``, which is system-wide on Linux (the
  same property :meth:`~repro.serve.metrics.ServeMetrics.merge` relies
  on), so a shard's ``(start_s, end_s)`` pairs are directly comparable
  to the parent's.  The shard ships plain ``(name, start_s, end_s,
  tags)`` tuples back over the pipe alongside the logits and the parent
  grafts them into the request's trace with :meth:`Trace.add_spans` -
  the parent/worker aggregation idiom of ``ServeMetrics.merge`` applied
  to spans.
* **Deterministic sampling.**  :class:`TracePolicy` carries an optional
  ``seed``; a seeded tracer's admit/skip sequence is a pure function of
  the request order, which the sampling tests lock.

Completed traces land in a bounded :class:`TraceStore` ring (oldest
evicted first) that the ``/v1/trace`` endpoint reads; each trace
exports as plain JSON (:meth:`Trace.as_dict`) or as Chrome
``trace_event`` JSON (:meth:`Trace.chrome_events`) loadable in
``about://tracing`` / Perfetto for flamegraph inspection.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed operation inside a trace (times are ``time.monotonic``)."""

    span_id: str
    name: str
    start_s: float
    end_s: "float | None" = None
    parent_id: "str | None" = None       #: None marks the root span
    tags: dict = field(default_factory=dict)

    @property
    def duration_ms(self) -> "float | None":
        if self.end_s is None:
            return None
        return (self.end_s - self.start_s) * 1e3

    def as_dict(self) -> dict:
        """JSON-serializable span (one entry of a trace document)."""
        return {
            "span_id": self.span_id,
            "name": self.name,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_ms": self.duration_ms,
            "tags": dict(self.tags),
        }


@dataclass(frozen=True)
class TracePolicy:
    """Sampling policy of one :class:`Tracer`.

    ``sample_rate`` is the fraction of requests traced up front;
    ``always_sample_slow_ms``, when set, records spans for *every*
    request but only commits unsampled ones whose total duration
    reaches the threshold - the slow tail is always visible, the
    common case pays the sampled rate.  ``profile_engine`` asks the
    execution layer for per-stage engine timings (quantize / im2col /
    matmul / remainder / requantize) on sampled requests; it changes
    wall time only, never logits.  ``seed`` makes the admit/skip
    sequence deterministic.
    """

    sample_rate: float = 1.0 / 16.0
    always_sample_slow_ms: "float | None" = None
    profile_engine: bool = False
    seed: "int | None" = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.sample_rate <= 1.0):
            raise ValueError("sample_rate must be in [0, 1]")
        if (self.always_sample_slow_ms is not None
                and self.always_sample_slow_ms < 0):
            raise ValueError("always_sample_slow_ms must be >= 0 (or None)")

    def as_dict(self) -> dict:
        """JSON-serializable policy knobs (reported by tracer stats)."""
        return {
            "sample_rate": self.sample_rate,
            "always_sample_slow_ms": self.always_sample_slow_ms,
            "profile_engine": self.profile_engine,
            "seed": self.seed,
        }


#: disabled-tracing policy: start() always returns None
POLICY_OFF = TracePolicy(sample_rate=0.0)
#: trace everything, with engine profiling (tests / demo / debugging)
POLICY_ALWAYS = TracePolicy(sample_rate=1.0, profile_engine=True)


class Trace:
    """One request's span tree (thread-safe; spans arrive from the HTTP
    handler thread, the batching scheduler, and backend collector
    threads as the request moves between them)."""

    __slots__ = (
        "trace_id", "sampled", "wants_profile", "root", "_spans",
        "_ids", "_lock",
    )

    def __init__(
        self,
        name: str = "request",
        trace_id: "str | None" = None,
        sampled: bool = True,
        wants_profile: bool = False,
        tags: "dict | None" = None,
    ) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.sampled = sampled
        self.wants_profile = wants_profile
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self.root = Span(
            span_id="0", name=name, start_s=time.monotonic(),
            tags=dict(tags or {}),
        )
        self._spans: "list[Span]" = [self.root]

    # -- recording -------------------------------------------------------
    def set_tags(self, **tags) -> None:
        """Attach metadata to the root span (model, batch id, status...)."""
        with self._lock:
            self.root.tags.update(tags)

    def add_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        tags: "dict | None" = None,
        parent_id: "str | None" = None,
    ) -> str:
        """Record one already-timed span; returns its id.

        ``parent_id=None`` parents under the root - instrumentation
        sites along the request path never need to thread span ids.
        """
        with self._lock:
            span = Span(
                span_id=str(next(self._ids)),
                name=name,
                start_s=float(start_s),
                end_s=float(end_s),
                parent_id=self.root.span_id if parent_id is None else parent_id,
                tags=dict(tags or {}),
            )
            self._spans.append(span)
            return span.span_id

    def add_spans(
        self,
        entries: "list[tuple]",
        parent_id: "str | None" = None,
    ) -> None:
        """Graft externally-recorded ``(name, start_s, end_s, tags)``
        tuples (engine profiles, shard-side spans) under ``parent_id``."""
        for name, start_s, end_s, tags in entries:
            self.add_span(name, start_s, end_s, tags=tags, parent_id=parent_id)

    class _Timed:
        __slots__ = ("trace", "name", "tags", "parent_id", "span_id", "_t0")

        def __init__(self, trace, name, tags, parent_id):
            self.trace = trace
            self.name = name
            self.tags = tags
            self.parent_id = parent_id
            self.span_id: "str | None" = None

        def __enter__(self):
            self._t0 = time.monotonic()
            return self

        def __exit__(self, exc_type, exc, tb):
            tags = dict(self.tags or {})
            if exc is not None:
                tags["error"] = f"{exc_type.__name__}: {exc}"
            self.span_id = self.trace.add_span(
                self.name, self._t0, time.monotonic(),
                tags=tags, parent_id=self.parent_id,
            )
            return False

    def span(
        self, name: str, tags: "dict | None" = None,
        parent_id: "str | None" = None,
    ) -> "_Timed":
        """Context manager timing a block into one span."""
        return self._Timed(self, name, tags, parent_id)

    def finish(self) -> None:
        """Close the root span (idempotent: first close wins)."""
        with self._lock:
            if self.root.end_s is None:
                self.root.end_s = time.monotonic()

    # -- reading / export ------------------------------------------------
    @property
    def duration_ms(self) -> "float | None":
        return self.root.duration_ms

    def spans(self) -> "list[Span]":
        """The recorded spans, in append order (a copy; safe to iterate)."""
        with self._lock:
            return list(self._spans)

    def breakdown(self) -> "dict[str, float]":
        """Total milliseconds per span name (the per-request latency
        breakdown the structured log line carries)."""
        out: "dict[str, float]" = {}
        for span in self.spans():
            if span.end_s is None:
                continue
            out[span.name] = out.get(span.name, 0.0) + span.duration_ms
        return out

    def summary(self) -> dict:
        """The /v1/trace list entry."""
        spans = self.spans()
        return {
            "trace_id": self.trace_id,
            "name": self.root.name,
            "sampled": self.sampled,
            "duration_ms": self.duration_ms,
            "n_spans": len(spans),
            "tags": dict(self.root.tags),
        }

    def as_dict(self) -> dict:
        """The full ``/v1/trace/<id>`` document: tags plus every span."""
        return {
            "trace_id": self.trace_id,
            "sampled": self.sampled,
            "duration_ms": self.duration_ms,
            "spans": [span.as_dict() for span in self.spans()],
        }

    def chrome_events(self) -> "list[dict]":
        """Chrome ``trace_event`` complete events (``ph="X"``, ts/dur in
        microseconds relative to the trace start) for about://tracing."""
        t0 = self.root.start_s
        events = []
        for span in self.spans():
            end_s = span.end_s if span.end_s is not None else time.monotonic()
            shard = span.tags.get("shard")
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": (span.start_s - t0) * 1e6,
                "dur": (end_s - span.start_s) * 1e6,
                "pid": 1,
                "tid": "serve" if shard is None else f"shard-{shard}",
                "args": dict(span.tags, span_id=span.span_id,
                             parent_id=span.parent_id),
            })
        return events


def remote_span_context(trace: "Trace | None") -> "dict | None":
    """The picklable trace context a batch carries across the shard pipe
    (alongside the RNG-state payload): ``None`` when no request in the
    batch is being traced, else what the shard needs to know."""
    if trace is None:
        return None
    return {"profile": trace.wants_profile}


class TraceStore:
    """Bounded in-memory ring of completed traces (oldest evicted)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()
        self.evicted = 0

    def add(self, trace: Trace) -> None:
        """Store a finished trace, evicting the oldest past capacity."""
        with self._lock:
            self._traces[trace.trace_id] = trace
            self._traces.move_to_end(trace.trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
                self.evicted += 1

    def get(self, trace_id: str) -> "Trace | None":
        """The stored trace with this id, or ``None``."""
        with self._lock:
            return self._traces.get(trace_id)

    def latest(self) -> "Trace | None":
        """The most recently stored trace, or ``None``."""
        with self._lock:
            if not self._traces:
                return None
            return next(reversed(self._traces.values()))

    def summaries(self, limit: int = 50) -> "list[dict]":
        """Newest-first trace summaries for the list endpoint."""
        with self._lock:
            traces = list(self._traces.values())
        return [t.summary() for t in reversed(traces[-limit:] if limit else traces)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def stats(self) -> dict:
        """Capacity/stored/evicted counters for the ring."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "stored": len(self._traces),
                "evicted": self.evicted,
            }


class Tracer:
    """Sampling front door: decides per request, owns the trace ring.

    ``start`` returns ``None`` for requests that will never be
    committed (the zero-overhead common case), a recording
    :class:`Trace` otherwise; ``finish`` closes the root span and
    commits the trace to the store when it was sampled up front or
    crossed the slow threshold.
    """

    def __init__(
        self,
        policy: "TracePolicy | None" = None,
        capacity: int = 256,
    ) -> None:
        self.policy = policy or TracePolicy()
        self.store = TraceStore(capacity)
        self._rng = random.Random(self.policy.seed)
        self._lock = threading.Lock()
        self.started = 0
        self.committed = 0

    def start(
        self, name: str = "request", trace_id: "str | None" = None, **tags
    ) -> "Trace | None":
        """Begin a trace for one request, or ``None`` when unsampled.

        ``trace_id`` propagates an upstream id (a fleet router sends
        its own in ``X-Sconna-Parent-Trace``): the local trace adopts
        it, so the router's hop spans and this process's span tree are
        queryable under one id on both sides - distributed tracing
        with nothing but an HTTP header.
        """
        policy = self.policy
        if policy.sample_rate >= 1.0:
            sampled = True
        elif policy.sample_rate <= 0.0:
            sampled = False
        else:
            with self._lock:
                sampled = self._rng.random() < policy.sample_rate
        if not sampled and policy.always_sample_slow_ms is None:
            return None
        with self._lock:
            self.started += 1
        return Trace(
            name=name, trace_id=trace_id, sampled=sampled,
            wants_profile=policy.profile_engine, tags=tags,
        )

    def finish(self, trace: "Trace | None", **tags) -> bool:
        """Close and maybe commit; returns whether the trace was kept."""
        if trace is None:
            return False
        if tags:
            trace.set_tags(**tags)
        trace.finish()
        keep = trace.sampled
        slow_ms = self.policy.always_sample_slow_ms
        if not keep and slow_ms is not None:
            duration = trace.duration_ms
            keep = duration is not None and duration >= slow_ms
        if keep:
            self.store.add(trace)
            with self._lock:
                self.committed += 1
        return keep

    def stats(self) -> dict:
        """Sampling counters plus store stats (``/v1/metrics`` telemetry)."""
        with self._lock:
            started, committed = self.started, self.committed
        return {
            "policy": self.policy.as_dict(),
            "started": started,
            "committed": committed,
            "store": self.store.stats(),
        }
