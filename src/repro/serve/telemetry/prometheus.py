"""Prometheus text exposition (format 0.0.4) for the metrics snapshot.

:func:`render_exposition` turns one
:meth:`~repro.serve.service.SconnaService.metrics_snapshot` dict into
the plain-text scrape format, so ``/v1/metrics?format=prometheus`` is
directly consumable by a Prometheus/VictoriaMetrics scraper across a
future replica fleet.  Mapping choices:

* monotonically-growing snapshot counts (requests, images, batches,
  errors, sheds, transport batch counts, ring evictions) render as
  ``counter``;
* instantaneous values (uptime, queue depth, in-flight totals and
  per-model gauges, ring occupancy, per-shard liveness) as ``gauge``;
* the batch-size histogram renders as a real Prometheus ``histogram``
  (cumulative ``le`` buckets ending in ``+Inf``, with ``_sum`` and
  ``_count``), built from the exact per-size counts the snapshot
  carries;
* latency and queue-wait percentiles render as ``summary`` quantiles -
  the snapshot keeps percentiles, not raw samples, so a histogram
  would be fabricated.

Label values are escaped per the exposition spec (backslash, double
quote, newline).  :func:`parse_exposition` is the deliberately small
validating parser the CI smoke leg and the format tests use: it checks
line syntax, ``TYPE`` consistency, and histogram bucket monotonicity,
returning the samples it accepted.
"""

from __future__ import annotations

import math

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_PREFIX = "sconna"


def escape_label_value(value: object) -> str:
    """Escape one label value per the text-exposition rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value: object) -> str:
    """One sample value: integers stay integral, floats round-trip."""
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


class _Writer:
    def __init__(self) -> None:
        self.lines: "list[str]" = []

    def header(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, value: object,
               labels: "dict | None" = None) -> None:
        if labels:
            body = ",".join(
                f'{k}="{escape_label_value(v)}"' for k, v in labels.items()
            )
            self.lines.append(f"{name}{{{body}}} {_fmt(value)}")
        else:
            self.lines.append(f"{name} {_fmt(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _summary(w: _Writer, name: str, stats: dict, help_text: str) -> None:
    """A summary family from the snapshot's ms_stats percentile dict."""
    w.header(name, "summary", help_text)
    count = int(stats.get("count", 0))
    for q, key in (("0.5", "p50_ms"), ("0.95", "p95_ms"), ("0.99", "p99_ms")):
        if key in stats:
            w.sample(name, stats[key] / 1e3, {"quantile": q})
    if count and "mean_ms" in stats:
        w.sample(f"{name}_sum", stats["mean_ms"] / 1e3 * count)
    w.sample(f"{name}_count", count)


def _batch_histogram(w: _Writer, hist: "dict[str, int]") -> None:
    """Cumulative-bucket histogram from the exact batch-size counts."""
    name = f"{_PREFIX}_batch_images"
    w.header(name, "histogram", "Images per dispatched batch.")
    sizes = sorted((int(k), int(v)) for k, v in hist.items())
    cumulative = 0
    total_images = 0
    for size, count in sizes:
        cumulative += count
        total_images += size * count
        w.sample(f"{name}_bucket", cumulative, {"le": str(size)})
    w.sample(f"{name}_bucket", cumulative, {"le": "+Inf"})
    w.sample(f"{name}_sum", total_images)
    w.sample(f"{name}_count", cumulative)


def render_exposition(snapshot: dict) -> str:
    """The full text exposition for one aggregated metrics snapshot."""
    w = _Writer()

    w.header(f"{_PREFIX}_requests_total", "counter", "Requests completed.")
    w.sample(f"{_PREFIX}_requests_total", int(snapshot.get("requests", 0)))
    w.header(f"{_PREFIX}_images_total", "counter", "Images inferred.")
    w.sample(f"{_PREFIX}_images_total", int(snapshot.get("images", 0)))
    w.header(f"{_PREFIX}_batches_total", "counter", "Coalesced batches executed.")
    w.sample(f"{_PREFIX}_batches_total", int(snapshot.get("batches", 0)))
    w.header(f"{_PREFIX}_errors_total", "counter", "Requests failed in execution.")
    w.sample(f"{_PREFIX}_errors_total", int(snapshot.get("errors", 0)))
    w.header(f"{_PREFIX}_shed_total", "counter",
             "Requests rejected by admission control.")
    w.sample(f"{_PREFIX}_shed_total", int(snapshot.get("shed", 0)))

    accel = snapshot.get("accel_costs") or {}
    if accel:
        w.header(f"{_PREFIX}_accel_energy_joules_total", "counter",
                 "Simulated accelerator energy spent serving the model.")
        for model in sorted(accel):
            w.sample(f"{_PREFIX}_accel_energy_joules_total",
                     float(accel[model].get("energy_j", 0.0)),
                     {"model": model})
        w.header(f"{_PREFIX}_accel_latency_seconds_total", "counter",
                 "Simulated accelerator device time spent serving the model.")
        for model in sorted(accel):
            w.sample(f"{_PREFIX}_accel_latency_seconds_total",
                     float(accel[model].get("latency_s", 0.0)),
                     {"model": model})
        w.header(f"{_PREFIX}_accel_images_total", "counter",
                 "Images covered by the simulated accelerator cost counters.")
        for model in sorted(accel):
            w.sample(f"{_PREFIX}_accel_images_total",
                     int(accel[model].get("images", 0)), {"model": model})

    if snapshot.get("uptime_s") is not None:
        w.header(f"{_PREFIX}_uptime_seconds", "gauge",
                 "Seconds since the service started.")
        w.sample(f"{_PREFIX}_uptime_seconds", float(snapshot["uptime_s"]))
    if snapshot.get("queue_depth_current") is not None:
        w.header(f"{_PREFIX}_queue_depth", "gauge",
                 "Requests currently waiting for a batch (all lanes).")
        w.sample(f"{_PREFIX}_queue_depth",
                 int(snapshot["queue_depth_current"]))

    inflight = snapshot.get("inflight_by_model")
    if inflight is not None:
        w.header(f"{_PREFIX}_inflight_requests", "gauge",
                 "Admitted, not yet completed requests per model.")
        if inflight:
            for model in sorted(inflight):
                w.sample(f"{_PREFIX}_inflight_requests",
                         int(inflight[model]), {"model": model})
        else:
            w.sample(f"{_PREFIX}_inflight_requests", 0)

    _summary(w, f"{_PREFIX}_request_latency_seconds",
             snapshot.get("latency") or {},
             "End-to-end request latency (enqueue to completion).")
    _summary(w, f"{_PREFIX}_queue_wait_seconds",
             snapshot.get("queue_wait") or {},
             "Time from enqueue to batch execution start.")
    _batch_histogram(
        w, (snapshot.get("batch_size") or {}).get("histogram") or {}
    )

    backend = snapshot.get("backend") or {}
    if backend.get("kind") == "process":
        for key, help_text in (
            ("shm_batches", "Batches dispatched through shared-memory rings."),
            ("pipe_batches", "Batches dispatched over the pickle pipe."),
            ("pipe_fallbacks",
             "Shm-transport batches degraded to the pipe by backpressure."),
        ):
            if backend.get(key) is not None:
                w.header(f"{_PREFIX}_{key}_total", "counter", help_text)
                w.sample(f"{_PREFIX}_{key}_total", int(backend[key]))
        w.header(f"{_PREFIX}_shard_restarts_total", "counter",
                 "Shard processes respawned after a crash.")
        w.sample(f"{_PREFIX}_shard_restarts_total",
                 int(backend.get("restarts", 0)))
        per_shard = backend.get("per_shard") or []
        if per_shard:
            w.header(f"{_PREFIX}_shard_up", "gauge",
                     "1 when the shard process is alive.")
            for shard in per_shard:
                w.sample(f"{_PREFIX}_shard_up", shard.get("alive", False),
                         {"shard": shard.get("shard")})
            w.header(f"{_PREFIX}_shard_inflight_batches", "gauge",
                     "Batches dispatched to the shard, not yet returned.")
            for shard in per_shard:
                w.sample(f"{_PREFIX}_shard_inflight_batches",
                         int(shard.get("in_flight", 0)),
                         {"shard": shard.get("shard")})
            if any(s.get("ring_bytes_in_use") is not None for s in per_shard):
                w.header(f"{_PREFIX}_ring_bytes_in_use", "gauge",
                         "Bytes allocated in the shard's tx shm ring.")
                for shard in per_shard:
                    used = shard.get("ring_bytes_in_use")
                    if used is not None:
                        w.sample(f"{_PREFIX}_ring_bytes_in_use", int(used),
                                 {"shard": shard.get("shard")})

    admission = snapshot.get("admission") or {}
    if admission:
        w.header(f"{_PREFIX}_admitted_inflight", "gauge",
                 "Requests admitted and not yet resolved.")
        w.sample(f"{_PREFIX}_admitted_inflight",
                 int(admission.get("in_flight", 0)))
        w.header(f"{_PREFIX}_admitted_bytes", "gauge",
                 "Payload bytes admitted and not yet resolved.")
        w.sample(f"{_PREFIX}_admitted_bytes",
                 int(admission.get("queued_bytes", 0)))

    fleet = snapshot.get("fleet") or {}
    if fleet:
        replicas = fleet.get("replicas") or []

        def _replica_label(entry: dict) -> str:
            return entry.get("replica_id") or entry.get("url") or "?"

        w.header(f"{_PREFIX}_replica_up", "gauge",
                 "1 when the replica answers its health probe.")
        for entry in replicas:
            w.sample(f"{_PREFIX}_replica_up", entry.get("healthy", False),
                     {"replica": _replica_label(entry)})
        w.header(f"{_PREFIX}_replica_draining", "gauge",
                 "1 while the replica is administratively draining.")
        for entry in replicas:
            w.sample(f"{_PREFIX}_replica_draining",
                     entry.get("draining", False),
                     {"replica": _replica_label(entry)})
        w.header(f"{_PREFIX}_replica_inflight", "gauge",
                 "Requests the router has in flight to the replica.")
        for entry in replicas:
            w.sample(f"{_PREFIX}_replica_inflight",
                     int(entry.get("inflight", 0)),
                     {"replica": _replica_label(entry)})
        w.header(f"{_PREFIX}_replica_routed_total", "counter",
                 "Requests the router forwarded to the replica.")
        for entry in replicas:
            w.sample(f"{_PREFIX}_replica_routed_total",
                     int(entry.get("routed", 0)),
                     {"replica": _replica_label(entry)})

    router = snapshot.get("router") or {}
    if router:
        for key, name, help_text in (
            ("routed_total", "routed",
             "Requests the router forwarded to a replica."),
            ("redispatches", "redispatches",
             "Forwards retried on another replica after a dead one."),
            ("unroutable", "unroutable",
             "Requests rejected because no replica was available."),
            ("proxy_errors", "proxy_errors",
             "Forwards that failed on every candidate or died mid-relay."),
        ):
            if router.get(key) is not None:
                w.header(f"{_PREFIX}_router_{name}_total", "counter",
                         help_text)
                w.sample(f"{_PREFIX}_router_{name}_total", int(router[key]))

    telemetry = snapshot.get("telemetry") or {}
    store = telemetry.get("store") or {}
    if store:
        w.header(f"{_PREFIX}_traces_stored", "gauge",
                 "Completed traces held in the in-memory ring.")
        w.sample(f"{_PREFIX}_traces_stored", int(store.get("stored", 0)))
        w.header(f"{_PREFIX}_traces_evicted_total", "counter",
                 "Traces evicted from the ring (capacity reached).")
        w.sample(f"{_PREFIX}_traces_evicted_total",
                 int(store.get("evicted", 0)))

    return w.text()


# -- validation (tests + CI smoke leg) --------------------------------------

def _parse_labels(body: str, line: str) -> dict:
    """Parse one ``k="v",...`` label body, honouring escapes."""
    labels: "dict[str, str]" = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq].strip()
        if not key or not key[0].isalpha() and key[0] != "_":
            raise ValueError(f"bad label name in {line!r}")
        if body[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {line!r}")
        j = eq + 2
        value_chars: "list[str]" = []
        while True:
            if j >= len(body):
                raise ValueError(f"unterminated label value in {line!r}")
            ch = body[j]
            if ch == "\\":
                esc = body[j + 1]
                value_chars.append(
                    {"\\": "\\", '"': '"', "n": "\n"}.get(esc, esc)
                )
                j += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            j += 1
        labels[key] = "".join(value_chars)
        i = j + 1
        if i < len(body):
            if body[i] != ",":
                raise ValueError(f"bad label separator in {line!r}")
            i += 1
    return labels


def parse_exposition(text: str) -> "list[tuple[str, dict, float]]":
    """Parse and validate one text exposition; returns the samples.

    Checks line syntax, that every sample's family was ``# TYPE``d,
    that sample values parse as floats, that no two samples share one
    ``(name, labels)`` identity, that counter samples are never ``NaN``,
    and that every histogram's cumulative buckets are non-decreasing
    and end with ``le="+Inf"``.  Raises :class:`ValueError` on the
    first violation - this is the small validating parser the CI smoke
    leg and the watchtower collector run against a live
    ``/v1/metrics?format=prometheus`` scrape.
    """
    samples: "list[tuple[str, dict, float]]" = []
    types: "dict[str, str]" = {}
    seen: "set[tuple[str, tuple]]" = set()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"malformed TYPE line: {line!r}")
            if parts[3] not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                raise ValueError(f"unknown metric type in {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            body, _, value_part = rest.rpartition("}")
            labels = _parse_labels(body, line)
        else:
            name, _, value_part = line.partition(" ")
            labels = {}
        name = name.strip()
        value_part = value_part.strip()
        if not name or not value_part:
            raise ValueError(f"malformed sample line: {line!r}")
        try:
            value = float(value_part)
        except ValueError:
            raise ValueError(f"bad sample value in {line!r}") from None
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if family.endswith(suffix) and family[: -len(suffix)] in types:
                family = family[: -len(suffix)]
                break
        if family not in types:
            raise ValueError(f"sample {name!r} has no # TYPE declaration")
        identity = (name, tuple(sorted(labels.items())))
        if identity in seen:
            raise ValueError(
                f"duplicate sample {name!r} with labels {labels!r}"
            )
        seen.add(identity)
        if types[family] == "counter" and math.isnan(value):
            raise ValueError(f"counter sample {name!r} has NaN value")
        samples.append((name, labels, value))

    # histogram checks: cumulative buckets non-decreasing, +Inf terminal
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = [
            (labels.get("le"), value)
            for name, labels, value in samples
            if name == f"{family}_bucket"
        ]
        if not buckets:
            raise ValueError(f"histogram {family!r} has no buckets")
        if buckets[-1][0] != "+Inf":
            raise ValueError(f"histogram {family!r} lacks a +Inf bucket")
        previous = -math.inf
        for le, value in buckets:
            if value < previous:
                raise ValueError(
                    f"histogram {family!r} bucket le={le!r} decreases"
                )
            previous = value
    return samples
