"""Structured request logging: one JSON line per served request.

:class:`StructuredLogger` replaces the ad-hoc ``print`` calls in the
HTTP server and the demo with a machine-parseable access log.  Each
request emits exactly one line - a flat JSON object with a stable core
schema::

    {"ts": <unix seconds>, "event": "request", "trace_id": ..,
     "model": .., "lane": .., "batch_id": .., "wire": ..,
     "status": <http status or "ok"/"error">, "latency_ms": ..,
     "breakdown": {<span name>: <total ms>, ...}}

``trace_id`` and ``breakdown`` come from the request's
:class:`~repro.serve.telemetry.trace.Trace` when it was sampled (and
are ``None`` otherwise), so a log line joins to its ``/v1/trace``
entry by id.  Lines go to any writable text stream (default
``sys.stderr``) under a lock, one ``write`` per line, so lines from
concurrent handler threads never interleave.
"""

from __future__ import annotations

import json
import sys
import threading
import time


class StructuredLogger:
    """Thread-safe one-line-JSON event logger.

    ``stream`` is any object with ``write(str)``; ``flush()`` is called
    when available so lines survive a crash.  A ``StructuredLogger``
    is cheap enough to leave enabled: one dict, one ``json.dumps``,
    one write per request.
    """

    def __init__(self, stream=None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()
        self.emitted = 0

    def log(self, event: str, **fields) -> dict:
        """Emit one event line; returns the record (tests read it)."""
        record = {"ts": round(time.time(), 3), "event": event}
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            self._stream.write(line + "\n")
            flush = getattr(self._stream, "flush", None)
            if flush is not None:
                flush()
            self.emitted += 1
        return record

    def log_request(
        self,
        *,
        trace=None,
        model=None,
        lane=None,
        wire=None,
        status=None,
        latency_ms=None,
        **extra,
    ) -> dict:
        """The per-request access line (core schema above).

        When ``trace`` is a committed
        :class:`~repro.serve.telemetry.trace.Trace`, its id, batch id
        tag, and per-span latency breakdown are folded in; the
        breakdown keys are span names, values total milliseconds.
        """
        trace_id = None
        batch_id = None
        breakdown = None
        if trace is not None:
            trace_id = trace.trace_id
            batch_id = trace.root.tags.get("batch_id")
            if latency_ms is None:
                latency_ms = trace.duration_ms
            breakdown = {
                name: round(ms, 3)
                for name, ms in sorted(trace.breakdown().items())
            }
        if latency_ms is not None:
            latency_ms = round(float(latency_ms), 3)
        return self.log(
            "request",
            trace_id=trace_id,
            model=model,
            lane=lane,
            batch_id=batch_id,
            wire=wire,
            status=status,
            latency_ms=latency_ms,
            breakdown=breakdown,
            **extra,
        )
