"""Zero-dependency HTML dashboard for ``/v1/watch/dashboard``.

One self-contained page - inline CSS, inline-SVG sparklines, a meta
refresh at the scrape interval - so a browser pointed at the
watchtower needs nothing else installed.  Four tables:

* active alerts (state, severity, magnitude, hold time);
* fleet: per scraped instance, req/s, p99, shed rate, queue depth,
  with p99 and throughput sparklines;
* replica health as the router reports it (up/draining/inflight);
* energy: per (instance, model), simulated J/image and average power,
  with an energy-rate sparkline.

Everything is computed from the watchtower's time-series store at
render time; rendering never blocks the scrape loop (the store is
lock-protected per query).
"""

from __future__ import annotations

import html
import time

_WINDOW_S = 60.0          #: rate/aggregate window for the tables
_SPARK_POINTS = 60        #: most recent points per sparkline

_CSS = """
body { font-family: ui-monospace, monospace; margin: 1.5rem;
       background: #111418; color: #d8dee9; }
h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.6rem; }
table { border-collapse: collapse; margin-top: .4rem; }
th, td { padding: .25rem .7rem; border-bottom: 1px solid #2a2f36;
         text-align: left; font-size: .85rem; }
th { color: #8fa1b3; font-weight: normal; }
.num { text-align: right; font-variant-numeric: tabular-nums; }
.ok { color: #a3be8c; } .bad { color: #bf616a; } .warn { color: #ebcb8b; }
.dim { color: #5c6773; } svg { vertical-align: middle; }
"""


def _spark(points: "list[tuple[float, float]]",
           width: int = 120, height: int = 28) -> str:
    """One inline-SVG sparkline polyline (min-max normalised)."""
    pts = points[-_SPARK_POINTS:]
    if len(pts) < 2:
        return '<span class="dim">-</span>'
    values = [v for _, v in pts]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    t0, t1 = pts[0][0], pts[-1][0]
    tspan = (t1 - t0) or 1.0
    coords = " ".join(
        f"{(t - t0) / tspan * (width - 2) + 1:.1f},"
        f"{height - 2 - (v - lo) / span * (height - 4):.1f}"
        for t, v in pts
    )
    return (
        f'<svg width="{width}" height="{height}">'
        f'<polyline points="{coords}" fill="none" '
        f'stroke="#88c0d0" stroke-width="1.2"/></svg>'
    )


def _fmt(value: "float | None", digits: int = 2) -> str:
    if value is None:
        return '<span class="dim">-</span>'
    return f"{value:.{digits}f}"


def _esc(value: object) -> str:
    return html.escape(str(value))


def render_dashboard(tower) -> str:
    """The full dashboard page for one :class:`Watchtower`."""
    store = tower.store
    now = time.monotonic()
    rows: "list[str]" = []
    rows.append("<!doctype html><html><head>")
    rows.append('<meta charset="utf-8">')
    rows.append(
        f'<meta http-equiv="refresh" content="{max(1, int(tower.interval_s))}">'
    )
    rows.append("<title>sconna watchtower</title>")
    rows.append(f"<style>{_CSS}</style></head><body>")
    stats = tower.stats()
    rows.append("<h1>sconna fleet watchtower</h1>")
    rows.append(
        f'<p class="dim">tick {stats["ticks"]} · interval '
        f'{tower.interval_s:g}s · {stats["collector"]["targets"]} targets · '
        f'{stats["store"]["series"]} series · auto-drain '
        f'{"on" if tower.auto_drain else "off"}</p>'
    )

    # -- alerts ----------------------------------------------------------
    active = tower.engine.active()
    rows.append("<h2>alerts</h2>")
    if not active:
        rows.append('<p class="ok">no active alerts</p>')
    else:
        rows.append("<table><tr><th>rule</th><th>state</th><th>severity</th>"
                    "<th>labels</th><th class=num>value</th>"
                    "<th>detail</th></tr>")
        for alert in active:
            css = "bad" if alert.state == "firing" else "warn"
            labels = ", ".join(
                f"{k}={v}" for k, v in sorted(alert.labels.items())
            )
            rows.append(
                f'<tr><td>{_esc(alert.rule)}</td>'
                f'<td class="{css}">{_esc(alert.state)}</td>'
                f"<td>{_esc(alert.severity)}</td><td>{_esc(labels)}</td>"
                f'<td class=num>{alert.value:.3g}</td>'
                f"<td>{_esc(alert.detail)}</td></tr>"
            )
        rows.append("</table>")

    # -- fleet -----------------------------------------------------------
    instances = sorted({
        labels.get("instance", "?")
        for labels, _ in store.match("sconna_requests_total")
    })
    rows.append("<h2>fleet</h2>")
    rows.append("<table><tr><th>instance</th><th class=num>req/s</th>"
                "<th>req/s trend</th><th class=num>p99 ms</th>"
                "<th>p99 trend</th><th class=num>shed/s</th>"
                "<th class=num>queue</th></tr>")
    for instance in instances:
        sel = {"instance": instance}
        req_rate = store.rate("sconna_requests_total", sel, _WINDOW_S, now)
        req_trend = store.rate_series(
            store.points("sconna_requests_total", sel)
        )
        p99_sel = {"quantile": "0.99", **sel}
        p99_pts = store.points("sconna_request_latency_seconds", p99_sel)
        p99 = store.latest("sconna_request_latency_seconds", p99_sel)
        shed_rate = store.rate("sconna_shed_total", sel, _WINDOW_S, now)
        queue = store.latest("sconna_queue_depth", sel)
        rows.append(
            f"<tr><td>{_esc(instance)}</td>"
            f"<td class=num>{_fmt(req_rate, 1)}</td>"
            f"<td>{_spark(req_trend)}</td>"
            f"<td class=num>"
            f"{_fmt(p99 * 1e3 if p99 is not None else None, 1)}</td>"
            f"<td>{_spark([(t, v * 1e3) for t, v in p99_pts])}</td>"
            f"<td class=num>{_fmt(shed_rate, 2)}</td>"
            f"<td class=num>{_fmt(queue, 0)}</td></tr>"
        )
    rows.append("</table>")

    # -- replica health --------------------------------------------------
    replica_rows = store.match("sconna_replica_up")
    if replica_rows:
        rows.append("<h2>replicas (router view)</h2>")
        rows.append("<table><tr><th>replica</th><th>up</th>"
                    "<th>draining</th><th class=num>inflight</th>"
                    "<th class=num>routed/s</th></tr>")
        seen = set()
        for labels, pts in replica_rows:
            replica = labels.get("replica", "?")
            if replica in seen:
                continue
            seen.add(replica)
            sel = {"replica": replica, "instance": labels.get("instance", "?")}
            up = pts[-1][1] if pts else None
            draining = store.latest("sconna_replica_draining", sel)
            inflight = store.latest("sconna_replica_inflight", sel)
            routed = store.rate(
                "sconna_replica_routed_total", sel, _WINDOW_S, now
            )
            up_cell = (
                '<span class="ok">up</span>' if up
                else '<span class="bad">down</span>'
            )
            drain_cell = (
                '<span class="warn">draining</span>' if draining
                else '<span class="dim">-</span>'
            )
            rows.append(
                f"<tr><td>{_esc(replica)}</td><td>{up_cell}</td>"
                f"<td>{drain_cell}</td>"
                f"<td class=num>{_fmt(inflight, 0)}</td>"
                f"<td class=num>{_fmt(routed, 1)}</td></tr>"
            )
        rows.append("</table>")

    # -- energy ----------------------------------------------------------
    energy_rows = store.match("sconna_accel_energy_joules_total")
    if energy_rows:
        rows.append("<h2>energy (simulated accelerator)</h2>")
        rows.append("<table><tr><th>instance</th><th>model</th>"
                    "<th class=num>J/image</th><th class=num>avg W</th>"
                    "<th>power trend</th></tr>")
        for labels, pts in sorted(
            energy_rows, key=lambda pair: sorted(pair[0].items())
        ):
            sel = {
                "instance": labels.get("instance", "?"),
                "model": labels.get("model", "?"),
            }
            energy = store.increase(
                "sconna_accel_energy_joules_total", sel, _WINDOW_S, now
            )
            images = store.increase(
                "sconna_accel_images_total", sel, _WINDOW_S, now
            )
            power = store.rate(
                "sconna_accel_energy_joules_total", sel, _WINDOW_S, now
            )
            per_image = energy / images if images > 0 else None
            rows.append(
                f'<tr><td>{_esc(sel["instance"])}</td>'
                f'<td>{_esc(sel["model"])}</td>'
                f"<td class=num>{_fmt(per_image, 4)}</td>"
                f"<td class=num>{_fmt(power, 3)}</td>"
                f"<td>{_spark(store.rate_series(pts))}</td></tr>"
            )
        rows.append("</table>")

    rows.append("</body></html>")
    return "\n".join(rows)
