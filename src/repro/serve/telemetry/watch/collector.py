"""Scrape loop: pull every target's Prometheus exposition into the store.

One :class:`Collector` owns a list of :class:`ScrapeTarget`\\ s (each a
replica or the fleet router), and on every :meth:`scrape_once` GETs
``/v1/metrics?format=prometheus`` from each, validates the body with
the shipped :func:`~repro.serve.telemetry.prometheus.parse_exposition`
(the same strict parser CI uses - a replica emitting duplicate samples
or NaN counters fails its scrape loudly instead of poisoning the
store), and ingests every sample with an added ``instance`` label
naming the target.

Two synthetic series are written per target per scrape:

* ``watch_scrape_up`` - 1 on success, 0 on any failure (connection,
  HTTP status, parse);
* ``watch_scrape_duration_ms`` - wall time of the scrape.

Connections are kept alive between scrapes and rebuilt on failure.
Timestamps are ``time.monotonic()`` unless the caller supplies ``now``
(tests replay deterministic histories that way).
"""

from __future__ import annotations

import http.client
import time
from dataclasses import dataclass
from urllib.parse import urlsplit

from repro.serve.telemetry.prometheus import parse_exposition

from .store import TimeSeriesStore

METRICS_PATH = "/v1/metrics?format=prometheus"


@dataclass
class ScrapeTarget:
    """One endpoint the watchtower scrapes."""

    name: str              #: instance label value (replica id, "router", ...)
    url: str               #: base URL, e.g. ``http://127.0.0.1:8100``
    role: str = "replica"  #: ``replica`` | ``router`` (informational)


class Collector:
    """Scrapes every target into one :class:`TimeSeriesStore`."""

    def __init__(
        self,
        targets: "list[ScrapeTarget]",
        store: TimeSeriesStore,
        timeout_s: float = 5.0,
        logger: "object | None" = None,
    ) -> None:
        self.targets = list(targets)
        self.store = store
        self.timeout_s = timeout_s
        self.logger = logger
        self._conns: "dict[str, http.client.HTTPConnection]" = {}
        self._scrapes = 0
        self._failures = 0

    # -- transport -------------------------------------------------------
    def _connection(self, target: ScrapeTarget) -> http.client.HTTPConnection:
        conn = self._conns.get(target.name)
        if conn is None:
            parts = urlsplit(target.url)
            conn = http.client.HTTPConnection(
                parts.hostname, parts.port or 80, timeout=self.timeout_s
            )
            self._conns[target.name] = conn
        return conn

    def _drop_connection(self, target: ScrapeTarget) -> None:
        conn = self._conns.pop(target.name, None)
        if conn is not None:
            try:
                conn.close()
            except Exception:
                pass

    def _fetch(self, target: ScrapeTarget) -> str:
        conn = self._connection(target)
        try:
            conn.request("GET", METRICS_PATH)
            resp = conn.getresponse()
            body = resp.read()
        except Exception:
            # one retry on a fresh connection: the pooled socket may
            # simply have idled out between scrapes
            self._drop_connection(target)
            conn = self._connection(target)
            conn.request("GET", METRICS_PATH)
            resp = conn.getresponse()
            body = resp.read()
        if resp.status != 200:
            raise RuntimeError(f"HTTP {resp.status} from {target.url}")
        return body.decode("utf-8")

    # -- scraping --------------------------------------------------------
    def scrape_target(self, target: ScrapeTarget, now: float) -> dict:
        """Scrape one target; returns a per-target summary dict."""
        started = time.monotonic()
        try:
            samples = parse_exposition(self._fetch(target))
        except Exception as exc:
            self._drop_connection(target)
            self._failures += 1
            self.store.observe("watch_scrape_up", {"instance": target.name},
                               0.0, now)
            if self.logger is not None:
                self.logger.log(
                    "scrape_error", instance=target.name, url=target.url,
                    error=f"{type(exc).__name__}: {exc}",
                )
            return {"instance": target.name, "ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}
        for name, labels, value in samples:
            self.store.observe(
                name, {**labels, "instance": target.name}, value, now
            )
        duration_ms = (time.monotonic() - started) * 1e3
        self.store.observe("watch_scrape_up", {"instance": target.name},
                           1.0, now)
        self.store.observe("watch_scrape_duration_ms",
                           {"instance": target.name}, duration_ms, now)
        return {"instance": target.name, "ok": True,
                "samples": len(samples),
                "duration_ms": round(duration_ms, 3)}

    def scrape_once(self, now: "float | None" = None) -> dict:
        """Scrape every target once; returns the tick summary."""
        if now is None:
            now = time.monotonic()
        results = [self.scrape_target(target, now) for target in self.targets]
        self._scrapes += 1
        return {
            "t": now,
            "targets": results,
            "ok": sum(1 for r in results if r["ok"]),
            "failed": sum(1 for r in results if not r["ok"]),
        }

    def close(self) -> None:
        for target in list(self.targets):
            self._drop_connection(target)

    def stats(self) -> dict:
        return {
            "targets": len(self.targets),
            "scrapes": self._scrapes,
            "scrape_failures": self._failures,
        }
