"""Bounded in-memory time-series store for the fleet watchtower.

One :class:`TimeSeriesStore` holds every series the collector scrapes:
a series is identified by ``(name, labels)`` and keeps a ring of
``(t, value)`` points (a ``deque(maxlen=...)``, so old points fall off
the back as new scrapes arrive).  The store is deliberately small and
stdlib-only - it is the watchtower's working set, not a database:

* :meth:`observe` appends one point (timestamps are caller-supplied so
  tests can replay synthetic histories deterministically; the collector
  stamps ``time.monotonic()``);
* :meth:`increase` / :meth:`rate` derive counter deltas over a window
  with Prometheus-style reset handling: a negative delta between
  consecutive points means the counter restarted, so the new value *is*
  the delta;
* :meth:`quantile` / :meth:`agg` answer windowed queries over gauge
  samples (reusing :func:`repro.serve.metrics.percentile`);
* a series-count cap evicts the least-recently-updated series, and
  both eviction kinds (ring points dropped, whole series evicted) are
  counted so ``/v1/watch/series`` can report store pressure honestly.

Thread-safety: one lock around every mutation and query - the scrape
loop, the SLO engine, and the HTTP handlers all touch the store from
different threads.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.serve.metrics import percentile

#: labels are stored internally as a hashable, order-independent key
LabelKey = tuple


def label_key(labels: "dict | None") -> LabelKey:
    """Canonical hashable identity of one label set."""
    return tuple(sorted((labels or {}).items()))


class _Series:
    __slots__ = ("name", "labels", "points", "dropped", "last_update")

    def __init__(self, name: str, labels: dict, capacity: int) -> None:
        self.name = name
        self.labels = dict(labels)
        self.points: "deque[tuple[float, float]]" = deque(maxlen=capacity)
        self.dropped = 0
        self.last_update = 0.0


class TimeSeriesStore:
    """Bounded map of ``(name, labels) -> ring of (t, value)``."""

    def __init__(
        self, capacity_per_series: int = 1024, max_series: int = 4096
    ) -> None:
        if capacity_per_series < 2:
            raise ValueError("capacity_per_series must be >= 2")
        if max_series < 1:
            raise ValueError("max_series must be >= 1")
        self.capacity_per_series = capacity_per_series
        self.max_series = max_series
        self._lock = threading.Lock()
        self._series: "dict[tuple[str, LabelKey], _Series]" = {}
        self._points_dropped = 0
        self._series_evicted = 0

    # -- writing ---------------------------------------------------------
    def observe(
        self, name: str, labels: "dict | None", value: float, t: float
    ) -> None:
        """Append one ``(t, value)`` point to the series."""
        key = (name, label_key(labels))
        value = float(value)
        t = float(t)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                if len(self._series) >= self.max_series:
                    self._evict_one_locked()
                series = _Series(name, labels or {}, self.capacity_per_series)
                self._series[key] = series
            if len(series.points) == series.points.maxlen:
                series.dropped += 1
                self._points_dropped += 1
            series.points.append((t, value))
            series.last_update = t

    def _evict_one_locked(self) -> None:
        victim_key = min(
            self._series, key=lambda k: self._series[k].last_update
        )
        del self._series[victim_key]
        self._series_evicted += 1

    # -- enumeration -----------------------------------------------------
    def names(self) -> "list[str]":
        with self._lock:
            return sorted({series.name for series in self._series.values()})

    def match(
        self, name: str, labels: "dict | None" = None
    ) -> "list[tuple[dict, list[tuple[float, float]]]]":
        """Every series of ``name`` whose labels are a superset of
        ``labels``; returns ``[(labels, points), ...]`` copies."""
        want = (labels or {}).items()
        out: "list[tuple[dict, list[tuple[float, float]]]]" = []
        with self._lock:
            for series in self._series.values():
                if series.name != name:
                    continue
                if not all(series.labels.get(k) == v for k, v in want):
                    continue
                out.append((dict(series.labels), list(series.points)))
        out.sort(key=lambda pair: sorted(pair[0].items()))
        return out

    def points(
        self, name: str, labels: "dict | None" = None
    ) -> "list[tuple[float, float]]":
        """The exact series' points (empty list when absent)."""
        key = (name, label_key(labels))
        with self._lock:
            series = self._series.get(key)
            return list(series.points) if series is not None else []

    def latest(
        self,
        name: str,
        labels: "dict | None" = None,
        max_age_s: "float | None" = None,
        now: "float | None" = None,
    ) -> "float | None":
        """The most recent value, or ``None`` when absent or stale."""
        pts = self.points(name, labels)
        if not pts:
            return None
        t, value = pts[-1]
        if max_age_s is not None and now is not None and now - t > max_age_s:
            return None
        return value

    # -- windowed queries ------------------------------------------------
    def _window(
        self, name: str, labels: "dict | None", window_s: float, now: float
    ) -> "list[tuple[float, float]]":
        cutoff = now - window_s
        return [(t, v) for t, v in self.points(name, labels) if t >= cutoff]

    def values(
        self, name: str, labels: "dict | None", window_s: float, now: float
    ) -> "list[float]":
        """Raw sample values inside the window."""
        return [v for _, v in self._window(name, labels, window_s, now)]

    def increase(
        self, name: str, labels: "dict | None", window_s: float, now: float
    ) -> float:
        """Counter increase over the window, reset-aware.

        Sums consecutive deltas; a negative delta means the counter
        restarted from zero, so the new absolute value is taken as the
        contribution (the standard Prometheus ``increase`` convention).
        """
        pts = self._window(name, labels, window_s, now)
        if len(pts) < 2:
            return 0.0
        total = 0.0
        for (_, prev), (_, cur) in zip(pts, pts[1:]):
            delta = cur - prev
            total += cur if delta < 0 else delta
        return total

    def rate(
        self, name: str, labels: "dict | None", window_s: float, now: float
    ) -> float:
        """Per-second counter rate over the window (0.0 if <2 points)."""
        pts = self._window(name, labels, window_s, now)
        if len(pts) < 2:
            return 0.0
        span = pts[-1][0] - pts[0][0]
        if span <= 0:
            return 0.0
        return self.increase(name, labels, window_s, now) / span

    @staticmethod
    def rate_series(
        pts: "list[tuple[float, float]]",
    ) -> "list[tuple[float, float]]":
        """Pointwise rate derivation of one counter series: for each
        consecutive pair, the reset-aware delta divided by the time
        step, stamped at the newer point.  Feeds sparklines and the
        ``derive=rate`` mode of ``/v1/watch/series``."""
        out: "list[tuple[float, float]]" = []
        for (t0, prev), (t1, cur) in zip(pts, pts[1:]):
            step = t1 - t0
            if step <= 0:
                continue
            delta = cur - prev
            out.append((t1, (cur if delta < 0 else delta) / step))
        return out

    def quantile(
        self,
        name: str,
        labels: "dict | None",
        q: float,
        window_s: float,
        now: float,
    ) -> "float | None":
        """Linear-interpolated quantile of the window's samples
        (``q`` in [0, 100]); ``None`` on an empty window."""
        samples = self.values(name, labels, window_s, now)
        if not samples:
            return None
        return percentile(samples, q)

    def agg(
        self,
        name: str,
        labels: "dict | None",
        how: str,
        window_s: float,
        now: float,
    ) -> "float | None":
        """One windowed aggregate: ``max``/``min``/``mean``/``last``."""
        samples = self.values(name, labels, window_s, now)
        if not samples:
            return None
        if how == "max":
            return max(samples)
        if how == "min":
            return min(samples)
        if how == "mean":
            return sum(samples) / len(samples)
        if how == "last":
            return samples[-1]
        raise ValueError(f"unknown aggregate {how!r}")

    # -- accounting ------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "series": len(self._series),
                "points": sum(
                    len(s.points) for s in self._series.values()
                ),
                "points_dropped": self._points_dropped,
                "series_evicted": self._series_evicted,
                "capacity_per_series": self.capacity_per_series,
                "max_series": self.max_series,
            }
