"""SLO rule evaluation and the alert firing/resolved state machine.

:class:`SLOEngine` is evaluated once per collector tick against the
:class:`~repro.serve.telemetry.watch.store.TimeSeriesStore`.  Every
rule produces zero or more *breaches* - ``(labels, value, detail)``
tuples, one per offending label set (per instance, per replica, per
model) - and each ``(rule, labels)`` pair owns one alert with the
Prometheus-style lifecycle:

* first breach opens the alert ``pending``;
* once the condition has held for the rule's ``for_s`` the alert
  transitions to ``firing`` (logged through :class:`StructuredLogger`
  and returned to the caller so remediation can act);
* the first clean evaluation closes a firing alert as ``resolved``
  (also logged) and retires it to a bounded history ring; a pending
  alert that recovers simply dissolves - it never fired, so it never
  resolves.

Burn-rate math: an SLO ``objective`` leaves an error budget of
``1 - objective``.  The burn rate over a window is the bad-event
fraction divided by that budget - burn 1.0 spends exactly the budget
over the SLO period, burn 14.4 spends a 30-day budget in 50 hours.
A multi-window rule breaches only when **every** window is burning
above its threshold: the short window proves the problem is happening
*now*, the long window proves it is not a blip.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from .rules import Rule
from .store import TimeSeriesStore, label_key


@dataclass
class Alert:
    """One live (or recently resolved) alert instance."""

    rule: str
    kind: str
    severity: str
    action: "str | None"
    labels: dict
    state: str = "pending"          #: pending | firing | resolved
    value: float = 0.0              #: latest breach magnitude
    detail: str = ""
    started_t: float = 0.0          #: monotonic first-breach time
    firing_t: "float | None" = None
    resolved_t: "float | None" = None
    started_at: float = field(default_factory=time.time)  #: wall clock

    def as_dict(self, now: "float | None" = None) -> dict:
        doc = {
            "rule": self.rule,
            "kind": self.kind,
            "severity": self.severity,
            "action": self.action,
            "labels": dict(self.labels),
            "state": self.state,
            "value": round(float(self.value), 6),
            "detail": self.detail,
            "started_at": self.started_at,
        }
        if now is not None:
            doc["active_for_s"] = round(now - self.started_t, 3)
            if self.firing_t is not None:
                doc["firing_for_s"] = round(
                    (self.resolved_t or now) - self.firing_t, 3
                )
        return doc


def _cmp(value: float, op: str, bound: float) -> bool:
    if op == ">":
        return value > bound
    if op == ">=":
        return value >= bound
    if op == "<":
        return value < bound
    if op == "<=":
        return value <= bound
    raise ValueError(f"unknown op {op!r}")


class SLOEngine:
    """Evaluates rules against the store; owns alert state."""

    def __init__(
        self,
        store: TimeSeriesStore,
        rules: "list[Rule]",
        logger: "object | None" = None,
        history: int = 256,
    ) -> None:
        self.store = store
        self.rules = list(rules)
        self.logger = logger
        self._active: "dict[tuple[str, tuple], Alert]" = {}
        self._history: "deque[Alert]" = deque(maxlen=history)
        self._n_evaluations = 0

    # -- per-kind breach computation -------------------------------------
    def _instance_filter(self, params: dict) -> dict:
        instance = params.get("instance")
        return {"instance": instance} if instance else {}

    def _eval_burn_rate(self, rule: Rule, now: float):
        p = rule.params
        budget = 1.0 - p["objective"]
        breaches = []
        if p["signal"] == "latency":
            selector = {"quantile": str(p["quantile"]),
                        **self._instance_filter(p)}
            threshold_s = p["threshold_ms"] / 1e3
            for labels, _ in self.store.match(p["series"], selector):
                burns: "list[float] | None" = []
                for window_s, _ in p["windows"]:
                    samples = self.store.values(
                        p["series"], labels, window_s, now
                    )
                    if not samples:
                        burns = None
                        break
                    bad = sum(1 for v in samples if v > threshold_s)
                    burns.append((bad / len(samples)) / budget)
                if burns is None:
                    continue
                if all(
                    burn > max_burn
                    for burn, (_, max_burn) in zip(burns, p["windows"])
                ):
                    breaches.append((
                        dict(labels),
                        burns[0],
                        f"p{p['quantile']} latency burn {burns[0]:.2f}x "
                        f"budget (threshold {p['threshold_ms']:g} ms)",
                    ))
        else:
            for labels, _ in self.store.match(
                p["total_series"], self._instance_filter(p)
            ):
                burns = []
                for window_s, max_burn in p["windows"]:
                    total = self.store.increase(
                        p["total_series"], labels, window_s, now
                    )
                    bad = self.store.increase(
                        p["bad_series"], labels, window_s, now
                    )
                    frac = (bad / total) if total > 0 else 0.0
                    burns.append(frac / budget)
                if all(
                    burn > max_burn
                    for burn, (_, max_burn) in zip(burns, p["windows"])
                ):
                    breaches.append((
                        dict(labels),
                        burns[0],
                        f"availability burn {burns[0]:.2f}x budget "
                        f"({p['bad_series']}/{p['total_series']})",
                    ))
        return breaches

    def _eval_threshold(self, rule: Rule, now: float):
        p = rule.params
        breaches = []
        for labels, _ in self.store.match(
            p["series"], self._instance_filter(p)
        ):
            if p["agg"] == "rate":
                value = self.store.rate(p["series"], labels, p["window_s"], now)
            elif p["agg"] == "increase":
                value = self.store.increase(
                    p["series"], labels, p["window_s"], now
                )
            else:
                value = self.store.agg(
                    p["series"], labels, p["agg"], p["window_s"], now
                )
            if value is None:
                continue
            if _cmp(value, p["op"], p["value"]):
                breaches.append((
                    dict(labels),
                    value,
                    f"{p['agg']}({p['series']}) = {value:g} "
                    f"{p['op']} {p['value']:g}",
                ))
        return breaches

    def _eval_replica_down(self, rule: Rule, now: float):
        p = rule.params
        down: "dict[str, tuple[dict, float, str]]" = {}
        for labels, _ in self.store.match(
            p["series"], self._instance_filter(p)
        ):
            value = self.store.latest(
                p["series"], labels, max_age_s=p["stale_s"], now=now
            )
            if value is None or value != 0.0:
                continue
            replica = labels.get("replica", "?")
            # one alert per replica, however many targets report it
            down[replica] = (
                {"replica": replica},
                0.0,
                f"replica {replica} failing its health probe",
            )
        return list(down.values())

    def _eval_energy_budget(self, rule: Rule, now: float):
        p = rule.params
        selector = dict(self._instance_filter(p))
        if p.get("model"):
            selector["model"] = p["model"]
        breaches = []
        for labels, _ in self.store.match(p["energy_series"], selector):
            images = self.store.increase(
                p["images_series"], labels, p["window_s"], now
            )
            if images <= 0:
                continue
            energy = self.store.increase(
                p["energy_series"], labels, p["window_s"], now
            )
            per_image = energy / images
            if per_image > p["max_joules_per_image"]:
                breaches.append((
                    dict(labels),
                    per_image,
                    f"{per_image:g} J/image over "
                    f"{p['max_joules_per_image']:g} J budget",
                ))
        return breaches

    def _eval_rule(self, rule: Rule, now: float):
        if rule.kind == "burn_rate":
            return self._eval_burn_rate(rule, now)
        if rule.kind == "threshold":
            return self._eval_threshold(rule, now)
        if rule.kind == "replica_down":
            return self._eval_replica_down(rule, now)
        if rule.kind == "energy_budget":
            return self._eval_energy_budget(rule, now)
        raise ValueError(f"unknown rule kind {rule.kind!r}")

    # -- lifecycle -------------------------------------------------------
    def _log(self, alert: Alert, phase: str) -> None:
        if self.logger is None:
            return
        self.logger.log(
            "alert",
            phase=phase,
            rule=alert.rule,
            severity=alert.severity,
            labels=dict(alert.labels),
            value=round(float(alert.value), 6),
            detail=alert.detail,
        )

    def evaluate(self, now: float) -> "list[tuple[str, Alert]]":
        """One evaluation pass; returns ``(transition, alert)`` events
        (transition in ``firing``/``resolved``) in rule order."""
        events: "list[tuple[str, Alert]]" = []
        for rule in self.rules:
            breached: "set[tuple[str, tuple]]" = set()
            for labels, value, detail in self._eval_rule(rule, now):
                key = (rule.name, label_key(labels))
                breached.add(key)
                alert = self._active.get(key)
                if alert is None:
                    alert = Alert(
                        rule=rule.name, kind=rule.kind,
                        severity=rule.severity, action=rule.action,
                        labels=dict(labels), started_t=now,
                    )
                    self._active[key] = alert
                alert.value = value
                alert.detail = detail
                if (
                    alert.state == "pending"
                    and now - alert.started_t >= rule.for_s
                ):
                    alert.state = "firing"
                    alert.firing_t = now
                    self._log(alert, "firing")
                    events.append(("firing", alert))
            for key in [k for k in self._active if k[0] == rule.name]:
                if key in breached:
                    continue
                alert = self._active.pop(key)
                if alert.state == "firing":
                    alert.state = "resolved"
                    alert.resolved_t = now
                    self._log(alert, "resolved")
                    self._history.append(alert)
                    events.append(("resolved", alert))
                # a pending alert that recovers dissolves silently
        self._n_evaluations += 1
        return events

    # -- reading ---------------------------------------------------------
    def active(self) -> "list[Alert]":
        return sorted(
            self._active.values(), key=lambda a: (a.rule, sorted(a.labels.items()))
        )

    def firing(self) -> "list[Alert]":
        return [a for a in self.active() if a.state == "firing"]

    def history(self) -> "list[Alert]":
        return list(self._history)

    def stats(self) -> dict:
        states = [a.state for a in self._active.values()]
        return {
            "evaluations": self._n_evaluations,
            "rules": len(self.rules),
            "active": len(states),
            "firing": states.count("firing"),
            "pending": states.count("pending"),
            "resolved_total": len(self._history),
        }
