"""HTTP surface of the watchtower.

A small stdlib threading server, deliberately separate from the
serving handler (:mod:`repro.serve.httpd` is service-shaped; the
watchtower serves documents, not inference)::

    GET /healthz             -> liveness + tick/collector stats
    GET /v1/watch/alerts     -> active + resolved alerts, remediations
    GET /v1/watch/series     -> series directory; ?name= for points,
                                &derive=rate for counter rates,
                                &<label>=<value> to filter label sets
    GET /v1/watch/rules      -> the loaded rule set
    GET /v1/watch/dashboard  -> the zero-dependency HTML dashboard

:func:`serve_watch` boots the server on a daemon thread and returns
it; ``server.tower`` is the live :class:`Watchtower`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from .watchtower import Watchtower


class _WatchHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "WatchHTTPServer"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the structured logger is the only log surface

    def _send(self, payload: bytes, content_type: str, status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, doc: dict, status: int = 200) -> None:
        self._send(
            json.dumps(doc, indent=2, default=str).encode("utf-8"),
            "application/json", status,
        )

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        tower = self.server.tower
        path, _, query = self.path.partition("?")
        params = {
            key: values[-1] for key, values in parse_qs(query).items()
        }
        try:
            if path == "/healthz":
                self._send_json({"status": "ok", "role": "watchtower",
                                 **tower.stats()})
            elif path == "/v1/watch/alerts":
                self._send_json(tower.alerts_doc())
            elif path == "/v1/watch/rules":
                self._send_json({
                    "rules": [rule.as_dict() for rule in tower.rules]
                })
            elif path == "/v1/watch/series":
                name = params.pop("name", None)
                derive = params.pop("derive", None)
                self._send_json(
                    tower.series_doc(name, params or None, derive)
                )
            elif path == "/v1/watch/dashboard":
                from .dashboard import render_dashboard

                self._send(render_dashboard(tower).encode("utf-8"),
                           "text/html; charset=utf-8")
            else:
                self._send_json(
                    {"error": f"unknown path {path!r}"}, status=404
                )
        except ValueError as exc:
            self._send_json({"error": str(exc)}, status=400)
        except Exception as exc:  # never kill the handler thread
            self._send_json(
                {"error": f"{type(exc).__name__}: {exc}"}, status=500
            )


class WatchHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, tower: Watchtower, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.tower = tower
        super().__init__((host, port), _WatchHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve_watch(
    tower: Watchtower, host: str = "127.0.0.1", port: int = 0
) -> WatchHTTPServer:
    """Serve the watchtower's HTTP surface on a daemon thread."""
    server = WatchHTTPServer(tower, host, port)
    thread = threading.Thread(
        target=server.serve_forever, name="watch-http", daemon=True
    )
    thread.start()
    return server
