"""The watchtower proper: scrape -> evaluate -> (optionally) remediate.

:class:`Watchtower` composes the collector, the time-series store, and
the SLO engine into one tick loop, and owns the only write path back
into the fleet: when ``auto_drain`` is on and a firing alert carries
the ``drain`` action (the ``replica_down`` rule by default), it POSTs
``/v1/router/drain`` for the breaching replica.

Auto-drain safety - remediation must never make an outage worse:

* **opt-in**: ``auto_drain`` defaults off; without it the watchtower
  only observes and alerts;
* **cooldown**: one drain attempt per replica per ``drain_cooldown_s``
  - a flapping replica cannot generate a drain storm;
* **last-replica guard**: before draining, the router's ``/healthz``
  is consulted and the drain is skipped (and logged) when it would
  leave zero available replicas;
* drains use ``timeout=0``: mark-and-return, never blocking the tick
  loop on the router waiting for in-flight requests.

Every remediation attempt - acted on, skipped, failed - is logged
through the :class:`StructuredLogger` and kept in a bounded history
the ``/v1/watch/alerts`` document includes.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from collections import deque
from urllib.parse import quote, urlsplit

from .collector import Collector, ScrapeTarget
from .engine import SLOEngine
from .rules import Rule, default_rules
from .store import TimeSeriesStore


def discover_replicas(router_url: str, timeout_s: float = 5.0) -> "list[ScrapeTarget]":
    """Scrape targets for every replica in the router's topology.

    Reads ``GET /v1/router`` and returns one target per configured
    replica, named by its learned replica id (falling back to its URL).
    """
    parts = urlsplit(router_url)
    conn = http.client.HTTPConnection(
        parts.hostname, parts.port or 80, timeout=timeout_s
    )
    try:
        conn.request("GET", "/v1/router")
        resp = conn.getresponse()
        body = resp.read()
        if resp.status != 200:
            raise RuntimeError(f"HTTP {resp.status} from {router_url}/v1/router")
    finally:
        conn.close()
    topology = json.loads(body)
    targets = []
    for entry in topology.get("replicas", []):
        url = entry.get("url")
        if not url:
            continue
        name = entry.get("replica_id") or url
        targets.append(ScrapeTarget(name=name, url=url, role="replica"))
    return targets


class Watchtower:
    """Scrapes a fleet, evaluates SLO rules, optionally self-heals."""

    def __init__(
        self,
        targets: "list[ScrapeTarget]",
        rules: "list[Rule] | None" = None,
        interval_s: float = 1.0,
        router_url: "str | None" = None,
        auto_drain: bool = False,
        drain_cooldown_s: float = 60.0,
        logger: "object | None" = None,
        store: "TimeSeriesStore | None" = None,
        timeout_s: float = 5.0,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.interval_s = interval_s
        self.router_url = router_url.rstrip("/") if router_url else None
        self.auto_drain = auto_drain
        self.drain_cooldown_s = drain_cooldown_s
        self.logger = logger
        self.timeout_s = timeout_s
        self.store = store or TimeSeriesStore()
        self.collector = Collector(
            targets, self.store, timeout_s=timeout_s, logger=logger
        )
        self.rules = list(rules) if rules is not None else default_rules()
        self.engine = SLOEngine(self.store, self.rules, logger=logger)
        self._drained_at: "dict[str, float]" = {}
        self._remediations: "deque[dict]" = deque(maxlen=256)
        self._ticks = 0
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._started_at = time.monotonic()

    # -- one tick --------------------------------------------------------
    def tick(self, now: "float | None" = None) -> dict:
        """Scrape everything, evaluate every rule, act on firing
        drain-action alerts.  Returns the tick summary."""
        if now is None:
            now = time.monotonic()
        scrape = self.collector.scrape_once(now)
        events = self.engine.evaluate(now)
        for transition, alert in events:
            if (
                transition == "firing"
                and alert.action == "drain"
                and "replica" in alert.labels
            ):
                self._maybe_drain(alert, now)
        self._ticks += 1
        return {
            "t": now,
            "scrape": scrape,
            "transitions": [
                (transition, alert.rule, dict(alert.labels))
                for transition, alert in events
            ],
            "firing": len(self.engine.firing()),
        }

    # -- remediation -----------------------------------------------------
    def _log_remediation(self, record: dict) -> None:
        self._remediations.append(record)
        if self.logger is not None:
            self.logger.log("remediation", **record)

    def _maybe_drain(self, alert, now: float) -> None:
        replica = alert.labels["replica"]
        record = {
            "action": "drain",
            "rule": alert.rule,
            "replica": replica,
            "at": round(time.time(), 3),
            "acted": False,
        }
        if not self.auto_drain:
            record["skipped"] = "auto_drain disabled"
            self._log_remediation(record)
            return
        if self.router_url is None:
            record["skipped"] = "no router URL configured"
            self._log_remediation(record)
            return
        last = self._drained_at.get(replica)
        if last is not None and now - last < self.drain_cooldown_s:
            record["skipped"] = (
                f"cooldown ({self.drain_cooldown_s:g}s) not elapsed"
            )
            self._log_remediation(record)
            return
        remaining = self._available_excluding(replica)
        if remaining is not None and remaining < 1:
            record["skipped"] = (
                "last-replica guard (no other available replica)"
            )
            self._log_remediation(record)
            return
        self._drained_at[replica] = now
        try:
            status, body = self._router_post(
                f"/v1/router/drain?replica={quote(replica)}&timeout=0"
            )
        except Exception as exc:
            record["error"] = f"{type(exc).__name__}: {exc}"
        else:
            record["acted"] = status == 200
            record["status"] = status
            if status != 200:
                record["error"] = body[:200]
        self._log_remediation(record)

    def _router_conn(self) -> http.client.HTTPConnection:
        parts = urlsplit(self.router_url)
        return http.client.HTTPConnection(
            parts.hostname, parts.port or 80, timeout=self.timeout_s
        )

    def _router_post(self, path: str) -> "tuple[int, str]":
        conn = self._router_conn()
        try:
            conn.request("POST", path)
            resp = conn.getresponse()
            return resp.status, resp.read().decode("utf-8", "replace")
        finally:
            conn.close()

    def _available_excluding(self, replica: str) -> "int | None":
        """How many replicas would still take traffic after draining
        ``replica``, from the router's topology.  The drain target is
        excluded whatever its state - a dead replica counts toward
        ``available`` on some routers' health views, and draining it
        must not be blocked by its own corpse.  ``None`` (topology
        unreachable) lets the drain proceed: a breaching replica is
        better gone even on partial knowledge."""
        if self.router_url is None:
            return None
        conn = self._router_conn()
        try:
            conn.request("GET", "/v1/router")
            resp = conn.getresponse()
            doc = json.loads(resp.read())
            count = 0
            for entry in doc.get("replicas", []):
                if replica in (entry.get("replica_id"), entry.get("url")):
                    continue
                if entry.get("healthy") and not entry.get("draining"):
                    count += 1
            return count
        except Exception:
            return None
        finally:
            conn.close()

    # -- background loop -------------------------------------------------
    def start(self) -> None:
        """Run :meth:`tick` every ``interval_s`` on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("watchtower already started")
        self._thread = threading.Thread(
            target=self._loop, name="watchtower", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            started = time.monotonic()
            try:
                self.tick()
            except Exception as exc:  # a bad tick must not kill the loop
                if self.logger is not None:
                    self.logger.log(
                        "tick_error", error=f"{type(exc).__name__}: {exc}"
                    )
            elapsed = time.monotonic() - started
            self._stop.wait(max(0.05, self.interval_s - elapsed))

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.collector.close()

    # -- documents (HTTP surface + tests) --------------------------------
    def alerts_doc(self) -> dict:
        now = time.monotonic()
        return {
            "active": [a.as_dict(now) for a in self.engine.active()],
            "resolved": [a.as_dict(now) for a in self.engine.history()],
            "remediations": list(self._remediations),
            "engine": self.engine.stats(),
        }

    def series_doc(
        self,
        name: "str | None" = None,
        labels: "dict | None" = None,
        derive: "str | None" = None,
    ) -> dict:
        """The ``/v1/watch/series`` document.

        Without ``name``: the series-name directory plus store stats.
        With ``name``: every matching series' points; ``derive="rate"``
        returns the pointwise reset-aware rate instead of raw values.
        """
        if name is None:
            return {"names": self.store.names(), "store": self.store.stats()}
        series = []
        for found_labels, pts in self.store.match(name, labels):
            if derive == "rate":
                pts = self.store.rate_series(pts)
            elif derive:
                raise ValueError(f"unknown derive {derive!r}")
            series.append({
                "name": name,
                "labels": found_labels,
                "points": [[round(t, 3), v] for t, v in pts],
            })
        return {"name": name, "derive": derive, "series": series}

    def stats(self) -> dict:
        return {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "interval_s": self.interval_s,
            "ticks": self._ticks,
            "auto_drain": self.auto_drain,
            "router_url": self.router_url,
            "collector": self.collector.stats(),
            "store": self.store.stats(),
            "engine": self.engine.stats(),
        }
