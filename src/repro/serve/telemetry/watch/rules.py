"""Declarative SLO rules for the watchtower's alert engine.

A rule file is TOML (stdlib ``tomllib``) or JSON, holding a list of
``[[rule]]`` tables.  Every rule has:

* ``name`` - unique alert identity;
* ``kind`` - one of :data:`RULE_KINDS`;
* ``severity`` - free-form label (``page``/``ticket``/``info``...);
* ``for_s`` - hold-down: the condition must stay bad this long before
  the alert transitions pending -> firing (0 fires immediately);
* ``action`` - optional remediation verb (only ``"drain"`` is wired:
  the watchtower POSTs ``/v1/router/drain`` for the breaching replica
  when ``--auto-drain`` is on);
* kind-specific parameters, kept in ``params``.

Kinds
-----
``burn_rate``
    Multi-window error-budget burn.  ``objective`` is the SLO target
    (e.g. 0.999 availability); the budget is ``1 - objective``.
    ``windows`` is a list of ``[window_s, max_burn]`` pairs and the
    rule breaches only when *every* window's burn rate exceeds its
    threshold (the classic fast+slow multi-window guard against both
    noise and slow leaks).  Signals:

    * availability (default): ``increase(bad) / increase(total)`` over
      the window, from ``bad_series``/``total_series`` counters
      (defaults ``sconna_errors_total`` / ``sconna_requests_total``);
    * latency (``signal = "latency"``): the fraction of scraped
      quantile-gauge samples (``series``, default
      ``sconna_request_latency_seconds`` at ``quantile``) above
      ``threshold_ms`` - each scrape is one good/bad vote.

``threshold``
    A windowed aggregate of one series compared against a bound:
    ``agg`` in ``max``/``min``/``mean``/``last``/``rate``/``increase``,
    ``op`` in ``>``/``>=``/``<``/``<=``, ``value`` the bound.

``replica_down``
    Breaches per replica whose freshest ``sconna_replica_up`` sample
    (within ``stale_s``) is 0.  This is the rule auto-drain acts on.

``energy_budget``
    Per-model simulated energy spend: breaches when windowed
    ``increase(sconna_accel_energy_joules_total) /
    increase(sconna_accel_images_total)`` exceeds
    ``max_joules_per_image``.  ``model`` narrows to one model
    (default: every model seen).

Any kind accepts ``instance`` to pin evaluation to one scrape target
(e.g. the router's merged counters); the default evaluates each
matching instance independently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

RULE_KINDS = ("burn_rate", "threshold", "replica_down", "energy_budget")

_AGGS = ("max", "min", "mean", "last", "rate", "increase")
_OPS = (">", ">=", "<", "<=")


@dataclass(frozen=True)
class Rule:
    """One validated alerting rule."""

    name: str
    kind: str
    severity: str = "ticket"
    for_s: float = 0.0
    action: "str | None" = None
    params: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "severity": self.severity,
            "for_s": self.for_s,
            "action": self.action,
            "params": dict(self.params),
        }


def _fail(name: str, message: str) -> "ValueError":
    return ValueError(f"rule {name!r}: {message}")


def _validate_windows(name: str, windows: object) -> "list[tuple[float, float]]":
    if not isinstance(windows, (list, tuple)) or not windows:
        raise _fail(name, "burn_rate needs a non-empty 'windows' list")
    out: "list[tuple[float, float]]" = []
    for pair in windows:
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise _fail(name, f"window entry {pair!r} is not [window_s, max_burn]")
        window_s, max_burn = float(pair[0]), float(pair[1])
        if window_s <= 0 or max_burn <= 0:
            raise _fail(name, "window_s and max_burn must be > 0")
        out.append((window_s, max_burn))
    return out


def make_rule(spec: dict) -> Rule:
    """Validate one rule table into a :class:`Rule`."""
    spec = dict(spec)
    name = spec.pop("name", None)
    if not name or not isinstance(name, str):
        raise ValueError(f"rule without a name: {spec!r}")
    kind = spec.pop("kind", None)
    if kind not in RULE_KINDS:
        raise _fail(name, f"unknown kind {kind!r} (expected one of {RULE_KINDS})")
    severity = str(spec.pop("severity", "ticket"))
    for_s = float(spec.pop("for_s", 0.0))
    if for_s < 0:
        raise _fail(name, "for_s must be >= 0")
    action = spec.pop("action", None)
    if action is not None and action != "drain":
        raise _fail(name, f"unknown action {action!r} (only 'drain' is wired)")
    params = dict(spec)  # whatever remains is kind-specific

    if kind == "burn_rate":
        objective = float(params.get("objective", 0.0))
        if not (0.0 < objective < 1.0):
            raise _fail(name, "'objective' must be in (0, 1)")
        params["objective"] = objective
        params["windows"] = _validate_windows(name, params.get("windows"))
        signal = params.setdefault("signal", "availability")
        if signal not in ("availability", "latency"):
            raise _fail(name, f"unknown signal {signal!r}")
        if signal == "latency":
            if float(params.get("threshold_ms", 0.0)) <= 0:
                raise _fail(name, "latency signal needs 'threshold_ms' > 0")
            params.setdefault("series", "sconna_request_latency_seconds")
            params.setdefault("quantile", "0.99")
        else:
            params.setdefault("bad_series", "sconna_errors_total")
            params.setdefault("total_series", "sconna_requests_total")
    elif kind == "threshold":
        if not params.get("series"):
            raise _fail(name, "threshold needs a 'series' name")
        agg = params.setdefault("agg", "max")
        if agg not in _AGGS:
            raise _fail(name, f"unknown agg {agg!r} (expected one of {_AGGS})")
        op = params.setdefault("op", ">")
        if op not in _OPS:
            raise _fail(name, f"unknown op {op!r} (expected one of {_OPS})")
        if "value" not in params:
            raise _fail(name, "threshold needs a 'value' bound")
        params["value"] = float(params["value"])
        params["window_s"] = float(params.get("window_s", 60.0))
    elif kind == "replica_down":
        params.setdefault("series", "sconna_replica_up")
        params["stale_s"] = float(params.get("stale_s", 10.0))
    elif kind == "energy_budget":
        budget = float(params.get("max_joules_per_image", 0.0))
        if budget <= 0:
            raise _fail(name, "energy_budget needs 'max_joules_per_image' > 0")
        params["max_joules_per_image"] = budget
        params["window_s"] = float(params.get("window_s", 60.0))
        params.setdefault("energy_series", "sconna_accel_energy_joules_total")
        params.setdefault("images_series", "sconna_accel_images_total")

    return Rule(
        name=name, kind=kind, severity=severity, for_s=for_s,
        action=action, params=params,
    )


def load_rules(path: str) -> "list[Rule]":
    """Load and validate a TOML or JSON rule file.

    The file holds ``rule`` as a list of tables (TOML ``[[rule]]``) or
    a JSON object ``{"rule": [...]}`` / bare JSON list.  Duplicate rule
    names are rejected.
    """
    text_path = str(path)
    if text_path.endswith(".toml"):
        import tomllib

        with open(text_path, "rb") as fh:
            doc = tomllib.load(fh)
    else:
        with open(text_path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    specs = doc if isinstance(doc, list) else doc.get("rule")
    if not isinstance(specs, list) or not specs:
        raise ValueError(
            f"{text_path}: expected a non-empty 'rule' list "
            "([[rule]] tables in TOML)"
        )
    rules = [make_rule(spec) for spec in specs]
    names = [rule.name for rule in rules]
    for name in names:
        if names.count(name) > 1:
            raise ValueError(f"duplicate rule name {name!r}")
    return rules


def default_rules() -> "list[Rule]":
    """The built-in rule set used when no file is given: availability
    and latency burn, shed rate, queue depth, replica-down (with drain
    action), and a generous energy budget."""
    return [
        make_rule({
            "name": "availability-burn",
            "kind": "burn_rate",
            "severity": "page",
            "objective": 0.999,
            "windows": [[60.0, 14.4], [300.0, 6.0]],
        }),
        make_rule({
            "name": "latency-p99-burn",
            "kind": "burn_rate",
            "severity": "page",
            "signal": "latency",
            "objective": 0.99,
            "threshold_ms": 500.0,
            "windows": [[60.0, 14.4], [300.0, 6.0]],
        }),
        make_rule({
            "name": "shed-rate",
            "kind": "threshold",
            "severity": "ticket",
            "series": "sconna_shed_total",
            "agg": "rate",
            "window_s": 60.0,
            "op": ">",
            "value": 1.0,
        }),
        make_rule({
            "name": "queue-depth",
            "kind": "threshold",
            "severity": "ticket",
            "series": "sconna_queue_depth",
            "agg": "max",
            "window_s": 30.0,
            "op": ">",
            "value": 256,
        }),
        make_rule({
            "name": "replica-down",
            "kind": "replica_down",
            "severity": "page",
            "for_s": 0.0,
            "action": "drain",
        }),
        make_rule({
            "name": "energy-budget",
            "kind": "energy_budget",
            "severity": "info",
            "window_s": 120.0,
            "max_joules_per_image": 10.0,
        }),
    ]
