"""CLI: run the fleet watchtower.

Examples::

    # watch a router-fronted fleet (replicas auto-discovered from the
    # router's topology), alerting only:
    python -m repro.serve.telemetry.watch --router http://127.0.0.1:8000

    # explicit targets, custom rules, opt-in self-healing drains:
    python -m repro.serve.telemetry.watch \\
        --router http://127.0.0.1:8000 \\
        --scrape http://127.0.0.1:8001 --scrape http://127.0.0.1:8002 \\
        --rules slo.toml --interval 1.0 --auto-drain --port 9090
"""

from __future__ import annotations

import argparse
import signal as signal_module
import threading

from repro.serve.telemetry import StructuredLogger

from .collector import ScrapeTarget
from .httpd import serve_watch
from .rules import default_rules, load_rules
from .watchtower import Watchtower, discover_replicas


def main(argv: "list[str] | None" = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.telemetry.watch",
        description="Fleet watchtower: scrape every replica's Prometheus "
                    "exposition, keep bounded time series, evaluate SLO "
                    "burn-rate rules, and (opt-in) drain breaching "
                    "replicas through the router.",
    )
    parser.add_argument("--router", default=None, metavar="URL",
                        help="router base URL: scraped for the fleet "
                             "section, used to discover replicas, and "
                             "the drain endpoint for --auto-drain")
    parser.add_argument("--scrape", action="append", default=None,
                        metavar="URL",
                        help="replica base URL to scrape (repeatable); "
                             "defaults to the router's topology")
    parser.add_argument("--rules", default=None, metavar="FILE",
                        help="TOML or JSON rule file (default: the "
                             "built-in rule set)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between scrape/evaluate ticks "
                             "(default: 1.0)")
    parser.add_argument("--auto-drain", action="store_true",
                        help="act on firing drain-action alerts by "
                             "POSTing /v1/router/drain (default: "
                             "observe and alert only)")
    parser.add_argument("--drain-cooldown", type=float, default=60.0,
                        help="seconds between drain attempts per "
                             "replica (default: 60)")
    parser.add_argument("--capacity", type=int, default=1024,
                        help="points kept per series (default: 1024)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9090,
                        help="watchtower HTTP port (default: 9090)")
    args = parser.parse_args(argv)

    if not args.router and not args.scrape:
        parser.error("give --router and/or --scrape URLs to watch")

    targets: "list[ScrapeTarget]" = []
    if args.scrape:
        for url in args.scrape:
            targets.append(ScrapeTarget(name=url, url=url, role="replica"))
    elif args.router:
        discovered = discover_replicas(args.router)
        targets.extend(discovered)
        print(f"discovered {len(discovered)} replica(s) from the router")
    if args.router:
        targets.append(
            ScrapeTarget(name="router", url=args.router, role="router")
        )

    rules = load_rules(args.rules) if args.rules else default_rules()
    from repro.serve.telemetry.watch.store import TimeSeriesStore

    tower = Watchtower(
        targets,
        rules=rules,
        interval_s=args.interval,
        router_url=args.router,
        auto_drain=args.auto_drain,
        drain_cooldown_s=args.drain_cooldown,
        logger=StructuredLogger(),
        store=TimeSeriesStore(capacity_per_series=args.capacity),
    )
    server = serve_watch(tower, host=args.host, port=args.port)
    tower.start()

    stop = threading.Event()

    def _stop(signum, frame):
        stop.set()

    for signum in (signal_module.SIGINT, signal_module.SIGTERM):
        signal_module.signal(signum, _stop)

    drain_note = "on" if args.auto_drain else "off"
    print(f"watchtower at {server.url}  "
          f"({len(targets)} target(s), {len(rules)} rule(s), "
          f"interval={args.interval:g}s, auto-drain={drain_note})")
    print(f"  dashboard: {server.url}/v1/watch/dashboard")
    for target in targets:
        print(f"  scraping [{target.role}] {target.name}: {target.url}")
    try:
        stop.wait()
    finally:
        tower.close()
        server.shutdown()
        stats = tower.stats()
        print(f"watchtower stopped after {stats['ticks']} tick(s); "
              f"{stats['engine']['resolved_total']} alert(s) resolved, "
              f"{stats['engine']['firing']} still firing")


if __name__ == "__main__":
    main()
