"""Fleet watchtower: scrape the fleet, keep history, alert, self-heal.

The watchtower is the operated half of the telemetry plane.  The
serving stack exposes point-in-time state (``/v1/metrics``,
``/v1/trace``, the router's fleet section); this subpackage turns that
into an operated system:

* :mod:`~repro.serve.telemetry.watch.collector` scrapes every
  replica's (and the router's) Prometheus exposition on an interval,
  validating with the same strict parser CI uses;
* :mod:`~repro.serve.telemetry.watch.store` keeps a bounded ring of
  ``(t, value)`` points per series with counter-reset-aware rate and
  windowed quantile queries;
* :mod:`~repro.serve.telemetry.watch.rules` /
  :mod:`~repro.serve.telemetry.watch.engine` evaluate declarative SLO
  rules (multi-window burn rate, thresholds, replica-down, per-model
  energy budgets) into alerts with a firing/resolved lifecycle;
* :mod:`~repro.serve.telemetry.watch.watchtower` composes the tick
  loop and the opt-in auto-drain remediation hook;
* :mod:`~repro.serve.telemetry.watch.httpd` serves
  ``/v1/watch/alerts``, ``/v1/watch/series``, ``/v1/watch/rules`` and
  the HTML dashboard.

Run it: ``python -m repro.serve.telemetry.watch --router http://...``.
"""

from .collector import Collector, ScrapeTarget
from .engine import Alert, SLOEngine
from .httpd import WatchHTTPServer, serve_watch
from .rules import Rule, default_rules, load_rules, make_rule
from .store import TimeSeriesStore
from .watchtower import Watchtower, discover_replicas

__all__ = [
    "Alert",
    "Collector",
    "Rule",
    "SLOEngine",
    "ScrapeTarget",
    "TimeSeriesStore",
    "WatchHTTPServer",
    "Watchtower",
    "default_rules",
    "discover_replicas",
    "load_rules",
    "make_rule",
    "serve_watch",
]
