"""Telemetry plane for ``repro.serve``: tracing, metrics exposition,
structured logging.

* :mod:`~repro.serve.telemetry.trace` - sampled monotonic-clock span
  trees following one request across every seam (HTTP, admission,
  batcher, backend, shard, engine), with cross-process span rejoining
  and Chrome ``trace_event`` export;
* :mod:`~repro.serve.telemetry.prometheus` - text exposition
  (format 0.0.4) of the aggregated metrics snapshot for
  ``/v1/metrics?format=prometheus``, plus the small validating parser
  CI scrapes with;
* :mod:`~repro.serve.telemetry.logging` - one JSON line per request,
  joinable to traces by id;
* :mod:`~repro.serve.telemetry.watch` - the fleet watchtower
  (``python -m repro.serve.telemetry.watch``): scrapes every replica's
  exposition into a bounded time-series store, evaluates SLO burn-rate
  rules into firing/resolved alerts, and can self-heal by draining
  breaching replicas through the router.  Imported lazily - pulling in
  the telemetry plane never pays for the watchtower.
"""

from .logging import StructuredLogger
from .prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    escape_label_value,
    parse_exposition,
    render_exposition,
)
from .trace import (
    POLICY_ALWAYS,
    POLICY_OFF,
    Span,
    Trace,
    TracePolicy,
    Tracer,
    TraceStore,
    remote_span_context,
)

__all__ = [
    "POLICY_ALWAYS",
    "POLICY_OFF",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "StructuredLogger",
    "Trace",
    "TracePolicy",
    "Tracer",
    "TraceStore",
    "escape_label_value",
    "parse_exposition",
    "remote_span_context",
    "render_exposition",
]
