"""Binary tensor wire protocol for the serving HTTP path.

``/v1/predict`` historically parsed images out of JSON lists, which
re-tokenizes megabytes of ASCII floats per request - the serving-path
bottleneck for large-image traffic.  This module defines the two binary
bodies the HTTP layer (and :class:`~repro.serve.client.SconnaClient`)
speak instead:

* ``application/x-npy`` - one tensor as a standard NPY v1 buffer
  (:func:`encode_npy` / :func:`decode_npy`); request parameters ride in
  the query string.
* ``application/x-sconna-frame`` - a self-delimiting multi-tensor frame
  (:func:`encode_frame` / :func:`decode_frame`): a small JSON metadata
  object plus any number of named tensors in one length-prefixed binary
  envelope.  Frames are also the unit of the chunked *streaming*
  response path (one frame per image), which is why they carry their
  own total length: :func:`read_frame` can pull one frame at a time out
  of any ``read(n)``-style byte stream.

Frame layout (all integers little-endian)::

    offset  size  field
    0       4     magic            b"SCNF"
    4       1     version          1
    5       1     reserved         0
    6       2     n_tensors        u16
    8       4     meta_len         u32   (UTF-8 JSON object)
    12      8     body_len         u64   (every byte after this header)
    20      ...   meta (meta_len bytes)
    ...           tensor records, n_tensors times:
                    name_len  u8
                    name      (UTF-8, name_len bytes)
                    dtype     u8    (code from the whitelist below)
                    ndim      u8    (<= MAX_NDIM)
                    dims      u32 * ndim
                    data_len  u64   (== prod(dims) * itemsize)
                    payload   (data_len bytes, C-contiguous)

The decoder validates magic, version, every length field against the
actual buffer, the dtype code against a closed whitelist, and each
tensor's ``data_len`` against its shape - truncated, oversized, and
trailing-garbage bodies all raise :class:`WireError` rather than
yielding a short array.  Decoding is zero-copy: each tensor is a
C-contiguous :func:`numpy.frombuffer` view of the request body, so the
batcher stacks it without an intermediate copy.  The views are
read-only, which the inference path never notices: an integer frame
(uint8/int8) keeps its dtype end to end - the fused execution plan
quantizes it through a lookup table straight into integer workspaces,
so the tensor never round-trips through float64 between socket and
logits - and a float frame is quantized once per coalesced batch.
"""

from __future__ import annotations

import io
import json
import struct

import numpy as np

#: media types the HTTP layer negotiates over
CONTENT_TYPE_JSON = "application/json"
CONTENT_TYPE_NPY = "application/x-npy"
CONTENT_TYPE_FRAME = "application/x-sconna-frame"

MAGIC = b"SCNF"
WIRE_VERSION = 1

#: hard bounds a malformed (or malicious) header cannot talk us out of
MAX_NDIM = 8
MAX_TENSORS = 64
MAX_META_BYTES = 1 << 20          #: 1 MiB of JSON metadata is plenty
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct("<4sBBHIQ")   #: magic, version, reserved, n, meta, body

#: closed dtype whitelist: code <-> numpy dtype (codes are wire ABI)
_DTYPE_CODES = {
    1: np.dtype("float64"),
    2: np.dtype("float32"),
    3: np.dtype("int64"),
    4: np.dtype("int32"),
    5: np.dtype("int16"),
    6: np.dtype("int8"),
    7: np.dtype("uint8"),
    8: np.dtype("bool"),
}
_CODE_FOR_DTYPE = {dt: code for code, dt in _DTYPE_CODES.items()}


class WireError(ValueError):
    """A malformed wire body (bad magic/version/dtype, truncation, ...)."""


def dtype_code(dtype) -> int:
    """The wire code for a dtype; :class:`WireError` outside the whitelist."""
    code = _CODE_FOR_DTYPE.get(np.dtype(dtype))
    if code is None:
        supported = sorted(str(dt) for dt in _CODE_FOR_DTYPE)
        raise WireError(
            f"dtype {np.dtype(dtype)} is not on the wire whitelist "
            f"(supported: {supported})"
        )
    return code


# -- frame codec ------------------------------------------------------------

def encode_frame(meta: dict, tensors: "dict[str, np.ndarray] | None" = None) -> bytes:
    """Serialize a metadata object plus named tensors into one frame."""
    tensors = tensors or {}
    if len(tensors) > MAX_TENSORS:
        raise WireError(f"frame cannot carry more than {MAX_TENSORS} tensors")
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode()
    if len(meta_bytes) > MAX_META_BYTES:
        raise WireError("frame metadata exceeds MAX_META_BYTES")
    parts: "list[bytes]" = [meta_bytes]
    for name, arr in tensors.items():
        name_bytes = str(name).encode()
        if not (0 < len(name_bytes) < 256):
            raise WireError(f"bad tensor name {name!r}")
        arr = np.asarray(arr)
        if not arr.flags["C_CONTIGUOUS"]:  # ascontiguousarray would 1-d a 0-d
            arr = np.ascontiguousarray(arr)
        if arr.ndim > MAX_NDIM:
            raise WireError(f"tensor {name!r} has ndim {arr.ndim} > {MAX_NDIM}")
        code = dtype_code(arr.dtype)
        parts.append(struct.pack("<B", len(name_bytes)) + name_bytes)
        parts.append(struct.pack("<BB", code, arr.ndim))
        parts.append(struct.pack(f"<{arr.ndim}I", *arr.shape))
        parts.append(struct.pack("<Q", arr.nbytes))
        parts.append(arr.tobytes())
    body = b"".join(parts)
    header = _HEADER.pack(
        MAGIC, WIRE_VERSION, 0, len(tensors), len(meta_bytes), len(body)
    )
    return header + body


def _parse_header(header: bytes) -> "tuple[int, int, int]":
    """Validate the fixed header; returns (n_tensors, meta_len, body_len)."""
    if len(header) < _HEADER.size:
        raise WireError(
            f"truncated frame header ({len(header)} of {_HEADER.size} bytes)"
        )
    magic, version, _, n_tensors, meta_len, body_len = _HEADER.unpack(
        header[: _HEADER.size]
    )
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported frame version {version}")
    if n_tensors > MAX_TENSORS:
        raise WireError(f"frame claims {n_tensors} tensors (max {MAX_TENSORS})")
    if meta_len > MAX_META_BYTES:
        raise WireError("frame metadata length exceeds MAX_META_BYTES")
    if meta_len > body_len:
        raise WireError("frame metadata length exceeds the body length")
    return n_tensors, meta_len, body_len


def decode_frame(
    buf: "bytes | bytearray | memoryview",
    max_bytes: int = DEFAULT_MAX_BYTES,
) -> "tuple[dict, dict[str, np.ndarray]]":
    """Decode one frame; returns ``(meta, {name: tensor})``.

    Tensors are zero-copy C-contiguous (read-only) views into ``buf``.
    Every malformation - truncation, trailing bytes, a length field that
    disagrees with a shape - raises :class:`WireError`.
    """
    view = memoryview(buf)
    n_tensors, meta_len, body_len = _parse_header(bytes(view[: _HEADER.size]))
    if body_len > max_bytes:
        raise WireError(
            f"frame body of {body_len} bytes exceeds the {max_bytes}-byte cap"
        )
    total = _HEADER.size + body_len
    if len(view) < total:
        raise WireError(
            f"truncated frame body ({len(view)} of {total} bytes)"
        )
    if len(view) > total:
        raise WireError(
            f"{len(view) - total} trailing bytes after the frame body"
        )
    return _decode_body(view[_HEADER.size : total], n_tensors, meta_len)


def _decode_body(
    body: memoryview, n_tensors: int, meta_len: int
) -> "tuple[dict, dict[str, np.ndarray]]":
    """Decode a frame body (everything after the fixed header)."""
    total = len(body)
    try:
        meta = json.loads(bytes(body[:meta_len]))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"frame metadata is not valid JSON: {exc}") from None
    if not isinstance(meta, dict):
        raise WireError("frame metadata must be a JSON object")
    offset = meta_len
    tensors: "dict[str, np.ndarray]" = {}
    for index in range(n_tensors):
        offset, name, arr = _decode_tensor(body, offset, total, index)
        if name in tensors:
            raise WireError(f"duplicate tensor name {name!r}")
        tensors[name] = arr
    if offset != total:
        raise WireError(
            f"{total - offset} undeclared bytes after the last tensor"
        )
    return meta, tensors


def _decode_tensor(
    view: memoryview, offset: int, total: int, index: int
) -> "tuple[int, str, np.ndarray]":
    """Decode one tensor record starting at ``offset``."""
    def need(n: int, what: str) -> None:
        if offset + n > total:
            raise WireError(f"truncated frame: tensor {index} {what}")

    need(1, "name length")
    (name_len,) = struct.unpack_from("<B", view, offset)
    offset += 1
    if name_len == 0:
        raise WireError(f"tensor {index} has an empty name")
    need(name_len, "name")
    try:
        name = bytes(view[offset : offset + name_len]).decode()
    except UnicodeDecodeError:
        raise WireError(f"tensor {index} name is not UTF-8") from None
    offset += name_len
    need(2, "dtype/ndim")
    code, ndim = struct.unpack_from("<BB", view, offset)
    offset += 2
    dtype = _DTYPE_CODES.get(code)
    if dtype is None:
        raise WireError(f"tensor {name!r} has unknown dtype code {code}")
    if ndim > MAX_NDIM:
        raise WireError(f"tensor {name!r} has ndim {ndim} > {MAX_NDIM}")
    need(4 * ndim, "shape")
    shape = struct.unpack_from(f"<{ndim}I", view, offset)
    offset += 4 * ndim
    need(8, "payload length")
    (data_len,) = struct.unpack_from("<Q", view, offset)
    offset += 8
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if ndim \
        else dtype.itemsize
    if data_len != expected:
        raise WireError(
            f"tensor {name!r} declares {data_len} payload bytes but shape "
            f"{tuple(shape)} x {dtype} needs {expected}"
        )
    need(data_len, "payload")
    arr = np.frombuffer(view[offset : offset + data_len], dtype=dtype)
    return offset + data_len, name, arr.reshape(shape)


def read_frame(read, max_bytes: int = DEFAULT_MAX_BYTES):
    """Pull one frame out of a ``read(n) -> bytes`` stream.

    Returns ``(meta, tensors)``, or ``None`` on clean end-of-stream
    (zero bytes available where a header would start).  A stream that
    ends *inside* a frame raises :class:`WireError`.  This is how the
    client walks a chunked streaming response: ``http.client`` already
    reassembles the transfer chunks, and the frame's ``body_len`` field
    restores message boundaries.
    """
    header = _read_exact(read, _HEADER.size, allow_empty=True)
    if header is None:
        return None
    n_tensors, meta_len, body_len = _parse_header(header)
    if body_len > max_bytes:
        raise WireError(
            f"frame body of {body_len} bytes exceeds the {max_bytes}-byte cap"
        )
    body = _read_exact(read, body_len)
    return _decode_body(memoryview(body), n_tensors, meta_len)


def _read_exact(read, n: int, allow_empty: bool = False):
    """Read exactly ``n`` bytes (short reads looped); WireError on EOF."""
    chunks: "list[bytes]" = []
    got = 0
    while got < n:
        chunk = read(n - got)
        if not chunk:
            if allow_empty and got == 0:
                return None
            raise WireError(
                f"stream ended mid-frame ({got} of {n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


# -- NPY codec --------------------------------------------------------------

def encode_npy(arr: np.ndarray) -> bytes:
    """One tensor as a standard NPY buffer (C-contiguous, no pickle)."""
    arr = np.asarray(arr)
    if not arr.flags["C_CONTIGUOUS"]:
        arr = np.ascontiguousarray(arr)
    dtype_code(arr.dtype)  # same whitelist as frames
    out = io.BytesIO()
    np.lib.format.write_array(out, arr, version=(1, 0), allow_pickle=False)
    return out.getvalue()


def decode_npy(
    buf: "bytes | bytearray | memoryview",
    max_bytes: int = DEFAULT_MAX_BYTES,
) -> np.ndarray:
    """Decode an NPY body into a zero-copy C-contiguous (read-only) array.

    Stricter than :func:`numpy.load`: the dtype must be on the wire
    whitelist (no object/pickle payloads), the array must be C-ordered,
    and the payload length must match the header's shape exactly -
    truncated and padded bodies raise :class:`WireError`.
    """
    view = memoryview(buf)
    if len(view) > max_bytes + 128:  # header slack; payload re-checked below
        raise WireError(
            f"NPY body of {len(view)} bytes exceeds the {max_bytes}-byte cap"
        )
    stream = io.BytesIO(bytes(view[:1024]))  # header lives in the first KiB
    try:
        version = np.lib.format.read_magic(stream)
        if version == (1, 0):
            header = np.lib.format.read_array_header_1_0(stream)
        elif version == (2, 0):
            header = np.lib.format.read_array_header_2_0(stream)
        else:
            raise WireError(f"unsupported NPY version {version}")
        shape, fortran_order, dtype = header
    except WireError:
        raise
    except Exception as exc:
        raise WireError(f"bad NPY header: {exc}") from None
    dtype_code(dtype)  # whitelist (rejects object/structured dtypes)
    if fortran_order:
        raise WireError("Fortran-ordered NPY bodies are not accepted; "
                        "send a C-contiguous array")
    if len(shape) > MAX_NDIM:
        raise WireError(f"NPY ndim {len(shape)} > {MAX_NDIM}")
    data_start = stream.tell()
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if shape \
        else dtype.itemsize
    if expected > max_bytes:
        raise WireError(
            f"NPY payload of {expected} bytes exceeds the {max_bytes}-byte cap"
        )
    actual = len(view) - data_start
    if actual != expected:
        kind = "truncated" if actual < expected else "oversized"
        raise WireError(
            f"{kind} NPY payload: {actual} bytes for shape {tuple(shape)} "
            f"x {dtype} (expected {expected})"
        )
    arr = np.frombuffer(view[data_start:], dtype=dtype)
    return arr.reshape(shape)
