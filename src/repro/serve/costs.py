"""Per-request accelerator cost accounting.

Every served request can carry an annotation of what it would cost on
the simulated SCONNA hardware: the batch-1 latency, energy, and dominant
bottleneck of its model from the transaction-level
:mod:`repro.arch.simulator`, scaled by the request's image count.  The
simulation runs once per (design, model) pair - results come from a
shared :class:`repro.arch.simulator.SimulationCache` - so the marginal
cost of annotating a request is a dictionary lookup.

Models registered with an ``arch_model`` name use the published
:mod:`repro.cnn.zoo` descriptor (reporting the paper network the proxy
stands in for); otherwise :func:`descriptor_from_quantized` derives a
descriptor from the quantized structure itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.designs import AcceleratorDesign, sconna_design
from repro.arch.simulator import PerfResult, SimulationCache
from repro.cnn.functional import conv_output_hw
from repro.cnn.shapes import ConvLayerShape, ModelDescriptor, fc_shape


@dataclass(frozen=True)
class RequestCost:
    """Simulated hardware cost of one request (n images, batch-1 each)."""

    accelerator: str
    model: str
    n_images: int
    latency_s: float          #: simulated wall time for the whole request
    energy_j: float           #: simulated energy for the whole request
    fps: float                #: per-image inference rate of the design
    avg_power_w: float
    fps_per_watt: float
    bottleneck: str           #: stage bottlenecking the most layers

    def as_dict(self) -> dict:
        """JSON-serializable cost annotation (the response's ``cost`` field)."""
        return {
            "accelerator": self.accelerator,
            "model": self.model,
            "n_images": self.n_images,
            "latency_s": self.latency_s,
            "energy_j": self.energy_j,
            "fps": self.fps,
            "avg_power_w": self.avg_power_w,
            "fps_per_watt": self.fps_per_watt,
            "bottleneck": self.bottleneck,
        }


def descriptor_from_quantized(
    qmodel, name: str, input_shape: "tuple[int, int, int]"
) -> ModelDescriptor:
    """Derive a layer-shape descriptor from a quantized model's structure.

    Walks the structure with the activation's ``(channels, h, w)``
    threaded through convolutions and pooling - the same bookkeeping the
    zoo's :class:`~repro.cnn.zoo.builder.DescriptorBuilder` does for the
    published block tables, here recovered from live weights.
    """
    from repro.cnn.inference import QuantLayer  # local: avoid import cycle
    from repro.cnn.micro import MaxPool2d

    c, h, w = input_shape
    model = ModelDescriptor(name)
    for i, item in enumerate(qmodel.structure):
        if isinstance(item, QuantLayer) and item.kind == "conv":
            l, in_c, k, _ = item.weight_q.shape
            if in_c != c:
                raise ValueError(
                    f"layer {i}: conv expects {in_c} channels, tracker has {c}"
                )
            model.add(
                ConvLayerShape(
                    name=f"conv{i}",
                    in_channels=in_c,
                    out_channels=l,
                    kernel=k,
                    stride=item.stride,
                    padding=item.padding,
                    in_h=h,
                    in_w=w,
                )
            )
            c = l
            h, w = conv_output_hw(h, w, k, item.stride, item.padding)
        elif isinstance(item, QuantLayer):
            out_f, in_f = item.weight_q.shape
            model.add(fc_shape(f"fc{i}", in_f, out_f))
            c, h, w = out_f, 1, 1
        elif isinstance(item, MaxPool2d):
            h, w = conv_output_hw(h, w, item.kernel, item.stride, 0)
    if not model.layers:
        raise ValueError("quantized model has no VDP-producing layers")
    return model


class CostAccountant:
    """Annotates requests with cached accelerator simulation results."""

    def __init__(
        self,
        design: AcceleratorDesign | None = None,
        cache: SimulationCache | None = None,
    ) -> None:
        self.design = design or sconna_design()
        self.cache = cache or SimulationCache()

    def perf(self, descriptor: ModelDescriptor) -> PerfResult:
        """The (cached) batch-1 simulation of one model."""
        return self.cache.result(self.design, descriptor)

    def prewarm(self, descriptor: ModelDescriptor) -> None:
        """Populate the cache for ``descriptor`` off the request path.

        The serving layer calls this at model-registration time for
        models with a known descriptor, so the first cost-annotated
        request never pays the transaction-level simulation inside the
        batch-completion callback (which, under the process backend,
        would stall the shard result-collector thread).
        """
        self.perf(descriptor)

    def stats(self) -> dict:
        """Simulation-cache statistics for the metrics endpoint."""
        return self.cache.stats()

    def annotate(self, descriptor: ModelDescriptor, n_images: int = 1) -> RequestCost:
        """Cost of serving ``n_images`` through ``descriptor``'s model."""
        if n_images < 1:
            raise ValueError("n_images must be >= 1")
        res = self.perf(descriptor)
        hist = res.bottleneck_histogram()
        bottleneck = max(hist.items(), key=lambda kv: kv[1])[0] if hist else "none"
        return RequestCost(
            accelerator=res.accelerator,
            model=res.model,
            n_images=n_images,
            latency_s=res.latency_s * n_images,
            energy_j=res.energy_j * n_images,
            fps=res.fps,
            avg_power_w=res.avg_power_w,
            fps_per_watt=res.fps_per_watt,
            bottleneck=bottleneck,
        )
