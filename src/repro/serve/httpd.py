"""Stdlib JSON-over-HTTP endpoint for :class:`~repro.serve.service.SconnaService`.

No third-party web framework - a :class:`http.server.ThreadingHTTPServer`
is enough here because the handler thread only *enqueues* into the
micro-batching scheduler and waits on a future; coalescing and compute
happen in the service's own workers (threads, or shard processes under
the process backend - the HTTP layer is identical either way).

Also a standalone server CLI with execution-backend selection::

    python -m repro.serve --registry MODELS_DIR \
        --backend process --shards 4 --transport shm \
        --placement "big=0,1;small=2,3" --port 8000

serves every model in the registry (or ``--model`` picks some), installs
SIGINT/SIGTERM handlers that drain in-flight requests and reap shard
processes, blocks until a signal arrives, and prints the aggregated
backend topology (shards, transport, per-model placement) on exit.

Routes::

    GET  /healthz        -> {"status": "ok"}
    GET  /v1/models      -> {"models": [...]}
    GET  /v1/metrics     -> aggregated ServeMetrics snapshot (request-side
                            + every backend worker / shard, plus backend
                            topology and simulation-cache stats)
    POST /v1/predict     -> run one request

``POST /v1/predict`` body (JSON)::

    {
      "model":  "name",            # optional when one model is served
      "image":  [[[...]]],         # (C,H,W) nested lists, or (n,C,H,W)
      "top_k":  5,                 # optional, default 1
      "seed":   123,               # optional per-request ADC noise seed
      "ideal":  false,             # optional: noiseless sconna datapath
      "cost":   true               # optional: accelerator cost annotation
    }

Response: ``request_id``, ``logits`` (full-precision float64 - JSON
round-trips them exactly, so an ideal-datapath response is bit-identical
to the in-process API), ``top_k`` pairs, ``batch_images``,
``latency_ms``, and the ``cost`` annotation when requested.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

#: request body cap (a (n,3,224,224) float image batch fits comfortably)
MAX_BODY_BYTES = 256 * 1024 * 1024


class _ServeHandler(BaseHTTPRequestHandler):
    server: "ServeHTTPServer"

    # -- plumbing --------------------------------------------------------
    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    # -- routes ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        service = self.server.service
        if self.path == "/healthz":
            self._send_json({"status": "ok"})
        elif self.path == "/v1/models":
            self._send_json({"models": service.models()})
        elif self.path == "/v1/metrics":
            self._send_json(service.metrics_snapshot())
        else:
            self._send_error(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        if self.path != "/v1/predict":
            self._send_error(404, f"unknown path {self.path!r}")
            return
        service = self.server.service
        try:
            length = int(self.headers.get("Content-Length", 0))
            if not (0 < length <= MAX_BODY_BYTES):
                self._send_error(400, "missing or oversized request body")
                return
            payload = json.loads(self.rfile.read(length))
            model = payload.get("model")
            if model is None:
                names = service.models()
                if len(names) != 1:
                    self._send_error(
                        400, f"'model' is required (registered: {names})"
                    )
                    return
                model = names[0]
            if "image" not in payload:
                self._send_error(400, "'image' is required")
                return
            prediction = service.predict(
                model,
                payload["image"],
                seed=payload.get("seed"),
                ideal=bool(payload.get("ideal", False)),
                top_k=int(payload.get("top_k", 1)),
                with_cost=bool(payload.get("cost", False)),
                timeout=self.server.request_timeout_s,
            )
        except KeyError as exc:
            self._send_error(404, str(exc))
            return
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            self._send_error(400, str(exc))
            return
        except Exception as exc:  # inference failure -> 500 with context
            self._send_error(500, f"{type(exc).__name__}: {exc}")
            return
        self._send_json(
            {
                "request_id": prediction.request_id,
                "model": prediction.model,
                "logits": prediction.logits.tolist(),
                "top_k": [
                    [{"class": c, "logit": v} for c, v in per_image]
                    for per_image in prediction.top_k
                ],
                "batch_images": prediction.batch_images,
                "latency_ms": prediction.latency_s * 1e3,
                "cost": None if prediction.cost is None else prediction.cost.as_dict(),
            }
        )


class ServeHTTPServer(ThreadingHTTPServer):
    """HTTP front-end bound to one service (``port=0`` picks a free port)."""

    daemon_threads = True

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 60.0,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.request_timeout_s = request_timeout_s
        self.verbose = verbose
        super().__init__((host, port), _ServeHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve_http(
    service,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> "tuple[ServeHTTPServer, threading.Thread]":
    """Start a background HTTP server; returns (server, thread).

    Call ``server.shutdown()`` then ``service.close()`` to stop.
    """
    server = ServeHTTPServer(service, host=host, port=port, verbose=verbose)
    thread = threading.Thread(
        target=server.serve_forever, name="sconna-httpd", daemon=True
    )
    thread.start()
    return server, thread


def main(argv: "list[str] | None" = None) -> None:
    """CLI entry point: serve registry models over HTTP until a signal."""
    import argparse

    from repro.serve.batching import BatchingPolicy
    from repro.serve.registry import ModelRegistry
    from repro.serve.service import SconnaService, install_shutdown_handlers

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve registered SCONNA models over JSON/HTTP.",
    )
    parser.add_argument("--registry", required=True,
                        help="model registry directory (NPZ + JSON manifests)")
    parser.add_argument("--model", action="append", default=None,
                        help="registry model to serve (repeatable; "
                             "default: every registered model)")
    parser.add_argument("--mode", default="sconna",
                        choices=("float", "int8", "sconna"))
    parser.add_argument("--backend", default="thread",
                        choices=("thread", "process"),
                        help="execution backend (default: thread)")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker processes for --backend process")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker threads for --backend thread")
    parser.add_argument("--transport", default="shm",
                        choices=("pipe", "shm"),
                        help="process-backend batch transport: shared-memory "
                             "rings (default) or pickled arrays on pipes")
    parser.add_argument("--placement", default=None,
                        help="per-model shard placement, e.g. "
                             "'modelA=0,1;modelB=2' (default: every model "
                             "on every shard)")
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    registry = ModelRegistry(args.registry)
    names = args.model or registry.names()
    if not names:
        parser.error(f"registry {args.registry!r} has no models")
    placement = None
    if args.placement is not None:
        from repro.serve.backends import ShardPlacement

        try:
            placement = ShardPlacement.parse(args.placement)
            # validate slot ranges *before* any shard process exists,
            # so a typo'd slot is a usage error, not a traceback over a
            # half-built service
            for model_name in placement.assignments:
                placement.shards_for(model_name, args.shards)
        except ValueError as exc:
            parser.error(str(exc))
    service = SconnaService(
        policy=BatchingPolicy(
            max_batch_size=args.max_batch_size, max_wait_ms=args.max_wait_ms
        ),
        n_workers=args.workers,
        mode=args.mode,
        backend=args.backend,
        n_shards=args.shards,
        transport=args.transport,
        placement=placement,
    )
    for name in names:
        service.add_from_registry(registry, name)
    server, _ = serve_http(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    # chain=False: the signal must hand control *back* after the drain
    # so the topology report below still runs; the signal is re-raised
    # manually at the end to keep the usual exit status
    handlers = install_shutdown_handlers(service, servers=(server,), chain=False)
    backend_info = service.backend.info()
    if args.backend == "process":
        topology = (f"shards={backend_info.get('shards')}, "
                    f"transport={backend_info.get('transport')}")
    else:
        topology = f"workers={args.workers}"
    print(f"serving {names} at {server.url}  "
          f"(backend={backend_info['kind']}, {topology})")
    print("POST /v1/predict | GET /v1/models /v1/metrics /healthz  "
          "(SIGINT/SIGTERM drains and exits)")
    try:
        handlers.wait()
    except KeyboardInterrupt:
        pass  # SIGINT lands as KeyboardInterrupt too; teardown already ran
    # the service is drained: print the final aggregated topology so an
    # operator sees where every model ran and how batches travelled
    snap = service.metrics_snapshot()
    print("topology at exit: "
          + json.dumps(snap["backend"], sort_keys=True), flush=True)
    if handlers.triggered is not None:
        # die by the signal that stopped us (handlers restored the
        # default action during teardown) - callers see the usual code;
        # a re-raised SIGINT surfaces as KeyboardInterrupt and keeps
        # the historical quiet exit
        import signal as signal_module

        try:
            signal_module.raise_signal(handlers.triggered)
        except KeyboardInterrupt:
            pass


if __name__ == "__main__":
    main()
