"""Stdlib HTTP endpoint for :class:`~repro.serve.service.SconnaService`.

No third-party web framework - a :class:`http.server.ThreadingHTTPServer`
is enough here because the handler thread only *enqueues* into the
micro-batching scheduler and waits on a future; coalescing and compute
happen in the service's own workers (threads, or shard processes under
the process backend - the HTTP layer is identical either way).

The handler speaks **HTTP/1.1 with keep-alive**: every response carries
``Content-Length`` (or chunked transfer-encoding on the streaming
path), so one client connection serves many requests - the per-request
TCP handshake the HTTP/1.0 handler paid is gone.  Error responses sent
*before* the request body was fully read add ``Connection: close``
(the unread body would otherwise be parsed as the next request).

``POST /v1/predict`` negotiates the request body over ``Content-Type``
and the response over ``Accept`` (see :mod:`repro.serve.wire`):

======================================  =====================================
Content-Type (request)                  body
======================================  =====================================
``application/json`` (default)          ``{"model", "image": nested lists,
                                        "seed", "top_k", "ideal", "cost",
                                        "stream"}``
``application/x-npy``                   the image tensor as an NPY buffer;
                                        parameters ride the query string
                                        (``?model=&seed=&top_k=&ideal=&cost=
                                        &stream=``)
``application/x-sconna-frame``          one frame: the parameters as frame
                                        metadata plus an ``image`` tensor
======================================  =====================================

======================================  =====================================
Accept (response)                       body
======================================  =====================================
``application/json``                    the classic JSON document (float64
                                        logits round-trip exactly)
``application/x-sconna-frame``          one frame: result metadata plus a
                                        ``logits`` tensor - bit-identical
                                        to the JSON logits
``application/x-npy``                   the logits tensor alone (metadata in
                                        ``X-Sconna-*`` headers)
``*/*`` / absent                        mirrors the request content type
======================================  =====================================

**Streaming.**  A multi-image ``(n, C, H, W)`` request with
``stream`` set and a frame ``Accept`` returns ``Transfer-Encoding:
chunked`` with one self-delimiting frame per image, so early images'
logits leave the server while later ones still compute.  Unseeded and
``ideal`` stacks are split into per-image requests and pipelined
through the scheduler (frame ``i`` flushes as image ``i`` completes);
a *seeded* stack stays one indivisible request - its noise stream
spans the whole stack, that is the reproducibility contract - so its
frames all flush after it completes, still one frame per image.

**Admission control.**  When the service carries an
:class:`~repro.serve.admission.AdmissionPolicy`, a shed request is
answered with ``429 Too Many Requests`` plus a ``Retry-After`` header
(decimal seconds); shed counts appear in ``/v1/metrics`` under
``shed`` / ``admission``.

**Telemetry.**  Every predict request may carry a sampled trace (the
service's :class:`~repro.serve.telemetry.Tracer` decides): the handler
opens the trace, records ``http.parse`` / ``http.encode`` spans around
the wire codecs, threads it through the service so queue / backend /
shard / engine spans land in the same tree, and answers with an
``X-Sconna-Trace-Id`` header (on every status, 429s included) so
clients can join their failures to server traces.  Completed traces
are queryable at ``/v1/trace``; ``/v1/metrics?format=prometheus``
renders the text exposition; a ``request_log``
(:class:`~repro.serve.telemetry.StructuredLogger`) on the service
emits one JSON line per request.

Routes::

    GET  /healthz        -> {"status": "ok"}
    GET  /v1/models      -> {"models": [...]}
    GET  /v1/metrics     -> aggregated ServeMetrics snapshot (request-side
                            + every backend worker / shard, plus backend
                            topology, admission stats and simulation-cache
                            stats); ?format=prometheus for the text
                            exposition
    GET  /v1/trace       -> newest-first stored trace summaries (?limit=N)
    GET  /v1/trace/<id>  -> one span tree as JSON ('latest' resolves the
                            most recent; ?format=chrome exports Chrome
                            trace_event JSON for about://tracing)
    POST /v1/predict     -> run one request

Also a standalone server CLI with execution-backend selection::

    python -m repro.serve --registry MODELS_DIR \
        --backend process --shards 4 --transport shm --affinity auto \
        --placement "big=0,1;small=2,3" --max-inflight 256 --port 8000

serves every model in the registry (or ``--model`` picks some), installs
SIGINT/SIGTERM handlers that drain in-flight requests and reap shard
processes, blocks until a signal arrives, and prints the aggregated
backend topology (shards, transport, per-model placement) on exit.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.serve import wire
from repro.serve.admission import AdmissionError
from repro.serve.telemetry import PROMETHEUS_CONTENT_TYPE, render_exposition
from repro.serve.wire import (
    CONTENT_TYPE_FRAME,
    CONTENT_TYPE_JSON,
    CONTENT_TYPE_NPY,
    WireError,
)

#: response header carrying the request's trace id (all statuses)
TRACE_ID_HEADER = "X-Sconna-Trace-Id"

#: request header carrying an upstream (router) trace id; when present
#: and the request is sampled, the server's trace adopts it so the
#: router hop and the replica's span tree share one id end to end
PARENT_TRACE_HEADER = "X-Sconna-Parent-Trace"

#: response header naming this server within a replica fleet (set when
#: the server was started with a ``replica_id``)
REPLICA_HEADER = "X-Sconna-Replica"

#: request body cap (a (n,3,224,224) float image batch fits comfortably)
MAX_BODY_BYTES = 256 * 1024 * 1024

_TRUE_WORDS = frozenset(("1", "true", "yes", "on"))
_FALSE_WORDS = frozenset(("0", "false", "no", "off", ""))


def _parse_flag(value, name: str) -> bool:
    """A tolerant boolean: JSON booleans, ints, and query-string words."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in _TRUE_WORDS:
            return True
        if lowered in _FALSE_WORDS:
            return False
    raise ValueError(f"bad boolean for {name!r}: {value!r}")


def parse_predict_fields(fields: dict) -> dict:
    """Normalize request parameters from any body/query representation.

    Returns ``{model, seed, top_k, ideal, cost, stream}`` with the same
    defaults the JSON body historically had; raises :class:`ValueError`
    on malformed values (mapped to 400 by the handler).
    """
    model = fields.get("model")
    if model is not None:
        model = str(model)
    seed = fields.get("seed")
    if seed is not None:
        seed = int(seed)
    return {
        "model": model,
        "seed": seed,
        "top_k": int(fields.get("top_k", 1)),
        "ideal": _parse_flag(fields.get("ideal", False), "ideal"),
        "cost": _parse_flag(fields.get("cost", False), "cost"),
        "stream": _parse_flag(fields.get("stream", False), "stream"),
    }


def negotiate_response_type(accept: "str | None", request_ctype: str) -> str:
    """The response media type for an ``Accept`` header.

    Explicit binary types win over JSON; an absent header or ``*/*``
    mirrors the request body's type (binary in, binary out), and
    anything unrecognized falls back to JSON.
    """
    accept = (accept or "").lower()
    if CONTENT_TYPE_FRAME in accept:
        return CONTENT_TYPE_FRAME
    if CONTENT_TYPE_NPY in accept:
        return CONTENT_TYPE_NPY
    if CONTENT_TYPE_JSON in accept:
        return CONTENT_TYPE_JSON
    if not accept or "*/*" in accept:
        if request_ctype == CONTENT_TYPE_NPY:
            return CONTENT_TYPE_NPY
        if request_ctype == CONTENT_TYPE_FRAME:
            return CONTENT_TYPE_FRAME
    return CONTENT_TYPE_JSON


def _prediction_meta(prediction) -> dict:
    """The JSON-able result fields shared by every response encoding."""
    return {
        "request_id": prediction.request_id,
        "model": prediction.model,
        "top_k": [
            [{"class": c, "logit": v} for c, v in per_image]
            for per_image in prediction.top_k
        ],
        "batch_images": prediction.batch_images,
        "latency_ms": prediction.latency_s * 1e3,
        "cost": None if prediction.cost is None else prediction.cost.as_dict(),
    }


class _ServeHandler(BaseHTTPRequestHandler):
    server: "ServeHTTPServer"

    #: HTTP/1.1 so keep-alive is the default; every non-streamed
    #: response carries Content-Length, the streamed one is chunked
    protocol_version = "HTTP/1.1"
    #: idle keep-alive connections are reaped (each holds a thread)
    timeout = 65.0
    #: headers and body go out as separate writes; with Nagle on, the
    #: second write can stall ~40 ms behind the peer's delayed ACK -
    #: on a keep-alive connection that tax lands on *every* response
    disable_nagle_algorithm = True

    #: the in-flight request's telemetry trace (set per predict request,
    #: cleared after; _send_body reads it so *every* response to a
    #: traced request - 429s and errors included - carries the id)
    _trace = None
    #: status of the last response written (for the access log)
    _last_status = 0

    # -- plumbing --------------------------------------------------------
    def _send_body(
        self,
        body: bytes,
        content_type: str,
        status: int = 200,
        close: bool = False,
        extra_headers: "list[tuple[str, str]] | None" = None,
    ) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._trace is not None:
            self.send_header(TRACE_ID_HEADER, self._trace.trace_id)
        replica_id = getattr(self.server, "replica_id", None)
        if replica_id:
            self.send_header(REPLICA_HEADER, replica_id)
        for name, value in extra_headers or ():
            self.send_header(name, value)
        if close:
            # the request body was not (fully) read: the bytes left on
            # the socket would be parsed as the next request, so the
            # connection cannot be reused
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self, payload: dict, status: int = 200, close: bool = False,
        extra_headers: "list[tuple[str, str]] | None" = None,
    ) -> None:
        self._send_body(
            json.dumps(payload).encode(), CONTENT_TYPE_JSON, status=status,
            close=close, extra_headers=extra_headers,
        )

    def _send_error(
        self, status: int, message: str, close: bool = False,
        retry_after_s: "float | None" = None,
    ) -> None:
        extra = None
        if retry_after_s is not None:
            # decimal seconds: our own client parses float(header), and
            # integer-only parsers still get a usable hint
            extra = [("Retry-After", f"{retry_after_s:.3f}")]
        self._send_json(
            {"error": message}, status=status, close=close,
            extra_headers=extra,
        )

    def _send_exception(self, exc: BaseException) -> None:
        """The one exception -> HTTP status mapping for predict paths."""
        if isinstance(exc, AdmissionError):
            self._send_error(429, str(exc), retry_after_s=exc.retry_after_s)
        elif isinstance(exc, KeyError):
            self._send_error(404, str(exc))
        elif isinstance(exc, (ValueError, TypeError)):
            self._send_error(400, str(exc))
        else:  # inference failure -> 500 with context
            self._send_error(500, f"{type(exc).__name__}: {exc}")

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    # -- routes ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        self._trace = None
        service = self.server.service
        path, _, query = self.path.partition("?")
        params = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(query).items()
        }
        if path == "/healthz":
            health = {"status": "ok"}
            replica_id = getattr(self.server, "replica_id", None)
            if replica_id:
                health["replica"] = replica_id
            self._send_json(health)
        elif path == "/v1/models":
            self._send_json({"models": service.models()})
        elif path == "/v1/metrics":
            if params.get("format") == "prometheus":
                self._send_body(
                    render_exposition(service.metrics_snapshot()).encode(),
                    PROMETHEUS_CONTENT_TYPE,
                )
            elif params.get("format") == "state":
                # the raw mergeable counter export a router fleet-
                # aggregates (same shape shards ship to their parent)
                state = getattr(service, "metrics_state", None)
                if state is None:
                    self._send_error(
                        400, "this endpoint has no raw metrics state"
                    )
                else:
                    self._send_json(state())
            else:
                self._send_json(service.metrics_snapshot())
        elif path == "/v1/trace" or path.startswith("/v1/trace/"):
            self._get_trace(service, path, params)
        else:
            self._send_error(404, f"unknown path {self.path!r}")

    def _get_trace(self, service, path: str, params: dict) -> None:
        """``/v1/trace`` list + ``/v1/trace/<id>`` detail + chrome export."""
        tracer = getattr(service, "tracer", None)
        if tracer is None:
            self._send_error(404, "this service has no tracer")
            return
        trace_id = (
            path[len("/v1/trace/"):] if path.startswith("/v1/trace/") else ""
        )
        if not trace_id:
            try:
                limit = int(params.get("limit", 50))
            except ValueError:
                self._send_error(400, f"bad limit {params['limit']!r}")
                return
            self._send_json({
                "traces": tracer.store.summaries(limit=limit),
                "stats": tracer.stats(),
            })
            return
        trace = (
            tracer.store.latest() if trace_id == "latest"
            else tracer.store.get(trace_id)
        )
        if trace is None:
            self._send_error(404, f"no stored trace {trace_id!r}")
            return
        if params.get("format") == "chrome":
            # the Chrome trace_event JSON object form: load directly in
            # about://tracing or ui.perfetto.dev
            self._send_json({
                "traceEvents": trace.chrome_events(),
                "displayTimeUnit": "ms",
            })
        else:
            self._send_json(trace.as_dict())

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        path, _, query = self.path.partition("?")
        if path != "/v1/predict":
            self._trace = None
            # the body was never read; this connection cannot be reused
            self._send_error(404, f"unknown path {self.path!r}", close=True)
            return
        service = self.server.service
        tracer = getattr(service, "tracer", None)
        trace = None
        if tracer is not None:
            # adopt an upstream router's trace id when one rides along,
            # so router hop and replica span tree share one id
            trace = tracer.start(
                "http.request",
                trace_id=self.headers.get(PARENT_TRACE_HEADER),
            )
        self._trace = trace
        self._last_status = 0
        started = time.monotonic()
        model = resp_type = None
        try:
            model, resp_type = self._predict_route(service, query, trace)
        finally:
            status = self._last_status
            if tracer is not None:
                tracer.finish(trace, status=status, wire=resp_type)
            log = getattr(self.server, "request_log", None)
            if log is None:
                log = getattr(service, "request_log", None)
            if log is not None:
                log.log_request(
                    trace=trace,
                    model=model,
                    lane=model,
                    wire=resp_type,
                    status=status,
                    latency_ms=(time.monotonic() - started) * 1e3,
                )
            self._trace = None

    def _predict_route(
        self, service, query: str, trace
    ) -> "tuple[str | None, str | None]":
        """The POST /v1/predict body; returns ``(model, response type)``
        for the access log (``None`` where the request died first)."""
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._send_error(411, "Content-Length is required", close=True)
            return None, None
        if length <= 0:
            self._send_error(400, "missing request body", close=length < 0)
            return None, None
        if length > MAX_BODY_BYTES:
            self._send_error(
                413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte cap",
                close=True,
            )
            return None, None
        t0 = time.monotonic() if trace is not None else 0.0
        body = self._read_exact(length)
        if body is None:
            return None, None  # client hung up mid-body; nothing to answer
        ctype = (self.headers.get("Content-Type") or CONTENT_TYPE_JSON)
        ctype = ctype.partition(";")[0].strip().lower()
        try:
            fields, images = self._parse_request(ctype, body, query)
        except NotImplementedError:
            self._send_error(
                415,
                f"unsupported Content-Type {ctype!r} (supported: "
                f"{CONTENT_TYPE_JSON}, {CONTENT_TYPE_NPY}, "
                f"{CONTENT_TYPE_FRAME})",
            )
            return None, ctype
        except (WireError, ValueError, TypeError, KeyError,
                json.JSONDecodeError) as exc:
            self._send_error(400, f"bad request body: {exc}")
            return None, ctype
        if trace is not None:
            trace.add_span("http.parse", t0, time.monotonic(),
                           tags={"wire": ctype, "nbytes": length})
        model = fields["model"]
        if model is None:
            names = service.models()
            if len(names) != 1:
                self._send_error(
                    400, f"'model' is required (registered: {names})"
                )
                return None, ctype
            model = names[0]
        resp_type = negotiate_response_type(self.headers.get("Accept"), ctype)
        if trace is not None:
            trace.set_tags(model=model, wire=ctype, accept=resp_type)
        if fields["stream"]:
            if resp_type != CONTENT_TYPE_FRAME:
                self._send_error(
                    400, "streaming requires Accept: " + CONTENT_TYPE_FRAME
                )
                return model, resp_type
            self._stream_predict(service, model, images, fields, trace)
            return model, resp_type
        try:
            prediction = service.predict(
                model,
                images,
                seed=fields["seed"],
                ideal=fields["ideal"],
                top_k=fields["top_k"],
                with_cost=fields["cost"],
                timeout=self.server.request_timeout_s,
                trace=trace,
            )
        except Exception as exc:
            self._send_exception(exc)
            return model, resp_type
        t0 = time.monotonic() if trace is not None else 0.0
        meta = _prediction_meta(prediction)
        if resp_type == CONTENT_TYPE_FRAME:
            self._send_body(
                wire.encode_frame(meta, {"logits": prediction.logits}),
                CONTENT_TYPE_FRAME,
            )
        elif resp_type == CONTENT_TYPE_NPY:
            self._send_body(
                wire.encode_npy(prediction.logits),
                CONTENT_TYPE_NPY,
                extra_headers=[
                    ("X-Sconna-Request-Id", str(meta["request_id"])),
                    ("X-Sconna-Model", meta["model"]),
                    ("X-Sconna-Batch-Images", str(meta["batch_images"])),
                    ("X-Sconna-Latency-Ms", f"{meta['latency_ms']:.3f}"),
                ],
            )
        else:
            meta["logits"] = prediction.logits.tolist()
            self._send_json(meta)
        if trace is not None:
            trace.add_span("http.encode", t0, time.monotonic(),
                           tags={"wire": resp_type})
        return model, resp_type

    # -- request parsing -------------------------------------------------
    def _read_exact(self, length: int) -> "bytes | None":
        """Read the full request body; ``None`` if the client hung up."""
        chunks: "list[bytes]" = []
        got = 0
        while got < length:
            chunk = self.rfile.read(length - got)
            if not chunk:
                self.close_connection = True
                return None
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    def _parse_request(
        self, ctype: str, body: bytes, query: str
    ) -> "tuple[dict, object]":
        """Decode one request body into (normalized fields, images)."""
        if ctype == CONTENT_TYPE_JSON:
            payload = json.loads(body)
            if not isinstance(payload, dict):
                raise ValueError("JSON body must be an object")
            if "image" not in payload:
                raise ValueError("'image' is required")
            return parse_predict_fields(payload), payload["image"]
        if ctype == CONTENT_TYPE_NPY:
            images = wire.decode_npy(body, max_bytes=MAX_BODY_BYTES)
            params = {
                key: values[-1]
                for key, values in urllib.parse.parse_qs(query).items()
            }
            return parse_predict_fields(params), images
        if ctype == CONTENT_TYPE_FRAME:
            meta, tensors = wire.decode_frame(body, max_bytes=MAX_BODY_BYTES)
            if "image" not in tensors:
                raise ValueError(
                    f"frame carries no 'image' tensor (got: "
                    f"{sorted(tensors)})"
                )
            return parse_predict_fields(meta), tensors["image"]
        raise NotImplementedError(ctype)

    # -- streaming -------------------------------------------------------
    def _stream_predict(
        self, service, model: str, images, fields: dict, trace=None
    ) -> None:
        """Chunked per-image frame stream for an ``(n, C, H, W)`` stack.

        Unseeded / ideal stacks are split into per-image requests and
        pipelined (early frames flush while later images compute);
        a seeded stack stays one request - its frames flush together
        after it completes (the noise stream spans the stack).  Errors
        after the 200 has been committed travel as frames carrying an
        ``error`` field at their index.
        """
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        if images.ndim != 4:
            self._send_error(400, "image must be (C, H, W) or (n, C, H, W)")
            return
        n = int(images.shape[0])
        seeded = fields["seed"] is not None and not fields["ideal"]
        timeout = self.server.request_timeout_s
        kwargs = dict(
            ideal=fields["ideal"], top_k=fields["top_k"],
            with_cost=fields["cost"],
        )
        if seeded:
            # one indivisible request: submit + await *before* the 200,
            # so validation/admission failures map to clean statuses
            try:
                prediction = service.predict(
                    model, images, seed=fields["seed"],
                    timeout=timeout, trace=trace, **kwargs,
                )
            except Exception as exc:
                self._send_exception(exc)
                return
            frames = self._frames_of(prediction, n)
            self._write_stream(frames)
            return
        # split path: pipeline n single-image requests through the
        # scheduler; the first submission gates the 200 (so an unknown
        # model or a full service still answers with a status), later
        # submission failures become error frames at their index
        futures: "list" = []
        submit_errors: "dict[int, BaseException]" = {}
        for i in range(n):
            try:
                futures.append(
                    service.predict_async(model, images[i], seed=None, **kwargs)
                )
            except BaseException as exc:
                if i == 0:
                    self._send_exception(exc)
                    return
                futures.append(None)
                submit_errors[i] = exc

        def frame_iter():
            for i, future in enumerate(futures):
                if future is None:
                    yield self._error_frame(i, n, submit_errors[i])
                    continue
                try:
                    prediction = future.result(timeout)
                except BaseException as exc:
                    yield self._error_frame(i, n, exc)
                    continue
                meta = _prediction_meta(prediction)
                meta["index"], meta["total"] = i, n
                yield wire.encode_frame(meta, {"logits": prediction.logits})

        self._write_stream(frame_iter())

    @staticmethod
    def _frames_of(prediction, n: int):
        """Per-image frames of one completed multi-image prediction."""
        meta = _prediction_meta(prediction)
        cost, top_k = meta.pop("cost"), meta.pop("top_k")
        for i in range(n):
            frame_meta = dict(
                meta, index=i, total=n, top_k=[top_k[i]],
            )
            if i == n - 1 and cost is not None:
                frame_meta["cost"] = cost  # per-request cost rides the tail
            yield wire.encode_frame(
                frame_meta, {"logits": prediction.logits[i : i + 1]}
            )

    @staticmethod
    def _error_frame(index: int, total: int, exc: BaseException) -> bytes:
        meta = {
            "index": index,
            "total": total,
            "error": f"{type(exc).__name__}: {exc}",
        }
        if isinstance(exc, AdmissionError):
            meta["retry_after_s"] = exc.retry_after_s
        return wire.encode_frame(meta)

    def _write_stream(self, frames) -> None:
        """Send a committed 200 as chunked frames (one chunk per frame)."""
        self._last_status = 200
        self.send_response(200)
        if self._trace is not None:
            self.send_header(TRACE_ID_HEADER, self._trace.trace_id)
        replica_id = getattr(self.server, "replica_id", None)
        if replica_id:
            self.send_header(REPLICA_HEADER, replica_id)
        self.send_header("Content-Type", CONTENT_TYPE_FRAME)
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for frame in frames:
                self.wfile.write(
                    f"{len(frame):X}\r\n".encode() + frame + b"\r\n"
                )
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError, OSError):
            self.close_connection = True  # client went away mid-stream


class ServeHTTPServer(ThreadingHTTPServer):
    """HTTP front-end bound to one service (``port=0`` picks a free port)."""

    daemon_threads = True

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 60.0,
        verbose: bool = False,
        replica_id: "str | None" = None,
        handler_class: "type | None" = None,
    ) -> None:
        self.service = service
        self.request_timeout_s = request_timeout_s
        self.verbose = verbose
        #: fleet identity: when set, every response carries it in
        #: X-Sconna-Replica and /healthz reports it (a router learns
        #: replica names this way)
        self.replica_id = replica_id
        super().__init__((host, port), handler_class or _ServeHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve_http(
    service,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    replica_id: "str | None" = None,
) -> "tuple[ServeHTTPServer, threading.Thread]":
    """Start a background HTTP server; returns (server, thread).

    Call ``server.shutdown()`` then ``service.close()`` to stop.
    """
    server = ServeHTTPServer(service, host=host, port=port, verbose=verbose,
                             replica_id=replica_id)
    thread = threading.Thread(
        target=server.serve_forever, name="sconna-httpd", daemon=True
    )
    thread.start()
    return server, thread


def main(argv: "list[str] | None" = None) -> None:
    """CLI entry point: serve registry models over HTTP until a signal."""
    import argparse

    from repro.serve.admission import AdmissionPolicy
    from repro.serve.batching import BatchingPolicy
    from repro.serve.registry import ModelRegistry
    from repro.serve.service import SconnaService, install_shutdown_handlers

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve registered SCONNA models over HTTP "
                    "(JSON and binary wire bodies).",
    )
    parser.add_argument("--registry", required=True,
                        help="model registry directory (NPZ + JSON manifests)")
    parser.add_argument("--model", action="append", default=None,
                        help="registry model to serve (repeatable; "
                             "default: every registered model)")
    parser.add_argument("--mode", default="sconna",
                        choices=("float", "int8", "sconna"))
    parser.add_argument("--backend", default="thread",
                        choices=("thread", "process"),
                        help="execution backend (default: thread)")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker processes for --backend process")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker threads for --backend thread")
    parser.add_argument("--transport", default="shm",
                        choices=("pipe", "shm"),
                        help="process-backend batch transport: shared-memory "
                             "rings (default) or pickled arrays on pipes")
    parser.add_argument("--affinity", default="none",
                        choices=("auto", "none"),
                        help="process-backend CPU pinning: 'auto' pins shard "
                             "i to core i so shards stop migrating "
                             "(default: none)")
    parser.add_argument("--placement", default=None,
                        help="per-model shard placement, e.g. "
                             "'modelA=0,1;modelB=2' (default: every model "
                             "on every shard)")
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="admission control: requests in flight before "
                             "shedding with 429 (default: unbounded)")
    parser.add_argument("--max-queued-mb", type=float, default=None,
                        help="admission control: payload MiB in flight "
                             "before shedding with 429 (default: unbounded)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--replica-id", default=None,
                        help="fleet identity: sent on every response as "
                             "X-Sconna-Replica and reported by /healthz "
                             "(a fronting repro.serve.router learns it)")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument("--trace-sample-rate", type=float, default=1.0 / 16,
                        help="fraction of requests that keep a full trace "
                             "(default: 1/16; 0 disables tracing)")
    parser.add_argument("--trace-slow-ms", type=float, default=None,
                        help="always keep traces slower than this many ms, "
                             "regardless of the sample rate")
    parser.add_argument("--trace-profile", action="store_true",
                        help="record per-layer engine timings on sampled "
                             "traces (quantize/im2col/matmul/remainder/...)")
    parser.add_argument("--trace-capacity", type=int, default=256,
                        help="completed traces kept for /v1/trace "
                             "(default: 256)")
    parser.add_argument("--log-requests", action="store_true",
                        help="emit one JSON line per request on stderr "
                             "(trace id, model, wire, status, latency)")
    args = parser.parse_args(argv)

    registry = ModelRegistry(args.registry)
    names = args.model or registry.names()
    if not names:
        parser.error(f"registry {args.registry!r} has no models")
    placement = None
    if args.placement is not None:
        from repro.serve.backends import ShardPlacement

        try:
            placement = ShardPlacement.parse(args.placement)
            # validate slot ranges *before* any shard process exists,
            # so a typo'd slot is a usage error, not a traceback over a
            # half-built service
            for model_name in placement.assignments:
                placement.shards_for(model_name, args.shards)
        except ValueError as exc:
            parser.error(str(exc))
    admission = None
    if args.max_inflight is not None or args.max_queued_mb is not None:
        admission = AdmissionPolicy(
            max_inflight=args.max_inflight,
            max_queued_bytes=(
                None if args.max_queued_mb is None
                else int(args.max_queued_mb * (1 << 20))
            ),
        )
    from repro.serve.telemetry import StructuredLogger, TracePolicy

    trace_policy = TracePolicy(
        sample_rate=args.trace_sample_rate,
        always_sample_slow_ms=args.trace_slow_ms,
        profile_engine=args.trace_profile,
    )
    request_log = StructuredLogger() if args.log_requests else None
    service = SconnaService(
        policy=BatchingPolicy(
            max_batch_size=args.max_batch_size, max_wait_ms=args.max_wait_ms
        ),
        n_workers=args.workers,
        mode=args.mode,
        backend=args.backend,
        n_shards=args.shards,
        transport=args.transport,
        placement=placement,
        admission=admission,
        affinity=None if args.affinity == "none" else args.affinity,
        trace_policy=trace_policy,
        request_log=request_log,
    )
    for name in names:
        service.add_from_registry(registry, name)
    server, _ = serve_http(
        service, host=args.host, port=args.port, verbose=args.verbose,
        replica_id=args.replica_id,
    )
    # chain=False: the signal must hand control *back* after the drain
    # so the topology report below still runs; the signal is re-raised
    # manually at the end to keep the usual exit status
    handlers = install_shutdown_handlers(service, servers=(server,), chain=False)
    backend_info = service.backend.info()
    if args.backend == "process":
        topology = (f"shards={backend_info.get('shards')}, "
                    f"transport={backend_info.get('transport')}, "
                    f"affinity={backend_info.get('affinity')}")
    else:
        topology = f"workers={args.workers}"
    if request_log is not None:
        request_log.log("serve.start", url=server.url, models=names,
                        backend=backend_info["kind"], topology=topology,
                        trace_sample_rate=args.trace_sample_rate)
    else:
        print(f"serving {names} at {server.url}  "
              f"(backend={backend_info['kind']}, {topology})")
        print("POST /v1/predict (JSON | x-npy | x-sconna-frame) | "
              "GET /v1/models /v1/metrics /v1/trace /healthz  "
              "(SIGINT/SIGTERM drains and exits)")
    try:
        handlers.wait()
    except KeyboardInterrupt:
        pass  # SIGINT lands as KeyboardInterrupt too; teardown already ran
    # the service is drained: report the final aggregated topology so an
    # operator sees where every model ran and how batches travelled
    snap = service.metrics_snapshot()
    if request_log is not None:
        request_log.log("serve.stop", backend=snap["backend"],
                        uptime_s=snap.get("uptime_s"))
    else:
        print("topology at exit: "
              + json.dumps(snap["backend"], sort_keys=True), flush=True)
    if handlers.triggered is not None:
        # die by the signal that stopped us (handlers restored the
        # default action during teardown) - callers see the usual code;
        # a re-raised SIGINT surfaces as KeyboardInterrupt and keeps
        # the historical quiet exit
        import signal as signal_module

        try:
            signal_module.raise_signal(handlers.triggered)
        except KeyboardInterrupt:
            pass


if __name__ == "__main__":
    main()
