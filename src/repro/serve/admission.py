"""Admission control: bounded in-flight work, load shedding over queuing.

Without a bound, a client burst grows the micro-batching queues without
limit: every request is eventually served, but tail latency and memory
climb with the backlog, and by the time a request reaches the engine its
caller has usually timed out.  An :class:`AdmissionPolicy` caps what the
service will *accept* instead - requests beyond ``max_inflight`` or
``max_queued_bytes`` are rejected at the front door with
:class:`AdmissionError`, which the HTTP layer maps to
``429 Too Many Requests`` + ``Retry-After``.  Shedding is cheap (no
tensor ever enters a queue) and visible: shed counts are recorded into
:class:`~repro.serve.metrics.ServeMetrics` and surface in
``/v1/metrics`` under ``shed`` and ``admission``.

``AdmissionController`` is the tiny thread-safe gate the service calls:
``admit(nbytes)`` on submission (raises when over budget), ``release``
exactly once per admitted request when its future resolves.  "In
flight" counts admitted-but-unresolved requests - queued *and*
executing - because both hold payload memory and both stand between a
new arrival and its deadline.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class AdmissionPolicy:
    """Acceptance limits of one service (``None`` disables a limit)."""

    max_inflight: "int | None" = None      #: admitted, not yet completed
    max_queued_bytes: "int | None" = None  #: sum of admitted payload bytes
    retry_after_s: float = 0.05            #: backoff hint sent with a 429

    def __post_init__(self) -> None:
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 (or None)")
        if self.max_queued_bytes is not None and self.max_queued_bytes < 1:
            raise ValueError("max_queued_bytes must be >= 1 (or None)")
        if self.retry_after_s < 0:
            raise ValueError("retry_after_s must be >= 0")

    def as_dict(self) -> dict:
        """JSON-serializable policy knobs (reported under ``/v1/metrics``)."""
        return {
            "max_inflight": self.max_inflight,
            "max_queued_bytes": self.max_queued_bytes,
            "retry_after_s": self.retry_after_s,
        }


class AdmissionError(RuntimeError):
    """Request rejected by admission control; retry after a backoff."""

    def __init__(self, message: str, retry_after_s: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class AdmissionController:
    """Thread-safe gate enforcing one :class:`AdmissionPolicy`.

    A ``policy`` of ``None`` admits everything (the historical
    behaviour) while still tracking occupancy for the metrics endpoint.
    """

    def __init__(self, policy: "AdmissionPolicy | None" = None,
                 metrics=None) -> None:
        self.policy = policy
        self._metrics = metrics
        self._lock = threading.Lock()
        self._inflight = 0
        self._queued_bytes = 0
        self._shed = 0

    def admit(self, nbytes: int, trace=None) -> None:
        """Account one request of ``nbytes`` payload; raises
        :class:`AdmissionError` (and records the shed) when over budget.

        ``trace`` is an optional telemetry Trace; when present, the
        decision (admit or shed, and why) is recorded as an
        ``admission`` span.
        """
        policy = self.policy
        t0 = time.monotonic() if trace is not None else 0.0
        with self._lock:
            if policy is not None:
                reason = None
                if (policy.max_inflight is not None
                        and self._inflight >= policy.max_inflight):
                    reason = (f"{self._inflight} requests in flight "
                              f"(limit {policy.max_inflight})")
                elif (policy.max_queued_bytes is not None
                        and self._queued_bytes + nbytes
                        > policy.max_queued_bytes):
                    reason = (f"{self._queued_bytes + nbytes} payload bytes "
                              f"in flight (limit {policy.max_queued_bytes})")
                if reason is not None:
                    self._shed += 1
                    if self._metrics is not None:
                        self._metrics.record_shed()
                    if trace is not None:
                        trace.add_span(
                            "admission", t0, time.monotonic(),
                            tags={"admitted": False, "reason": reason,
                                  "nbytes": int(nbytes)},
                        )
                    raise AdmissionError(
                        f"request shed: {reason}",
                        retry_after_s=policy.retry_after_s,
                    )
            self._inflight += 1
            self._queued_bytes += nbytes
        if trace is not None:
            trace.add_span("admission", t0, time.monotonic(),
                           tags={"admitted": True, "nbytes": int(nbytes)})

    def release(self, nbytes: int) -> None:
        """Undo one :meth:`admit` (the request completed or failed)."""
        with self._lock:
            self._inflight -= 1
            self._queued_bytes -= nbytes

    def stats(self) -> dict:
        """JSON-ready occupancy for the metrics endpoint."""
        with self._lock:
            return {
                "policy": None if self.policy is None else self.policy.as_dict(),
                "in_flight": self._inflight,
                "queued_bytes": self._queued_bytes,
                "shed": self._shed,
            }
