"""repro - a full Python reproduction of SCONNA (IPDPS 2023).

SCONNA is a stochastic-computing-based silicon-photonic accelerator for
integer-quantized CNN inference (Sri Vatsavai et al., arXiv:2302.07036).
This package rebuilds the paper's entire stack from scratch:

``repro.photonics``
    Device substrate: microrings, the Optical AND Gate, photodetector
    noise, laser/waveguide losses, link budgets, the PCA's
    time-integrating receiver and data converters.
``repro.stochastic``
    Stochastic-computing substrate: unipolar bit-streams, correlation
    metrics, stochastic number generators, the OSM lookup table and SC
    arithmetic.
``repro.core``
    The paper's contribution: OSM, PCA, SCONNA VDPE/VDPC and the
    Section V scalability analysis.
``repro.cnn``
    CNN substrate: NumPy conv/pool/FC kernels, a layer-graph IR, the
    six-model zoo (shapes for Table II and the performance study), int8
    quantization, training and SC-error-injected inference.
``repro.arch``
    System substrate: discrete-event kernel, NoC, memories, Table IV
    peripherals, tiles, the weight-stationary mapper, the analog AMM/MAM
    baselines and the transaction-level accelerator simulator.
``repro.analysis``
    One harness per paper table/figure (Tables I, II, V; Figs. 6(c),
    7(a), 7(b), 9(a-c)) plus ablations, each printing paper-vs-measured.
``repro.serve``
    Serving layer: model registry, dynamic micro-batching, worker pool,
    in-process + HTTP prediction APIs with per-request simulated
    accelerator cost accounting.

Quick start::

    from repro.analysis import fig9
    result = fig9.run_fig9(quick=True)
    print(result.render())
"""

__version__ = "1.0.0"

__all__ = [
    "photonics",
    "stochastic",
    "core",
    "cnn",
    "arch",
    "analysis",
    "serve",
    "__version__",
]
