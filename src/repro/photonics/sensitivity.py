"""Receiver sensitivity solver (paper Eqs. 2 and 3).

Given a target bit resolution ``B_Res`` and data rate ``DR``, find the
minimum optical power ``P_PD-opt`` at which the photodetector can still
resolve ``2**B_Res`` levels.  SCONNA's stochastic bit-streams are digital,
so it needs only ``B_Res = 1``; the analog AMM/MAM baselines must resolve
``B + log2(N)`` bits on the summed output, which is what couples their
VDPE size ``N`` to the operand precision ``B`` (the trade-off of paper
Table I).

The defining equation is implicit because the noise density ``beta``
(Eq. 3) itself depends on the optical power through the shot and RIN
terms, so we solve it with a bracketed bisection (``scipy.optimize``
``brentq``) on the monotone function ``B_Res(P) - target``.
"""

from __future__ import annotations

import math

from scipy.optimize import brentq

from repro.photonics.photodetector import PhotodetectorParams, bit_resolution
from repro.utils.units import watts_to_dbm


def solve_sensitivity_dbm(
    target_bit_resolution: float,
    data_rate_hz: float,
    params: PhotodetectorParams | None = None,
    p_min_dbm: float = -70.0,
    p_max_dbm: float = 30.0,
) -> float:
    """Minimum optical power [dBm] achieving ``target_bit_resolution``.

    Parameters
    ----------
    target_bit_resolution:
        Required receiver resolution in bits (``B_Res`` of Eq. 2).  Use 1
        for SCONNA's digital bit-streams; use ``B + log2(N)`` for an
        analog VDPC that must distinguish ``N * 2**B`` summed levels.
    data_rate_hz:
        Receiver data rate ``DR``.  For SCONNA this is the stochastic
        stream rate ``BR * 2**B / 2**B = BR`` per bit-slot decision, but
        the paper solves Eq. 2 at ``DR = BR * 2**B``; both are exposed by
        callers - this function just solves the equation it is given.
    params:
        Photodetector parameters (defaults: Table III).

    Raises
    ------
    ValueError
        If the target resolution is unreachable inside the bracket (e.g.
        RIN-limited: beyond some power the SNR saturates).
    """
    if params is None:
        params = PhotodetectorParams()
    if target_bit_resolution <= 0:
        raise ValueError("target_bit_resolution must be positive")
    if data_rate_hz <= 0:
        raise ValueError("data_rate_hz must be positive")

    def deficit(p_dbm: float) -> float:
        return bit_resolution(p_dbm, data_rate_hz, params) - target_bit_resolution

    lo, hi = deficit(p_min_dbm), deficit(p_max_dbm)
    if lo > 0:
        # Even the weakest bracketed power suffices; report the bracket edge.
        return p_min_dbm
    if hi < 0:
        raise ValueError(
            f"bit resolution {target_bit_resolution} unreachable at "
            f"DR={data_rate_hz:.3g} Hz (RIN/thermal limited); "
            f"max achievable is {target_bit_resolution + hi:.2f} bits"
        )
    return float(brentq(deficit, p_min_dbm, p_max_dbm, xtol=1e-6))


def max_resolution_bits(
    data_rate_hz: float, params: PhotodetectorParams | None = None
) -> float:
    """RIN-limited ceiling on receiver resolution at high optical power.

    At large P the SNR tends to ``1/sqrt(RIN * DR/2)`` independent of P;
    useful to explain why analog VDPCs cannot buy precision with laser
    power alone.
    """
    if params is None:
        params = PhotodetectorParams()
    snr_ceiling = 1.0 / math.sqrt(params.rin_linear_per_hz * data_rate_hz / 2.0)
    return (20.0 * math.log10(snr_ceiling) - 1.76) / 6.02


def sensitivity_curve_dbm(
    target_bit_resolution: float,
    data_rates_hz: list[float],
    params: PhotodetectorParams | None = None,
) -> list[float]:
    """Vector version of :func:`solve_sensitivity_dbm` over data rates."""
    return [
        solve_sensitivity_dbm(target_bit_resolution, dr, params)
        for dr in data_rates_hz
    ]
