"""Photonic device substrate for the SCONNA reproduction.

This package replaces the commercial EDA tooling (Ansys/Lumerical,
MultiSim) the paper used for device modelling with first-principles
Python models:

* :mod:`repro.photonics.mrr` - add-drop microring resonators,
* :mod:`repro.photonics.oag` - the Optical AND Gate + transient / OMA
  analyses (Figs. 6(c), 7(a)),
* :mod:`repro.photonics.photodetector` / :mod:`~repro.photonics.sensitivity`
  - receiver noise (Eq. 3) and sensitivity (Eq. 2),
* :mod:`repro.photonics.laser` / :mod:`~repro.photonics.waveguide` /
  :mod:`~repro.photonics.link_budget` - the optical power budget and
  max-N solver (Eq. 4, Section V-B),
* :mod:`repro.photonics.tir` - the PCA's time-integrating receiver
  (Fig. 7(b)),
* :mod:`repro.photonics.converters` - ADC/DAC behaviour + the 1.3 %-MAPE
  PCA error model.
"""

from repro.photonics.mrr import MicroringResonator, max_dwdm_channels
from repro.photonics.oag import (
    OAGTimingModel,
    OpticalAndGate,
    OAGTransient,
    max_bitrate_for_fwhm,
    oma_at_bitrate,
    random_prbs,
)
from repro.photonics.photodetector import (
    PhotodetectorParams,
    bit_resolution,
    noise_spectral_density_a_per_rthz,
    photocurrent_a,
    rms_noise_current_a,
    snr_db,
)
from repro.photonics.sensitivity import (
    max_resolution_bits,
    sensitivity_curve_dbm,
    solve_sensitivity_dbm,
)
from repro.photonics.laser import DwdmGrid, LaserDiode, laser_array_power_w
from repro.photonics.waveguide import (
    PassiveLossParams,
    cascade_passby_loss_db,
    propagation_loss_db,
    splitter_loss_db,
)
from repro.photonics.link_budget import (
    LinkBudget,
    LossTerm,
    analog_vdpc_budget,
    sconna_vdpc_budget,
    solve_max_n,
)
from repro.photonics.tir import TIRParams, TimeIntegratingReceiver
from repro.photonics.converters import (
    ANALOG_ADC,
    ANALOG_DAC,
    SCONNA_ADC,
    AdcErrorModel,
    ConverterSpec,
    QuantizingADC,
)

__all__ = [
    "MicroringResonator",
    "max_dwdm_channels",
    "OAGTimingModel",
    "OpticalAndGate",
    "OAGTransient",
    "max_bitrate_for_fwhm",
    "oma_at_bitrate",
    "random_prbs",
    "PhotodetectorParams",
    "bit_resolution",
    "noise_spectral_density_a_per_rthz",
    "photocurrent_a",
    "rms_noise_current_a",
    "snr_db",
    "max_resolution_bits",
    "sensitivity_curve_dbm",
    "solve_sensitivity_dbm",
    "DwdmGrid",
    "LaserDiode",
    "laser_array_power_w",
    "PassiveLossParams",
    "cascade_passby_loss_db",
    "propagation_loss_db",
    "splitter_loss_db",
    "LinkBudget",
    "LossTerm",
    "analog_vdpc_budget",
    "sconna_vdpc_budget",
    "solve_max_n",
    "TIRParams",
    "TimeIntegratingReceiver",
    "ANALOG_ADC",
    "ANALOG_DAC",
    "SCONNA_ADC",
    "AdcErrorModel",
    "ConverterSpec",
    "QuantizingADC",
]
