"""Laser diode array and DWDM channel grid.

Every VDPC begins with ``N`` single-wavelength laser diodes multiplexed
into one waveguide (paper Fig. 4(a)).  This module models the per-diode
optical output, wall-plug efficiency (``eta_WPE``, Table III: 0.1) and
the DWDM grid (0.25 nm spacing inside a 50 nm FSR).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.constants import C_BAND_CENTER_M
from repro.utils.units import dbm_to_watts


@dataclass(frozen=True)
class LaserDiode:
    """One DFB laser diode of the source array.

    ``power_dbm`` is the *optical* power launched into the chip
    (Table III: 10 dBm); electrical wall-plug draw is
    ``optical / eta_wpe``.
    """

    power_dbm: float = 10.0
    wavelength_nm: float = 1550.0
    eta_wpe: float = 0.1

    @property
    def optical_power_w(self) -> float:
        return dbm_to_watts(self.power_dbm)

    @property
    def electrical_power_w(self) -> float:
        """Wall-plug electrical power needed to emit ``power_dbm``."""
        if not (0.0 < self.eta_wpe <= 1.0):
            raise ValueError(f"eta_wpe must be in (0, 1], got {self.eta_wpe}")
        return self.optical_power_w / self.eta_wpe


@dataclass(frozen=True)
class DwdmGrid:
    """Dense WDM channel plan shared by a VDPC's laser block and OSMs."""

    center_nm: float = C_BAND_CENTER_M * 1e9
    spacing_nm: float = 0.25
    fsr_nm: float = 50.0

    def max_channels(self) -> int:
        """Theoretical channel count (paper: 50 / 0.25 = 200)."""
        return int(self.fsr_nm / self.spacing_nm)

    def wavelengths_nm(self, n_channels: int) -> np.ndarray:
        """Channel wavelengths centred on ``center_nm``.

        Raises if ``n_channels`` exceeds what the FSR supports, mirroring
        the hard bound of Section V-B.
        """
        if n_channels <= 0:
            raise ValueError("n_channels must be positive")
        if n_channels > self.max_channels():
            raise ValueError(
                f"{n_channels} channels exceed FSR capacity {self.max_channels()}"
            )
        offsets = (np.arange(n_channels) - (n_channels - 1) / 2.0) * self.spacing_nm
        return self.center_nm + offsets


def laser_array_power_w(n_diodes: int, diode: LaserDiode | None = None) -> tuple[float, float]:
    """(total optical, total electrical) power of an ``n_diodes`` array [W]."""
    if n_diodes <= 0:
        raise ValueError("n_diodes must be positive")
    if diode is None:
        diode = LaserDiode()
    return n_diodes * diode.optical_power_w, n_diodes * diode.electrical_power_w
