"""Time-integrating receiver (TIR) - the analog half of the PCA circuit.

Paper Section IV-C / Fig. 4(b): each optical logic '1' incident on the
PCA photodetector produces a current pulse that deposits charge on the
active integration capacitor; the accrued voltage (times an amplifier
gain) is therefore proportional to the *count of '1' bits* across all
incident bit-streams - exactly the unipolar unscaled addition stochastic
computing needs.  Two capacitors ping-pong so one can discharge while the
other integrates.

Paper Section V-C fixes the component values by MultiSim simulation:
``R = 50 ohm, C = 250 pF, amplifier gain = 80``, photodetector
responsivity 1.2 A/W at sensitivity -28 dBm, and shows (Fig. 7(b)) that
the output voltage stays linear up to ``alpha = 100 %`` of the maximum
``176 x 256`` ones.  With those values the full-scale output is

``V = G * N1 * R_pd * P1 * T_bit / C  ~  0.91 V``

comfortably below a 1 V rail - which is the linearity the figure shows,
and which this model reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import dbm_to_watts


@dataclass(frozen=True)
class TIRParams:
    """Component values of one TIR integration branch (Section V-C)."""

    capacitance_f: float = 250e-12
    load_resistance_ohm: float = 50.0
    amplifier_gain: float = 80.0
    supply_rail_v: float = 1.0
    responsivity_a_per_w: float = 1.2
    one_level_power_dbm: float = -28.0
    discharge_time_constants: float = 5.0

    @property
    def pulse_current_a(self) -> float:
        """Photocurrent while an optical '1' is incident."""
        return self.responsivity_a_per_w * dbm_to_watts(self.one_level_power_dbm)

    def pulse_charge_c(self, bit_period_s: float) -> float:
        """Charge deposited per optical '1' bit of duration ``bit_period_s``."""
        if bit_period_s <= 0:
            raise ValueError("bit_period_s must be positive")
        return self.pulse_current_a * bit_period_s

    def discharge_latency_s(self) -> float:
        """Time to reset the capacitor through the load resistance."""
        return (
            self.discharge_time_constants
            * self.load_resistance_ohm
            * self.capacitance_f
        )


class TimeIntegratingReceiver:
    """Charge-accumulating receiver with ping-pong capacitors.

    The ideal (pre-amplifier, pre-rail) voltage is linear in the number
    of accumulated ones; the post-amplifier output soft-saturates at the
    supply rail.  :meth:`linearity_headroom` quantifies how far full
    scale sits below the rail (paper Fig. 7(b) shows it never saturates).
    """

    def __init__(self, params: TIRParams | None = None) -> None:
        self.params = params or TIRParams()

    def output_voltage_v(
        self, ones_count: np.ndarray | int | float, bit_period_s: float
    ) -> np.ndarray:
        """Amplifier output voltage after integrating ``ones_count`` pulses.

        Vectorised over ``ones_count``.  Saturates (hard clip) at the
        supply rail, which in the calibrated configuration is never
        reached at alpha <= 100 %.
        """
        p = self.params
        ones = np.asarray(ones_count, dtype=float)
        if (ones < 0).any():
            raise ValueError("ones_count cannot be negative")
        q = ones * p.pulse_charge_c(bit_period_s)
        v = p.amplifier_gain * q / p.capacitance_f
        return np.minimum(v, p.supply_rail_v)

    def full_scale_ones(self, n_channels: int, stream_bits: int) -> int:
        """Maximum possible ones: all bits of all channels are '1'."""
        if n_channels <= 0 or stream_bits <= 0:
            raise ValueError("n_channels and stream_bits must be positive")
        return n_channels * stream_bits

    def alpha_sweep(
        self,
        n_channels: int,
        stream_bits: int,
        bit_period_s: float,
        alphas: np.ndarray,
    ) -> np.ndarray:
        """Output voltage versus alpha (fraction of maximum ones).

        This is exactly paper Fig. 7(b): x-axis
        ``alpha = ones / (176 * 256) * 100 %``, y-axis analog output
        voltage.
        """
        alphas = np.asarray(alphas, dtype=float)
        if ((alphas < 0) | (alphas > 1)).any():
            raise ValueError("alphas must lie in [0, 1]")
        full = self.full_scale_ones(n_channels, stream_bits)
        return self.output_voltage_v(alphas * full, bit_period_s)

    def linearity_headroom(
        self, n_channels: int, stream_bits: int, bit_period_s: float
    ) -> float:
        """Rail margin at alpha = 100 % (positive => never saturates)."""
        v_full = float(
            self.output_voltage_v(
                self.full_scale_ones(n_channels, stream_bits), bit_period_s
            )
        )
        return self.params.supply_rail_v - v_full

    def is_linear_up_to(
        self, n_channels: int, stream_bits: int, bit_period_s: float
    ) -> bool:
        """True if the ideal output stays below the rail at full scale."""
        return self.linearity_headroom(n_channels, stream_bits, bit_period_s) > 0.0
