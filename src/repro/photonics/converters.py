"""Behavioural ADC / DAC models with latency, power, area and error.

Paper Table IV uses three converters:

* AMM/MAM **DAC** - 10 GS/s 4-bit (Juanda et al.): 30 mW, 0.034 mm2,
  0.78 ns latency; one per modulator MRR in the analog baselines.
* AMM/MAM **ADC** - 5 GS/s SAR (Guo et al.): 29 mW, 0.103 mm2, 0.78 ns.
* SCONNA **ADC** - 1 GS/s 8-bit SAR-flash (Oh et al.): 2.55 mW,
  0.002 mm2, 0.78 ns; one per PCA.

Functionally we model an ideal mid-tread quantizer plus a calibrated
random error term: Section V-C measures a **1.3 % mean absolute
percentage error** on the PCA's ADC output, which the accuracy study
(Table V) injects into every VDP result.  For a zero-mean Gaussian
relative error, ``E|eps| = sigma * sqrt(2/pi)``, so we store
``sigma = MAPE * sqrt(pi/2)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng


@dataclass(frozen=True)
class ConverterSpec:
    """Static latency / power / area descriptor of a data converter."""

    name: str
    resolution_bits: int
    latency_s: float
    power_w: float
    area_mm2: float

    def __post_init__(self) -> None:
        if self.resolution_bits <= 0:
            raise ValueError("resolution_bits must be positive")
        if self.latency_s < 0 or self.power_w < 0 or self.area_mm2 < 0:
            raise ValueError("latency/power/area cannot be negative")


#: Table IV converter instances.
SCONNA_ADC = ConverterSpec("sar-flash-8b-1gsps", 8, 0.78e-9, 2.55e-3, 0.002)
ANALOG_ADC = ConverterSpec("sar-5gsps", 8, 0.78e-9, 29e-3, 0.103)
ANALOG_DAC = ConverterSpec("dac-4b-10gsps", 4, 0.78e-9, 30e-3, 0.034)


class QuantizingADC:
    """Mid-tread quantizer over a configurable full-scale range."""

    def __init__(self, spec: ConverterSpec, full_scale: float) -> None:
        if full_scale <= 0:
            raise ValueError("full_scale must be positive")
        self.spec = spec
        self.full_scale = full_scale
        self.levels = (1 << spec.resolution_bits) - 1

    def convert(self, value: np.ndarray | float) -> np.ndarray:
        """Quantize ``value`` (clipped to [0, full_scale]) to integer codes."""
        v = np.clip(np.asarray(value, dtype=float), 0.0, self.full_scale)
        return np.rint(v / self.full_scale * self.levels).astype(np.int64)

    def reconstruct(self, codes: np.ndarray | int) -> np.ndarray:
        """Map integer codes back to the analog domain."""
        c = np.asarray(codes, dtype=float)
        return c / self.levels * self.full_scale


@dataclass
class AdcErrorModel:
    """Calibrated multiplicative error of the PCA's ADC (Section V-C).

    ``mape`` is the target mean absolute percentage error (paper: 1.3 %).
    :meth:`apply` perturbs values as ``v * (1 + eps)`` with
    ``eps ~ N(0, sigma)``, ``sigma = mape * sqrt(pi/2)``, then rounds back
    to integers (VDP results are integer counts of ones).
    """

    mape: float = 0.013
    seed: int | None = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.mape < 1.0):
            raise ValueError(f"mape must be in [0, 1), got {self.mape}")
        self._rng = make_rng(self.seed)

    @property
    def sigma(self) -> float:
        return self.mape * math.sqrt(math.pi / 2.0)

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Perturb integer VDP results with the calibrated relative error."""
        v = np.asarray(values, dtype=float)
        if self.mape == 0.0:
            return np.rint(v).astype(np.int64)
        eps = self._rng.normal(0.0, self.sigma, size=v.shape)
        return np.rint(v * (1.0 + eps)).astype(np.int64)

    def measured_mape(self, n_samples: int = 200_000, magnitude: float = 1e4) -> float:
        """Monte-Carlo estimate of the realised MAPE (for calibration tests)."""
        rng = make_rng(0 if self.seed is None else self.seed + 1)
        truth = rng.uniform(magnitude / 2, magnitude, size=n_samples)
        noisy = truth * (1.0 + rng.normal(0.0, self.sigma, size=n_samples))
        return float(np.mean(np.abs(noisy - truth) / truth))
