"""Optical link budget and maximum-VDPE-size solver (paper Eq. 4).

Paper Eq. 4 balances, per wavelength, the laser power against every loss
between a laser diode and the summation photodetector, requiring that the
power arriving at the PD clears its sensitivity ``P_PD-opt``.  We express
the budget in the dB domain as a list of *named* loss terms so tests and
documentation can audit each contribution:

``P_laser(dBm) - sum(losses dB) >= P_PD-opt(dBm)``

Three waveguide organisations are modelled:

* ``sconna``  - laser -> mux -> 1xM split -> N-OSM cascade -> filter MRR
  bank -> PCA  (Fig. 4(a));
* ``amm``     - Aggregation, Modulation(DIV), Modulation(DKV): light
  traverses *two* N-element MRR modulation arrays after the split
  (Fig. 2(a));
* ``mam``     - Modulation(DIV), Aggregation, Modulation(DKV): one shared
  modulator before aggregation, then one N-element array (Fig. 2(b)).

The max-N solver walks N upward until the budget no longer closes; all
loss terms grow monotonically with N, so the first failure is final
(a property locked by ``tests/test_link_budget.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal

from repro.photonics.waveguide import (
    PassiveLossParams,
    cascade_passby_loss_db,
    propagation_loss_db,
    splitter_loss_db,
)

Organization = Literal["sconna", "amm", "mam"]


@dataclass(frozen=True)
class LossTerm:
    """One labelled contribution to the link budget."""

    name: str
    loss_db: float

    def __post_init__(self) -> None:
        if self.loss_db < 0:
            raise ValueError(f"loss term {self.name!r} is negative: {self.loss_db}")


@dataclass
class LinkBudget:
    """A fully-enumerated optical power budget for one wavelength path."""

    laser_power_dbm: float
    terms: list[LossTerm] = field(default_factory=list)

    @property
    def total_loss_db(self) -> float:
        return sum(t.loss_db for t in self.terms)

    @property
    def received_power_dbm(self) -> float:
        return self.laser_power_dbm - self.total_loss_db

    def margin_db(self, sensitivity_dbm: float) -> float:
        """Positive margin means the budget closes."""
        return self.received_power_dbm - sensitivity_dbm

    def closes(self, sensitivity_dbm: float) -> bool:
        return self.margin_db(sensitivity_dbm) >= 0.0

    def describe(self) -> str:
        lines = [f"laser:       {self.laser_power_dbm:+.2f} dBm"]
        for t in self.terms:
            lines.append(f"  -{t.loss_db:6.3f} dB  {t.name}")
        lines.append(f"received:    {self.received_power_dbm:+.2f} dBm")
        return "\n".join(lines)


def sconna_vdpc_budget(
    n: int,
    m: int,
    laser_power_dbm: float = 10.0,
    params: PassiveLossParams | None = None,
) -> LinkBudget:
    """Budget for one wavelength through a SCONNA VDPC (Fig. 4(a)).

    Each wavelength is modulated by exactly one OSM in the N-long cascade
    (``IL_OSM``), passes the other ``N-1`` off resonance (``OBL_OSM``),
    is dropped by one filter MRR (``IL_MRR``) after skirting ``N-1``
    others (``OBL_MRR``), and propagates along ``N`` OSM pitches of
    waveguide.
    """
    if params is None:
        params = PassiveLossParams()
    if n < 1 or m < 1:
        raise ValueError("n and m must be >= 1")
    terms = [
        LossTerm("single-mode fibre (IL_SMF)", params.il_smf_db),
        LossTerm("fibre-to-chip coupling (IL_EC)", params.il_coupling_db),
        LossTerm(f"1x{m} splitter", splitter_loss_db(m, params)),
        LossTerm(
            f"waveguide {n * params.osm_pitch_mm:.2f} mm",
            propagation_loss_db(n * params.osm_pitch_mm, params),
        ),
        LossTerm("active OSM insertion (IL_OSM)", params.il_osm_db),
        LossTerm(
            f"{n - 1} off-resonance OSMs (OBL_OSM)",
            cascade_passby_loss_db(n, params.obl_osm_db),
        ),
        LossTerm("filter MRR drop (IL_MRR)", params.il_mrr_db),
        LossTerm(
            f"{n - 1} off-resonance filter MRRs (OBL_MRR)",
            cascade_passby_loss_db(n, params.obl_mrr_db),
        ),
        LossTerm("network penalty (IL_penalty)", params.il_penalty_db),
    ]
    return LinkBudget(laser_power_dbm, terms)


def analog_vdpc_budget(
    organization: Literal["amm", "mam"],
    n: int,
    m: int,
    laser_power_dbm: float = 10.0,
    params: PassiveLossParams | None = None,
    il_modulator_db: float = 4.0,
) -> LinkBudget:
    """Budget for one wavelength through an analog AMM or MAM VDPC.

    AMM: split first, then *two* N-element modulation arrays per arm
    (DIV block and DKV block) - two active insertions and two pass-by
    cascades.  MAM: one dedicated modulator per wavelength *before*
    aggregation (active insertion but no cascade), then the DKV array.
    This is why MAM supports a larger N than AMM in Table I.
    """
    if params is None:
        params = PassiveLossParams()
    if organization not in ("amm", "mam"):
        raise ValueError(f"unknown analog organization {organization!r}")
    if n < 1 or m < 1:
        raise ValueError("n and m must be >= 1")

    terms = [
        LossTerm("single-mode fibre (IL_SMF)", params.il_smf_db),
        LossTerm("fibre-to-chip coupling (IL_EC)", params.il_coupling_db),
        LossTerm(f"1x{m} splitter", splitter_loss_db(m, params)),
        LossTerm(
            f"waveguide {n * params.osm_pitch_mm:.2f} mm",
            propagation_loss_db(n * params.osm_pitch_mm, params),
        ),
        LossTerm("network penalty (IL_penalty)", params.il_penalty_db),
    ]
    if organization == "amm":
        terms += [
            LossTerm("DIV modulator array insertion", il_modulator_db),
            LossTerm(
                f"{n - 1} off-resonance DIV MRRs",
                cascade_passby_loss_db(n, params.obl_mrr_db),
            ),
            LossTerm("DKV modulator array insertion", il_modulator_db),
            LossTerm(
                f"{n - 1} off-resonance DKV MRRs",
                cascade_passby_loss_db(n, params.obl_mrr_db),
            ),
        ]
    else:  # mam
        terms += [
            LossTerm("dedicated DIV modulator insertion", il_modulator_db),
            LossTerm("DKV modulator array insertion", il_modulator_db),
            LossTerm(
                f"{n - 1} off-resonance DKV MRRs",
                cascade_passby_loss_db(n, params.obl_mrr_db),
            ),
        ]
    return LinkBudget(laser_power_dbm, terms)


def solve_max_n(
    budget_fn: Callable[[int, int], LinkBudget],
    sensitivity_dbm: float,
    m_equals_n: bool = True,
    m_fixed: int | None = None,
    n_max: int = 4096,
) -> int:
    """Largest N for which ``budget_fn(N, M)`` still closes.

    ``budget_fn`` maps ``(n, m)`` to a :class:`LinkBudget`.  With
    ``m_equals_n`` (the paper's assumption M=N) the splitter loss also
    grows with N.  Returns 0 if even N=1 fails.
    """
    if m_equals_n and m_fixed is not None:
        raise ValueError("specify either m_equals_n or m_fixed, not both")

    def closes(n: int) -> bool:
        m = n if m_equals_n else (m_fixed or 1)
        return budget_fn(n, m).closes(sensitivity_dbm)

    if not closes(1):
        return 0
    lo, hi = 1, 1
    while hi < n_max and closes(hi):
        lo, hi = hi, min(hi * 2, n_max)
    if closes(hi):
        return hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if closes(mid):
            lo = mid
        else:
            hi = mid
    return lo
