"""Passive photonic component losses (Table III of the paper).

All values are expressed in dB so they can be summed directly by the
link-budget solver.  Conventions:

* *Insertion loss* (IL) terms are incurred once per traversal.
* *Out-of-band loss* (OBL) terms are incurred once per **off-resonance**
  device the light passes (an N-element OSM cascade costs
  ``(N-1) * OBL_OSM`` because each wavelength is processed by exactly one
  OSM and skirts past the other N-1).
* The 1xM splitter costs the intrinsic ``10 log10(M)`` power division
  plus ``EL_splitter`` of excess loss per binary stage (``log2 M``
  stages).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PassiveLossParams:
    """Table III passive-loss parameters (all dB unless noted)."""

    il_smf_db: float = 0.0               #: single-mode fibre insertion loss
    il_coupling_db: float = 1.6          #: fibre-to-chip coupling (IL_EC)
    il_waveguide_db_per_mm: float = 0.3  #: silicon waveguide propagation
    el_splitter_db: float = 0.01         #: splitter excess loss per stage
    il_osm_db: float = 4.0               #: active OSM insertion loss
    obl_osm_db: float = 0.01             #: off-resonance OSM pass-by loss
    il_mrr_db: float = 0.01              #: filter MRR drop loss
    obl_mrr_db: float = 0.01             #: off-resonance filter MRR loss
    il_penalty_db: float = 7.3           #: network penalty (crosstalk, truncation)
    osm_pitch_mm: float = 0.020          #: gap between adjacent OSMs (20 um)


def splitter_loss_db(m_ways: int, params: PassiveLossParams) -> float:
    """Total 1xM splitter loss: intrinsic division + per-stage excess."""
    if m_ways < 1:
        raise ValueError("m_ways must be >= 1")
    if m_ways == 1:
        return 0.0
    stages = math.log2(m_ways)
    return 10.0 * math.log10(m_ways) + params.el_splitter_db * stages


def propagation_loss_db(length_mm: float, params: PassiveLossParams) -> float:
    """Straight waveguide propagation loss over ``length_mm``."""
    if length_mm < 0:
        raise ValueError("length_mm cannot be negative")
    return params.il_waveguide_db_per_mm * length_mm


def cascade_passby_loss_db(
    n_devices: int, obl_db: float
) -> float:
    """Loss from skirting past ``n_devices - 1`` off-resonance devices."""
    if n_devices < 1:
        raise ValueError("n_devices must be >= 1")
    return (n_devices - 1) * obl_db
