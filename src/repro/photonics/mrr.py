"""Add-drop microring resonator (MRR) device model.

The paper models its Optical AND Gate (OAG) and filter MRRs with
Ansys/Lumerical; here we use the standard first-order (single-resonance)
model of an add-drop ring, which captures everything the paper's analyses
depend on:

* a Lorentzian drop-port passband of width ``FWHM`` centred on the ring
  resonance (Fig. 6(b) of the paper),
* a free spectral range (``FSR``) that bounds how many DWDM channels one
  ring cascade can address (Section V-B uses FSR = 50 nm and 0.25 nm
  channel spacing, i.e. 200 theoretical channels),
* resonance tuning: a slow *thermal* shift (integrated micro-heater, used
  to program the operand-independent position ``eta``) plus fast
  *electro-refractive* shifts from the embedded PN junctions (the operand
  terminals), and
* a photon-lifetime time constant that low-passes fast modulation - the
  physical origin of the bitrate/FWHM trade-off reproduced in Fig. 7(a).

All wavelengths are expressed in nanometres relative to the C band centre
(1550 nm) unless noted otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.utils.constants import C_BAND_CENTER_M, SPEED_OF_LIGHT


@dataclass
class MicroringResonator:
    """First-order add-drop microring resonator.

    Parameters
    ----------
    resonance_nm:
        Fabrication-defined cold resonance wavelength (absolute, nm).
        The paper calls this position ``gamma``.
    fwhm_nm:
        Full passband width at half maximum of the drop-port Lorentzian.
    fsr_nm:
        Free spectral range. Only the resonance nearest to the probe
        wavelength matters for transmission; the FSR bounds the DWDM
        channel count (``fsr_nm / channel_spacing_nm``).
    drop_loss_db:
        On-resonance drop-port insertion loss (``IL_MRR`` in Table III).
    through_floor_db:
        Residual through-port extinction on resonance; off resonance the
        through port transmits ``1 - drop`` minus this floor.
    thermal_shift_nm:
        Current heater-programmed shift added to the cold resonance (the
        programmed position ``eta`` = ``gamma`` + ``thermal_shift_nm``).
    junction_shift_nm:
        Electro-refractive blue/red shift contributed by *one* PN-junction
        operand terminal driven to logic '1'.  Both OAG terminals use the
        same magnitude.
    """

    resonance_nm: float = 1550.0
    fwhm_nm: float = 0.8
    fsr_nm: float = 50.0
    drop_loss_db: float = 0.01
    through_floor_db: float = 25.0
    thermal_shift_nm: float = 0.0
    junction_shift_nm: float = 0.4
    _peak_drop: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.fwhm_nm <= 0:
            raise ValueError(f"fwhm_nm must be positive, got {self.fwhm_nm}")
        if self.fsr_nm <= 0:
            raise ValueError(f"fsr_nm must be positive, got {self.fsr_nm}")
        if self.fwhm_nm >= self.fsr_nm:
            raise ValueError("fwhm_nm must be smaller than fsr_nm")
        self._peak_drop = 10.0 ** (-self.drop_loss_db / 10.0)

    # ------------------------------------------------------------------
    # static spectral response
    # ------------------------------------------------------------------
    @property
    def effective_resonance_nm(self) -> float:
        """Programmed resonance position ``eta`` (cold + thermal shift)."""
        return self.resonance_nm + self.thermal_shift_nm

    @property
    def quality_factor(self) -> float:
        """Loaded Q = lambda / FWHM."""
        return self.effective_resonance_nm / self.fwhm_nm

    @property
    def photon_lifetime_s(self) -> float:
        """Cavity photon lifetime tau_p = lambda^2 / (2 pi c FWHM).

        This is the time constant with which the drop-port power responds
        to a resonance jump; it sets the intrinsic modulation bandwidth of
        the ring (narrower linewidth -> longer lifetime -> slower ring).
        """
        lam = self.effective_resonance_nm * 1e-9
        fwhm = self.fwhm_nm * 1e-9
        return lam * lam / (2.0 * math.pi * SPEED_OF_LIGHT * fwhm)

    @property
    def optical_bandwidth_hz(self) -> float:
        """Ring 3-dB optical bandwidth in Hz (c * FWHM / lambda^2)."""
        lam = self.effective_resonance_nm * 1e-9
        return SPEED_OF_LIGHT * (self.fwhm_nm * 1e-9) / (lam * lam)

    def _wrapped_detuning_nm(self, wavelength_nm: np.ndarray | float) -> np.ndarray:
        """Detuning to the *nearest* resonance, folding by the FSR."""
        det = np.asarray(wavelength_nm, dtype=float) - self.effective_resonance_nm
        half = self.fsr_nm / 2.0
        return (det + half) % self.fsr_nm - half

    def drop_transmission(
        self,
        wavelength_nm: np.ndarray | float,
        extra_shift_nm: float = 0.0,
    ) -> np.ndarray:
        """Drop-port power transmission (linear, 0..1) at ``wavelength_nm``.

        ``extra_shift_nm`` adds a fast (electro-refractive) displacement of
        the resonance on top of the programmed position - used by the OAG
        to move the passband with the operand bits.
        """
        det = self._wrapped_detuning_nm(
            np.asarray(wavelength_nm, dtype=float) - extra_shift_nm
        )
        half_width = self.fwhm_nm / 2.0
        lorentz = 1.0 / (1.0 + (det / half_width) ** 2)
        return self._peak_drop * lorentz

    def through_transmission(
        self,
        wavelength_nm: np.ndarray | float,
        extra_shift_nm: float = 0.0,
    ) -> np.ndarray:
        """Through-port power transmission (energy-complement with a floor)."""
        drop = self.drop_transmission(wavelength_nm, extra_shift_nm)
        floor = 10.0 ** (-self.through_floor_db / 10.0)
        return np.maximum(1.0 - drop / self._peak_drop, floor)

    # ------------------------------------------------------------------
    # tuning helpers
    # ------------------------------------------------------------------
    def program_to(self, target_resonance_nm: float) -> None:
        """Thermally tune the ring so its resonance sits at ``target``.

        Models the integrated micro-heater moving the passband from the
        fabrication-defined position ``gamma`` to the programmed position
        ``eta`` (paper Fig. 6(b)).
        """
        self.thermal_shift_nm = target_resonance_nm - self.resonance_nm

    def operand_shift_nm(self, bits_high: int) -> float:
        """Total electro-refractive shift for ``bits_high`` active junctions."""
        if bits_high not in (0, 1, 2):
            raise ValueError(f"bits_high must be 0, 1 or 2, got {bits_high}")
        return self.junction_shift_nm * bits_high


def max_dwdm_channels(fsr_nm: float, channel_spacing_nm: float) -> int:
    """Theoretical DWDM channel count one ring cascade can serve.

    Section V-B: FSR = 50 nm with 0.25 nm spacing allows N = 200
    theoretical channels, before power-budget effects shrink it to 176.
    """
    if channel_spacing_nm <= 0:
        raise ValueError("channel_spacing_nm must be positive")
    return int(fsr_nm / channel_spacing_nm)
