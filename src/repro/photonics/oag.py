"""Optical AND Gate (OAG): the photonic heart of the OSM (paper Section IV-B).

The OAG is a single add-drop MRR with **two embedded PN-junction operand
terminals**.  The micro-heater programs the operand-independent resonance
to a position ``eta`` that is *two* junction-shifts away from the input
wavelength ``lambda_in``; each operand bit at logic '1' electro-
refractively moves the passband one junction-shift towards ``lambda_in``.
Consequently only the ``(I, W) = (1, 1)`` combination parks the passband
on ``lambda_in`` and lights up the drop port - a bit-wise logical AND of
the two electrical streams, computed in the optical domain:

==============  ==========================  =================
operand (I, W)  resonance offset from       drop transmission
                ``lambda_in``
==============  ==========================  =================
(0, 0)          2 x junction shift           ~0 (far off)
(0, 1), (1, 0)  1 x junction shift           low (skirt)
(1, 1)          0                            ~1 (on resonance)
==============  ==========================  =================

The module provides:

* :class:`OpticalAndGate` - static truth-table evaluation plus a
  time-domain transient simulation (reproduces paper Fig. 6(c), which the
  authors obtained from Lumerical INTERCONNECT),
* :func:`oma_at_bitrate` / :func:`max_bitrate_for_fwhm` - the optical
  modulation amplitude (OMA) analysis behind paper Fig. 7(a): the highest
  bitrate at which the worst-case eye still clears the PCA photodetector
  sensitivity, as a function of ring FWHM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.photonics.mrr import MicroringResonator
from repro.utils.rng import make_rng
from repro.utils.units import dbm_to_watts, watts_to_dbm


@dataclass
class OAGTimingModel:
    """Electrical/optical time constants limiting OAG modulation speed.

    ``driver_tau_s`` models the PN-junction + driver RC pole; the photon
    lifetime of the ring is added on top (scaled by ``cavity_settle_factor``
    because settling to within an LSB of the final level takes several
    photon lifetimes).  Defaults are calibrated so the Fig. 7(a) curve
    saturates at ~40 Gb/s for FWHM ~0.8 nm, as reported by the paper.
    """

    driver_tau_s: float = 8e-12
    cavity_settle_factor: float = 17.0
    max_driver_bitrate_hz: float = 40e9

    def effective_tau_s(self, ring: MicroringResonator) -> float:
        return self.driver_tau_s + self.cavity_settle_factor * ring.photon_lifetime_s


@dataclass
class OpticalAndGate:
    """Add-drop MRR with two operand junctions acting as an optical AND.

    Parameters
    ----------
    ring:
        Underlying microring.  Its heater is (re)programmed at
        construction so the gate is aligned to ``input_wavelength_nm``.
    input_wavelength_nm:
        The DWDM channel ``lambda_in`` this gate operates on.
    input_power_dbm:
        Optical power of that channel arriving at the gate input.
    timing:
        Modulation-speed model (see :class:`OAGTimingModel`).
    """

    ring: MicroringResonator = field(default_factory=MicroringResonator)
    input_wavelength_nm: float = 1550.0
    input_power_dbm: float = 0.0
    timing: OAGTimingModel = field(default_factory=OAGTimingModel)

    def __post_init__(self) -> None:
        # Park the programmed resonance two junction-shifts below the
        # input channel so that only (1,1) reaches resonance.
        self.ring.program_to(
            self.input_wavelength_nm - 2.0 * self.ring.junction_shift_nm
        )

    @classmethod
    def sconna_operating_point(
        cls, input_wavelength_nm: float = 1550.0, input_power_dbm: float = 0.0
    ) -> "OpticalAndGate":
        """Gate configured at SCONNA's Section V-B design point.

        FWHM = 0.6 nm supports BR = 30 Gb/s under the Fig. 7(a) analysis
        (the paper operates conservatively at 30 Gb/s for FWHM <= 0.8 nm);
        a 0.75 nm junction shift gives > 7 dB of static extinction between
        the (1,1) level and the worst single-operand '0'.
        """
        ring = MicroringResonator(
            resonance_nm=input_wavelength_nm,
            fwhm_nm=0.6,
            junction_shift_nm=0.75,
        )
        return cls(
            ring=ring,
            input_wavelength_nm=input_wavelength_nm,
            input_power_dbm=input_power_dbm,
        )

    # ------------------------------------------------------------------
    # static behaviour
    # ------------------------------------------------------------------
    def drop_transmission_for(self, i_bit: int, w_bit: int) -> float:
        """Linear drop-port transmission for one operand combination."""
        for name, bit in (("i_bit", i_bit), ("w_bit", w_bit)):
            if bit not in (0, 1):
                raise ValueError(f"{name} must be 0 or 1, got {bit}")
        shift = self.ring.operand_shift_nm(i_bit + w_bit)
        return float(self.ring.drop_transmission(self.input_wavelength_nm, shift))

    def truth_table(self) -> dict[tuple[int, int], float]:
        """Drop transmission for all four operand combinations."""
        return {
            (i, w): self.drop_transmission_for(i, w)
            for i in (0, 1)
            for w in (0, 1)
        }

    def static_extinction_db(self) -> float:
        """Extinction between the (1,1) level and the worst '0' level."""
        tt = self.truth_table()
        on = tt[(1, 1)]
        off = max(tt[(0, 0)], tt[(0, 1)], tt[(1, 0)])
        return 10.0 * math.log10(on / off)

    def output_power_w(self, i_bit: int, w_bit: int) -> float:
        """Static drop-port optical power [W] for one operand pair."""
        return dbm_to_watts(self.input_power_dbm) * self.drop_transmission_for(
            i_bit, w_bit
        )

    # ------------------------------------------------------------------
    # transient simulation (paper Fig. 6(c))
    # ------------------------------------------------------------------
    def transient_response(
        self,
        i_bits: np.ndarray,
        w_bits: np.ndarray,
        bitrate_hz: float,
        samples_per_bit: int = 32,
    ) -> "OAGTransient":
        """Time-domain simulation of the gate driven by two bit-streams.

        The resonance position relaxes towards the operand-driven target
        with the driver RC time constant; drop-port power additionally
        relaxes with the cavity photon lifetime.  This reproduces the
        finite rise/fall edges visible in the paper's Lumerical transient
        (Fig. 6(c)) and the eye closure used for the Fig. 7(a) analysis.
        """
        i_bits = np.asarray(i_bits, dtype=np.int64)
        w_bits = np.asarray(w_bits, dtype=np.int64)
        if i_bits.shape != w_bits.shape or i_bits.ndim != 1:
            raise ValueError("i_bits and w_bits must be equal-length 1-D arrays")
        if not np.isin(i_bits, (0, 1)).all() or not np.isin(w_bits, (0, 1)).all():
            raise ValueError("bit-streams must contain only 0/1")
        if bitrate_hz <= 0:
            raise ValueError("bitrate_hz must be positive")

        n_bits = i_bits.size
        dt = 1.0 / (bitrate_hz * samples_per_bit)
        t = np.arange(n_bits * samples_per_bit) * dt

        # Target resonance shift per sample (zero-order hold of the bits).
        shifts = self.ring.junction_shift_nm * (i_bits + w_bits).astype(float)
        target_shift = np.repeat(shifts, samples_per_bit)

        # First-order relaxation of the electro-refractive shift.
        tau_drv = self.timing.driver_tau_s
        alpha_drv = 1.0 - math.exp(-dt / tau_drv)
        shift_t = np.empty_like(target_shift)
        state = target_shift[0]
        for k in range(target_shift.size):
            state += alpha_drv * (target_shift[k] - state)
            shift_t[k] = state

        # Instantaneous spectral response (vectorised over the per-sample
        # resonance shift), then cavity low-pass.
        det = (self.input_wavelength_nm - self.ring.effective_resonance_nm) - shift_t
        half_width = self.ring.fwhm_nm / 2.0
        inst = (10.0 ** (-self.ring.drop_loss_db / 10.0)) / (
            1.0 + (det / half_width) ** 2
        )

        tau_ph = max(self.ring.photon_lifetime_s, 1e-15)
        alpha_ph = 1.0 - math.exp(-dt / tau_ph)
        out = np.empty_like(inst)
        state = inst[0]
        for k in range(inst.size):
            state += alpha_ph * (inst[k] - state)
            out[k] = state

        p_in = dbm_to_watts(self.input_power_dbm)
        tt = self.truth_table()
        return OAGTransient(
            time_s=t,
            i_bits=i_bits,
            w_bits=w_bits,
            drop_power_w=p_in * out,
            samples_per_bit=samples_per_bit,
            bitrate_hz=bitrate_hz,
            reference_on_w=p_in * tt[(1, 1)],
            reference_off_w=p_in * max(tt[(0, 0)], tt[(0, 1)], tt[(1, 0)]),
        )


@dataclass
class OAGTransient:
    """Result of :meth:`OpticalAndGate.transient_response`."""

    time_s: np.ndarray
    i_bits: np.ndarray
    w_bits: np.ndarray
    drop_power_w: np.ndarray
    samples_per_bit: int
    bitrate_hz: float
    reference_on_w: float = 1.0
    reference_off_w: float = 0.0

    def sampled_levels_w(self) -> np.ndarray:
        """Drop power sampled at the eye centre of each bit slot [W]."""
        idx = (
            np.arange(self.i_bits.size) * self.samples_per_bit
            + (3 * self.samples_per_bit) // 4
        )
        return self.drop_power_w[idx]

    def decide_bits(self, threshold_w: float | None = None) -> np.ndarray:
        """Threshold the sampled levels back into logic bits.

        The default threshold is the midpoint between the gate's *static*
        on level (both operands high) and its worst static off level, so
        the decision stays well-defined even for degenerate streams
        (e.g. all output bits equal).
        """
        levels = self.sampled_levels_w()
        if threshold_w is None:
            threshold_w = 0.5 * (self.reference_on_w + self.reference_off_w)
        return (levels > threshold_w).astype(np.int64)

    def expected_bits(self) -> np.ndarray:
        return (self.i_bits & self.w_bits).astype(np.int64)

    def oma_w(self) -> float:
        """Worst-case optical modulation amplitude across the stream [W]."""
        levels = self.sampled_levels_w()
        expect = self.expected_bits().astype(bool)
        if not expect.any() or expect.all():
            raise ValueError("stream must contain both 0 and 1 output bits")
        return float(levels[expect].min() - levels[~expect].max())


def random_prbs(n_bits: int, seed: int | None = None, density: float = 0.5) -> np.ndarray:
    """Pseudo-random binary stream used for the transient validation."""
    rng = make_rng(seed)
    return (rng.random(n_bits) < density).astype(np.int64)


# ----------------------------------------------------------------------
# OMA analysis (paper Fig. 7(a))
# ----------------------------------------------------------------------
def oma_at_bitrate(
    fwhm_nm: float,
    bitrate_hz: float,
    input_power_dbm: float = 0.0,
    junction_shift_nm: float = 0.4,
    timing: OAGTimingModel | None = None,
) -> float:
    """Worst-case OMA [dBm] of an OAG at a given bitrate and linewidth.

    Closed-form eye model: with static '1' level ``T1`` and worst static
    '0' level ``T0`` (single-operand detuning), a one-bit transition only
    reaches within ``exp(-T_bit/tau)`` of its target, so

    ``OMA = P_in * (T1 - T0) * (1 - 2*exp(-T_bit / tau))``.

    ``tau`` combines the driver RC pole and the cavity photon lifetime;
    wider FWHM shortens the photon lifetime (faster ring) but also raises
    ``T0`` (worse static extinction), giving the saturating trade-off of
    Fig. 7(a).
    """
    if timing is None:
        timing = OAGTimingModel()
    ring = MicroringResonator(fwhm_nm=fwhm_nm, junction_shift_nm=junction_shift_nm)
    gate = OpticalAndGate(
        ring=ring, input_power_dbm=input_power_dbm, timing=timing
    )
    tt = gate.truth_table()
    t1 = tt[(1, 1)]
    t0 = max(tt[(0, 1)], tt[(1, 0)], tt[(0, 0)])
    tau = timing.effective_tau_s(ring)
    t_bit = 1.0 / bitrate_hz
    eye = (t1 - t0) * (1.0 - 2.0 * math.exp(-t_bit / tau))
    p_in = dbm_to_watts(input_power_dbm)
    oma_w = p_in * eye
    if oma_w <= 0.0:
        return -math.inf
    return watts_to_dbm(oma_w)


def max_bitrate_for_fwhm(
    fwhm_nm: float,
    oma_floor_dbm: float = -28.0,
    input_power_dbm: float = 0.0,
    junction_shift_nm: float = 0.4,
    timing: OAGTimingModel | None = None,
    tol_hz: float = 1e7,
) -> float:
    """Highest bitrate [Hz] keeping OMA >= the PD sensitivity floor.

    Reproduces one point of paper Fig. 7(a); the curve saturates at the
    driver limit (~40 Gb/s) once the ring is fast enough (FWHM ~0.8 nm).
    Returns 0.0 if even DC operation cannot clear the floor.
    """
    if timing is None:
        timing = OAGTimingModel()
    lo, hi = 1e8, timing.max_driver_bitrate_hz
    if oma_at_bitrate(fwhm_nm, lo, input_power_dbm, junction_shift_nm, timing) < oma_floor_dbm:
        return 0.0
    if oma_at_bitrate(fwhm_nm, hi, input_power_dbm, junction_shift_nm, timing) >= oma_floor_dbm:
        return hi
    while hi - lo > tol_hz:
        mid = 0.5 * (lo + hi)
        if oma_at_bitrate(fwhm_nm, mid, input_power_dbm, junction_shift_nm, timing) >= oma_floor_dbm:
            lo = mid
        else:
            hi = mid
    return lo
