"""Photodetector and receiver-noise model (paper Eq. 3).

The summation element of every optical VDPC - and the PCA of SCONNA -
terminates in a photodetector whose noise floor determines both the
achievable bit resolution (Eq. 2) and the optical power each wavelength
must deliver (Eq. 4).  Paper Eq. 3 defines the input-referred noise
current spectral density:

``beta = sqrt( 2 q (R P + I_d)  +  4 k T / R_L  +  R^2 P^2 RIN )``

with the three familiar contributions: shot noise of photo + dark
current, thermal (Johnson) noise of the load, and laser relative
intensity noise.  ``beta`` has units A/sqrt(Hz); multiplying by the
square root of the receiver bandwidth (DR/2 for NRZ at data rate DR)
yields the RMS noise current.

Default parameter values are Table III of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.constants import BOLTZMANN, ELEMENTARY_CHARGE
from repro.utils.units import dbm_to_watts


@dataclass(frozen=True)
class PhotodetectorParams:
    """Receiver parameters (Table III defaults).

    Attributes
    ----------
    responsivity_a_per_w:
        ``R_PD`` - photocurrent per optical watt [A/W].
    load_resistance_ohm:
        ``R_L`` - transimpedance / load resistance [ohm].
    dark_current_a:
        ``I_d`` - dark current [A].
    temperature_k:
        ``T`` - absolute temperature [K].
    rin_db_per_hz:
        Laser relative intensity noise [dB/Hz] (negative number).
    """

    responsivity_a_per_w: float = 1.2
    load_resistance_ohm: float = 50.0
    dark_current_a: float = 35e-9
    temperature_k: float = 300.0
    rin_db_per_hz: float = -140.0

    @property
    def rin_linear_per_hz(self) -> float:
        return 10.0 ** (self.rin_db_per_hz / 10.0)


def photocurrent_a(optical_power_w: float, params: PhotodetectorParams) -> float:
    """Mean photocurrent for a given incident optical power."""
    if optical_power_w < 0:
        raise ValueError("optical power cannot be negative")
    return params.responsivity_a_per_w * optical_power_w


def noise_spectral_density_a_per_rthz(
    optical_power_w: float, params: PhotodetectorParams
) -> float:
    """Paper Eq. 3: input-referred noise density ``beta`` [A/sqrt(Hz)]."""
    if optical_power_w < 0:
        raise ValueError("optical power cannot be negative")
    r = params.responsivity_a_per_w
    shot = 2.0 * ELEMENTARY_CHARGE * (r * optical_power_w + params.dark_current_a)
    thermal = 4.0 * BOLTZMANN * params.temperature_k / params.load_resistance_ohm
    rin = (r * optical_power_w) ** 2 * params.rin_linear_per_hz
    return math.sqrt(shot + thermal + rin)


def rms_noise_current_a(
    optical_power_w: float, data_rate_hz: float, params: PhotodetectorParams
) -> float:
    """RMS noise current over an NRZ receiver bandwidth of ``DR/2``."""
    if data_rate_hz <= 0:
        raise ValueError("data_rate_hz must be positive")
    beta = noise_spectral_density_a_per_rthz(optical_power_w, params)
    return beta * math.sqrt(data_rate_hz / 2.0)


def snr_db(
    optical_power_w: float, data_rate_hz: float, params: PhotodetectorParams
) -> float:
    """Electrical SNR (20 log10 of current ratio) at the receiver."""
    signal = photocurrent_a(optical_power_w, params)
    noise = rms_noise_current_a(optical_power_w, data_rate_hz, params)
    if signal <= 0:
        return -math.inf
    return 20.0 * math.log10(signal / noise)


def bit_resolution(
    optical_power_dbm: float, data_rate_hz: float, params: PhotodetectorParams
) -> float:
    """Paper Eq. 2: achievable bit resolution ``B_Res`` at the receiver.

    ``B_Res = (20 log10( R * P / (beta * sqrt(DR/2)) ) - 1.76) / 6.02``

    - the ENOB form of the SNR: every 6.02 dB of electrical SNR buys one
    bit of resolution on the summed analog levels.
    """
    p_w = dbm_to_watts(optical_power_dbm)
    return (snr_db(p_w, data_rate_hz, params) - 1.76) / 6.02
