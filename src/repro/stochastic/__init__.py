"""Stochastic-computing substrate for SCONNA.

Implements unipolar stochastic numbers, the generator schemes whose
pairings make AND-gate multiplication exact, the OSM lookup table, SC
arithmetic in both bit-true and count domains, correlation metrics and
the end-to-end error model.
"""

from repro.stochastic.bitstream import Bitstream, stream_length_for_precision
from repro.stochastic.sng import (
    DETERMINISTIC_SNGS,
    bernoulli_stream,
    bresenham_spread,
    generate_pair,
    lfsr_sequence,
    lfsr_stream,
    unary_prefix,
    van_der_corput_stream,
)
from repro.stochastic.correlation import (
    and_multiplication_error,
    mean_pairwise_error,
    scc,
)
from repro.stochastic.arithmetic import (
    exact_sc_product,
    sc_products,
    sc_vdp,
    sc_vdp_batch,
    sc_vdp_bit_true,
    sc_vdp_relative_error,
    stochastic_multiply,
    unscaled_add,
)
from repro.stochastic.lut import OsmLookupTable, lut_storage_report
from repro.stochastic.error_models import (
    MonteCarloErrorStats,
    SconnaErrorModel,
    measure_vdp_error,
)

__all__ = [
    "Bitstream",
    "stream_length_for_precision",
    "DETERMINISTIC_SNGS",
    "bernoulli_stream",
    "bresenham_spread",
    "generate_pair",
    "lfsr_sequence",
    "lfsr_stream",
    "unary_prefix",
    "van_der_corput_stream",
    "and_multiplication_error",
    "mean_pairwise_error",
    "scc",
    "exact_sc_product",
    "sc_products",
    "sc_vdp",
    "sc_vdp_batch",
    "sc_vdp_bit_true",
    "sc_vdp_relative_error",
    "stochastic_multiply",
    "unscaled_add",
    "OsmLookupTable",
    "lut_storage_report",
    "MonteCarloErrorStats",
    "SconnaErrorModel",
    "measure_vdp_error",
]
