"""Stochastic-computing arithmetic: multiplication and unscaled addition.

Two equivalent views are provided and proved interchangeable by the
property tests:

* **bit-true**: materialise streams, AND them, count ones - what the
  optical hardware physically does (OSM -> PCA);
* **count-domain**: the closed-form result of the bit-true path under
  SCONNA's unary/Bresenham LUT pairing, ``floor(ib * wb / 2**B)`` per
  product, summed by the PCA.  The CNN-scale functional simulations use
  this path (vectorised NumPy) - materialising 256-bit streams for every
  MAC of ResNet-50 would be astronomically slower for an identical
  result.

Sign handling follows the paper's VDPE: the weight carries a sign bit
that steers the AND-product stream to the positive (OWA) or negative
(OWA') accumulation waveguide; the two PCA counts are subtracted in the
electrical domain.  RELU-activated inputs are non-negative by
construction (Section IV-A).
"""

from __future__ import annotations

import numpy as np

from repro.stochastic.bitstream import Bitstream
from repro.stochastic.sng import generate_pair


def stochastic_multiply(i_stream: Bitstream, w_stream: Bitstream) -> Bitstream:
    """AND-gate multiplication of two unipolar streams (paper Fig. 3)."""
    return i_stream & w_stream


def unscaled_add(streams: "list[Bitstream]") -> int:
    """Unipolar unscaled addition: total ones across all streams.

    This is precisely what the PCA's photodetector computes when the N
    product streams of a VDPE land on it (paper Section IV-C, citing
    uGEMM's unscaled addition).
    """
    if not streams:
        raise ValueError("streams must be non-empty")
    length = len(streams[0])
    if any(len(s) != length for s in streams):
        raise ValueError("all streams must share one length")
    return int(sum(s.popcount for s in streams))


def exact_sc_product(ib: int, wb: int, precision_bits: int) -> int:
    """Count-domain result of one OSM under the LUT pairing.

    ``floor(ib * wb / 2**B)`` - the floor is the only deviation from the
    ideal integer product, worth at most one count (< 0.4 % of full
    scale at B = 8).
    """
    length = 1 << precision_bits
    _check_operand(ib, length)
    _check_operand(wb, length)
    return (ib * wb) >> precision_bits


def sc_products(
    i_values: np.ndarray, w_values: np.ndarray, precision_bits: int
) -> np.ndarray:
    """Vectorised count-domain products ``floor(i * w / 2**B)``.

    ``w_values`` may be signed: the sign is pulled out, the magnitude is
    multiplied stochastically, and the sign is re-applied - mirroring the
    sign-bit steering of the VDPE's filter MRRs.  Accepts arrays of any
    (broadcastable) shape.  Dtype discipline: products need ``2B + 1``
    bits, so int32 is used whenever it fits and int64 only beyond B = 15.
    """
    # validate at full width first - narrowing before the range check
    # would let out-of-range values wrap silently past it
    i_arr = np.asarray(i_values, dtype=np.int64)
    w_arr = np.asarray(w_values, dtype=np.int64)
    length = 1 << precision_bits
    if (i_arr < 0).any() or (i_arr > length).any():
        raise ValueError(f"input values must lie in [0, {length}]")
    if (np.abs(w_arr) > length).any():
        raise ValueError(f"|weight| values must lie in [0, {length}]")
    if 2 * precision_bits + 1 < 32:
        i_arr = i_arr.astype(np.int32)
        w_arr = w_arr.astype(np.int32)
    sign = np.sign(w_arr)
    mags = (i_arr * np.abs(w_arr)) >> precision_bits
    return sign * mags


def sc_vdp_batch(
    i_values: np.ndarray,
    w_values: np.ndarray,
    precision_bits: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched signed VDPs: contract the last axis of ``(..., S)`` inputs.

    Returns int64 ``(positive_counts, negative_counts)`` arrays of the
    leading shape - one (OWA, OWA') pair per vector.  This is the
    vectorized workhorse behind :func:`sc_vdp`, the VDPE's multi-piece
    accumulation, and the Monte-Carlo error harness.
    """
    prods = sc_products(i_values, w_values, precision_bits)
    positive = np.where(prods > 0, prods, 0).sum(axis=-1, dtype=np.int64)
    negative = -np.where(prods < 0, prods, 0).sum(axis=-1, dtype=np.int64)
    return positive, negative


def sc_vdp(
    i_values: np.ndarray,
    w_values: np.ndarray,
    precision_bits: int,
) -> tuple[int, int]:
    """Signed vector dot product through the SCONNA pipeline (count domain).

    Returns ``(positive_count, negative_count)`` - the two PCA
    accumulations of a VDPE (OWA and OWA' of Fig. 4(a)).  The signed VDP
    result is their difference.  Multi-dimensional inputs are flattened
    and contribute to one total, as before the batched rewrite.
    """
    positive, negative = sc_vdp_batch(
        np.ravel(i_values), np.ravel(w_values), precision_bits
    )
    return int(positive), int(negative)


def sc_vdp_bit_true(
    i_values: "list[int] | np.ndarray",
    w_values: "list[int] | np.ndarray",
    precision_bits: int,
    scheme: str = "unary-bresenham",
) -> tuple[int, int]:
    """Bit-true VDP: materialise every stream, AND, count, sign-steer.

    Slow (used by tests and small demos); equals :func:`sc_vdp` under the
    default scheme.
    """
    length = 1 << precision_bits
    positive = 0
    negative = 0
    for ib, wb in zip(i_values, w_values, strict=True):
        _check_operand(int(ib), length)
        if abs(int(wb)) > length:
            raise ValueError(f"|weight| {wb} out of range [0, {length}]")
        i_s, w_s = generate_pair(int(ib), abs(int(wb)), length, scheme)
        count = stochastic_multiply(i_s, w_s).popcount
        if wb < 0:
            negative += count
        else:
            positive += count
    return positive, negative


def sc_vdp_relative_error(
    i_values: np.ndarray, w_values: np.ndarray, precision_bits: int
) -> float:
    """Relative error of the SC VDP against the exact integer VDP."""
    i_arr = np.asarray(i_values, dtype=np.int64)
    w_arr = np.asarray(w_values, dtype=np.int64)
    exact = int(np.dot(i_arr, w_arr))
    pos, neg = sc_vdp(i_arr, w_arr, precision_bits)
    measured = (pos - neg) * (1 << precision_bits)
    if exact == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - exact) / abs(exact)


def _check_operand(value: int, length: int) -> None:
    if not (0 <= value <= length):
        raise ValueError(f"operand {value} out of range [0, {length}]")
