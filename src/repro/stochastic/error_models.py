"""End-to-end error model of the SCONNA compute pipeline.

The stochastic datapath has three error sources, applied to the
count-domain VDP results in this order:

1. **floor rounding** of each product (inherent to the finite stream
   length; already part of :func:`repro.stochastic.arithmetic.sc_products`),
2. **PCA analog accumulation** - ideal in the calibrated configuration
   (Fig. 7(b) shows the TIR stays linear), but optional optical *skirt
   leakage* can be enabled: sub-threshold light from single-operand '0'
   slots deposits a small fraction of charge,
3. **ADC conversion error** - 1.3 % MAPE (Section V-C), modelled by
   :class:`repro.photonics.converters.AdcErrorModel`.

:class:`SconnaErrorModel` bundles these into one object the CNN
inference engine can apply per layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.photonics.converters import AdcErrorModel
from repro.utils.rng import make_rng


@dataclass
class SconnaErrorModel:
    """Perturbs ideal count-domain VDP results like the hardware would.

    Parameters
    ----------
    adc_mape:
        Mean absolute percentage error of the PCA's ADC (paper: 1.3 %).
    skirt_leakage:
        Fraction of a full '1' charge deposited by each *non-product*
        slot through the OAG's Lorentzian skirt (0 disables; a realistic
        value for the 0.6 nm/0.75 nm operating point is ~0.01-0.05).
        Requires per-VDP slot statistics, so it is applied as an expected
        offset proportional to the operand activity passed in.
    seed:
        Seed for the ADC noise draw.
    """

    adc_mape: float = 0.013
    skirt_leakage: float = 0.0
    seed: int | None = None
    _adc: AdcErrorModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not (0.0 <= self.skirt_leakage < 1.0):
            raise ValueError("skirt_leakage must be in [0, 1)")
        self._adc = AdcErrorModel(mape=self.adc_mape, seed=self.seed)

    def apply_to_counts(
        self,
        counts: np.ndarray,
        skirt_slots: np.ndarray | None = None,
    ) -> np.ndarray:
        """Perturb ideal PCA counts.

        ``skirt_slots`` (same shape as ``counts``) gives, per VDP, the
        number of single-operand-'1' slots whose leakage charge lands on
        the PCA; omitted when ``skirt_leakage == 0``.
        """
        vals = np.asarray(counts, dtype=float)
        if self.skirt_leakage > 0.0:
            if skirt_slots is None:
                raise ValueError(
                    "skirt_slots required when skirt_leakage is enabled"
                )
            vals = vals + self.skirt_leakage * np.asarray(skirt_slots, dtype=float)
        return self._adc.apply(vals)

    def ideal(self) -> bool:
        return self.adc_mape == 0.0 and self.skirt_leakage == 0.0


class PerRequestErrorModels:
    """Batch-axis composite: one independent error model per request.

    The serving layer coalesces independent single-image requests into
    one engine batch, but each request must see the *same* ADC noise it
    would see served alone - otherwise results depend on which other
    requests happened to share the batch.  This wrapper carries one
    :class:`SconnaErrorModel` (or ``None`` for the ideal datapath) per
    request, plus the number of images each request contributed, and
    applies each model to its own contiguous slice of the batch axis.

    Because the engine consumes noise in a fixed per-layer, per-psum-
    group order with shapes ``(n_i, 2L, P)`` that depend only on the
    request's own image count ``n_i``, every request's RNG stream is
    identical across batch compositions: a seeded request returns
    bit-identical logits whether it runs solo or packed with strangers.
    """

    def __init__(
        self,
        models: "list[SconnaErrorModel | None]",
        sizes: "list[int] | None" = None,
    ) -> None:
        self.models = list(models)
        self.sizes = [1] * len(self.models) if sizes is None else list(sizes)
        if len(self.sizes) != len(self.models):
            raise ValueError("models/sizes length mismatch")
        if any(s < 1 for s in self.sizes):
            raise ValueError("request sizes must be >= 1")

    @property
    def n_images(self) -> int:
        return sum(self.sizes)

    def ideal(self) -> bool:
        return all(m is None or m.ideal() for m in self.models)

    def apply_to_counts(
        self,
        counts: np.ndarray,
        skirt_slots: np.ndarray | None = None,
    ) -> np.ndarray:
        vals = np.asarray(counts, dtype=float)
        if vals.shape[0] != self.n_images:
            raise ValueError(
                f"batch axis {vals.shape[0]} does not match the "
                f"{self.n_images} images of the registered requests"
            )
        out = np.empty_like(vals)
        start = 0
        for model, size in zip(self.models, self.sizes):
            sl = slice(start, start + size)
            if model is None or model.ideal():
                # counts are exact integers; rint mirrors the noisy
                # branch's integer quantization without perturbing them
                np.rint(vals[sl], out=out[sl])
            else:
                out[sl] = model.apply_to_counts(
                    vals[sl],
                    None if skirt_slots is None else skirt_slots[sl],
                )
            start += size
        return out


@dataclass
class MonteCarloErrorStats:
    """Empirical error statistics of the SC pipeline on random VDPs.

    Used by the scalability/error analysis (Section V-C) and the SNG
    ablation to quantify how each error source propagates to VDP
    results.
    """

    mean_relative_error: float
    max_relative_error: float
    mape_percent: float


def measure_vdp_error(
    vdpe_size: int,
    precision_bits: int,
    model: SconnaErrorModel,
    n_trials: int = 200,
    seed: int | None = 0,
) -> MonteCarloErrorStats:
    """Monte-Carlo error of SC VDPs versus exact integer VDPs.

    Fully batched: all trial operands are drawn in one shot, the SC
    counts come from :func:`repro.stochastic.arithmetic.sc_vdp_batch`,
    and the ADC error is applied in a single vectorized draw over the
    ``(n_trials, 2)`` count pairs.  (The batched draws consume the RNG in
    a different order than the seed's per-trial loop, so individual trial
    values differ run-to-run across engine versions while the statistics
    are unchanged.)
    """
    from repro.stochastic.arithmetic import sc_vdp_batch  # local: avoid cycle

    rng = make_rng(seed)
    length = 1 << precision_bits
    i_mat = rng.integers(0, length, size=(n_trials, vdpe_size))
    w_mat = rng.integers(-length // 2, length // 2, size=(n_trials, vdpe_size))
    # Ideal (un-floored, noiseless) accumulations in the count domain.
    prods = i_mat.astype(float) * w_mat.astype(float) / length
    ideal_pos = np.where(prods > 0, prods, 0.0).sum(axis=1)
    ideal_neg = -np.where(prods < 0, prods, 0.0).sum(axis=1)
    pos, neg = sc_vdp_batch(i_mat, w_mat, precision_bits)
    noisy = model.apply_to_counts(np.stack([pos, neg], axis=1))
    measured = noisy[:, 0].astype(float) - noisy[:, 1].astype(float)
    # Normalise by the total accumulated magnitude - the scale the
    # paper's PCA/ADC MAPE is defined over (unsigned counts) - so a
    # signed VDP that cancels to ~0 does not inflate the metric.
    denom = np.maximum(ideal_pos + ideal_neg, 1.0)
    arr = np.abs(measured - (ideal_pos - ideal_neg)) / denom
    return MonteCarloErrorStats(
        mean_relative_error=float(arr.mean()),
        max_relative_error=float(arr.max()),
        mape_percent=float(arr.mean() * 100.0),
    )
