"""End-to-end error model of the SCONNA compute pipeline.

The stochastic datapath has three error sources, applied to the
count-domain VDP results in this order:

1. **floor rounding** of each product (inherent to the finite stream
   length; already part of :func:`repro.stochastic.arithmetic.sc_products`),
2. **PCA analog accumulation** - ideal in the calibrated configuration
   (Fig. 7(b) shows the TIR stays linear), but optional optical *skirt
   leakage* can be enabled: sub-threshold light from single-operand '0'
   slots deposits a small fraction of charge,
3. **ADC conversion error** - 1.3 % MAPE (Section V-C), modelled by
   :class:`repro.photonics.converters.AdcErrorModel`.

:class:`SconnaErrorModel` bundles these into one object the CNN
inference engine can apply per layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.photonics.converters import AdcErrorModel
from repro.utils.rng import make_rng


@dataclass
class SconnaErrorModel:
    """Perturbs ideal count-domain VDP results like the hardware would.

    Parameters
    ----------
    adc_mape:
        Mean absolute percentage error of the PCA's ADC (paper: 1.3 %).
    skirt_leakage:
        Fraction of a full '1' charge deposited by each *non-product*
        slot through the OAG's Lorentzian skirt (0 disables; a realistic
        value for the 0.6 nm/0.75 nm operating point is ~0.01-0.05).
        Requires per-VDP slot statistics, so it is applied as an expected
        offset proportional to the operand activity passed in.
    seed:
        Seed for the ADC noise draw.
    """

    adc_mape: float = 0.013
    skirt_leakage: float = 0.0
    seed: int | None = None
    _adc: AdcErrorModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not (0.0 <= self.skirt_leakage < 1.0):
            raise ValueError("skirt_leakage must be in [0, 1)")
        self._adc = AdcErrorModel(mape=self.adc_mape, seed=self.seed)

    def apply_to_counts(
        self,
        counts: np.ndarray,
        skirt_slots: np.ndarray | None = None,
    ) -> np.ndarray:
        """Perturb ideal PCA counts.

        ``skirt_slots`` (same shape as ``counts``) gives, per VDP, the
        number of single-operand-'1' slots whose leakage charge lands on
        the PCA; omitted when ``skirt_leakage == 0``.
        """
        vals = np.asarray(counts, dtype=float)
        if self.skirt_leakage > 0.0:
            if skirt_slots is None:
                raise ValueError(
                    "skirt_slots required when skirt_leakage is enabled"
                )
            vals = vals + self.skirt_leakage * np.asarray(skirt_slots, dtype=float)
        return self._adc.apply(vals)

    def ideal(self) -> bool:
        return self.adc_mape == 0.0 and self.skirt_leakage == 0.0


@dataclass
class MonteCarloErrorStats:
    """Empirical error statistics of the SC pipeline on random VDPs.

    Used by the scalability/error analysis (Section V-C) and the SNG
    ablation to quantify how each error source propagates to VDP
    results.
    """

    mean_relative_error: float
    max_relative_error: float
    mape_percent: float


def measure_vdp_error(
    vdpe_size: int,
    precision_bits: int,
    model: SconnaErrorModel,
    n_trials: int = 200,
    seed: int | None = 0,
) -> MonteCarloErrorStats:
    """Monte-Carlo error of SC VDPs versus exact integer VDPs.

    Fully batched: all trial operands are drawn in one shot, the SC
    counts come from :func:`repro.stochastic.arithmetic.sc_vdp_batch`,
    and the ADC error is applied in a single vectorized draw over the
    ``(n_trials, 2)`` count pairs.  (The batched draws consume the RNG in
    a different order than the seed's per-trial loop, so individual trial
    values differ run-to-run across engine versions while the statistics
    are unchanged.)
    """
    from repro.stochastic.arithmetic import sc_vdp_batch  # local: avoid cycle

    rng = make_rng(seed)
    length = 1 << precision_bits
    i_mat = rng.integers(0, length, size=(n_trials, vdpe_size))
    w_mat = rng.integers(-length // 2, length // 2, size=(n_trials, vdpe_size))
    # Ideal (un-floored, noiseless) accumulations in the count domain.
    prods = i_mat.astype(float) * w_mat.astype(float) / length
    ideal_pos = np.where(prods > 0, prods, 0.0).sum(axis=1)
    ideal_neg = -np.where(prods < 0, prods, 0.0).sum(axis=1)
    pos, neg = sc_vdp_batch(i_mat, w_mat, precision_bits)
    noisy = model.apply_to_counts(np.stack([pos, neg], axis=1))
    measured = noisy[:, 0].astype(float) - noisy[:, 1].astype(float)
    # Normalise by the total accumulated magnitude - the scale the
    # paper's PCA/ADC MAPE is defined over (unsigned counts) - so a
    # signed VDP that cancels to ~0 does not inflate the metric.
    denom = np.maximum(ideal_pos + ideal_neg, 1.0)
    arr = np.abs(measured - (ideal_pos - ideal_neg)) / denom
    return MonteCarloErrorStats(
        mean_relative_error=float(arr.mean()),
        max_relative_error=float(arr.max()),
        mape_percent=float(arr.mean() * 100.0),
    )
