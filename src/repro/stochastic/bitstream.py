"""Unipolar stochastic number representation (paper Section II-D).

In SC's unipolar format a stochastic number (SN) is a bit-stream of
``L`` bits representing a value ``v in [0, 1]`` as ``N1 / L`` where
``N1`` is the number of ones.  SCONNA works with integer-quantized CNNs,
so values are ``B``-bit unsigned integers and streams have ``L = 2**B``
bits: integer ``k`` maps to probability ``k / 2**B``.

:class:`Bitstream` is a thin typed wrapper over a ``uint8`` 0/1 array
with the handful of operations the rest of the stack needs (popcount,
AND, packing).  The hot paths of the CNN-scale simulations never
materialise streams - they use the count-domain identities proved
equivalent in ``tests/test_sc_arithmetic.py`` - so clarity beats
micro-optimisation here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Bitstream:
    """An immutable unipolar stochastic bit-stream."""

    bits: np.ndarray

    def __post_init__(self) -> None:
        bits = np.asarray(self.bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError("a bit-stream must be 1-D")
        if bits.size == 0:
            raise ValueError("a bit-stream cannot be empty")
        if not np.isin(bits, (0, 1)).all():
            raise ValueError("bit-stream values must be 0 or 1")
        object.__setattr__(self, "bits", bits)
        self.bits.setflags(write=False)

    # -- construction --------------------------------------------------
    @classmethod
    def from_int(cls, value: int, length: int) -> "Bitstream":
        """Unary-prefix encoding: the first ``value`` bits are ones.

        This is the canonical deterministic encoding used for the OSM's
        input stream ``I`` (see :mod:`repro.stochastic.sng` for the
        complementary weight encoding).
        """
        if length <= 0:
            raise ValueError("length must be positive")
        if not (0 <= value <= length):
            raise ValueError(f"value {value} out of range [0, {length}]")
        bits = np.zeros(length, dtype=np.uint8)
        bits[:value] = 1
        return cls(bits)

    @classmethod
    def from_probability(
        cls, p: float, length: int, rng: np.random.Generator
    ) -> "Bitstream":
        """Bernoulli sampling - the textbook (noisy) SN generator."""
        if not (0.0 <= p <= 1.0):
            raise ValueError(f"probability {p} out of [0, 1]")
        return cls((rng.random(length) < p).astype(np.uint8))

    # -- observers -----------------------------------------------------
    def __len__(self) -> int:
        return int(self.bits.size)

    @property
    def popcount(self) -> int:
        """Number of ones (what the PCA physically accumulates)."""
        return int(self.bits.sum())

    @property
    def value(self) -> float:
        """Decoded unipolar value ``N1 / L``."""
        return self.popcount / len(self)

    def to_int(self, levels: int | None = None) -> int:
        """Decode back to an integer on a ``levels``-point grid."""
        if levels is None:
            levels = len(self)
        return round(self.value * levels)

    # -- operations ----------------------------------------------------
    def __and__(self, other: "Bitstream") -> "Bitstream":
        """Bit-wise AND: unipolar stochastic multiplication (Fig. 3)."""
        if len(self) != len(other):
            raise ValueError(
                f"stream lengths differ: {len(self)} vs {len(other)}"
            )
        return Bitstream(self.bits & other.bits)

    def __or__(self, other: "Bitstream") -> "Bitstream":
        if len(self) != len(other):
            raise ValueError("stream lengths differ")
        return Bitstream(self.bits | other.bits)

    def __invert__(self) -> "Bitstream":
        return Bitstream(1 - self.bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitstream):
            return NotImplemented
        return np.array_equal(self.bits, other.bits)

    def __hash__(self) -> int:  # immutable; hash the packed payload
        return hash((len(self), self.packed().tobytes()))

    def packed(self) -> np.ndarray:
        """Pack into a ``uint8`` byte array (8 bits per byte, MSB first)."""
        return np.packbits(self.bits)

    @classmethod
    def unpack(cls, data: np.ndarray, length: int) -> "Bitstream":
        """Inverse of :meth:`packed`."""
        bits = np.unpackbits(np.asarray(data, dtype=np.uint8))[:length]
        return cls(bits)


def stream_length_for_precision(precision_bits: int) -> int:
    """Stream length ``2**B`` for a ``B``-bit integer operand.

    Paper Section V-C: at B = 8 every SCONNA bit-stream has 256 bits.
    """
    if precision_bits <= 0:
        raise ValueError("precision_bits must be positive")
    return 1 << precision_bits
