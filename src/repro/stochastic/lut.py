"""The OSM lookup table (paper Section IV-B, Fig. 5).

The OSM's peripherals convert binary operands into stochastic streams by
*fetching precomputed bit-vectors from an eDRAM lookup table* rather
than running an SNG at stream rate.  The paper stores, for B-bit
precision, ``2**B`` entries of two ``2**B``-bit vectors each and indexes
them with an XOR hash ``Ib ^ Wb``.

Reproduction note: an XOR-indexed table cannot distinguish operand pairs
with equal XOR (e.g. (1,2) and (3,0) both hash to 3) whose products
differ, so a literal reading cannot return value-correct streams for all
pairs.  We therefore implement the functionally-sound variant that
matches the stated storage budget exactly: *two* ``2**B``-entry columns,
one holding the I-scheme encoding of every value (unary prefix) and one
holding the W-scheme encoding (Bresenham spread); a fetch for
``(Ib, Wb)`` reads column I at row ``Ib`` and column W at row ``Wb``.
Any (I, W) fetch then yields an uncorrelated pair whose AND-product
count is exactly ``floor(Ib*Wb/2**B)``.  The storage is the paper's
``2**B`` entries x 2 x ``2**B`` bits, and :meth:`xor_hash` documents the
paper's indexing for reference.

Table IV charges each OSM LUT 0.06 mW, 0.09 mm2 and 2 ns access latency
(eDRAM, [49]); those costs live in :mod:`repro.arch.peripherals`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stochastic.bitstream import Bitstream, stream_length_for_precision
from repro.stochastic.sng import bresenham_spread, unary_prefix


@dataclass
class OsmLookupTable:
    """Precomputed uncorrelated (I, W) stream pairs for every operand.

    Parameters
    ----------
    precision_bits:
        Operand precision ``B``; entries hold ``2**B``-bit vectors.
    """

    precision_bits: int = 8
    _i_column: np.ndarray = field(init=False, repr=False)
    _w_column: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not (1 <= self.precision_bits <= 16):
            raise ValueError("precision_bits must be in [1, 16]")
        length = self.stream_length
        # Row v of each column is the offline-generated encoding of v.
        self._i_column = np.zeros((length, length), dtype=np.uint8)
        self._w_column = np.zeros((length, length), dtype=np.uint8)
        for v in range(length):
            self._i_column[v] = unary_prefix(v, length).bits
            self._w_column[v] = bresenham_spread(v, length).bits

    # -- geometry -------------------------------------------------------
    @property
    def stream_length(self) -> int:
        return stream_length_for_precision(self.precision_bits)

    @property
    def n_entries(self) -> int:
        """Paper: ``2**B`` entries."""
        return self.stream_length

    @property
    def entry_bits(self) -> int:
        """Paper: each entry stores two ``2**B``-bit vectors."""
        return 2 * self.stream_length

    @property
    def total_storage_bits(self) -> int:
        return self.n_entries * self.entry_bits

    # -- access ---------------------------------------------------------
    def xor_hash(self, ib: int, wb: int) -> int:
        """The paper's XOR-based entry identifier ``Ib ^ Wb``."""
        self._check(ib)
        self._check(wb)
        return ib ^ wb

    def fetch(self, ib: int, wb: int) -> tuple[Bitstream, Bitstream]:
        """Fetch the uncorrelated pair for operands ``(ib, wb)``."""
        self._check(ib)
        self._check(wb)
        return Bitstream(self._i_column[ib]), Bitstream(self._w_column[wb])

    def fetch_product_count(self, ib: int, wb: int) -> int:
        """Ones in ``AND(fetch(ib, wb))`` - the OSM's multiplication."""
        i_s, w_s = self.fetch(ib, wb)
        return int((i_s.bits & w_s.bits).sum())

    def fetch_product_counts(
        self, i_values: np.ndarray, w_values: np.ndarray
    ) -> np.ndarray:
        """Array form of :meth:`fetch_product_count`.

        ``i_values`` / ``w_values`` broadcast against each other; the
        result has the broadcast shape, each element the popcount of the
        ANDed stream pair - i.e. ``floor(i * w / 2**B)`` elementwise.
        Row-gathering both LUT columns at once amortises the per-scalar
        Python overhead that made the scalar method unusable in
        benchmarks and the vectorized engine's cross-checks.
        """
        i_arr = np.asarray(i_values, dtype=np.int64)
        w_arr = np.asarray(w_values, dtype=np.int64)
        length = self.stream_length
        if i_arr.size and ((i_arr < 0).any() or (i_arr >= length).any()):
            raise ValueError(f"operands out of range [0, {length})")
        if w_arr.size and ((w_arr < 0).any() or (w_arr >= length).any()):
            raise ValueError(f"operands out of range [0, {length})")
        i_b, w_b = np.broadcast_arrays(i_arr, w_arr)
        anded = self._i_column[i_b] & self._w_column[w_b]
        return anded.sum(axis=-1, dtype=np.int64)

    def _check(self, value: int) -> None:
        if not (0 <= value < self.stream_length):
            raise ValueError(
                f"operand {value} out of range [0, {self.stream_length})"
            )


def lut_storage_report(precision_bits: int) -> dict[str, int]:
    """Storage accounting used in documentation and tests.

    For B = 8: 256 entries x 512 bits = 131072 bits = 16 KiB per OSM.
    """
    lut = OsmLookupTable(precision_bits)
    return {
        "entries": lut.n_entries,
        "bits_per_entry": lut.entry_bits,
        "total_bits": lut.total_storage_bits,
        "total_bytes": lut.total_storage_bits // 8,
    }
