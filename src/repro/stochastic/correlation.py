"""Stochastic cross-correlation (SCC) between bit-streams.

AND-gate multiplication is exact only for *uncorrelated* streams: the
marginal probability of one stream must equal its conditional
probability given the other (paper Section II-D).  The standard metric
is Alaghi & Hayes' SCC:

* ``SCC = +1`` - maximal positive correlation (AND computes ``min``),
* ``SCC =  0`` - uncorrelated (AND computes the product),
* ``SCC = -1`` - maximal negative correlation (AND computes
  ``max(p1 + p2 - 1, 0)``).

Defined from the joint one-density ``p11`` as

``SCC = (p11 - p1 p2) / (min(p1, p2) - p1 p2)``          if p11 > p1 p2
``SCC = (p11 - p1 p2) / (p1 p2 - max(p1 + p2 - 1, 0))``  otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.stochastic.bitstream import Bitstream


def scc(a: Bitstream, b: Bitstream) -> float:
    """Stochastic cross-correlation of two equal-length streams.

    Returns 0.0 for the degenerate cases where either stream is constant
    (all zeros or all ones): correlation is undefined there and AND is
    trivially exact.
    """
    if len(a) != len(b):
        raise ValueError(f"stream lengths differ: {len(a)} vs {len(b)}")
    n = len(a)
    p1 = a.popcount / n
    p2 = b.popcount / n
    p11 = int((a.bits & b.bits).sum()) / n
    independent = p1 * p2
    if p1 in (0.0, 1.0) or p2 in (0.0, 1.0):
        return 0.0
    delta = p11 - independent
    if delta > 0:
        denom = min(p1, p2) - independent
    else:
        denom = independent - max(p1 + p2 - 1.0, 0.0)
    if denom == 0.0:
        return 0.0
    return float(np.clip(delta / denom, -1.0, 1.0))


def and_multiplication_error(a: Bitstream, b: Bitstream) -> float:
    """Absolute error of AND-as-multiplication on the decoded values.

    ``| popcount(a AND b)/L - value(a) * value(b) |`` - zero iff the
    conditional-probability condition holds exactly.
    """
    if len(a) != len(b):
        raise ValueError("stream lengths differ")
    n = len(a)
    measured = int((a.bits & b.bits).sum()) / n
    return abs(measured - a.value * b.value)


def mean_pairwise_error(
    pairs: "list[tuple[Bitstream, Bitstream]]",
) -> float:
    """Mean multiplication error across a batch of stream pairs."""
    if not pairs:
        raise ValueError("pairs must be non-empty")
    return float(np.mean([and_multiplication_error(a, b) for a, b in pairs]))
