"""Stochastic number generators (SNGs).

The correctness of AND-gate multiplication hinges on how the two streams
are generated: the marginal probability of one stream must equal its
conditional probability given the other (paper Section II-D, citing
uGEMM).  The paper generates all combinations *offline* with "the
unipolar circuit from [26]" and stores them in the OSM lookup table.

We provide four generators:

``unary_prefix``
    Deterministic thermometer code - ones packed at the start.  Used for
    the input stream ``I``.
``bresenham_spread``
    Deterministic *evenly-spread* code (Euclidean-rhythm / clock-division
    encoding): the cumulative number of ones up to slot ``t`` is exactly
    ``floor(t * k / L)``.  Used for the weight stream ``W``.  Paired with
    ``unary_prefix`` it yields **exactly** ``floor(ib * wb / L)`` ones
    after AND for every operand pair - the error-free multiplication the
    paper's LUT is built to provide (proof in the module-level notes
    below, locked by property tests).
``lfsr_stream``
    Classic pseudo-random LFSR + comparator SNG - included as the noisy
    baseline the ablation study compares against.
``van_der_corput_stream``
    Low-discrepancy (bit-reversed counter) SNG - intermediate quality.

Exactness of the unary/Bresenham pairing: AND-ing a unary prefix of
``ib`` ones with a Bresenham stream of ``wb`` ones counts the Bresenham
ones falling in slots ``[0, ib)``; by construction that cumulative count
is ``floor(ib * wb / L)``.  The multiplicative error is therefore pure
floor rounding, at most one count, for *all* operand pairs.
"""

from __future__ import annotations

import numpy as np

from repro.stochastic.bitstream import Bitstream
from repro.utils.rng import make_rng


def _validate(value: int, length: int) -> None:
    if length <= 0:
        raise ValueError("length must be positive")
    if not (0 <= value <= length):
        raise ValueError(f"value {value} out of range [0, {length}]")


def unary_prefix(value: int, length: int) -> Bitstream:
    """Thermometer encoding: ones at slots ``0 .. value-1``."""
    return Bitstream.from_int(value, length)


def bresenham_spread(value: int, length: int) -> Bitstream:
    """Evenly-spread encoding with cumulative count ``floor(t*value/L)``.

    Slot ``t`` holds a one iff ``floor((t+1)*value/L) > floor(t*value/L)``.
    """
    _validate(value, length)
    t = np.arange(length + 1, dtype=np.int64)
    cum = (t * value) // length
    return Bitstream(np.diff(cum).astype(np.uint8))


def van_der_corput_stream(value: int, length: int) -> Bitstream:
    """Low-discrepancy SNG: compare value against a bit-reversed counter.

    ``length`` must be a power of two (the bit-reversal permutation needs
    a full binary counter).
    """
    _validate(value, length)
    if length & (length - 1):
        raise ValueError("length must be a power of two")
    n_bits = length.bit_length() - 1
    t = np.arange(length, dtype=np.int64)
    rev = np.zeros_like(t)
    for b in range(n_bits):
        rev |= ((t >> b) & 1) << (n_bits - 1 - b)
    return Bitstream((rev < value).astype(np.uint8))


#: maximal-length LFSR tap masks (Fibonacci form) per register width.
_LFSR_TAPS: dict[int, int] = {
    4: 0b1001,
    6: 0b100001,
    8: 0b10111000,
    10: 0b1000000100,
    12: 0b100000101001,
    16: 0b1011010000000000,
}


def lfsr_sequence(n_bits: int, seed: int = 1) -> np.ndarray:
    """Full period of a maximal-length ``n_bits`` Fibonacci LFSR.

    Returns ``2**n_bits - 1`` register states (the all-zero state is
    unreachable).  Raises for widths without a stored tap mask.
    """
    if n_bits not in _LFSR_TAPS:
        raise ValueError(
            f"no tap mask for {n_bits}-bit LFSR; available: {sorted(_LFSR_TAPS)}"
        )
    if not (1 <= seed < (1 << n_bits)):
        raise ValueError("seed must be a nonzero n_bits-wide state")
    taps = _LFSR_TAPS[n_bits]
    state = seed
    period = (1 << n_bits) - 1
    out = np.empty(period, dtype=np.int64)
    for k in range(period):
        out[k] = state
        feedback = bin(state & taps).count("1") & 1
        state = ((state << 1) | feedback) & ((1 << n_bits) - 1)
    return out


def lfsr_stream(value: int, length: int, seed: int = 1) -> Bitstream:
    """Pseudo-random SNG: ``bit_t = (lfsr_t <= value)``.

    ``length`` must be a power of two; the LFSR of width ``log2(length)``
    is cycled once (its period is ``length - 1``; the stream's final slot
    re-uses the first state, the standard period-extension trick).
    """
    _validate(value, length)
    if length & (length - 1):
        raise ValueError("length must be a power of two")
    n_bits = length.bit_length() - 1
    seq = lfsr_sequence(n_bits, seed)
    seq = np.concatenate([seq, seq[:1]])  # pad to 2**n
    return Bitstream((seq <= value).astype(np.uint8))


def bernoulli_stream(
    value: int, length: int, seed: int | np.random.Generator | None = None
) -> Bitstream:
    """True-random Bernoulli SNG (the noisiest reference point)."""
    _validate(value, length)
    rng = make_rng(seed)
    return Bitstream.from_probability(value / length, length, rng)


#: registry used by the SNG ablation (benchmarks/bench_ablations.py)
DETERMINISTIC_SNGS = {
    "unary": unary_prefix,
    "bresenham": bresenham_spread,
    "van_der_corput": van_der_corput_stream,
    "lfsr": lfsr_stream,
}


def generate_pair(
    ib: int, wb: int, length: int, scheme: str = "unary-bresenham"
) -> tuple[Bitstream, Bitstream]:
    """Generate an (I, W) stream pair under a named pairing scheme.

    ``unary-bresenham`` is SCONNA's LUT content (exact multiplication);
    the others exist for the accuracy ablation.
    """
    if scheme == "unary-bresenham":
        return unary_prefix(ib, length), bresenham_spread(wb, length)
    if scheme == "lfsr-lfsr":
        # two different seeds decorrelate the streams only approximately
        return lfsr_stream(ib, length, seed=1), lfsr_stream(wb, length, seed=5)
    if scheme == "unary-unary":
        # maximally correlated: AND degenerates to min() - the failure
        # mode the paper's uncorrelated-pair requirement guards against
        return unary_prefix(ib, length), unary_prefix(wb, length)
    if scheme == "vdc-unary":
        return van_der_corput_stream(ib, length), unary_prefix(wb, length)
    raise ValueError(f"unknown pairing scheme {scheme!r}")
