"""E1 - paper Table I: analog VDPE size N vs precision and data rate.

Regenerates the AMM/MAM scalability grid from the receiver-noise +
link-budget model (:mod:`repro.arch.analog`) and prints it against the
paper's published values.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentResult
from repro.arch.analog import table1_grid
from repro.utils.tables import Table

#: Table I as printed in the paper.
PAPER_TABLE1 = {
    ("amm", 4, 1.0): 31, ("amm", 4, 3.0): 20, ("amm", 4, 5.0): 16,
    ("amm", 4, 10.0): 11, ("amm", 6, 1.0): 6, ("amm", 6, 3.0): 3,
    ("amm", 6, 5.0): 2, ("amm", 6, 10.0): 1,
    ("mam", 4, 1.0): 44, ("mam", 4, 3.0): 29, ("mam", 4, 5.0): 22,
    ("mam", 4, 10.0): 16, ("mam", 6, 1.0): 12, ("mam", 6, 3.0): 7,
    ("mam", 6, 5.0): 5, ("mam", 6, 10.0): 3,
}

DATA_RATES = (1.0, 3.0, 5.0, 10.0)


def run_table1() -> ExperimentResult:
    """Compute the grid and compare cell-by-cell with the paper."""
    grid = table1_grid()
    table = Table(
        ["VDPC", "precision"]
        + [f"{dr:g} GS/s (ours/paper)" for dr in DATA_RATES],
        title="Table I - max VDPE size N for AMM/MAM analog VDPCs",
    )
    worst_abs_dev = 0
    for org in ("amm", "mam"):
        for b in (4, 6):
            row = [org.upper(), f"{b}-bit"]
            for dr in DATA_RATES:
                ours = grid[(org, b, dr)]
                paper = PAPER_TABLE1[(org, b, dr)]
                worst_abs_dev = max(worst_abs_dev, abs(ours - paper))
                row.append(f"{ours} / {paper}")
            table.add_row(row)

    checks = {
        "every cell within +-3 of the paper": worst_abs_dev <= 3,
        "MAM >= AMM at every operating point": all(
            grid[("mam", b, dr)] >= grid[("amm", b, dr)]
            for b in (4, 6)
            for dr in DATA_RATES
        ),
        "N shrinks with data rate": all(
            grid[(org, b, DATA_RATES[i])] >= grid[(org, b, DATA_RATES[i + 1])]
            for org in ("amm", "mam")
            for b in (4, 6)
            for i in range(len(DATA_RATES) - 1)
        ),
        "N shrinks with precision": all(
            grid[(org, 4, dr)] > grid[(org, 6, dr)]
            for org in ("amm", "mam")
            for dr in DATA_RATES
        ),
        "max over grid is 44 (MAM, 4-bit, 1 GS/s)": max(grid.values()) in (43, 44),
    }
    return ExperimentResult(
        experiment_id="E1",
        title="analog VDPC scalability (Table I)",
        table=table,
        checks=checks,
        notes=[
            "solver: LSB photocurrent >= kappa x receiver noise, kappa "
            "calibrated once on the MAM/4-bit/1GS/s=44 anchor",
        ],
        data={"grid": grid},
    )
