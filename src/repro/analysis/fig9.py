"""E7/E8/E9 - paper Fig. 9: FPS, FPS/W and FPS/W/mm2 across four CNNs.

Simulates batch-1 inference of GoogleNet / ResNet50 / MobileNet_V2 /
ShuffleNet_V2 on SCONNA and the two area-matched analog baselines, then
reports the three efficiency metrics and their geometric-mean uplifts
next to the paper's (66.5x / 146.4x FPS, 90x / 183x FPS/W,
91x / 184x FPS/W/mm2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import ExperimentResult
from repro.arch.designs import build_evaluated_designs
from repro.arch.simulator import PerfResult, simulate_inference
from repro.cnn.zoo import EVALUATION_MODELS, build_model
from repro.core.config import SconnaConfig
from repro.utils.tables import Table, format_engineering, geometric_mean

#: paper-published gmean uplifts: metric -> (vs MAM, vs AMM)
PAPER_GMEAN = {
    "fps": (66.5, 146.4),
    "fps_per_watt": (90.0, 183.0),
    "fps_per_watt_mm2": (91.0, 184.0),
}


@dataclass
class Fig9Data:
    """All simulated results keyed by (model, accelerator)."""

    results: "dict[tuple[str, str], PerfResult]" = field(default_factory=dict)

    def metric(self, model: str, accel: str, name: str) -> float:
        return getattr(self.results[(model, accel)], name)

    def ratios(self, metric: str) -> "dict[str, tuple[float, float]]":
        out = {}
        for model in EVALUATION_MODELS:
            s = self.metric(model, "SCONNA", metric)
            out[model] = (
                s / self.metric(model, "MAM", metric),
                s / self.metric(model, "AMM", metric),
            )
        return out

    def gmean_ratios(self, metric: str) -> tuple[float, float]:
        r = self.ratios(metric)
        return (
            geometric_mean([v[0] for v in r.values()]),
            geometric_mean([v[1] for v in r.values()]),
        )


def simulate_all(config: SconnaConfig | None = None) -> Fig9Data:
    """Run the 4-CNN x 3-accelerator simulation grid."""
    designs = build_evaluated_designs(config)
    data = Fig9Data()
    for model_name in EVALUATION_MODELS:
        model = build_model(model_name)
        for accel_name, design in designs.items():
            data.results[(model_name, accel_name)] = simulate_inference(
                design, model
            )
    return data


def _metric_result(
    data: Fig9Data, metric: str, exp_id: str, fig_label: str, unit: str
) -> ExperimentResult:
    table = Table(
        ["model", "SCONNA", "MAM", "AMM", "x vs MAM", "x vs AMM"],
        title=f"Fig 9({fig_label}) - {metric.replace('_', '/')} (B=8)",
    )
    ratios = data.ratios(metric)
    for model in EVALUATION_MODELS:
        s = data.metric(model, "SCONNA", metric)
        m = data.metric(model, "MAM", metric)
        a = data.metric(model, "AMM", metric)
        table.add_row(
            [
                model,
                format_engineering(s, unit),
                format_engineering(m, unit),
                format_engineering(a, unit),
                f"{ratios[model][0]:.1f}",
                f"{ratios[model][1]:.1f}",
            ]
        )
    g_mam, g_amm = data.gmean_ratios(metric)
    p_mam, p_amm = PAPER_GMEAN[metric]
    table.add_row(
        ["gmean uplift (ours)", "-", "-", "-", f"{g_mam:.1f}", f"{g_amm:.1f}"]
    )
    table.add_row(
        ["gmean uplift (paper)", "-", "-", "-", f"{p_mam:.1f}", f"{p_amm:.1f}"]
    )

    big = geometric_mean(
        [ratios["GoogleNet"][0], ratios["ResNet50"][0]]
    )
    small = geometric_mean(
        [ratios["MobileNet_V2"][0], ratios["ShuffleNet_V2"][0]]
    )
    checks = {
        "SCONNA wins on every CNN vs both baselines": all(
            r > 1.0 for pair in ratios.values() for r in pair
        ),
        "AMM trails MAM (higher SCONNA uplift vs AMM)": g_amm > g_mam,
        "order-of-magnitude uplift on gmean (>= 5x)": g_mam >= 5.0,
        "large CNNs gain more than depthwise CNNs": big > 2 * small,
    }
    return ExperimentResult(
        experiment_id=exp_id,
        title=f"system comparison: {metric} (Fig 9{fig_label})",
        table=table,
        checks=checks,
        notes=[
            "absolute numbers are our simulator's; the paper's qualitative "
            "shape (who wins, ordering, large-vs-small-CNN trend) is the "
            "reproduction target - see EXPERIMENTS.md for the gap analysis",
        ],
    )


def run_fig9a(data: Fig9Data | None = None) -> ExperimentResult:
    data = data or simulate_all()
    return _metric_result(data, "fps", "E7", "a", "FPS")


def run_fig9b(data: Fig9Data | None = None) -> ExperimentResult:
    data = data or simulate_all()
    return _metric_result(data, "fps_per_watt", "E8", "b", "FPS/W")


def run_fig9c(data: Fig9Data | None = None) -> ExperimentResult:
    data = data or simulate_all()
    return _metric_result(data, "fps_per_watt_mm2", "E9", "c", "FPS/W/mm2")


def run_fig9(config: SconnaConfig | None = None) -> "list[ExperimentResult]":
    """All three panels off one simulation pass."""
    data = simulate_all(config)
    return [run_fig9a(data), run_fig9b(data), run_fig9c(data)]
