"""Shared experiment-report container.

Every ``repro.analysis`` harness returns an :class:`ExperimentResult`
whose :meth:`render` prints the same rows/series the paper reports, side
by side with the paper's published values, plus a short verdict on
whether the qualitative shape reproduced.  ``benchmarks/`` displays
these verbatim and EXPERIMENTS.md records them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.tables import Table


@dataclass
class ExperimentResult:
    """One regenerated table/figure with paper-vs-measured context."""

    experiment_id: str
    title: str
    table: Table
    notes: "list[str]" = field(default_factory=list)
    checks: "dict[str, bool]" = field(default_factory=dict)
    data: "dict[str, object]" = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values()) if self.checks else True

    def render(self) -> str:
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        lines.append(self.table.render())
        if self.checks:
            lines.append("")
            for name, ok in self.checks.items():
                lines.append(f"  [{'PASS' if ok else 'MISS'}] {name}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
