"""E2 - paper Table II: kernel counts by DKV size S for four CNNs.

Counts every kernel tensor of ResNet50 / GoogleNet / VGG16 / DenseNet
and splits at the analog-VDPC limit S = 44.  Follows the paper's
counting convention (convolution kernels only - its Keras extraction
omitted classifier layers; see ``repro.cnn.stats``).
"""

from __future__ import annotations

from repro.analysis.report import ExperimentResult
from repro.cnn.stats import kernel_size_stats
from repro.cnn.zoo import TABLE2_MODELS
from repro.utils.tables import Table

#: Table II as printed: model -> (TL with S<=44, TL with S>44)
PAPER_TABLE2 = {
    "ResNet50": (1, 26562),
    "GoogleNet": (13, 7554),
    "VGG16": (69, 4168),
    "DenseNet": (1, 10242),
}


def run_table2(threshold: int = 44) -> ExperimentResult:
    table = Table(
        [
            "model",
            f"S<={threshold} (ours)",
            "(paper)",
            f"S>{threshold} (ours)",
            "(paper)",
            "S>44 fraction",
        ],
        title="Table II - kernel tensors by DKV size S",
    )
    stats = {}
    for name in TABLE2_MODELS:
        st = kernel_size_stats(name, threshold)
        stats[name] = st
        p_small, p_large = PAPER_TABLE2[name]
        table.add_row(
            [
                name,
                st.small_kernels,
                p_small,
                st.large_kernels,
                p_large,
                f"{st.large_fraction * 100:.1f} %",
            ]
        )

    checks = {
        "S>44 counts within 10% of the paper": all(
            abs(stats[m].large_kernels - PAPER_TABLE2[m][1])
            <= 0.10 * PAPER_TABLE2[m][1]
            for m in TABLE2_MODELS
        ),
        ">98% of kernels exceed the analog limit (Section III-B)": all(
            stats[m].large_fraction > 0.98
            for m in ("ResNet50", "VGG16", "DenseNet")
        ),
    }
    return ExperimentResult(
        experiment_id="E2",
        title="kernel-size statistics (Table II)",
        table=table,
        checks=checks,
        notes=[
            "counting convolution kernels only (paper convention); S>44 "
            "columns match the paper to a few kernels for ResNet50/DenseNet"
        ],
        data={"stats": stats},
    )
