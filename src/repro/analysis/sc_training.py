"""E15 - extension: stochastic-computing-aware training (Section VI-D).

The paper's future-work remark - "SCONNA's accuracy drop can be improved
by performing stochastic computing aware training" - implemented and
quantified.  At B = 8 the floor bias is already negligible (Table V);
the mechanism matters at *lower* precisions, where stream length shrinks
(2**B bits) and the per-product floor loses up to one count in 2**B.
Fine-tuning through the SC forward path (STE backward) recovers a large
fraction of that drop.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentResult
from repro.cnn.datasets import generate_dataset, train_test_split
from repro.cnn.inference import QuantizedModel
from repro.cnn.sc_aware import sc_aware_finetune
from repro.cnn.train import build_proxy, train
from repro.core.config import SconnaConfig
from repro.stochastic.error_models import SconnaErrorModel
from repro.utils.tables import Table


def _floor_drop_pp(model, calib, images, labels, bits: int) -> tuple[float, float]:
    """(int8 top-1, SC floor-induced drop in pp) at ``bits`` precision."""
    cfg = SconnaConfig(precision_bits=bits)
    qm = QuantizedModel.from_trained(model, calib, precision_bits=bits, config=cfg)
    li = qm.predict_logits(images, mode="int8")
    t_int = qm.top_k_from_logits(li, labels, 1)
    ls = qm.predict_logits(
        images, mode="sconna", error_model=SconnaErrorModel(adc_mape=0.0)
    )
    t_sc = qm.top_k_from_logits(ls, labels, 1)
    return t_int, (t_int - t_sc) * 100.0


def run_sc_aware_training(
    proxy: str = "snet_proxy",
    finetune_bits: int = 5,
    report_bits: "tuple[int, ...]" = (6, 5),
    n_per_class: int = 120,
) -> ExperimentResult:
    dataset = generate_dataset(n_per_class, seed=0)
    train_set, test_set = train_test_split(dataset, test_fraction=0.3, seed=1)
    model = build_proxy(proxy, seed=0)
    train(model, train_set, epochs=6, seed=0)
    calib = train_set.images[:64]

    before = {
        b: _floor_drop_pp(model, calib, test_set.images, test_set.labels, b)
        for b in report_bits
    }
    losses = sc_aware_finetune(
        model, train_set, epochs=2, lr=0.004,
        precision_bits=finetune_bits, seed=0,
    )
    after = {
        b: _floor_drop_pp(model, calib, test_set.images, test_set.labels, b)
        for b in report_bits
    }

    table = Table(
        ["precision B", "drop before [pp]", "drop after [pp]", "recovered"],
        title=f"E15 - SC-aware fine-tuning of {proxy} "
        f"(fine-tuned at B={finetune_bits})",
    )
    for b in report_bits:
        d0, d1 = before[b][1], after[b][1]
        rec = (d0 - d1) / d0 * 100.0 if d0 > 0 else 0.0
        table.add_row(
            [b, f"{d0:+.2f}", f"{d1:+.2f}", f"{rec:.0f} %"]
        )

    b_ft = finetune_bits
    checks = {
        f"fine-tuning reduces the B={b_ft} floor drop": after[b_ft][1]
        < before[b_ft][1],
        "recovery is substantial (>= 20 %)": (
            before[b_ft][1] - after[b_ft][1]
        )
        >= 0.2 * before[b_ft][1],
        "fine-tuning converges (loss decreases)": losses[-1] <= losses[0],
        "int8 accuracy survives fine-tuning (within 3 pp)": after[b_ft][0]
        >= before[b_ft][0] - 0.03,
    }
    return ExperimentResult(
        experiment_id="E15",
        title="SC-aware training extension (Section VI-D future work)",
        table=table,
        checks=checks,
        notes=[
            "drops measured with ADC noise off: the floor bias is the "
            "systematic, learnable component",
            f"fine-tune losses: {[round(l, 3) for l in losses]}",
        ],
        data={"before": before, "after": after},
    )
