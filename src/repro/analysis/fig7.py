"""E4/E5 - paper Fig. 7: OSM speed envelope and PCA linearity.

* Fig. 7(a): highest OAG bitrate keeping OMA >= -28 dBm versus ring
  FWHM - rises with FWHM and saturates at ~40 Gb/s.
* Fig. 7(b): PCA analog output voltage versus alpha (the fraction of the
  maximum 176 x 256 ones) - linear, never saturating up to 100 %.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentResult
from repro.core.config import SconnaConfig
from repro.photonics.oag import max_bitrate_for_fwhm
from repro.photonics.tir import TimeIntegratingReceiver
from repro.utils.tables import Table

FWHM_SWEEP_NM = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def run_fig7a(oma_floor_dbm: float = -28.0) -> ExperimentResult:
    rates = {f: max_bitrate_for_fwhm(f, oma_floor_dbm) for f in FWHM_SWEEP_NM}
    table = Table(
        ["FWHM [nm]", "max bitrate [Gb/s]"],
        title="Fig 7(a) - OAG bitrate vs FWHM at OMA >= -28 dBm",
    )
    for f, br in rates.items():
        table.add_row([f"{f:.1f}", f"{br / 1e9:.1f}"])

    vals = list(rates.values())
    checks = {
        "bitrate rises monotonically with FWHM": vals == sorted(vals),
        "saturates at 40 Gb/s by FWHM ~0.8-1.0 nm": rates[1.0] >= 0.99 * 40e9
        and rates[0.8] >= 0.95 * 40e9,
        "30 Gb/s operating point available below 0.8 nm": any(
            f <= 0.8 and br >= 30e9 for f, br in rates.items()
        ),
    }
    return ExperimentResult(
        experiment_id="E4",
        title="OSM bitrate vs FWHM (Fig 7a)",
        table=table,
        checks=checks,
        notes=["paper: 'BR saturates at 40 Gbps at FWHM ~ 0.8 nm'"],
        data={"rates": rates},
    )


def run_fig7b(config: SconnaConfig | None = None) -> ExperimentResult:
    cfg = config or SconnaConfig()
    tir = TimeIntegratingReceiver(cfg.tir)
    alphas = np.linspace(0.0, 1.0, 11)
    bit_period = 1.0 / cfg.bitrate_hz
    volts = tir.alpha_sweep(cfg.vdpe_size, cfg.stream_length, bit_period, alphas)

    table = Table(
        ["alpha [%]", "ones accumulated", "analog output [V]"],
        title="Fig 7(b) - PCA output voltage vs alpha "
        f"(N={cfg.vdpe_size}, 2^B={cfg.stream_length})",
    )
    full = cfg.vdpe_size * cfg.stream_length
    for a, v in zip(alphas, volts):
        table.add_row([f"{a * 100:.0f}", int(a * full), f"{v:.3f}"])

    # linearity: residual from the least-squares line through origin
    slope = volts[-1] / alphas[-1] if alphas[-1] else 0.0
    residual = float(np.max(np.abs(volts - slope * alphas)))
    checks = {
        "linear response (max residual < 1 mV)": residual < 1e-3,
        "no saturation at alpha = 100 %": tir.is_linear_up_to(
            cfg.vdpe_size, cfg.stream_length, bit_period
        ),
        "full-scale voltage below the 1 V rail": volts[-1] < cfg.tir.supply_rail_v,
    }
    return ExperimentResult(
        experiment_id="E5",
        title="PCA accumulation linearity (Fig 7b)",
        table=table,
        checks=checks,
        notes=[
            f"R={cfg.tir.load_resistance_ohm:g} ohm, "
            f"C={cfg.tir.capacitance_f * 1e12:g} pF, "
            f"gain={cfg.tir.amplifier_gain:g} (Section V-C values)",
            f"full-scale output {volts[-1]:.3f} V "
            "(paper shows ~linear rise, no saturation)",
        ],
        data={"alphas": alphas, "volts": volts},
    )
