"""E6 - Section V: SCONNA's achievable VDPC size and PCA capacity.

Prints the full scalability report (Eqs. 2-4 + TIR sizing) next to the
paper's published N = 176, documenting the -28 vs -30 dBm sensitivity
reconciliation recorded in DESIGN.md.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentResult
from repro.core.config import SconnaConfig
from repro.core.scalability import analyze_scalability, psum_counts_for_vector
from repro.utils.tables import Table


def run_scalability(config: SconnaConfig | None = None) -> ExperimentResult:
    cfg = config or SconnaConfig()
    rep = analyze_scalability(cfg)

    table = Table(
        ["quantity", "ours", "paper"],
        title="Section V - SCONNA scalability analysis",
    )
    table.add_row(
        [
            "max OAG bitrate at design FWHM",
            f"{rep.max_bitrate_at_fwhm_hz / 1e9:.1f} Gb/s",
            "<= 40 Gb/s",
        ]
    )
    table.add_row(
        ["operating bitrate", f"{rep.operating_bitrate_hz / 1e9:.0f} Gb/s", "30 Gb/s"]
    )
    table.add_row(
        [
            "receiver sensitivity (BRes=1, Eq. 2/3)",
            f"{rep.sensitivity_dbm_digital:.1f} dBm",
            "-28 dBm",
        ]
    )
    table.add_row(
        ["max N at -28 dBm (Eq. 4)", rep.max_n_at_paper_sensitivity, "176"]
    )
    table.add_row(["max N at -30 dBm (Eq. 4)", rep.max_n_at_minus_30_dbm, "-"])
    table.add_row(["deployed N", cfg.vdpe_size, "176"])
    table.add_row(
        ["PCA capacity [ones]", rep.pca_capacity_ones, "> 176 x 256 = 45056"]
    )
    table.add_row(
        ["PCA linear at full scale", rep.pca_linear_at_full_scale, "yes (Fig 7b)"]
    )
    table.add_row(
        ["PCA passes per ADC readout", rep.pca_accumulation_passes, "-"]
    )

    psum = psum_counts_for_vector(4608, cfg)
    table.add_row(
        ["S=4608: optical passes", psum["optical_passes"], "105 at N=44"]
    )
    table.add_row(
        ["S=4608: electrical psums", psum["electrical_psums"], "-"]
    )

    checks = {
        "published N=176 closes the Eq. 4 budget at -30 dBm": rep.max_n_at_minus_30_dbm
        == 176,
        "N at printed -28 dBm lands within 25% of 176": abs(
            rep.max_n_at_paper_sensitivity - 176
        )
        <= 0.25 * 176,
        "N is 4x the best analog VDPE (44)": cfg.vdpe_size == 4 * 44,
        "PCA holds a full pass without saturating": rep.pca_capacity_ones
        > rep.pca_full_scale_ones,
        "operating bitrate within the Fig 7a envelope": rep.max_bitrate_at_fwhm_hz
        >= cfg.bitrate_hz,
    }
    return ExperimentResult(
        experiment_id="E6",
        title="SCONNA VDPC scalability (Section V-B/V-C)",
        table=table,
        checks=checks,
        notes=[
            "Eq. 4 with Table III losses closes at exactly N=176 for a "
            "-30 dBm sensitivity; at the paper's printed -28 dBm our "
            "solver yields N=138 (see DESIGN.md, 'parameter reconciliations')",
        ],
        data={"report": rep},
    )
