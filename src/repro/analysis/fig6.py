"""E3 - paper Fig. 6(c): transient validation of the Optical AND Gate.

Drives the OAG device model with two pseudo-random operand streams and
verifies that the thresholded drop-port output equals the bit-wise AND -
the validation the authors performed in Lumerical INTERCONNECT at
BR = 10 Gb/s.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentResult
from repro.photonics.oag import OpticalAndGate, random_prbs
from repro.utils.tables import Table


def run_fig6c(
    bitrate_hz: float = 10e9, n_bits: int = 256, seed: int = 42
) -> ExperimentResult:
    gate = OpticalAndGate.sconna_operating_point()
    i_bits = random_prbs(n_bits, seed=seed)
    w_bits = random_prbs(n_bits, seed=seed + 1)
    tr = gate.transient_response(i_bits, w_bits, bitrate_hz)
    decided = tr.decide_bits()
    expected = tr.expected_bits()
    errors = int((decided != expected).sum())

    # show the first 16 bit slots like the figure's trace
    table = Table(
        ["bit slot", "I", "W", "I AND W", "T(lambda_in) decided", "drop power [uW]"],
        title=f"Fig 6(c) - OAG transient at {bitrate_hz / 1e9:g} Gb/s "
        f"(first 16 of {n_bits} slots)",
    )
    levels = tr.sampled_levels_w()
    for k in range(16):
        table.add_row(
            [
                k,
                int(i_bits[k]),
                int(w_bits[k]),
                int(expected[k]),
                int(decided[k]),
                f"{levels[k] * 1e6:.2f}",
            ]
        )

    # repeat at the SCONNA operating rate
    tr30 = gate.transient_response(i_bits, w_bits, 30e9)
    errors30 = int((tr30.decide_bits() != tr30.expected_bits()).sum())

    checks = {
        f"error-free AND over {n_bits} bits at 10 Gb/s": errors == 0,
        f"error-free AND over {n_bits} bits at 30 Gb/s": errors30 == 0,
        "positive eye opening (OMA > 0)": tr.oma_w() > 0,
        "static extinction > 7 dB": gate.static_extinction_db() > 7.0,
    }
    return ExperimentResult(
        experiment_id="E3",
        title="OAG transient analysis (Fig 6c)",
        table=table,
        checks=checks,
        notes=[
            f"OMA at 10 Gb/s: {tr.oma_w() * 1e6:.2f} uW; "
            f"gate FWHM {gate.ring.fwhm_nm} nm, junction shift "
            f"{gate.ring.junction_shift_nm} nm",
        ],
        data={"errors_10g": errors, "errors_30g": errors30},
    )
