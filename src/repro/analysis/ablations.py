"""E11-E14 - ablation studies on the design choices DESIGN.md calls out.

* E11 ``vdpe_size``: throughput vs N - quantifies how much of SCONNA's
  win comes from the large VDPE alone (an N=44 SCONNA would behave like
  a digital analog-sized core).
* E12 ``stream length``: precision B sweeps stream length 2**B -
  latency cost of precision, the flexibility SC buys.
* E13 ``SNG scheme``: multiplication error of LUT pairing vs LFSR vs
  correlated unary - why the paper precomputes uncorrelated pairs.
* E14 ``bit slicing``: what 8-bit slicing costs the analog baseline vs
  running it natively at 4-bit precision.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentResult
from repro.arch.analog import MAM_HOLYLIGHT, AnalogVdpcConfig
from repro.arch.designs import analog_design, build_evaluated_designs, sconna_design
from repro.arch.simulator import simulate_inference
from repro.cnn.zoo import build_model
from repro.core.config import SconnaConfig
from repro.stochastic.sng import generate_pair
from repro.utils.rng import make_rng
from repro.utils.tables import Table


def run_ablation_vdpe_size(
    sizes: "tuple[int, ...]" = (22, 44, 88, 176),
    model_name: str = "ResNet50",
) -> ExperimentResult:
    """E11: SCONNA throughput as the VDPE size shrinks toward analog N."""
    model = build_model(model_name)
    fps = {}
    bottlenecks = {}
    for n in sizes:
        cfg = SconnaConfig(vdpe_size=n)
        res = simulate_inference(sconna_design(cfg), model)
        fps[n] = res.fps
        hist = res.bottleneck_histogram()
        bottlenecks[n] = max(hist, key=hist.get)

    table = Table(
        ["N", "FPS", "vs N=22", "dominant bottleneck", "psums/output S=4608"],
        title=f"E11 - SCONNA VDPE-size ablation ({model_name})",
    )
    for n in sizes:
        table.add_row(
            [
                n,
                f"{fps[n]:.1f}",
                f"{fps[n] / fps[sizes[0]]:.2f}x",
                bottlenecks[n],
                SconnaConfig(vdpe_size=n).electrical_psums(4608),
            ]
        )
    checks = {
        "throughput grows with N until streaming binds": all(
            fps[sizes[i + 1]] >= 0.95 * fps[sizes[i]]
            for i in range(len(sizes) - 1)
        ),
        "large N clearly beats an analog-sized N=22 core": fps[sizes[-1]]
        > 1.3 * fps[sizes[0]],
        "saturation is memory-driven (DIV streaming)": bottlenecks[sizes[-1]]
        in ("memory", "compute"),
    }
    return ExperimentResult(
        experiment_id="E11",
        title="VDPE-size ablation",
        table=table,
        checks=checks,
        notes=[
            "beyond N~88 the per-tile eDRAM stream (N words per position) "
            "overtakes the stream-duration compute bound - larger VDPEs "
            "need proportionally wider input buffers",
        ],
    )


def run_ablation_stream_length(
    precisions: "tuple[int, ...]" = (4, 6, 8, 10),
    model_name: str = "ShuffleNet_V2",
) -> ExperimentResult:
    """E12: stream length 2**B vs throughput - SC's precision flexibility."""
    model = build_model(model_name)
    table = Table(
        ["precision B", "stream bits", "VDP issue [ns]", "FPS"],
        title=f"E12 - stochastic stream-length ablation ({model_name})",
    )
    fps = []
    for b in precisions:
        cfg = SconnaConfig(precision_bits=b)
        res = simulate_inference(sconna_design(cfg), model)
        fps.append(res.fps)
        table.add_row(
            [
                b,
                cfg.stream_length,
                f"{cfg.vdp_issue_interval_s * 1e9:.2f}",
                f"{res.fps:.1f}",
            ]
        )
    checks = {
        "longer streams cost throughput beyond B=6": fps[-1] < fps[1],
        "precision change needs no hardware change (same design)": True,
    }
    return ExperimentResult(
        experiment_id="E12",
        title="stream-length ablation",
        table=table,
        checks=checks,
        notes=[
            "analog VDPCs must re-solve Table I (and shrink N) to change "
            "precision; SCONNA only changes the stream length",
        ],
    )


def run_ablation_sng(
    n_samples: int = 400, precision_bits: int = 8, seed: int = 0
) -> ExperimentResult:
    """E13: multiplication error by stream-pairing scheme."""
    rng = make_rng(seed)
    length = 1 << precision_bits
    schemes = ("unary-bresenham", "vdc-unary", "lfsr-lfsr", "unary-unary")
    table = Table(
        ["pairing scheme", "mean |error| [counts]", "max |error| [counts]"],
        title="E13 - SNG pairing ablation (error of AND-multiplication)",
    )
    mean_err = {}
    for scheme in schemes:
        errs = []
        for _ in range(n_samples):
            ib = int(rng.integers(0, length + 1))
            wb = int(rng.integers(0, length + 1))
            i_s, w_s = generate_pair(ib, wb, length, scheme)
            measured = int((i_s.bits & w_s.bits).sum())
            errs.append(abs(measured - ib * wb / length))
        errs = np.asarray(errs)
        mean_err[scheme] = float(errs.mean())
        table.add_row([scheme, f"{errs.mean():.2f}", f"{errs.max():.1f}"])

    checks = {
        "LUT pairing (unary-bresenham) error < 1 count": mean_err[
            "unary-bresenham"
        ]
        < 1.0,
        "correlated unary-unary is worst": mean_err["unary-unary"]
        == max(mean_err.values()),
        "LUT pairing beats LFSR": mean_err["unary-bresenham"]
        < mean_err["lfsr-lfsr"],
    }
    return ExperimentResult(
        experiment_id="E13",
        title="SNG pairing ablation",
        table=table,
        checks=checks,
        notes=["why Section IV-B precomputes uncorrelated pairs offline"],
    )


def run_ablation_bit_slicing(model_name: str = "GoogleNet") -> ExperimentResult:
    """E14: the analog baseline with vs without 8-bit slicing."""
    model = build_model(model_name)
    designs = build_evaluated_designs()
    sliced = designs["MAM"]
    native4 = analog_design(
        AnalogVdpcConfig(
            "mam",
            vdpe_size=22,
            vdpes_per_vdpc=22,
            native_precision_bits=4,
            target_precision_bits=4,
        ),
        "MAM (native 4-bit)",
        total_vdpes=sliced.total_vdpes,
    )
    res_sliced = simulate_inference(sliced, model)
    res_native = simulate_inference(native4, model)
    sconna = simulate_inference(designs["SCONNA"], model)

    table = Table(
        ["configuration", "precision", "FPS", "psums/output S=4608"],
        title=f"E14 - bit-slicing cost on the MAM baseline ({model_name})",
    )
    table.add_row(
        ["MAM sliced (paper config)", "8-bit", f"{res_sliced.fps:.2f}",
         sliced.psums_per_output(4608)]
    )
    table.add_row(
        ["MAM native", "4-bit only", f"{res_native.fps:.2f}",
         native4.psums_per_output(4608)]
    )
    table.add_row(
        ["SCONNA", "8-bit", f"{sconna.fps:.1f}", designs["SCONNA"].psums_per_output(4608)]
    )
    checks = {
        "slicing costs the analog design ~2x FPS": res_native.fps
        > 1.5 * res_sliced.fps,
        "even native 4-bit MAM trails 8-bit SCONNA": sconna.fps
        > res_native.fps,
    }
    return ExperimentResult(
        experiment_id="E14",
        title="bit-slicing ablation",
        table=table,
        checks=checks,
        notes=[
            "the paper's baselines must slice to reach 8-bit; SCONNA "
            "reaches it by stream length alone",
        ],
    )
