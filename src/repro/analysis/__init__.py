"""Experiment harnesses - one per paper table/figure, plus ablations.

=========== ======================================= =====================
experiment   paper artifact                          entry point
=========== ======================================= =====================
E1           Table I (analog scalability)            :func:`run_table1`
E2           Table II (kernel-size statistics)       :func:`run_table2`
E3           Fig 6(c) (OAG transient)                :func:`run_fig6c`
E4           Fig 7(a) (bitrate vs FWHM)              :func:`run_fig7a`
E5           Fig 7(b) (PCA linearity)                :func:`run_fig7b`
E6           Section V (SCONNA max N)                :func:`run_scalability`
E7-E9        Fig 9(a-c) (FPS, FPS/W, FPS/W/mm2)      :func:`run_fig9`
E10          Table V (accuracy drop)                 :func:`run_table5`
E11-E14      ablations                               ``run_ablation_*``
=========== ======================================= =====================

Each returns an :class:`~repro.analysis.report.ExperimentResult` whose
``render()`` prints measured values next to the paper's.
"""

from repro.analysis.report import ExperimentResult
from repro.analysis.table1 import PAPER_TABLE1, run_table1
from repro.analysis.table2 import PAPER_TABLE2, run_table2
from repro.analysis.fig6 import run_fig6c
from repro.analysis.fig7 import run_fig7a, run_fig7b
from repro.analysis.scalability import run_scalability
from repro.analysis.fig9 import (
    PAPER_GMEAN,
    Fig9Data,
    run_fig9,
    run_fig9a,
    run_fig9b,
    run_fig9c,
    simulate_all,
)
from repro.analysis.table5 import PAPER_TABLE5, evaluate_proxies, run_table5
from repro.analysis.ablations import (
    run_ablation_bit_slicing,
    run_ablation_sng,
    run_ablation_stream_length,
    run_ablation_vdpe_size,
)
from repro.analysis.sc_training import run_sc_aware_training

__all__ = [
    "ExperimentResult",
    "PAPER_TABLE1",
    "run_table1",
    "PAPER_TABLE2",
    "run_table2",
    "run_fig6c",
    "run_fig7a",
    "run_fig7b",
    "run_scalability",
    "PAPER_GMEAN",
    "Fig9Data",
    "run_fig9",
    "run_fig9a",
    "run_fig9b",
    "run_fig9c",
    "simulate_all",
    "PAPER_TABLE5",
    "evaluate_proxies",
    "run_table5",
    "run_ablation_bit_slicing",
    "run_ablation_sng",
    "run_ablation_stream_length",
    "run_ablation_vdpe_size",
    "run_sc_aware_training",
]
