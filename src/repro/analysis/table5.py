"""E10 - paper Table V: Top-1/Top-5 accuracy drop of SCONNA inference.

The paper measures the drop that SCONNA's stochastic pipeline (floor
rounding + 1.3 %-MAPE PCA/ADC error) inflicts on four 8-bit-quantized
ImageNet CNNs: gmean 0.4 % Top-1 / 0.3 % Top-5, with compact
depthwise-style networks degrading most (MobileNet_V2: 1.5 %).

Offline substitution (DESIGN.md section 4): four proxy CNNs of graded
capacity trained on the synthetic 10-class dataset, then run through the
*same* int8 and SCONNA datapaths.  The drop is averaged over several ADC
noise seeds (the single-draw variance at a few-hundred-image test set
would otherwise swamp sub-percent effects).

Training is the expensive step, so results are memoised per
configuration within the process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import ExperimentResult
from repro.cnn.datasets import generate_dataset, train_test_split
from repro.cnn.inference import QuantizedModel
from repro.cnn.train import PROXY_MODELS, build_proxy, train
from repro.stochastic.error_models import SconnaErrorModel
from repro.utils.tables import Table, geometric_mean

#: paper Table V Top-1 / Top-5 accuracy drops [% points]
PAPER_TABLE5 = {
    "GoogleNet": (0.1, 0.1),
    "ResNet50": (0.4, 0.3),
    "MobileNet_V2": (1.5, 0.7),
    "ShuffleNet_V2": (0.5, 0.4),
    "gmean": (0.4, 0.3),
}

#: per-proxy training hyper-parameters (tuned: all proxies converge to
#: crisp margins - under-trained models make the drop metric noisy)
TRAIN_CFG = {
    "gnet_proxy": {"epochs": 9, "lr": 0.04},
    "rnet_proxy": {"epochs": 8, "lr": 0.03},
    "mnet_proxy": {"epochs": 7, "lr": 0.05},
    "snet_proxy": {"epochs": 6, "lr": 0.05},
}


@dataclass(frozen=True)
class ProxyAccuracy:
    proxy: str
    paper_model: str
    top1_float: float
    top1_int8: float
    top1_sconna: float
    top5_int8: float
    top5_sconna: float

    @property
    def top1_drop_pp(self) -> float:
        return (self.top1_int8 - self.top1_sconna) * 100.0

    @property
    def top5_drop_pp(self) -> float:
        return (self.top5_int8 - self.top5_sconna) * 100.0


_CACHE: "dict[tuple, list[ProxyAccuracy]]" = {}


def evaluate_proxies(
    n_per_class: int = 120,
    error_seeds: "tuple[int, ...]" = (0, 1, 2),
    proxies: "tuple[str, ...] | None" = None,
) -> "list[ProxyAccuracy]":
    """Train, quantize and evaluate each proxy (memoised)."""
    proxies = proxies or tuple(PROXY_MODELS)
    key = (n_per_class, error_seeds, proxies)
    if key in _CACHE:
        return _CACHE[key]

    dataset = generate_dataset(n_per_class, seed=0)
    train_set, test_set = train_test_split(dataset, test_fraction=0.3, seed=1)
    results = []
    for proxy in proxies:
        cfg = TRAIN_CFG[proxy]
        model = build_proxy(proxy, seed=0)
        train(
            model,
            train_set,
            epochs=cfg["epochs"],
            lr=cfg["lr"],
            seed=0,
        )
        qmodel = QuantizedModel.from_trained(model, train_set.images[:64])

        logits_float = qmodel.predict_logits(test_set.images, mode="float")
        logits_int8 = qmodel.predict_logits(test_set.images, mode="int8")
        top1_float = qmodel.top_k_from_logits(logits_float, test_set.labels, 1)
        top1_int8 = qmodel.top_k_from_logits(logits_int8, test_set.labels, 1)
        top5_int8 = qmodel.top_k_from_logits(logits_int8, test_set.labels, 5)

        top1_s, top5_s = [], []
        for seed in error_seeds:
            logits = qmodel.predict_logits(
                test_set.images,
                mode="sconna",
                error_model=SconnaErrorModel(seed=seed),
            )
            top1_s.append(qmodel.top_k_from_logits(logits, test_set.labels, 1))
            top5_s.append(qmodel.top_k_from_logits(logits, test_set.labels, 5))

        results.append(
            ProxyAccuracy(
                proxy=proxy,
                paper_model=PROXY_MODELS[proxy],
                top1_float=top1_float,
                top1_int8=top1_int8,
                top1_sconna=float(np.mean(top1_s)),
                top5_int8=top5_int8,
                top5_sconna=float(np.mean(top5_s)),
            )
        )
    _CACHE[key] = results
    return results


def run_table5(
    n_per_class: int = 120,
    error_seeds: "tuple[int, ...]" = (0, 1, 2),
) -> ExperimentResult:
    results = evaluate_proxies(n_per_class, error_seeds)
    table = Table(
        [
            "proxy (paper model)",
            "float top-1",
            "int8 top-1",
            "SCONNA top-1",
            "drop [pp] (paper)",
            "top-5 drop [pp] (paper)",
        ],
        title="Table V - SCONNA accuracy drop vs exact int-8 inference",
    )
    for r in results:
        p1, p5 = PAPER_TABLE5[r.paper_model]
        table.add_row(
            [
                f"{r.proxy} ({r.paper_model})",
                f"{r.top1_float * 100:.1f} %",
                f"{r.top1_int8 * 100:.1f} %",
                f"{r.top1_sconna * 100:.1f} %",
                f"{r.top1_drop_pp:+.2f} ({p1})",
                f"{r.top5_drop_pp:+.2f} ({p5})",
            ]
        )
    drops1 = [max(r.top1_drop_pp, 1e-3) for r in results]
    drops5 = [max(r.top5_drop_pp, 1e-3) for r in results]
    g1, g5 = geometric_mean(drops1), geometric_mean(drops5)
    m1 = float(np.mean([r.top1_drop_pp for r in results]))
    m5 = float(np.mean([r.top5_drop_pp for r in results]))
    table.add_row(
        [
            "gmean",
            "-",
            "-",
            "-",
            f"{g1:.2f} ({PAPER_TABLE5['gmean'][0]})",
            f"{g5:.2f} ({PAPER_TABLE5['gmean'][1]})",
        ]
    )
    table.add_row(
        ["mean", "-", "-", "-", f"{m1:.2f}", f"{m5:.2f}"]
    )

    trained_ok = all(r.top1_float > 0.9 for r in results)
    checks = {
        "all proxies trained (float top-1 > 90 %)": trained_ok,
        "every drop small (<= 2.5 pp, paper regime)": all(
            r.top1_drop_pp <= 2.5 for r in results
        ),
        "gmean top-1 drop within the paper's band (0-1.5 pp)": 0.0 <= g1 <= 1.5,
        "top-5 drops do not exceed top-1 drops (gmean)": g5 <= g1 + 0.05,
    }
    return ExperimentResult(
        experiment_id="E10",
        title="inference-accuracy impact (Table V)",
        table=table,
        checks=checks,
        notes=[
            f"SCONNA accuracy averaged over {len(error_seeds)} ADC noise "
            "seeds; proxies trained on the synthetic dataset "
            "(ImageNet substitution - DESIGN.md section 4)",
        ],
        data={"results": results},
    )
