"""Analog MRR VDPC baselines: MAM (HOLYLIGHT) and AMM (DEAP-CNN).

Two models live here:

1. **Scalability** (:func:`analog_max_n`, reproducing paper Table I):
   an analog VDPE summing N wavelengths that each encode ``2**B`` levels
   must keep its *least-significant level step* above the receiver
   noise.  With per-channel received power ``P_ch(N)`` from the link
   budget, the LSB photocurrent is ``R * P_ch / 2**B`` while the RMS
   noise is ``beta(N * P_ch) * sqrt(DR/2)`` (Eq. 3 evaluated at the
   *total* incident power - this is where RIN couples N into the
   constraint).  The solver finds the largest N (M = N) with

   ``R * P_ch(N) / 2**B  >=  kappa * beta(N * P_ch(N)) * sqrt(DR/2)``.

   ``kappa = 0.458`` calibrates the criterion to Table I's anchor point
   (MAM, 4-bit, 1 GS/s -> N = 44); the AMM organisation additionally
   pays ``amm_extra_penalty_db`` of double-pass crosstalk (each
   wavelength traverses *two* N-MRR modulation arrays), which reproduces
   the AMM < MAM ordering.

2. **Operating configuration** (:class:`AnalogVdpcConfig`): the design
   point the system evaluation uses - 4-bit VDPEs at DR = 5 GS/s
   (paper Section VI-B: N = 22 for MAM, N = 16 for AMM), with 8-bit
   operands handled by two-way bit slicing (two VDPEs + shift-add).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

from repro.photonics.link_budget import analog_vdpc_budget
from repro.photonics.photodetector import (
    PhotodetectorParams,
    noise_spectral_density_a_per_rthz,
)
from repro.photonics.waveguide import PassiveLossParams
from repro.utils.units import dbm_to_watts

Organization = Literal["amm", "mam"]

#: LSB-to-noise margin calibrated on Table I's MAM/4-bit/1GS/s = 44 anchor.
KAPPA_DEFAULT: float = 0.458

#: extra crosstalk penalty for AMM's double modulation-array pass [dB].
AMM_EXTRA_PENALTY_DB: float = 2.0


def analog_lsb_margin(
    organization: Organization,
    n: int,
    precision_bits: int,
    data_rate_hz: float,
    laser_power_dbm: float = 10.0,
    pd: PhotodetectorParams | None = None,
    passive: PassiveLossParams | None = None,
    amm_extra_penalty_db: float = AMM_EXTRA_PENALTY_DB,
) -> float:
    """LSB current / RMS noise current ratio at VDPE size ``n``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if precision_bits < 1:
        raise ValueError("precision_bits must be >= 1")
    pd = pd or PhotodetectorParams()
    budget = analog_vdpc_budget(
        organization, n, n, laser_power_dbm, params=passive
    )
    extra = amm_extra_penalty_db if organization == "amm" else 0.0
    p_ch_w = dbm_to_watts(budget.received_power_dbm - extra)
    lsb_current = pd.responsivity_a_per_w * p_ch_w / (1 << precision_bits)
    beta = noise_spectral_density_a_per_rthz(n * p_ch_w, pd)
    noise = beta * math.sqrt(data_rate_hz / 2.0)
    return lsb_current / noise


def analog_max_n(
    organization: Organization,
    precision_bits: int,
    data_rate_hz: float,
    kappa: float = KAPPA_DEFAULT,
    n_max: int = 512,
    **kwargs,
) -> int:
    """Largest VDPE size N satisfying the LSB-above-noise criterion.

    Reproduces paper Table I (and its Section III corollaries: N falls
    with both data rate and precision, collapsing to ~1 at 8-bit).
    """

    def ok(n: int) -> bool:
        return (
            analog_lsb_margin(
                organization, n, precision_bits, data_rate_hz, **kwargs
            )
            >= kappa
        )

    if not ok(1):
        return 0
    lo, hi = 1, 1
    while hi < n_max and ok(hi):
        lo, hi = hi, min(hi * 2, n_max)
    if ok(hi):
        return hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if ok(mid):
            lo = mid
        else:
            hi = mid
    return lo


def table1_grid(
    precisions: "tuple[int, ...]" = (4, 6),
    data_rates_gsps: "tuple[float, ...]" = (1.0, 3.0, 5.0, 10.0),
) -> "dict[tuple[str, int, float], int]":
    """The full Table I grid: {(org, B, DR in GS/s): N}."""
    out = {}
    for org in ("amm", "mam"):
        for b in precisions:
            for dr in data_rates_gsps:
                out[(org, b, dr)] = analog_max_n(org, b, dr * 1e9)
    return out


@dataclass(frozen=True)
class AnalogVdpcConfig:
    """Operating design point of one analog baseline accelerator."""

    organization: Organization
    vdpe_size: int                     #: N at the native 4-bit precision
    vdpes_per_vdpc: int                #: M (= N in prior work)
    native_precision_bits: int = 4
    target_precision_bits: int = 8
    data_rate_hz: float = 5e9
    dac_latency_s: float = 0.78e-9
    adc_latency_s: float = 0.78e-9

    def __post_init__(self) -> None:
        if self.vdpe_size < 1 or self.vdpes_per_vdpc < 1:
            raise ValueError("vdpe_size and vdpes_per_vdpc must be >= 1")
        if self.target_precision_bits % self.native_precision_bits:
            raise ValueError("target precision must be a slice multiple")

    @property
    def slicing_factor(self) -> int:
        """VDPEs ganged per logical 8-bit VDP (paper: 2)."""
        return self.target_precision_bits // self.native_precision_bits

    @property
    def vdp_issue_interval_s(self) -> float:
        """Steady-state VDP rate per VDPE.

        Every new DIV requires a DAC conversion on each modulator; the
        issue interval is the slower of the optical symbol and the DAC.
        """
        return max(1.0 / self.data_rate_hz, self.dac_latency_s)

    def pieces(self, vector_size: int) -> int:
        """Decomposed pieces C = ceil(S / N)."""
        if vector_size <= 0:
            raise ValueError("vector_size must be positive")
        return math.ceil(vector_size / self.vdpe_size)

    def psums_per_output(self, vector_size: int) -> int:
        """Electrical psums per output: every piece-slice needs an ADC."""
        return self.pieces(vector_size) * self.slicing_factor

    def reduction_ops_per_output(self, vector_size: int) -> int:
        """Accumulates + slice shift-add combines per output."""
        psums = self.psums_per_output(vector_size)
        return (psums - 1) + (self.slicing_factor - 1)

    def dacs_per_vdpe(self) -> float:
        """DAC count charged to one VDPE (DKV bank + DIV share).

        MAM shares one N-modulator DIV block across the M VDPEs of a
        VDPC; AMM instantiates a DIV bank per VDPE.
        """
        if self.organization == "mam":
            return self.vdpe_size * (1.0 + 1.0 / self.vdpes_per_vdpc)
        return 2.0 * self.vdpe_size


#: the paper's evaluated baselines (Section VI-B)
MAM_HOLYLIGHT = AnalogVdpcConfig("mam", vdpe_size=22, vdpes_per_vdpc=22)
AMM_DEAPCNN = AnalogVdpcConfig("amm", vdpe_size=16, vdpes_per_vdpc=16)
