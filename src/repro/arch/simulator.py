"""Transaction-level, event-driven accelerator simulator.

Replicates the role of the authors' SC_ONN_SIM: given an
:class:`~repro.arch.designs.AcceleratorDesign` and a CNN layer-shape
descriptor, simulate one batch-1 inference and report FPS, energy, and
the paper's efficiency metrics.

Per layer (weight-stationary dataflow, Section VI-B), five transaction
streams execute; within a layer they pipeline against each other, so
the layer's latency is the slowest stream plus its serial fills:

``compute``    rounds x (weight-load + pipeline-fill + P x issue) on the
               VDPE array - every resident DKV piece-slice streams all
               P = out_h x out_w input positions;
``reduction``  V x reduction-ops through the per-tile psum reduction
               networks (THE structural difference: SCONNA's multi-pass
               PCA emits ~C/4 electrical psums per output, the sliced
               analog baselines emit 2C);
``memory``     DIV streaming from tile eDRAM (line-buffer reuse of the
               K^2/stride^2 receptive-field overlap) plus psum
               write/read traffic;
``activation`` V RELU ops on the per-tile activation units;
``weight-io``  off-chip weight fetch for the *next* round set
               (double-buffered, hence overlappable);
``noc``        output redistribution to the next layer's tiles
               (serial tail of the layer).

Events sequence the layers on the DES kernel; Resources track busy time
for utilisation and dynamic-energy accounting.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.arch import peripherals as P
from repro.arch.designs import AcceleratorDesign
from repro.arch.events import EventKernel, Resource, TransactionLog
from repro.arch.noc import MeshNoc
from repro.cnn.shapes import ConvLayerShape, ModelDescriptor


@dataclass(frozen=True)
class LayerTiming:
    """Simulated cost breakdown of one layer."""

    name: str
    compute_s: float
    reduction_s: float
    memory_s: float
    activation_s: float
    weight_io_s: float
    noc_s: float
    latency_s: float
    bottleneck: str


@dataclass
class PerfResult:
    """One simulated inference (batch size 1)."""

    accelerator: str
    model: str
    latency_s: float
    energy_j: float
    area_mm2: float
    layers: "list[LayerTiming]" = field(default_factory=list)
    log: TransactionLog = field(default_factory=TransactionLog)

    @property
    def fps(self) -> float:
        return 1.0 / self.latency_s

    @property
    def avg_power_w(self) -> float:
        return self.energy_j / self.latency_s

    @property
    def fps_per_watt(self) -> float:
        return self.fps / self.avg_power_w

    @property
    def fps_per_watt_mm2(self) -> float:
        return self.fps_per_watt / self.area_mm2

    def bottleneck_histogram(self) -> "dict[str, int]":
        hist: dict[str, int] = {}
        for layer in self.layers:
            hist[layer.bottleneck] = hist.get(layer.bottleneck, 0) + 1
        return hist


class AcceleratorSimulator:
    """Simulates batch-1 CNN inference on one accelerator design."""

    def __init__(self, design: AcceleratorDesign) -> None:
        self.design = design
        self.noc = MeshNoc(design.n_tiles)

    # -- per-layer transaction model ----------------------------------------
    def layer_timing(self, layer: ConvLayerShape) -> LayerTiming:
        d = self.design
        s = layer.vector_size
        out_h, out_w = layer.out_hw
        positions = out_h * out_w
        v = layer.n_vdps

        # compute: weight-stationary rounds over the VDPE array; a
        # resident slot streams `passes_per_position` optical passes per
        # output position (temporal mapping sweeps all C pieces).  When
        # a layer has fewer weight slots than VDPEs the mapper
        # replicates kernels across position blocks, so the array stays
        # busy: steady-state time is total passes over the whole array.
        rounds = d.rounds(s, layer.n_kernels)
        passes = d.passes_per_position(s)
        slots = d.weight_slots(s, layer.n_kernels)
        total_passes = positions * slots * passes
        load_words_per_tile = (
            d.total_vdpes // d.n_tiles
        ) * d.slot_weight_words(s)
        weight_load_s = load_words_per_tile / P.edram_bandwidth_words_per_s()
        compute_s = (
            total_passes * d.vdp_issue_interval_s / d.total_vdpes
            + rounds * (weight_load_s + d.vdp_fill_latency_s)
        )

        # cross-VDPE psum reduction through the per-tile networks (zero
        # for SCONNA's temporal mapping - local accumulation only)
        red_ops = v * d.reduction_ops_per_output(s)
        reduction_s = red_ops * P.REDUCTION_NETWORK.latency_s / d.n_tiles

        # eDRAM traffic: DIV streaming (line-buffer reuse of overlapping
        # receptive fields; the stream is broadcast across all VDPCs of
        # a tile over the H-tree, since they process the same input
        # window against different kernels) + psum write/read pairs for
        # spatially-decomposed designs.  Each tile reads its own copy of
        # the stream from its eDRAM, so per-tile time is the stream
        # volume over one port's bandwidth.
        reuse = max((layer.kernel / layer.stride) ** 2, 1.0)
        div_words_per_tile = rounds * positions * passes * d.vdpe_size / reuse
        psum_words_per_tile = (
            0.0
            if d.temporal_pieces
            else 2.0 * v * d.psums_per_output(s) / d.n_tiles
        )
        memory_s = (
            div_words_per_tile + psum_words_per_tile
        ) / P.edram_bandwidth_words_per_s()

        # activation units (on the H-tree of each tile: one per VDPC,
        # Fig. 8 places them with the output buffers inside the tile)
        n_act_units = d.n_tiles * d.vdpcs_per_tile
        activation_s = v * P.ACTIVATION_UNIT.latency_s / n_act_units

        # off-chip weight fetch (double-buffered against compute)
        weight_words = s * layer.n_kernels * d.slicing_factor
        weight_io_s = weight_words / P.io_bandwidth_words_per_s()

        # NoC redistribution of the output tensor (serial layer tail)
        noc_s = self.noc.transfer(v).latency_s

        overlapped = max(
            compute_s, reduction_s, memory_s, activation_s, weight_io_s
        )
        latency = overlapped + noc_s
        bottleneck = max(
            [
                ("compute", compute_s),
                ("reduction", reduction_s),
                ("memory", memory_s),
                ("activation", activation_s),
                ("weight_io", weight_io_s),
            ],
            key=lambda kv: kv[1],
        )[0]
        return LayerTiming(
            name=layer.name,
            compute_s=compute_s,
            reduction_s=reduction_s,
            memory_s=memory_s,
            activation_s=activation_s,
            weight_io_s=weight_io_s,
            noc_s=noc_s,
            latency_s=latency,
            bottleneck=bottleneck,
        )

    # -- full inference -------------------------------------------------------
    def simulate(self, model: ModelDescriptor) -> PerfResult:
        d = self.design
        kernel = EventKernel()
        reduction_res = Resource(kernel, "reduction", d.n_tiles)
        log = TransactionLog()
        timings: list[LayerTiming] = []
        dynamic_j = 0.0

        def run_layer(idx: int) -> None:
            nonlocal dynamic_j
            layer = model.layers[idx]
            t = self.layer_timing(layer)
            timings.append(t)
            log.record("layers", 1, t.latency_s)
            log.record("compute", 1, t.compute_s)
            log.record("reduction_ops", layer.n_vdps, t.reduction_s)
            reduction_res.acquire(t.reduction_s)
            # dynamic energy: per-op energies of the contended units
            s = layer.vector_size
            v = layer.n_vdps
            dynamic_j += (
                v * d.reduction_ops_per_output(s) * P.REDUCTION_NETWORK.energy_per_op_j()
                + v * P.ACTIVATION_UNIT.energy_per_op_j()
                + self.noc.transfer(v).energy_j
            )
            if idx + 1 < len(model.layers):
                kernel.schedule(t.latency_s, lambda: run_layer(idx + 1))
            else:
                kernel.schedule(t.latency_s, lambda: None)

        kernel.schedule(0.0, lambda: run_layer(0))
        latency = kernel.run()
        static_j = d.power.total_w * latency
        return PerfResult(
            accelerator=d.name,
            model=model.name,
            latency_s=latency,
            energy_j=static_j + dynamic_j,
            area_mm2=d.area.total_mm2,
            layers=timings,
            log=log,
        )


def simulate_inference(
    design: AcceleratorDesign, model: ModelDescriptor
) -> PerfResult:
    """Convenience wrapper: one batch-1 inference simulation."""
    return AcceleratorSimulator(design).simulate(model)


class SimulationCache:
    """Memoized batch-1 simulations, keyed by (design, model) name.

    The serving layer annotates every request of a model with the same
    simulated accelerator cost, so the transaction-level simulation must
    run once per (design, model) pair, not once per request.  The cache
    is thread-safe (requests arrive concurrently) and assumes a name
    uniquely identifies a design/descriptor configuration within one
    cache instance - use separate caches for experiments that sweep a
    design under a fixed name.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._results: "OrderedDict[tuple[str, str], PerfResult]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def result(self, design: AcceleratorDesign, model: ModelDescriptor) -> PerfResult:
        """The cached (or freshly simulated) batch-1 inference result."""
        key = (design.name, model.name)
        with self._lock:
            hit = self._results.get(key)
            if hit is not None:
                self._hits += 1
                self._results.move_to_end(key)
                return hit
            self._misses += 1
        # simulate outside the lock: concurrent misses may duplicate
        # work once, but never serialize unrelated simulations
        res = AcceleratorSimulator(design).simulate(model)
        with self._lock:
            self._results[key] = res
            while len(self._results) > self.max_entries:
                self._results.popitem(last=False)
        return res

    def stats(self) -> dict:
        """Hit/miss counters and occupancy (for the serving metrics
        endpoint: a miss is a full transaction-level simulation, so the
        ratio shows whether cost annotation stays a dictionary lookup)."""
        with self._lock:
            return {
                "entries": len(self._results),
                "hits": self._hits,
                "misses": self._misses,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def clear(self) -> None:
        with self._lock:
            self._results.clear()
