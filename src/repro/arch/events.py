"""Discrete-event simulation kernel.

A small, dependency-free DES engine in the style the paper's
"transaction-level, event-driven python-based simulator" implies:
events are ``(time, priority, seq, callback)`` tuples in a heap;
:class:`Resource` models contended units (the psum reduction network,
eDRAM ports, NoC links) with FIFO queueing; :class:`BusyTracker`
integrates busy time for utilisation/energy accounting.

The accelerator simulator schedules *transactions* (a weight-load round,
a compute wave, a psum-reduction batch, a NoC transfer) rather than
individual bit-level operations - the standard transaction-level
abstraction that keeps CNN-scale simulations tractable while preserving
ordering and contention.

Performance note: events are plain tuples, not dataclass instances -
heap sifting compares them with CPython's C tuple comparison instead of
a generated Python ``__lt__`` (profiling the 10k-event benchmark showed
131k Python-level comparisons dominating the run).  The unique ``seq``
tie-breaker sits before the callback, so comparison never reaches the
(unorderable) callable.  For bulk work-list construction
:meth:`EventKernel.schedule_batch` heapifies once (O(n)) instead of
paying n heap-pushes (O(n log n)).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable


class SimulationError(RuntimeError):
    """Raised on kernel misuse (e.g. scheduling in the past)."""


class EventKernel:
    """Priority-queue event loop with deterministic tie-breaking.

    Ties on ``time`` are broken by ``priority`` (lower first) then by
    insertion order (FIFO) - the property the ordering tests lock.
    """

    def __init__(self) -> None:
        self._queue: "list[tuple]" = []
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0

    def schedule(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.now + delay, priority, self._seq, callback)
        )
        self._seq += 1

    def schedule_at(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> None:
        self.schedule(time - self.now, callback, priority)

    def schedule_batch(
        self,
        delays: "Iterable[float]",
        callback: Callable[[], None],
        priority: int = 0,
    ) -> None:
        """Schedule one callback at many delays in one bulk operation.

        Orders events exactly like
        ``for d in delays: schedule(d, callback, priority)`` (same FIFO
        tie-breaking, since enumeration preserves order), except that a
        negative delay anywhere in the batch rejects the *whole* batch
        atomically - no prefix is left scheduled.  Cheaper for bulk
        work-lists: when the batch rivals the pending
        queue it extends and re-heapifies once (O(m + n) total instead
        of n sift-ups); a batch that is small next to a large pending
        queue falls back to individual pushes, since re-heapifying m
        pending events per small wave would be the worse deal.
        """
        now = self.now
        seq = self._seq
        events = []
        for d in delays:
            if d < 0:
                raise SimulationError(f"cannot schedule in the past (delay={d})")
            events.append((now + d, priority, seq, callback))
            seq += 1
        self._seq = seq
        if len(events) * 8 < len(self._queue):
            for ev in events:
                heapq.heappush(self._queue, ev)
        else:
            self._queue.extend(events)
            heapq.heapify(self._queue)

    def run(self, until: float | None = None) -> float:
        """Drain the event queue (optionally up to a time bound).

        Returns the final simulation time.
        """
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return self.now
            time, _priority, _seq, callback = heapq.heappop(self._queue)
            if time < self.now - 1e-18:
                raise SimulationError("event time went backwards")
            self.now = time
            self.events_processed += 1
            callback()
        return self.now

    def __len__(self) -> int:
        return len(self._queue)


class Resource:
    """A serially-shared unit with FIFO service.

    ``acquire(duration)`` returns the (start, finish) times of the
    request as if the caller queued for the unit; state advances
    immediately (analytic FIFO), which composes with the event kernel by
    scheduling completions at ``finish``.
    """

    def __init__(self, kernel: EventKernel, name: str, n_units: int = 1) -> None:
        if n_units < 1:
            raise ValueError("n_units must be >= 1")
        self.kernel = kernel
        self.name = name
        self.n_units = n_units
        # next-free time per unit (greedy earliest-available assignment)
        self._free_at = [0.0] * n_units
        self.busy_time = 0.0
        self.requests = 0

    def acquire(self, duration: float, at: float | None = None) -> tuple[float, float]:
        """Reserve the earliest-available unit for ``duration`` seconds."""
        if duration < 0:
            raise ValueError("duration cannot be negative")
        t_req = self.kernel.now if at is None else at
        idx = min(range(self.n_units), key=lambda i: self._free_at[i])
        start = max(t_req, self._free_at[idx])
        finish = start + duration
        self._free_at[idx] = finish
        self.busy_time += duration
        self.requests += 1
        return start, finish

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(self.busy_time / (elapsed * self.n_units), 1.0)


class BusyTracker:
    """Accumulates busy intervals of a component for energy accounting."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy_s = 0.0

    def add(self, duration_s: float) -> None:
        if duration_s < 0:
            raise ValueError("duration cannot be negative")
        self.busy_s += duration_s


@dataclass
class TransactionLog:
    """Per-category counters for the simulation report."""

    counts: dict = field(default_factory=dict)
    time_s: dict = field(default_factory=dict)

    def record(self, category: str, n: int = 1, duration_s: float = 0.0) -> None:
        self.counts[category] = self.counts.get(category, 0) + n
        self.time_s[category] = self.time_s.get(category, 0.0) + duration_s
