"""Mesh network-on-chip connecting the accelerator tiles (paper Fig. 8).

A ``k x k`` mesh of routers (one per tile) with dimension-ordered (X-Y)
routing.  The simulator uses it for inter-layer activation
redistribution: after a layer completes, its output tensor moves to the
tiles holding the next layer's weights.

Built on :mod:`networkx` for the topology; routing, bandwidth and
energy are modelled explicitly:

* per-hop latency = router traversal (2 cycles) + link/bus transfer
  (Table IV),
* aggregate bandwidth = one word per link per cycle across the bisection,
* per-word-per-hop energy = router + bus energy per operation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.arch.peripherals import BUS, ROUTER, SYSTEM_CLOCK_HZ


@dataclass(frozen=True)
class NocTransfer:
    """Cost of moving a block of words across the mesh."""

    words: int
    avg_hops: float
    latency_s: float
    energy_j: float


class MeshNoc:
    """k x k mesh with X-Y routing."""

    def __init__(self, n_tiles: int = 16) -> None:
        side = int(math.isqrt(n_tiles))
        if side * side != n_tiles:
            raise ValueError(f"n_tiles={n_tiles} is not a perfect square")
        self.side = side
        self.n_tiles = n_tiles
        self.graph = nx.grid_2d_graph(side, side)

    # -- routing ---------------------------------------------------------
    def xy_route(
        self, src: "tuple[int, int]", dst: "tuple[int, int]"
    ) -> "list[tuple[int, int]]":
        """Dimension-ordered route: X first, then Y."""
        for node in (src, dst):
            if node not in self.graph:
                raise ValueError(f"node {node} outside {self.side}x{self.side} mesh")
        path = [src]
        x, y = src
        while x != dst[0]:
            x += 1 if dst[0] > x else -1
            path.append((x, y))
        while y != dst[1]:
            y += 1 if dst[1] > y else -1
            path.append((x, y))
        return path

    def hops(self, src: "tuple[int, int]", dst: "tuple[int, int]") -> int:
        return len(self.xy_route(src, dst)) - 1

    def average_hops(self) -> float:
        """Mean X-Y hop count over all (src, dst) pairs (uniform traffic)."""
        nodes = list(self.graph.nodes)
        total = sum(self.hops(s, d) for s in nodes for d in nodes)
        return total / (len(nodes) ** 2)

    # -- cost model --------------------------------------------------------
    @property
    def link_bandwidth_words_per_s(self) -> float:
        return SYSTEM_CLOCK_HZ  # one word per link per cycle

    @property
    def n_links(self) -> int:
        return self.graph.number_of_edges()

    def transfer(self, words: int) -> NocTransfer:
        """Uniform redistribution of ``words`` across the mesh.

        Throughput-limited by the aggregate link capacity divided by the
        average path length; latency adds one average-path pipeline fill.
        """
        if words < 0:
            raise ValueError("words cannot be negative")
        avg_hops = self.average_hops()
        if words == 0:
            return NocTransfer(0, avg_hops, 0.0, 0.0)
        aggregate_bw = self.n_links * self.link_bandwidth_words_per_s
        stream_s = words * avg_hops / aggregate_bw
        fill_s = avg_hops * (ROUTER.latency_s + BUS.latency_s)
        energy = words * avg_hops * (
            ROUTER.energy_per_op_j() + BUS.energy_per_op_j()
        )
        return NocTransfer(
            words=words,
            avg_hops=avg_hops,
            latency_s=stream_s + fill_s,
            energy_j=energy,
        )
