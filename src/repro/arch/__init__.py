"""System-architecture substrate and the transaction-level simulator.

* :mod:`repro.arch.events` - discrete-event kernel, resources,
* :mod:`repro.arch.peripherals` - Table IV component library,
* :mod:`repro.arch.analog` - AMM/MAM baselines + Table I solver,
* :mod:`repro.arch.designs` - accelerator designs, power/area
  breakdowns, area-proportionate scaling,
* :mod:`repro.arch.noc` - mesh NoC with X-Y routing,
* :mod:`repro.arch.simulator` - the SC_ONN_SIM replica producing FPS,
  FPS/W and FPS/W/mm2.
"""

from repro.arch.events import (
    BusyTracker,
    EventKernel,
    Resource,
    SimulationError,
    TransactionLog,
)
from repro.arch.peripherals import (
    EDRAM_WORDS_PER_ACCESS,
    IO_WORDS_PER_ACCESS,
    SYSTEM_CLOCK_HZ,
    TABLE_IV,
    PeripheralSpec,
    edram_bandwidth_words_per_s,
    io_bandwidth_words_per_s,
)
from repro.arch.analog import (
    AMM_DEAPCNN,
    KAPPA_DEFAULT,
    MAM_HOLYLIGHT,
    AnalogVdpcConfig,
    analog_lsb_margin,
    analog_max_n,
    table1_grid,
)
from repro.arch.designs import (
    AcceleratorDesign,
    AreaBreakdown,
    PowerBreakdown,
    analog_design,
    area_proportionate_vdpes,
    build_evaluated_designs,
    sconna_design,
)
from repro.arch.noc import MeshNoc, NocTransfer
from repro.arch.simulator import (
    AcceleratorSimulator,
    LayerTiming,
    PerfResult,
    simulate_inference,
)

__all__ = [
    "BusyTracker",
    "EventKernel",
    "Resource",
    "SimulationError",
    "TransactionLog",
    "EDRAM_WORDS_PER_ACCESS",
    "IO_WORDS_PER_ACCESS",
    "SYSTEM_CLOCK_HZ",
    "TABLE_IV",
    "PeripheralSpec",
    "edram_bandwidth_words_per_s",
    "io_bandwidth_words_per_s",
    "AMM_DEAPCNN",
    "KAPPA_DEFAULT",
    "MAM_HOLYLIGHT",
    "AnalogVdpcConfig",
    "analog_lsb_margin",
    "analog_max_n",
    "table1_grid",
    "AcceleratorDesign",
    "AreaBreakdown",
    "PowerBreakdown",
    "analog_design",
    "area_proportionate_vdpes",
    "build_evaluated_designs",
    "sconna_design",
    "MeshNoc",
    "NocTransfer",
    "AcceleratorSimulator",
    "LayerTiming",
    "PerfResult",
    "simulate_inference",
]
