"""Accelerator designs: the quantities the system simulator consumes.

One :class:`AcceleratorDesign` per evaluated machine (SCONNA,
MAM/HOLYLIGHT, AMM/DEAP-CNN), each exposing the same interface:

* per-layer cost drivers: VDP issue interval, piece/psum/reduction-op
  counts per output, weight-load time per mapping round;
* physical breakdowns: per-VDPE area, accelerator power and area;
* the **area-proportionate** constructor
  (:func:`build_evaluated_designs`) that scales the analog baselines'
  VDPE counts to match SCONNA's area, as Section VI-B prescribes
  (paper: 3971 MAM / 3172 AMM VDPEs vs SCONNA's 1024; our component
  models land within ~15 % - see EXPERIMENTS.md E7).

All three designs keep the *same* chip organisation (16-tile mesh, 4
VDPCs per tile, one reduction network / activation / pooling unit /
eDRAM per tile): the area-proportionate analysis equalises silicon, not
the number of shared post-processing units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.arch import peripherals as P
from repro.arch.analog import AMM_DEAPCNN, MAM_HOLYLIGHT, AnalogVdpcConfig
from repro.core.config import SconnaConfig
from repro.photonics.laser import LaserDiode


@dataclass(frozen=True)
class PowerBreakdown:
    """Static power by component group [W]."""

    items: "dict[str, float]" = field(default_factory=dict)

    @property
    def total_w(self) -> float:
        return sum(self.items.values())


@dataclass(frozen=True)
class AreaBreakdown:
    """Area by component group [mm2]."""

    items: "dict[str, float]" = field(default_factory=dict)

    @property
    def total_mm2(self) -> float:
        return sum(self.items.values())


@dataclass(frozen=True)
class AcceleratorDesign:
    """Everything the transaction-level simulator needs about a machine.

    The mapping distinction that drives the paper's headline result:

    * ``temporal_pieces=True`` (SCONNA) - a kernel vector's
      ``C = ceil(S/N)`` pieces execute *sequentially on one VDPE*, whose
      PCA accumulates several pieces per ADC readout and whose local
      adder combines readouts.  Cross-VDPE psum traffic: none.  This is
      possible because SCONNA's weights *stream* from the per-OSM LUT
      every pass - nothing is physically stationary in the optical path.
    * ``temporal_pieces=False`` (analog) - weights are *held* on the DKV
      MRRs (re-programming them per piece would burn a DAC write plus an
      eDRAM fetch of N words per pass), so the C pieces x 2 bit-slices
      occupy C x 2 distinct VDPEs whose psums must be combined through
      the shared per-tile reduction network.
    """

    name: str
    style: str                       #: "sconna" | "mam" | "amm"
    vdpe_size: int                   #: N
    total_vdpes: int
    n_tiles: int
    vdpcs_per_tile: int
    slicing_factor: int              #: VDPE gang size for 8-bit operands
    temporal_pieces: bool
    vdp_issue_interval_s: float
    vdp_fill_latency_s: float
    psums_per_output_fn: "object"    #: Callable[[int], int]
    reduction_ops_fn: "object"       #: Callable[[int], int]
    power: PowerBreakdown
    area: AreaBreakdown

    # -- mapping arithmetic -------------------------------------------------
    def pieces(self, vector_size: int) -> int:
        return math.ceil(vector_size / self.vdpe_size)

    def weight_slots(self, vector_size: int, n_kernels: int) -> int:
        """Resident VDPE slots a layer needs.

        Temporal mapping parks one whole kernel-slice per VDPE; spatial
        mapping needs one VDPE per piece-slice.
        """
        if self.temporal_pieces:
            return n_kernels * self.slicing_factor
        return n_kernels * self.pieces(vector_size) * self.slicing_factor

    def rounds(self, vector_size: int, n_kernels: int) -> int:
        """Weight-stationary swap rounds for one layer."""
        return math.ceil(
            self.weight_slots(vector_size, n_kernels) / self.total_vdpes
        )

    def passes_per_position(self, vector_size: int) -> int:
        """VDP passes one resident slot performs per output position."""
        return self.pieces(vector_size) if self.temporal_pieces else 1

    def slot_weight_words(self, vector_size: int) -> int:
        """Weight words loaded into one slot per round."""
        return vector_size if self.temporal_pieces else self.vdpe_size

    def psums_per_output(self, vector_size: int) -> int:
        return self.psums_per_output_fn(vector_size)

    def reduction_ops_per_output(self, vector_size: int) -> int:
        return self.reduction_ops_fn(vector_size)

    @property
    def vdpes_per_vdpc(self) -> int:
        return self.total_vdpes // (self.n_tiles * self.vdpcs_per_tile)

    @property
    def n_vdpcs(self) -> int:
        return self.n_tiles * self.vdpcs_per_tile


# ---------------------------------------------------------------------------
# SCONNA
# ---------------------------------------------------------------------------
def sconna_design(config: SconnaConfig | None = None) -> AcceleratorDesign:
    """The evaluated 1024-VDPE SCONNA accelerator."""
    cfg = config or SconnaConfig()
    n = cfg.vdpe_size
    total_vdpes = cfg.total_vdpes
    n_vdpcs = cfg.n_tiles * cfg.vdpcs_per_tile
    n_osms = total_vdpes * n

    diode = LaserDiode(
        power_dbm=cfg.laser_power_dbm, eta_wpe=cfg.laser_wall_plug_efficiency
    )
    power = PowerBreakdown(
        {
            "lasers": n_vdpcs * n * diode.electrical_power_w,
            "serializers": n_osms * P.SERIALIZER_PER_OSM.power_w,
            "osm_luts": n_osms * P.LUT_PER_OSM.power_w,
            "adcs": 2 * total_vdpes * P.SCONNA_ADC.power_w,
            "pcas": 2 * total_vdpes * P.PCA_CIRCUIT.power_w,
            "tiles": cfg.n_tiles
            * (
                P.REDUCTION_NETWORK.power_w
                + P.ACTIVATION_UNIT.power_w
                + P.POOLING_UNIT.power_w
                + P.EDRAM.power_w
                + P.BUS.power_w
                + P.ROUTER.power_w
            ),
            "io": P.IO_INTERFACE.power_w,
        }
    )
    area = AreaBreakdown(
        {
            "serializers": n_osms * P.SERIALIZER_PER_OSM.area_mm2,
            "osm_luts": n_osms * P.LUT_PER_OSM.area_mm2,
            "adcs": 2 * total_vdpes * P.SCONNA_ADC.area_mm2,
            "pcas": 2 * total_vdpes * P.PCA_CIRCUIT.area_mm2,
            "tiles": cfg.n_tiles
            * (
                P.REDUCTION_NETWORK.area_mm2
                + P.ACTIVATION_UNIT.area_mm2
                + P.POOLING_UNIT.area_mm2
                + P.EDRAM.area_mm2
                + P.BUS.area_mm2
                + P.ROUTER.area_mm2
            ),
            "io": P.IO_INTERFACE.area_mm2,
        }
    )

    def psums(s: int) -> int:
        return cfg.electrical_psums(s)

    def red_ops(s: int) -> int:
        # All of an output's ADC readouts come from the *same* VDPE
        # (temporal piece mapping) and are summed by its local
        # accumulator - no shared reduction-network traffic.
        return 0

    return AcceleratorDesign(
        name="SCONNA",
        style="sconna",
        vdpe_size=n,
        total_vdpes=total_vdpes,
        n_tiles=cfg.n_tiles,
        vdpcs_per_tile=cfg.vdpcs_per_tile,
        slicing_factor=1,
        temporal_pieces=True,
        vdp_issue_interval_s=cfg.vdp_issue_interval_s,
        vdp_fill_latency_s=cfg.vdp_pipeline_latency_s,
        psums_per_output_fn=psums,
        reduction_ops_fn=red_ops,
        power=power,
        area=area,
    )


# ---------------------------------------------------------------------------
# Analog baselines
# ---------------------------------------------------------------------------
def analog_design(
    config: AnalogVdpcConfig,
    name: str,
    total_vdpes: int,
    n_tiles: int = 16,
    vdpcs_per_tile: int = 4,
    laser_power_dbm: float = 10.0,
    laser_wpe: float = 0.1,
) -> AcceleratorDesign:
    """An analog MAM/AMM accelerator with an explicit VDPE count."""
    n = config.vdpe_size
    n_vdpcs = max(1, round(total_vdpes / config.vdpes_per_vdpc))
    diode = LaserDiode(power_dbm=laser_power_dbm, eta_wpe=laser_wpe)

    power = PowerBreakdown(
        {
            "lasers": n_vdpcs * n * diode.electrical_power_w,
            "dacs": total_vdpes * config.dacs_per_vdpe() * P.ANALOG_DAC.power_w,
            "adcs": total_vdpes * P.ANALOG_ADC.power_w,
            "tiles": n_tiles
            * (
                P.REDUCTION_NETWORK.power_w
                + P.ACTIVATION_UNIT.power_w
                + P.POOLING_UNIT.power_w
                + P.EDRAM.power_w
                + P.BUS.power_w
                + P.ROUTER.power_w
            ),
            "io": P.IO_INTERFACE.power_w,
        }
    )
    area = AreaBreakdown(
        {
            "dacs": total_vdpes * config.dacs_per_vdpe() * P.ANALOG_DAC.area_mm2,
            "adcs": total_vdpes * P.ANALOG_ADC.area_mm2,
            "tiles": n_tiles
            * (
                P.REDUCTION_NETWORK.area_mm2
                + P.ACTIVATION_UNIT.area_mm2
                + P.POOLING_UNIT.area_mm2
                + P.EDRAM.area_mm2
                + P.BUS.area_mm2
                + P.ROUTER.area_mm2
            ),
            "io": P.IO_INTERFACE.area_mm2,
        }
    )

    return AcceleratorDesign(
        name=name,
        style=config.organization,
        vdpe_size=n,
        total_vdpes=total_vdpes,
        n_tiles=n_tiles,
        vdpcs_per_tile=vdpcs_per_tile,
        slicing_factor=config.slicing_factor,
        temporal_pieces=False,
        vdp_issue_interval_s=config.vdp_issue_interval_s,
        vdp_fill_latency_s=config.dac_latency_s + config.adc_latency_s,
        psums_per_output_fn=config.psums_per_output,
        reduction_ops_fn=config.reduction_ops_per_output,
        power=power,
        area=area,
    )


def _analog_vdpe_area_mm2(config: AnalogVdpcConfig) -> float:
    return (
        config.dacs_per_vdpe() * P.ANALOG_DAC.area_mm2
        + P.ANALOG_ADC.area_mm2
    )


def area_proportionate_vdpes(
    sconna: AcceleratorDesign, config: AnalogVdpcConfig
) -> int:
    """Analog VDPE count whose VDPE-array area matches SCONNA's.

    Section VI-B: the analog accelerators are granted the same silicon
    as the 1024-VDPE SCONNA; shared tile infrastructure is identical on
    both sides, so the match is on the VDPE arrays.
    """
    sconna_vdpe_area = (
        sconna.area.items["serializers"]
        + sconna.area.items["osm_luts"]
        + sconna.area.items["adcs"]
        + sconna.area.items["pcas"]
    )
    return max(1, round(sconna_vdpe_area / _analog_vdpe_area_mm2(config)))


def build_evaluated_designs(
    config: SconnaConfig | None = None,
) -> "dict[str, AcceleratorDesign]":
    """The three machines of the paper's evaluation, area-matched."""
    sconna = sconna_design(config)
    mam_count = area_proportionate_vdpes(sconna, MAM_HOLYLIGHT)
    amm_count = area_proportionate_vdpes(sconna, AMM_DEAPCNN)
    return {
        "SCONNA": sconna,
        "MAM": analog_design(MAM_HOLYLIGHT, "MAM (HOLYLIGHT)", mam_count),
        "AMM": analog_design(AMM_DEAPCNN, "AMM (DEAPCNN)", amm_count),
    }
