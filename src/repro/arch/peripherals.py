"""Peripheral component library (paper Table IV).

Each entry carries power [W], area [mm2] and latency [s].  Two values
are reinterpreted relative to the literal table text, with the
reasoning recorded here because the area-proportionate analysis (and
hence Fig. 9(c)) depends on them:

* **Serializer per OSM: 5.9 mm2 -> 5.9e-3 mm2.**  5.9 mm2 per OSM would
  make one 176-OSM VDPE ~1000 mm2 (a full reticle for a single VDPE);
  the cited 45 nm SerDes macro [48] is a sub-mm2 block.  At 5.9e-3 mm2
  the area-proportionate VDPE counts reproduce the paper's (3971 / 3172
  vs our 3856 / 2747, within ~5-13 %).
* **LUT per OSM: 0.09 mm2 -> 9.7e-3 mm2.**  A 16 KiB eDRAM macro in the
  cited gain-cell technology [49] is ~0.01 mm2; 0.09 mm2 x 180k OSMs
  would be ~16,000 mm2 of LUT alone.

Latencies quoted in cycles (bus: 5, router: 2) are converted at the
1 GHz system clock the 0.78/1.56/3.125 ns entries imply.
"""

from __future__ import annotations

from dataclasses import dataclass

#: system clock implied by Table IV's ns-granularity entries
SYSTEM_CLOCK_HZ: float = 1e9


@dataclass(frozen=True)
class PeripheralSpec:
    """One Table IV row."""

    name: str
    power_w: float
    area_mm2: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.power_w < 0 or self.area_mm2 < 0 or self.latency_s < 0:
            raise ValueError(f"{self.name}: negative spec value")

    def energy_per_op_j(self) -> float:
        """Dynamic energy of one operation (power x latency)."""
        return self.power_w * self.latency_s


def _cycles(n: int) -> float:
    return n / SYSTEM_CLOCK_HZ


# --- shared peripherals (Table IV, top block) --------------------------
REDUCTION_NETWORK = PeripheralSpec("reduction_network", 0.05e-3, 3.00e-5, 3.125e-9)
ACTIVATION_UNIT = PeripheralSpec("activation_unit", 0.52e-3, 6.00e-4, 0.78e-9)
IO_INTERFACE = PeripheralSpec("io_interface", 140.18e-3, 2.44e-2, 0.78e-9)
POOLING_UNIT = PeripheralSpec("pooling_unit", 0.4e-3, 2.40e-4, 3.125e-9)
EDRAM = PeripheralSpec("edram", 41.1e-3, 1.66e-1, 1.56e-9)
BUS = PeripheralSpec("bus", 7e-3, 9.00e-3, _cycles(5))
ROUTER = PeripheralSpec("router", 42e-3, 0.151, _cycles(2))

# --- converter peripherals ----------------------------------------------
ANALOG_DAC = PeripheralSpec("analog_dac", 30e-3, 0.034, 0.78e-9)
ANALOG_ADC = PeripheralSpec("analog_adc", 29e-3, 0.103, 0.78e-9)
SCONNA_ADC = PeripheralSpec("sconna_adc", 2.55e-3, 0.002, 0.78e-9)

# --- SCONNA-only peripherals (see module docstring for area notes) -----
SERIALIZER_PER_OSM = PeripheralSpec("serializer_per_osm", 5e-3, 5.9e-3, 0.03e-9)
LUT_PER_OSM = PeripheralSpec("lut_per_osm", 0.06e-3, 9.7e-3, 2e-9)
PCA_CIRCUIT = PeripheralSpec("pca", 0.02e-3, 0.28, 0.0)

#: words moved per eDRAM access (a 256-bit port at 8-bit words - the
#: ISAAC-style tile buffer these Table IV entries descend from)
EDRAM_WORDS_PER_ACCESS: int = 32

#: words moved per IO-interface access (off-chip DRAM burst)
IO_WORDS_PER_ACCESS: int = 64


def edram_bandwidth_words_per_s() -> float:
    """Per-tile eDRAM streaming bandwidth."""
    return EDRAM_WORDS_PER_ACCESS / EDRAM.latency_s


def io_bandwidth_words_per_s() -> float:
    """Off-chip IO streaming bandwidth (shared by the whole accelerator)."""
    return IO_WORDS_PER_ACCESS / IO_INTERFACE.latency_s


TABLE_IV = {
    spec.name: spec
    for spec in [
        REDUCTION_NETWORK,
        ACTIVATION_UNIT,
        IO_INTERFACE,
        POOLING_UNIT,
        EDRAM,
        BUS,
        ROUTER,
        ANALOG_DAC,
        ANALOG_ADC,
        SCONNA_ADC,
        SERIALIZER_PER_OSM,
        LUT_PER_OSM,
        PCA_CIRCUIT,
    ]
}
