"""Quickstart: the SCONNA stack in five minutes.

Walks the public API bottom-up: one optical stochastic multiplication,
one full vector dot product on a VDPE, the Section V scalability
analysis, and a system-level inference simulation of GoogleNet.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.arch.designs import build_evaluated_designs
from repro.arch.simulator import simulate_inference
from repro.cnn.zoo import build_model
from repro.core import (
    OpticalStochasticMultiplier,
    SconnaVDPE,
    analyze_scalability,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. One stochastic multiplication, three levels of fidelity
    # ------------------------------------------------------------------
    osm = OpticalStochasticMultiplier()
    ib, wb = 200, 100
    print("1) Optical Stochastic Multiplier  (ib=200, wb=100, B=8)")
    print(f"   count-domain:        {osm.multiply(ib, wb)}")
    print(f"   LUT streams + AND:   {osm.multiply_streams(ib, wb)}")
    print(f"   full optical device: {osm.multiply_optical(ib, wb)}")
    print(f"   (exact product/256 = {ib * wb / 256:.2f}; the OSM floors it)")
    print()

    # ------------------------------------------------------------------
    # 2. A 4608-point VDP on one VDPE (ResNet50's largest kernel)
    # ------------------------------------------------------------------
    rng = np.random.default_rng(0)
    i_vec = rng.integers(0, 257, size=4608)
    w_vec = rng.integers(-256, 257, size=4608)
    vdpe = SconnaVDPE(seed=0)
    res = vdpe.compute_vdp(i_vec, w_vec)
    exact = SconnaVDPE.exact_reference(i_vec, w_vec, 8)
    print("2) SCONNA VDPE computing an S=4608 vector dot product")
    print(f"   optical passes:     {res.optical_passes} (vs 105 for N=44 analog)")
    print(f"   electrical psums:   {res.electrical_psums} (vs 420 for sliced MAM)")
    print(f"   latency:            {res.latency_s * 1e9:.1f} ns")
    print(f"   result (with ADC error): {res.signed_count}  [exact: {exact}]")
    print()

    # ------------------------------------------------------------------
    # 3. Section V scalability analysis
    # ------------------------------------------------------------------
    rep = analyze_scalability()
    print("3) Scalability (Section V)")
    print(f"   max OAG bitrate at design FWHM: {rep.max_bitrate_at_fwhm_hz / 1e9:.1f} Gb/s")
    print(f"   max N from the Eq. 4 budget:    {rep.max_n_at_minus_30_dbm} (paper: 176)")
    print(f"   PCA capacity:                   {rep.pca_capacity_ones} ones "
          f"(full pass = {rep.pca_full_scale_ones})")
    print()

    # ------------------------------------------------------------------
    # 4. System-level inference simulation
    # ------------------------------------------------------------------
    designs = build_evaluated_designs()
    model = build_model("GoogleNet")
    print("4) Batch-1 GoogleNet inference on the three evaluated machines")
    for name, design in designs.items():
        perf = simulate_inference(design, model)
        print(
            f"   {name:16s} {perf.fps:9.1f} FPS   "
            f"{perf.fps_per_watt:8.4f} FPS/W   "
            f"{perf.area_mm2:7.0f} mm2"
        )


if __name__ == "__main__":
    main()
