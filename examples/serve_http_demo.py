"""End-to-end serving demo: train -> register -> serve -> HTTP clients.

Trains a compact CNN briefly, quantizes it, stores it in a model
registry, serves it through :class:`repro.serve.SconnaService` with
dynamic micro-batching on the selected execution backend, and exercises
the HTTP endpoint the way an external client would - through
:class:`repro.serve.SconnaClient` on the binary frame wire (one
keep-alive connection; `--wire json` falls back to the classic JSON
body), including a per-request accelerator cost annotation and a
streamed multi-image request.  SIGINT/SIGTERM handlers drain in-flight
requests and reap shard processes, and the aggregated metrics snapshot
(request-side + every backend worker) is printed at exit.

Run:  PYTHONPATH=src python examples/serve_http_demo.py
      PYTHONPATH=src python examples/serve_http_demo.py --backend process --shards 2
      PYTHONPATH=src python examples/serve_http_demo.py --backend process \
          --transport pipe --placement snet=0 --affinity auto
      PYTHONPATH=src python examples/serve_http_demo.py --wire json
      PYTHONPATH=src python examples/serve_http_demo.py --trace --log-requests
"""

import argparse
import json
import tempfile

import numpy as np

from repro.cnn import QuantizedModel, build_proxy, generate_dataset, train_test_split
from repro.cnn.train import train
from repro.serve import (
    BatchingPolicy,
    ModelRegistry,
    SconnaClient,
    SconnaService,
    StructuredLogger,
    install_shutdown_handlers,
    serve_http,
)
from repro.serve.telemetry import POLICY_ALWAYS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="thread",
                        choices=("thread", "process"),
                        help="execution backend (default: thread)")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker processes for --backend process")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker threads for --backend thread")
    parser.add_argument("--transport", default="shm",
                        choices=("pipe", "shm"),
                        help="process-backend batch transport (default: shm "
                             "shared-memory rings)")
    parser.add_argument("--affinity", default="none",
                        choices=("auto", "none"),
                        help="process-backend CPU pinning (default: none)")
    parser.add_argument("--placement", default=None,
                        help="shard placement for the demo model, e.g. "
                             "'snet=0' (default: every shard)")
    parser.add_argument("--wire", default="frame",
                        choices=("frame", "npy", "json"),
                        help="HTTP request encoding (default: frame - the "
                             "binary wire protocol)")
    parser.add_argument("--trace", action="store_true",
                        help="trace every request (with per-layer engine "
                             "profiling) and print the HTTP request's "
                             "per-stage latency breakdown table")
    parser.add_argument("--log-requests", action="store_true",
                        help="emit one structured JSON line per request "
                             "on stderr (the access log the server uses "
                             "instead of ad-hoc prints)")
    args = parser.parse_args()
    placement = None
    if args.placement is not None:
        from repro.serve import ShardPlacement

        try:
            placement = ShardPlacement.parse(args.placement)
        except ValueError as exc:
            parser.error(str(exc))

    print("training snet_proxy (short run - this is a serving demo) ...")
    dataset = generate_dataset(n_per_class=60, seed=0)
    train_set, test_set = train_test_split(dataset, test_fraction=0.3, seed=1)
    model = build_proxy("snet_proxy", seed=0)
    train(model, train_set, epochs=2, seed=0)
    qmodel = QuantizedModel.from_trained(model, train_set.images[:64])

    with tempfile.TemporaryDirectory() as tmp:
        print(f"registering model under {tmp} ...")
        registry = ModelRegistry(tmp)
        registry.save("snet", qmodel, arch_model="ShuffleNet_V2")

        service = SconnaService(
            policy=BatchingPolicy(max_batch_size=32, max_wait_ms=2.0),
            n_workers=args.workers,
            backend=args.backend,
            n_shards=args.shards,
            transport=args.transport,
            placement=placement,
            affinity=None if args.affinity == "none" else args.affinity,
            trace_policy=POLICY_ALWAYS if args.trace else None,
            request_log=StructuredLogger() if args.log_requests else None,
        )
        service.add_from_registry(registry, "snet", warm_shape=(3, 24, 24))
        server, _ = serve_http(service)
        # a signal now drains every lane and reaps shard processes
        # instead of leaving orphans behind
        install_shutdown_handlers(service, servers=(server,))
        backend_info = service.backend.info()
        topology = (
            f"{backend_info.get('shards')} shard processes, "
            f"{backend_info.get('transport')} transport, "
            f"affinity {backend_info.get('affinity')}"
            if args.backend == "process"
            else f"{args.workers} worker threads"
        )
        print(f"serving at {server.url}  (POST /v1/predict, backend: "
              f"{backend_info['kind']}, {topology})")

        try:
            # a burst of clients: the scheduler coalesces them
            futures = [
                service.predict_async("snet", test_set.images[i], seed=i)
                for i in range(24)
            ]
            hits = sum(
                f.result(120.0).top_class == int(test_set.labels[i])
                for i, f in enumerate(futures)
            )
            print(f"in-process burst: 24 requests, {hits} top-1 hits")

            with SconnaClient(server.url, wire_format=args.wire) as client:
                # one HTTP request with cost annotation (binary frame
                # body by default: the image crosses as raw float64
                # bytes, not ASCII decimal)
                resp = client.predict(
                    test_set.images[0], model="snet", top_k=3, seed=0,
                    cost=True,
                )
                cost = resp.cost
                print(f"HTTP predict ({args.wire} wire): "
                      f"label {int(test_set.labels[0])}, "
                      f"top-3 {[c for c, _ in resp.top_k[0]]}")
                print(f"  simulated cost on {cost['accelerator']} "
                      f"({cost['model']}): {cost['latency_s'] * 1e6:.1f} us, "
                      f"{cost['energy_j'] * 1e3:.2f} mJ, "
                      f"bottleneck: {cost['bottleneck']}")

                if args.trace and resp.trace_id is not None:
                    # the server's span tree for the request we just
                    # made, reduced to a per-stage latency table
                    doc = client.trace(resp.trace_id)
                    total = doc["duration_ms"]
                    by_stage: "dict[str, float]" = {}
                    for span in doc["spans"]:
                        if span["parent_id"] is None:
                            continue  # the root *is* the total
                        by_stage[span["name"]] = (
                            by_stage.get(span["name"], 0.0)
                            + span["duration_ms"]
                        )
                    print(f"  trace {resp.trace_id}: "
                          f"{total:.2f} ms end to end")
                    print(f"    {'stage':<18s} {'ms':>9s} {'share':>7s}")
                    for name, ms in sorted(
                        by_stage.items(), key=lambda kv: -kv[1]
                    ):
                        print(f"    {name:<18s} {ms:9.3f} "
                              f"{ms / total:7.1%}")

                # a streamed multi-image stack: per-image logits arrive
                # as chunked frames over the same connection
                stack = np.stack([test_set.images[i] for i in range(6)])
                streamed = [
                    int(part.top_k[0][0][0])
                    for part in client.predict_stream(stack, model="snet")
                ]
                truth = [int(test_set.labels[i]) for i in range(6)]
                print(f"HTTP stream: 6-image stack -> per-image frames, "
                      f"predicted {streamed} vs labels {truth}")
                print(f"  connections opened by the client: {client.opened} "
                      "(keep-alive)")
        finally:
            server.shutdown()
            service.close()
            # snapshot after close: every batch is accounted for, and the
            # shard-side counters were merged in while shards were alive
            snap = service.metrics_snapshot()
            print("aggregated metrics at exit:")
            print(f"  {snap['requests']} requests in "
                  f"{snap['batches']} batches, "
                  f"p50 {snap['latency']['p50_ms']:.1f} ms, "
                  f"p99 {snap['latency']['p99_ms']:.1f} ms, "
                  f"batch histogram {snap['batch_size']['histogram']}")
            print(f"  backend: {json.dumps(snap['backend'])}")
            print(f"  admission: {json.dumps(snap['admission'])}")
            print(f"  simulation cache: {json.dumps(snap['costs'])}")
    print("done - see docs/serving.md for the architecture")


if __name__ == "__main__":
    main()
