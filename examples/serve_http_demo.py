"""End-to-end serving demo: train -> register -> serve -> HTTP clients.

Trains a compact CNN briefly, quantizes it, stores it in a model
registry, serves it through :class:`repro.serve.SconnaService` with
dynamic micro-batching, and exercises the JSON-over-HTTP endpoint the
way an external client would - including a per-request accelerator cost
annotation and the serving metrics snapshot.

Run:  PYTHONPATH=src python examples/serve_http_demo.py
"""

import json
import tempfile
import urllib.request

from repro.cnn import QuantizedModel, build_proxy, generate_dataset, train_test_split
from repro.cnn.train import train
from repro.serve import BatchingPolicy, ModelRegistry, SconnaService, serve_http


def post_json(url: str, payload: dict) -> dict:
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    return json.loads(urllib.request.urlopen(req, timeout=60).read())


def main() -> None:
    print("training snet_proxy (short run - this is a serving demo) ...")
    dataset = generate_dataset(n_per_class=60, seed=0)
    train_set, test_set = train_test_split(dataset, test_fraction=0.3, seed=1)
    model = build_proxy("snet_proxy", seed=0)
    train(model, train_set, epochs=2, seed=0)
    qmodel = QuantizedModel.from_trained(model, train_set.images[:64])

    with tempfile.TemporaryDirectory() as tmp:
        print(f"registering model under {tmp} ...")
        registry = ModelRegistry(tmp)
        registry.save("snet", qmodel, arch_model="ShuffleNet_V2")

        service = SconnaService(
            policy=BatchingPolicy(max_batch_size=32, max_wait_ms=2.0),
            n_workers=2,
        )
        service.add_from_registry(registry, "snet", warm_shape=(3, 24, 24))
        server, _ = serve_http(service)
        print(f"serving at {server.url}  (POST /v1/predict)")

        try:
            # a burst of clients: the scheduler coalesces them
            futures = [
                service.predict_async("snet", test_set.images[i], seed=i)
                for i in range(24)
            ]
            hits = sum(
                f.result(30.0).top_class == int(test_set.labels[i])
                for i, f in enumerate(futures)
            )
            print(f"in-process burst: 24 requests, {hits} top-1 hits")

            # one HTTP request with cost annotation
            resp = post_json(
                server.url + "/v1/predict",
                {
                    "model": "snet",
                    "image": test_set.images[0].tolist(),
                    "top_k": 3,
                    "seed": 0,
                    "cost": True,
                },
            )
            top = resp["top_k"][0]
            cost = resp["cost"]
            print(f"HTTP predict: label {int(test_set.labels[0])}, "
                  f"top-3 {[t['class'] for t in top]}")
            print(f"  simulated cost on {cost['accelerator']} "
                  f"({cost['model']}): {cost['latency_s'] * 1e6:.1f} us, "
                  f"{cost['energy_j'] * 1e3:.2f} mJ, "
                  f"bottleneck: {cost['bottleneck']}")

            metrics = json.loads(
                urllib.request.urlopen(server.url + "/v1/metrics", timeout=30).read()
            )
            print(f"metrics: {metrics['requests']} requests in "
                  f"{metrics['batches']} batches, "
                  f"p50 {metrics['latency']['p50_ms']:.1f} ms, "
                  f"batch histogram {metrics['batch_size']['histogram']}")
        finally:
            server.shutdown()
            service.close()
    print("done - see docs/serving.md for the architecture")


if __name__ == "__main__":
    main()
