"""Design-space exploration with the photonic solvers.

Sweeps the knobs a SCONNA architect controls and prints their effect on
the achievable design point:

* laser power        -> maximum VDPE size N (Eq. 4 budget),
* ring FWHM          -> maximum OSM bitrate (Fig. 7(a) model),
* operand precision  -> stream length and per-VDP latency,
* analog comparison  -> what the same knobs cost an analog VDPC
                        (Table I model).

Run:  python examples/design_space_exploration.py
"""

from repro.arch.analog import analog_max_n
from repro.core.config import SconnaConfig
from repro.core.scalability import (
    stream_bits_vs_precision,
    sweep_max_n_vs_laser_power,
)
from repro.photonics.oag import max_bitrate_for_fwhm
from repro.utils.tables import Table


def main() -> None:
    t = Table(["laser power [dBm]", "max SCONNA N (Eq. 4)"],
              title="1) Laser power vs achievable VDPE size")
    for p, n in sweep_max_n_vs_laser_power([4.0, 6.0, 8.0, 10.0, 12.0]):
        t.add_row([f"{p:g}", n])
    print(t.render())
    print()

    t = Table(["FWHM [nm]", "max OSM bitrate [Gb/s]"],
              title="2) Ring linewidth vs OSM speed")
    for f in (0.2, 0.4, 0.6, 0.8, 1.0):
        t.add_row([f"{f:.1f}", f"{max_bitrate_for_fwhm(f) / 1e9:.1f}"])
    print(t.render())
    print()

    t = Table(["precision B", "stream bits", "VDP issue [ns]"],
              title="3) Precision vs stream length (SC's flexibility)")
    for b, bits in stream_bits_vs_precision(10):
        cfg = SconnaConfig(precision_bits=b)
        t.add_row([b, bits, f"{cfg.vdp_issue_interval_s * 1e9:.2f}"])
    print(t.render())
    print()

    t = Table(
        ["precision B", "SCONNA N", "analog MAM N @5GS/s"],
        title="4) Precision vs VDPE size: digital SC vs analog",
    )
    for b in (4, 6, 8):
        t.add_row([b, 176, analog_max_n("mam", b, 5e9)])
    print(t.render())
    print()
    print("The analog N collapses with precision (Table I); SCONNA's N is")
    print("precision-independent - the paper's core motivation.")


if __name__ == "__main__":
    main()
