"""CNN inference through the stochastic pipeline: accuracy impact.

Trains a compact CNN on the synthetic dataset, quantizes it to 8 bits,
and compares three datapaths on the test set:

* float      - the trained network,
* int8       - exact integer arithmetic,
* SCONNA     - count-domain stochastic products + multi-pass PCA
               accumulation + the calibrated 1.3 %-MAPE ADC error.

This is a single-model slice of the Table V experiment
(``benchmarks/bench_table5.py`` runs all four proxies).

Run:  python examples/cnn_inference_accuracy.py [--batch-size N]

``--batch-size`` bounds the evaluation's working set: logits are
computed and scored in streaming chunks of that size, never
materialized for the whole test set at once.
"""

import argparse

from repro.cnn import (
    QuantizedModel,
    build_proxy,
    generate_dataset,
    train,
    train_test_split,
)
from repro.stochastic.error_models import SconnaErrorModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--batch-size", type=int, default=50,
        help="streaming evaluation batch size (default: 50)",
    )
    args = parser.parse_args()
    batch_size = args.batch_size

    print("generating synthetic dataset (10 classes, 3x24x24) ...")
    dataset = generate_dataset(n_per_class=120, seed=0)
    train_set, test_set = train_test_split(dataset, test_fraction=0.3, seed=1)

    print("training snet_proxy (ShuffleNet_V2 stand-in) ...")
    model = build_proxy("snet_proxy", seed=0)
    result = train(model, train_set, epochs=6, test_set=test_set, seed=0)
    print(f"  float test accuracy: {result.test_accuracy * 100:.1f} %")

    print("post-training 8-bit quantization + SCONNA evaluation ...")
    qmodel = QuantizedModel.from_trained(model, train_set.images[:64])

    top1_f = qmodel.top_k_accuracy(
        test_set.images, test_set.labels, 1, mode="float", batch_size=batch_size
    )
    top1_i = qmodel.top_k_accuracy(
        test_set.images, test_set.labels, 1, mode="int8", batch_size=batch_size
    )

    # average the stochastic datapath over several ADC noise draws -
    # a single draw on a small test set is dominated by shot noise
    top1_s = []
    for seed in (0, 1, 2, 3):
        top1_s.append(
            qmodel.top_k_accuracy(
                test_set.images, test_set.labels, 1, mode="sconna",
                error_model=SconnaErrorModel(seed=seed),
                batch_size=batch_size,
            )
        )
    mean_sconna = sum(top1_s) / len(top1_s)

    print()
    print(f"  Top-1: float {top1_f * 100:5.1f} %   "
          f"int8 {top1_i * 100:5.1f} %   "
          f"SCONNA {mean_sconna * 100:5.1f} % (mean of 4 ADC seeds)")
    print(f"  SCONNA Top-1 drop: {(top1_i - mean_sconna) * 100:+.2f} pp "
          f"(paper, ShuffleNet_V2: 0.5 pp)")
    print()
    print("note: at a few-hundred-image test set one flipped image is")
    print("~0.3 pp, so the drop fluctuates around its small true value;")
    print("benchmarks/bench_table5.py runs the full four-proxy study.")


if __name__ == "__main__":
    main()
