"""Accelerator comparison: regenerate the paper's Fig. 9 tables.

Simulates all four evaluation CNNs on SCONNA and the two area-matched
analog baselines, printing FPS, FPS/W and FPS/W/mm2 with the paper's
published geometric-mean uplifts alongside - the full E7/E8/E9
experiment as a standalone script.

Run:  python examples/accelerator_comparison.py
"""

from repro.analysis.fig9 import run_fig9


def main() -> None:
    for result in run_fig9():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
