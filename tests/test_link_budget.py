"""Tests for the optical link budget (Eq. 4) and max-N solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.link_budget import (
    LinkBudget,
    LossTerm,
    analog_vdpc_budget,
    sconna_vdpc_budget,
    solve_max_n,
)
from repro.photonics.waveguide import (
    PassiveLossParams,
    cascade_passby_loss_db,
    propagation_loss_db,
    splitter_loss_db,
)


class TestWaveguideLosses:
    def test_splitter_intrinsic_3db_per_stage(self):
        p = PassiveLossParams(el_splitter_db=0.0)
        assert splitter_loss_db(2, p) == pytest.approx(3.0103, rel=1e-3)
        assert splitter_loss_db(4, p) == pytest.approx(6.0206, rel=1e-3)

    def test_splitter_excess_loss(self):
        p = PassiveLossParams(el_splitter_db=0.5)
        assert splitter_loss_db(4, p) == pytest.approx(6.0206 + 1.0, rel=1e-3)

    def test_splitter_single_way_free(self):
        assert splitter_loss_db(1, PassiveLossParams()) == 0.0

    def test_propagation_scales_with_length(self):
        p = PassiveLossParams(il_waveguide_db_per_mm=0.3)
        assert propagation_loss_db(10.0, p) == pytest.approx(3.0)

    def test_cascade_passby_counts_n_minus_1(self):
        assert cascade_passby_loss_db(176, 0.01) == pytest.approx(1.75)
        assert cascade_passby_loss_db(1, 0.01) == 0.0

    def test_invalid_inputs(self):
        p = PassiveLossParams()
        with pytest.raises(ValueError):
            splitter_loss_db(0, p)
        with pytest.raises(ValueError):
            propagation_loss_db(-1.0, p)
        with pytest.raises(ValueError):
            cascade_passby_loss_db(0, 0.01)


class TestLinkBudget:
    def test_loss_terms_sum(self):
        b = LinkBudget(10.0, [LossTerm("a", 1.0), LossTerm("b", 2.5)])
        assert b.total_loss_db == pytest.approx(3.5)
        assert b.received_power_dbm == pytest.approx(6.5)

    def test_margin_and_closes(self):
        b = LinkBudget(0.0, [LossTerm("x", 10.0)])
        assert b.margin_db(-12.0) == pytest.approx(2.0)
        assert b.closes(-12.0)
        assert not b.closes(-9.0)

    def test_negative_loss_term_rejected(self):
        with pytest.raises(ValueError):
            LossTerm("bad", -0.1)

    def test_describe_lists_all_terms(self):
        b = sconna_vdpc_budget(16, 16)
        text = b.describe()
        assert "splitter" in text
        assert "network penalty" in text
        assert "received" in text


class TestSconnaBudget:
    def test_paper_operating_point(self):
        """Section V-B: N=M=176 with Table III losses receives ~-30 dBm.

        (The paper quotes P_PD-opt = -28 dBm but N=176 closes exactly at
        -30 dBm with its own Table III values; see DESIGN.md.)
        """
        b = sconna_vdpc_budget(176, 176, laser_power_dbm=10.0)
        assert b.received_power_dbm == pytest.approx(-30.0, abs=0.1)

    def test_max_n_at_minus_30_dbm_is_176(self):
        n = solve_max_n(lambda n, m: sconna_vdpc_budget(n, m), -30.0)
        assert n == 176

    def test_max_n_at_minus_28_dbm(self):
        n = solve_max_n(lambda n, m: sconna_vdpc_budget(n, m), -28.0)
        assert 120 <= n <= 150  # our solver: 138

    def test_sconna_n_far_exceeds_analog_44(self):
        n = solve_max_n(lambda n, m: sconna_vdpc_budget(n, m), -30.0)
        assert n == 4 * 44  # 176 = exactly 4x the best analog VDPE size

    def test_budget_grows_with_n(self):
        losses = [sconna_vdpc_budget(n, n).total_loss_db for n in (8, 32, 128)]
        assert losses == sorted(losses)

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            sconna_vdpc_budget(0, 4)


class TestAnalogBudget:
    def test_amm_lossier_than_mam(self):
        amm = analog_vdpc_budget("amm", 16, 16).total_loss_db
        mam = analog_vdpc_budget("mam", 16, 16).total_loss_db
        assert amm > mam

    def test_unknown_org_rejected(self):
        with pytest.raises(ValueError):
            analog_vdpc_budget("xyz", 4, 4)  # type: ignore[arg-type]


class TestMaxNSolver:
    def test_returns_zero_when_nothing_closes(self):
        assert solve_max_n(lambda n, m: sconna_vdpc_budget(n, m), 20.0) == 0

    def test_fixed_m_supports_larger_n(self):
        n_eq = solve_max_n(lambda n, m: sconna_vdpc_budget(n, m), -30.0)
        n_fixed = solve_max_n(
            lambda n, m: sconna_vdpc_budget(n, m),
            -30.0,
            m_equals_n=False,
            m_fixed=4,
        )
        assert n_fixed > n_eq

    def test_conflicting_m_options_rejected(self):
        with pytest.raises(ValueError):
            solve_max_n(
                lambda n, m: sconna_vdpc_budget(n, m),
                -30.0,
                m_equals_n=True,
                m_fixed=4,
            )

    def test_boundary_exactness(self):
        """solve_max_n returns N such that N closes and N+1 does not."""
        sens = -30.0
        n = solve_max_n(lambda n, m: sconna_vdpc_budget(n, m), sens)
        assert sconna_vdpc_budget(n, n).closes(sens)
        assert not sconna_vdpc_budget(n + 1, n + 1).closes(sens)

    @given(st.floats(min_value=-40.0, max_value=-10.0))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_sensitivity(self, sens):
        """Easier sensitivity (more negative) can only increase max N."""
        n_hard = solve_max_n(lambda n, m: sconna_vdpc_budget(n, m), sens)
        n_easy = solve_max_n(lambda n, m: sconna_vdpc_budget(n, m), sens - 2.0)
        assert n_easy >= n_hard

    @given(st.floats(min_value=0.0, max_value=12.0))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_laser_power(self, p_laser):
        lo = solve_max_n(
            lambda n, m: sconna_vdpc_budget(n, m, laser_power_dbm=p_laser), -30.0
        )
        hi = solve_max_n(
            lambda n, m: sconna_vdpc_budget(n, m, laser_power_dbm=p_laser + 1.0),
            -30.0,
        )
        assert hi >= lo

    def test_monotone_in_loss_params(self):
        base = PassiveLossParams()
        worse = PassiveLossParams(il_penalty_db=base.il_penalty_db + 3.0)
        n_base = solve_max_n(
            lambda n, m: sconna_vdpc_budget(n, m, params=base), -30.0
        )
        n_worse = solve_max_n(
            lambda n, m: sconna_vdpc_budget(n, m, params=worse), -30.0
        )
        assert n_worse <= n_base
