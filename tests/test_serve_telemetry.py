"""End-to-end telemetry: span trees across every backend, bit-exact
logits under profiling, and the HTTP observability surface.

The acceptance contract of the telemetry plane: one seeded request
yields one span tree covering decode -> admission -> queue -> batch ->
shard -> engine -> encode with shard-side spans rejoined into the
parent's trace, the Prometheus exposition validates, and turning any
of it on never changes a single logit bit.
"""

import io
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cnn.datasets import N_CLASSES, generate_dataset
from repro.cnn.inference import QuantizedModel
from repro.cnn.micro import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.serve import (
    AdmissionPolicy,
    BatchingPolicy,
    SconnaClient,
    SconnaService,
    StructuredLogger,
    TracePolicy,
    parse_exposition,
    serve_http,
)
from repro.serve.telemetry import POLICY_ALWAYS, POLICY_OFF
from repro.utils.rng import make_rng

POLICY = BatchingPolicy(max_batch_size=8, max_wait_ms=2.0)


@pytest.fixture(scope="module")
def setup():
    rng = make_rng(0)
    model = Sequential(
        Conv2d(3, 6, 3, padding=1, rng=rng), ReLU(), MaxPool2d(4),
        Flatten(), Linear(6 * 6 * 6, N_CLASSES, rng=rng),
    )
    ds = generate_dataset(6, seed=3)
    qm = QuantizedModel.from_trained(model, ds.images[:24])
    return qm, ds


def traced_service(qm, **kwargs):
    svc = SconnaService(policy=POLICY, trace_policy=POLICY_ALWAYS, **kwargs)
    svc.add_model("tiny", qm)
    return svc


def span_names(trace):
    return {s.name for s in trace.spans()}


class TestThreadBackendTraces:
    def test_span_tree_covers_the_request_path(self, setup):
        qm, ds = setup
        svc = traced_service(qm, n_workers=2,
                             admission=AdmissionPolicy(max_inflight=16))
        try:
            svc.predict("tiny", ds.images[0], seed=1)
        finally:
            svc.close()
        trace = svc.tracer.store.latest()
        assert trace is not None and trace.sampled
        names = span_names(trace)
        assert {"admission", "queue.wait", "batch.form",
                "backend.execute"} <= names
        # POLICY_ALWAYS profiles the engine: per-stage spans present
        # (fused plan stages, or coarse per-layer spans on the
        # reference path)
        assert names & {"quantize", "layer"}
        assert names & {"matmul", "engine.matmul", "layer"}
        # engine spans are children of backend.execute
        by_id = {s.span_id: s for s in trace.spans()}
        (execute,) = [s for s in trace.spans() if s.name == "backend.execute"]
        prof = [s for s in trace.spans() if s.name in ("quantize", "layer")]
        assert prof and all(by_id[p.parent_id] is execute for p in prof)
        # root is finished and tagged
        assert trace.duration_ms is not None
        assert trace.root.tags["model"] == "tiny"
        assert trace.root.tags["batch_id"] >= 1

    def test_tracing_off_stores_nothing(self, setup):
        qm, ds = setup
        svc = SconnaService(policy=POLICY, trace_policy=POLICY_OFF,
                            n_workers=1)
        svc.add_model("tiny", qm)
        try:
            svc.predict("tiny", ds.images[0], seed=1)
        finally:
            svc.close()
        assert len(svc.tracer.store) == 0
        assert svc.tracer.stats()["started"] == 0

    def test_logits_bit_identical_with_profiling_on_and_off(self, setup):
        qm, ds = setup
        results = {}
        for key, policy in (("off", POLICY_OFF), ("on", POLICY_ALWAYS)):
            svc = SconnaService(policy=POLICY, trace_policy=policy,
                                n_workers=1)
            svc.add_model("tiny", qm)
            try:
                results[key] = svc.predict("tiny", ds.images[:3], seed=7)
            finally:
                svc.close()
        assert np.array_equal(results["off"].logits, results["on"].logits)

    def test_shed_request_traces_the_admission_decision(self, setup):
        qm, ds = setup
        svc = traced_service(
            qm, n_workers=1,
            admission=AdmissionPolicy(max_queued_bytes=1),
        )
        try:
            with pytest.raises(Exception, match="admission|shed|bytes"):
                svc.predict("tiny", ds.images[0])
        finally:
            svc.close()
        trace = svc.tracer.store.latest()
        assert trace is not None
        (adm,) = [s for s in trace.spans() if s.name == "admission"]
        assert adm.tags["admitted"] is False


class TestProcessBackendTraces:
    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_shard_spans_rejoin_the_parent_trace(self, setup, transport):
        qm, ds = setup
        svc = traced_service(qm, backend="process", n_shards=1,
                             transport=transport)
        try:
            pred = svc.predict("tiny", ds.images[1], seed=5, timeout=120.0)
        finally:
            svc.close()
        assert pred.logits.shape == (1, N_CLASSES)
        trace = svc.tracer.store.latest()
        assert trace is not None
        names = span_names(trace)
        assert {"queue.wait", "batch.form", "backend.dispatch",
                "shard.execute"} <= names
        (dispatch,) = [s for s in trace.spans()
                       if s.name == "backend.dispatch"]
        (shard,) = [s for s in trace.spans() if s.name == "shard.execute"]
        # the shard's span is grafted under the parent's dispatch span
        assert shard.parent_id == dispatch.span_id
        assert dispatch.tags["backend"] == "process"
        assert dispatch.tags["transport"] in ("pipe", "shm")
        if transport == "pipe":
            assert dispatch.tags["transport"] == "pipe"
        assert shard.tags["shard"] == dispatch.tags["shard"]
        # monotonic clocks are system-wide: the shard's window nests
        # inside the parent's dispatch window
        assert dispatch.start_s <= shard.start_s
        assert shard.end_s <= dispatch.end_s + 1e-6
        # engine profile spans crossed the pipe too, tagged by shard
        prof = [s for s in trace.spans()
                if s.name in ("quantize", "layer")]
        assert prof and all(p.tags.get("shard") == shard.tags["shard"]
                            for p in prof)

    def test_logits_bit_identical_with_profiling_over_shm(self, setup):
        qm, ds = setup
        results = {}
        for key, policy in (("off", POLICY_OFF), ("on", POLICY_ALWAYS)):
            svc = SconnaService(policy=POLICY, trace_policy=policy,
                                backend="process", n_shards=1,
                                transport="shm")
            svc.add_model("tiny", qm)
            try:
                results[key] = svc.predict("tiny", ds.images[:2], seed=11,
                                           timeout=120.0)
            finally:
                svc.close()
        assert np.array_equal(results["off"].logits, results["on"].logits)


class TestHTTPSurface:
    @pytest.fixture()
    def http(self, setup):
        qm, _ = setup
        log_stream = io.StringIO()
        svc = SconnaService(
            policy=POLICY, n_workers=2, trace_policy=POLICY_ALWAYS,
            request_log=StructuredLogger(log_stream),
        )
        svc.add_model("tiny", qm)
        server, _ = serve_http(svc)
        yield svc, server, log_stream
        server.shutdown()
        svc.close()

    def test_trace_id_header_and_trace_endpoints(self, setup, http):
        _, ds = setup
        svc, server, _ = http
        with SconnaClient(server.url) as client:
            pred = client.predict(ds.images[0], model="tiny", seed=3)
            assert pred.trace_id is not None
            assert client.last_trace_id == pred.trace_id
            # list endpoint knows the trace; detail endpoint has the tree
            summaries = client.traces()
            assert pred.trace_id in [s["trace_id"] for s in summaries]
            doc = client.trace(pred.trace_id)
            names = {s["name"] for s in doc["spans"]}
            assert {"http.request", "http.parse", "queue.wait",
                    "batch.form", "backend.execute", "http.encode"} <= names
            assert doc["duration_ms"] > 0
            latest = client.trace("latest")
            assert latest["trace_id"] == pred.trace_id

    def test_chrome_export(self, setup, http):
        _, ds = setup
        svc, server, _ = http
        with SconnaClient(server.url) as client:
            pred = client.predict(ds.images[1], model="tiny", seed=4)
            with urllib.request.urlopen(
                f"{server.url}/v1/trace/{pred.trace_id}?format=chrome"
            ) as resp:
                doc = json.loads(resp.read())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert all(e["dur"] >= 0 for e in events)
        assert {"http.parse", "http.encode"} <= {e["name"] for e in events}

    def test_unknown_trace_and_bad_limit(self, http):
        _, server, _ = http
        for path, status in (
            ("/v1/trace/deadbeef", 404),
            ("/v1/trace?limit=x", 400),
        ):
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + path)
            assert err.value.code == status

    def test_prometheus_exposition_from_live_server(self, setup, http):
        _, ds = setup
        svc, server, _ = http
        with SconnaClient(server.url) as client:
            client.predict(ds.images[2], model="tiny", seed=5)
        with urllib.request.urlopen(
            f"{server.url}/v1/metrics?format=prometheus"
        ) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        samples = parse_exposition(text)
        values = {n: v for n, l, v in samples if not l}
        assert values["sconna_requests_total"] >= 1
        assert values["sconna_uptime_seconds"] > 0
        assert values["sconna_traces_stored"] >= 1

    def test_metrics_json_gains_liveness_fields(self, setup, http):
        _, ds = setup
        svc, server, _ = http
        with SconnaClient(server.url) as client:
            client.predict(ds.images[3], model="tiny", seed=6)
            snap = client.metrics()
        assert snap["uptime_s"] > 0
        assert snap["queue_depth_current"] == 0
        assert snap["inflight_by_model"] == {}
        assert snap["telemetry"]["started"] >= 1

    def test_structured_log_line_per_request(self, setup, http):
        _, ds = setup
        svc, server, log_stream = http
        with SconnaClient(server.url, wire_format="json") as client:
            pred = client.predict(ds.images[4], model="tiny", seed=8)
        lines = [json.loads(l) for l in log_stream.getvalue().splitlines()]
        requests = [l for l in lines if l["event"] == "request"]
        assert len(requests) == 1
        line = requests[0]
        assert line["trace_id"] == pred.trace_id
        assert line["model"] == "tiny"
        assert line["status"] == 200
        assert line["wire"] == "application/json"
        assert line["latency_ms"] > 0
        assert "queue.wait" in line["breakdown"]

    def test_in_process_sampling_respects_seeded_policy(self, setup):
        """The tracer's admit/skip sequence is deterministic under a
        seeded policy even through the full service path."""
        qm, ds = setup
        admitted = []
        for _ in range(2):
            svc = SconnaService(
                policy=POLICY, n_workers=1,
                trace_policy=TracePolicy(sample_rate=0.5, seed=7),
            )
            svc.add_model("tiny", qm)
            try:
                for i in range(8):
                    svc.predict("tiny", ds.images[i % 6], ideal=True)
            finally:
                svc.close()
            admitted.append(svc.tracer.stats()["committed"])
        assert admitted[0] == admitted[1]
        assert 0 < admitted[0] < 8
