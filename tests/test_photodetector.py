"""Tests for the receiver noise model (Eq. 3) and sensitivity solver (Eq. 2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.photodetector import (
    PhotodetectorParams,
    bit_resolution,
    noise_spectral_density_a_per_rthz,
    photocurrent_a,
    rms_noise_current_a,
    snr_db,
)
from repro.photonics.sensitivity import (
    max_resolution_bits,
    sensitivity_curve_dbm,
    solve_sensitivity_dbm,
)
from repro.utils.units import dbm_to_watts


class TestNoiseModel:
    def test_thermal_floor_dominates_at_low_power(self):
        p = PhotodetectorParams()
        beta = noise_spectral_density_a_per_rthz(0.0, p)
        # 4kT/RL with T=300K, RL=50 ohm -> sqrt(3.31e-22) = 1.82e-11 A/rtHz
        assert beta == pytest.approx(1.82e-11, rel=0.02)

    def test_beta_grows_with_power(self):
        p = PhotodetectorParams()
        b0 = noise_spectral_density_a_per_rthz(1e-6, p)
        b1 = noise_spectral_density_a_per_rthz(1e-3, p)
        assert b1 > b0

    def test_rin_dominates_at_high_power(self):
        p = PhotodetectorParams()
        power = 10e-3  # 10 mW on the PD
        beta = noise_spectral_density_a_per_rthz(power, p)
        rin_term = math.sqrt(
            (p.responsivity_a_per_w * power) ** 2 * p.rin_linear_per_hz
        )
        assert rin_term / beta > 0.9

    def test_photocurrent_responsivity(self):
        p = PhotodetectorParams()
        assert photocurrent_a(dbm_to_watts(-28.0), p) == pytest.approx(
            1.2 * 1.585e-6, rel=1e-3
        )

    def test_negative_power_rejected(self):
        p = PhotodetectorParams()
        with pytest.raises(ValueError):
            photocurrent_a(-1.0, p)
        with pytest.raises(ValueError):
            noise_spectral_density_a_per_rthz(-1.0, p)

    def test_rms_noise_scales_sqrt_bandwidth(self):
        p = PhotodetectorParams()
        n1 = rms_noise_current_a(1e-6, 1e9, p)
        n4 = rms_noise_current_a(1e-6, 4e9, p)
        assert n4 == pytest.approx(2 * n1, rel=1e-9)

    def test_snr_increases_with_power(self):
        p = PhotodetectorParams()
        assert snr_db(1e-5, 1e9, p) > snr_db(1e-6, 1e9, p)

    @given(st.floats(min_value=-40, max_value=0), st.floats(min_value=1e8, max_value=1e11))
    @settings(max_examples=50, deadline=None)
    def test_bit_resolution_monotone_in_power(self, p_dbm, dr):
        p = PhotodetectorParams()
        assert bit_resolution(p_dbm + 3.0, dr, p) > bit_resolution(p_dbm, dr, p)


class TestSensitivitySolver:
    def test_solution_satisfies_eq2(self):
        p = PhotodetectorParams()
        s = solve_sensitivity_dbm(1.0, 30e9, p)
        assert bit_resolution(s, 30e9, p) == pytest.approx(1.0, abs=1e-4)

    def test_higher_rate_needs_more_power(self):
        assert solve_sensitivity_dbm(1.0, 10e9) < solve_sensitivity_dbm(1.0, 40e9)

    def test_more_bits_need_more_power(self):
        assert solve_sensitivity_dbm(1.0, 5e9) < solve_sensitivity_dbm(4.0, 5e9)

    def test_analog_multibit_vastly_harder_than_digital(self):
        # SCONNA needs BRes=1; an analog VDPC resolving a summed output
        # needs B + log2(N) bits on the same receiver.  In the thermal-
        # limited regime each extra bit costs ~3 dB of optical power
        # (6.02 dB electrical), so 6 extra bits cost ~18 dB.
        digital = solve_sensitivity_dbm(1.0, 1e9)
        analog = solve_sensitivity_dbm(7.0, 1e9)
        assert analog - digital > 15.0

    def test_analog_8bit_large_n_simply_unreachable(self):
        # B=8 with N=16 would need 12 receiver bits at 5 GS/s - beyond
        # the RIN ceiling entirely: the Section III motivation that N
        # collapses to ~1 at 8-bit precision.
        with pytest.raises(ValueError, match="unreachable"):
            solve_sensitivity_dbm(12.0, 5e9)

    def test_unreachable_resolution_raises(self):
        # RIN-limited ceiling: ask for far more bits than the ceiling.
        with pytest.raises(ValueError, match="unreachable"):
            solve_sensitivity_dbm(20.0, 10e9)

    def test_max_resolution_matches_ceiling(self):
        p = PhotodetectorParams()
        ceiling = max_resolution_bits(10e9, p)
        # just below the ceiling must be solvable
        s = solve_sensitivity_dbm(ceiling - 1.0, 10e9, p)
        assert s < 30.0

    def test_curve_is_monotone(self):
        curve = sensitivity_curve_dbm(1.0, [1e9, 3e9, 5e9, 10e9])
        assert curve == sorted(curve)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            solve_sensitivity_dbm(0.0, 1e9)
        with pytest.raises(ValueError):
            solve_sensitivity_dbm(1.0, 0.0)

    @given(st.floats(min_value=1.0, max_value=6.0))
    @settings(max_examples=20, deadline=None)
    def test_sensitivity_monotone_in_bits(self, bits):
        assert solve_sensitivity_dbm(bits, 5e9) <= solve_sensitivity_dbm(
            bits + 0.5, 5e9
        )
