"""Tests for the discrete-event kernel and resources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.events import (
    BusyTracker,
    EventKernel,
    Resource,
    SimulationError,
    TransactionLog,
)


class TestEventKernel:
    def test_events_fire_in_time_order(self):
        k = EventKernel()
        order = []
        k.schedule(3.0, lambda: order.append("c"))
        k.schedule(1.0, lambda: order.append("a"))
        k.schedule(2.0, lambda: order.append("b"))
        k.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        k = EventKernel()
        order = []
        for tag in "abc":
            k.schedule(1.0, lambda t=tag: order.append(t))
        k.run()
        assert order == ["a", "b", "c"]

    def test_priority_overrides_fifo(self):
        k = EventKernel()
        order = []
        k.schedule(1.0, lambda: order.append("late"), priority=5)
        k.schedule(1.0, lambda: order.append("early"), priority=1)
        k.run()
        assert order == ["early", "late"]

    def test_nested_scheduling(self):
        k = EventKernel()
        seen = []

        def first():
            seen.append(k.now)
            k.schedule(2.0, lambda: seen.append(k.now))

        k.schedule(1.0, first)
        end = k.run()
        assert seen == [1.0, 3.0]
        assert end == 3.0

    def test_run_until_bound(self):
        k = EventKernel()
        fired = []
        k.schedule(1.0, lambda: fired.append(1))
        k.schedule(10.0, lambda: fired.append(10))
        k.run(until=5.0)
        assert fired == [1]
        assert k.now == 5.0
        assert len(k) == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventKernel().schedule(-1.0, lambda: None)

    def test_schedule_at(self):
        k = EventKernel()
        times = []
        k.schedule_at(4.0, lambda: times.append(k.now))
        k.run()
        assert times == [4.0]

    def test_event_count(self):
        k = EventKernel()
        for _ in range(5):
            k.schedule(1.0, lambda: None)
        k.run()
        assert k.events_processed == 5

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_monotone_time_property(self, delays):
        k = EventKernel()
        seen = []
        for d in delays:
            k.schedule(d, lambda: seen.append(k.now))
        k.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)


class TestResource:
    def test_single_unit_serialises(self):
        k = EventKernel()
        r = Resource(k, "red")
        s1, f1 = r.acquire(5.0)
        s2, f2 = r.acquire(3.0)
        assert (s1, f1) == (0.0, 5.0)
        assert (s2, f2) == (5.0, 8.0)

    def test_multi_unit_parallelises(self):
        k = EventKernel()
        r = Resource(k, "red", n_units=2)
        _, f1 = r.acquire(5.0)
        _, f2 = r.acquire(5.0)
        _, f3 = r.acquire(5.0)
        assert f1 == 5.0 and f2 == 5.0
        assert f3 == 10.0  # third waits for a unit

    def test_busy_time_and_utilization(self):
        k = EventKernel()
        r = Resource(k, "x", n_units=2)
        r.acquire(4.0)
        r.acquire(4.0)
        assert r.busy_time == 8.0
        assert r.utilization(4.0) == pytest.approx(1.0)
        assert r.utilization(8.0) == pytest.approx(0.5)

    def test_request_at_future_time(self):
        k = EventKernel()
        r = Resource(k, "x")
        s, f = r.acquire(1.0, at=10.0)
        assert (s, f) == (10.0, 11.0)

    def test_invalid_args(self):
        k = EventKernel()
        with pytest.raises(ValueError):
            Resource(k, "x", n_units=0)
        with pytest.raises(ValueError):
            Resource(k, "x").acquire(-1.0)

    def test_zero_elapsed_utilization(self):
        k = EventKernel()
        assert Resource(k, "x").utilization(0.0) == 0.0


class TestTrackersAndLogs:
    def test_busy_tracker(self):
        t = BusyTracker("adc")
        t.add(1.0)
        t.add(2.5)
        assert t.busy_s == 3.5
        with pytest.raises(ValueError):
            t.add(-1.0)

    def test_transaction_log(self):
        log = TransactionLog()
        log.record("psum", 10, 1e-6)
        log.record("psum", 5, 2e-6)
        assert log.counts["psum"] == 15
        assert log.time_s["psum"] == pytest.approx(3e-6)
