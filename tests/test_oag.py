"""Tests for the Optical AND Gate: truth table, transient (Fig 6c), OMA (Fig 7a)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.mrr import MicroringResonator
from repro.photonics.oag import (
    OAGTimingModel,
    OpticalAndGate,
    max_bitrate_for_fwhm,
    oma_at_bitrate,
    random_prbs,
)


def make_gate(fwhm=0.6, shift=0.75, power_dbm=0.0):
    return OpticalAndGate(
        ring=MicroringResonator(fwhm_nm=fwhm, junction_shift_nm=shift),
        input_power_dbm=power_dbm,
    )


class TestTruthTable:
    def test_one_one_is_high(self):
        tt = make_gate().truth_table()
        assert tt[(1, 1)] > 0.9

    def test_and_ordering(self):
        tt = make_gate().truth_table()
        assert tt[(1, 1)] > tt[(0, 1)] > tt[(0, 0)]
        assert tt[(0, 1)] == pytest.approx(tt[(1, 0)])

    def test_extinction_improves_with_narrow_ring(self):
        wide = make_gate(fwhm=0.8).static_extinction_db()
        narrow = make_gate(fwhm=0.2).static_extinction_db()
        assert narrow > wide

    def test_rejects_non_binary_operand(self):
        with pytest.raises(ValueError):
            make_gate().drop_transmission_for(2, 0)

    def test_output_power_scales_with_input(self):
        lo = make_gate(power_dbm=-10.0).output_power_w(1, 1)
        hi = make_gate(power_dbm=0.0).output_power_w(1, 1)
        assert hi == pytest.approx(10 * lo, rel=1e-9)


class TestTransient:
    """Paper Fig. 6(c): the drop port computes I AND W at 10 Gb/s."""

    def test_reproduces_logical_and_at_10gbps(self):
        gate = make_gate()
        i = random_prbs(128, seed=11)
        w = random_prbs(128, seed=22)
        tr = gate.transient_response(i, w, 10e9)
        assert np.array_equal(tr.decide_bits(), tr.expected_bits())

    def test_and_holds_at_30gbps_paper_operating_point(self):
        gate = make_gate()
        i = random_prbs(256, seed=5)
        w = random_prbs(256, seed=6)
        tr = gate.transient_response(i, w, 30e9)
        assert np.array_equal(tr.decide_bits(), tr.expected_bits())

    def test_all_ones_stream_saturates_high(self):
        gate = make_gate()
        ones = np.ones(16, dtype=np.int64)
        tr = gate.transient_response(ones, ones, 10e9)
        levels = tr.sampled_levels_w()
        assert levels[-1] > 0.8 * gate.output_power_w(1, 1)

    def test_oma_positive_at_moderate_rate(self):
        gate = make_gate()
        i = random_prbs(128, seed=3)
        w = random_prbs(128, seed=4)
        tr = gate.transient_response(i, w, 10e9)
        assert tr.oma_w() > 0.0

    def test_mismatched_streams_rejected(self):
        gate = make_gate()
        with pytest.raises(ValueError):
            gate.transient_response(np.ones(4, dtype=int), np.ones(5, dtype=int), 1e9)

    def test_non_binary_streams_rejected(self):
        gate = make_gate()
        with pytest.raises(ValueError):
            gate.transient_response(
                np.array([0, 2, 1]), np.array([1, 0, 1]), 1e9
            )

    def test_time_axis_matches_bitrate(self):
        gate = make_gate()
        tr = gate.transient_response(
            np.array([1, 0, 1, 1]), np.array([1, 1, 0, 1]), 10e9, samples_per_bit=8
        )
        assert tr.time_s.size == 4 * 8
        assert tr.time_s[-1] == pytest.approx(4 / 10e9, rel=0.05)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_and_property_random_streams(self, pattern):
        bits = np.array([(pattern >> k) & 1 for k in range(16)], dtype=np.int64)
        comp = 1 - bits
        gate = make_gate()
        tr = gate.transient_response(bits, comp | bits, 10e9)
        # I AND (I OR ~I)=I: output must equal the i-stream
        assert np.array_equal(tr.decide_bits(), bits & (comp | bits))


class TestOmaAnalysis:
    """Paper Fig. 7(a): supported bitrate vs FWHM at OMA >= -28 dBm."""

    def test_bitrate_increases_with_fwhm(self):
        rates = [max_bitrate_for_fwhm(f) for f in (0.1, 0.2, 0.4, 0.8)]
        assert rates == sorted(rates)
        assert rates[0] < rates[-1]

    def test_saturates_at_driver_limit_40gbps(self):
        assert max_bitrate_for_fwhm(1.0) == pytest.approx(40e9)

    def test_paper_operating_point_30gbps_supported(self):
        # Section V-B conservatively operates OSMs at 30 Gb/s for
        # FWHM <= 0.8 nm; our calibration supports it from ~0.55 nm up.
        assert max_bitrate_for_fwhm(0.6) >= 30e9
        assert max_bitrate_for_fwhm(0.8) >= 30e9

    def test_sconna_operating_point_factory(self):
        gate = OpticalAndGate.sconna_operating_point()
        assert gate.static_extinction_db() > 7.0
        assert max_bitrate_for_fwhm(gate.ring.fwhm_nm) >= 30e9

    def test_40gbps_reached_near_0p8nm(self):
        assert max_bitrate_for_fwhm(0.8) >= 0.98 * 40e9

    def test_oma_decreases_with_bitrate(self):
        omas = [oma_at_bitrate(0.4, br) for br in (5e9, 10e9, 20e9, 40e9)]
        assert all(a >= b for a, b in zip(omas, omas[1:]))

    def test_oma_negative_infinity_when_eye_closed(self):
        # absurdly fast modulation: eye fully closed
        assert oma_at_bitrate(0.05, 200e9) == -math.inf

    def test_zero_when_floor_unreachable(self):
        # with tiny input power even DC cannot reach -28 dBm OMA
        assert max_bitrate_for_fwhm(0.4, input_power_dbm=-40.0) == 0.0

    def test_timing_model_effective_tau(self):
        timing = OAGTimingModel(driver_tau_s=10e-12, cavity_settle_factor=5.0)
        ring = MicroringResonator(fwhm_nm=0.4)
        tau = timing.effective_tau_s(ring)
        assert tau == pytest.approx(10e-12 + 5.0 * ring.photon_lifetime_s)


class TestPrbs:
    def test_reproducible(self):
        assert np.array_equal(random_prbs(64, seed=1), random_prbs(64, seed=1))

    def test_density(self):
        bits = random_prbs(20_000, seed=0, density=0.25)
        assert bits.mean() == pytest.approx(0.25, abs=0.02)
