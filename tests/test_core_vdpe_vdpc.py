"""Tests for the SCONNA VDPE/VDPC and the Section V scalability report."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SconnaConfig
from repro.core.scalability import (
    analyze_scalability,
    psum_counts_for_vector,
    stream_bits_vs_precision,
    sweep_max_n_vs_laser_power,
)
from repro.core.vdpc import SconnaVDPC
from repro.core.vdpe import SconnaVDPE


def rand_vectors(size, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 257, size=size),
        rng.integers(-256, 257, size=size),
    )


class TestVdpe:
    def test_matches_exact_reference_no_noise(self):
        i, w = rand_vectors(4608, seed=1)
        v = SconnaVDPE()
        res = v.compute_vdp(i, w, apply_adc_error=False)
        assert res.signed_count == SconnaVDPE.exact_reference(i, w, 8)

    def test_pass_and_psum_counts_resnet_vector(self):
        i, w = rand_vectors(4608, seed=2)
        res = SconnaVDPE().compute_vdp(i, w, apply_adc_error=False)
        assert res.optical_passes == 27  # ceil(4608/176)
        assert res.electrical_psums == 7  # ceil(27/4)

    def test_single_piece_vector(self):
        i, w = rand_vectors(100, seed=3)
        res = SconnaVDPE().compute_vdp(i, w, apply_adc_error=False)
        assert res.optical_passes == 1
        assert res.electrical_psums == 1

    def test_latency_grows_with_vector_size(self):
        v = SconnaVDPE()
        short = v.compute_vdp(*rand_vectors(100, 4), apply_adc_error=False)
        long = v.compute_vdp(*rand_vectors(2000, 4), apply_adc_error=False)
        assert long.latency_s > short.latency_s

    def test_noisy_result_close_to_exact(self):
        i = np.full(4608, 128)
        w = np.full(4608, 128)
        exact = SconnaVDPE.exact_reference(i, w, 8)
        res = SconnaVDPE(seed=7).compute_vdp(i, w)
        assert abs(res.signed_count - exact) / exact < 0.05

    def test_input_validation(self):
        v = SconnaVDPE()
        with pytest.raises(ValueError):
            v.compute_vdp(np.array([1, 2]), np.array([1]))
        with pytest.raises(ValueError):
            v.compute_vdp(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            v.compute_piece(np.arange(200), np.arange(200))  # > N

    @given(st.integers(min_value=1, max_value=600))
    @settings(max_examples=25, deadline=None)
    def test_reference_equivalence_property(self, size):
        i, w = rand_vectors(size, seed=size)
        res = SconnaVDPE().compute_vdp(i, w, apply_adc_error=False)
        assert res.signed_count == SconnaVDPE.exact_reference(i, w, 8)

    def test_multi_pass_grouping_vs_single_pass_config(self):
        """pca_design_activity=1 forces one readout per optical pass."""
        i, w = rand_vectors(1000, seed=9)
        grouped = SconnaVDPE(SconnaConfig()).compute_vdp(i, w, False)
        single = SconnaVDPE(
            SconnaConfig(pca_design_activity=1.0)
        ).compute_vdp(i, w, False)
        assert grouped.signed_count == single.signed_count
        assert grouped.electrical_psums < single.electrical_psums
        assert single.electrical_psums == single.optical_passes


class TestVdpc:
    def test_batch_runs_per_arm(self):
        vdpc = SconnaVDPC()
        ivs = [rand_vectors(300, s)[0] for s in range(4)]
        wvs = [rand_vectors(300, s)[1] for s in range(4)]
        out = vdpc.compute_batch(ivs, wvs, apply_adc_error=False)
        assert out.signed_counts.shape == (4,)
        for k in range(4):
            assert out.signed_counts[k] == SconnaVDPE.exact_reference(
                ivs[k], wvs[k], 8
            )

    def test_batch_size_bounds(self):
        vdpc = SconnaVDPC()
        i, w = rand_vectors(10)
        with pytest.raises(ValueError):
            vdpc.compute_batch([], [])
        with pytest.raises(ValueError):
            vdpc.compute_batch([i] * 17, [w] * 17)
        with pytest.raises(ValueError):
            vdpc.compute_batch([i, i], [w])

    def test_link_budget_closes_at_design_point(self):
        vdpc = SconnaVDPC()
        # N=176, M=16: splitter loses less than the M=N=176 worst case,
        # so the budget closes with margin at -30 dBm.
        assert vdpc.link_budget().closes(-30.0)

    def test_laser_power(self):
        vdpc = SconnaVDPC()
        # 176 diodes x 10 mW optical / 0.1 WPE = 17.6 W electrical
        assert vdpc.laser_electrical_power_w() == pytest.approx(17.6)

    def test_wavelength_comb(self):
        w = SconnaVDPC().wavelengths_nm()
        assert w.size == 176
        assert np.allclose(np.diff(w), 0.25)

    def test_oversized_vdpe_rejected(self):
        with pytest.raises(ValueError):
            SconnaVDPC(SconnaConfig(vdpe_size=201))


class TestScalabilityReport:
    def test_paper_numbers(self):
        rep = analyze_scalability()
        assert rep.paper_published_n == 176
        assert rep.max_n_at_minus_30_dbm == 176
        assert 120 <= rep.max_n_at_paper_sensitivity <= 150
        assert rep.max_bitrate_at_fwhm_hz >= 30e9
        assert rep.pca_linear_at_full_scale
        assert rep.pca_accumulation_passes == 4
        assert rep.pca_capacity_ones > rep.pca_full_scale_ones

    def test_psum_counts_table(self):
        d = psum_counts_for_vector(4608)
        assert d["optical_passes"] == 27
        assert d["electrical_psums"] == 7
        assert d["mam_psums_8bit"] == 420
        assert d["amm_psums_8bit"] == 576
        with pytest.raises(ValueError):
            psum_counts_for_vector(0)

    def test_laser_power_sweep_monotone(self):
        out = sweep_max_n_vs_laser_power([4.0, 7.0, 10.0, 13.0])
        ns = [n for _, n in out]
        assert ns == sorted(ns)
        assert ns[-1] > ns[0]

    def test_stream_bits_exponential(self):
        rows = stream_bits_vs_precision(10)
        assert rows[0] == (1, 2)
        assert rows[7] == (8, 256)
        with pytest.raises(ValueError):
            stream_bits_vs_precision(0)
