"""Tests for the laser diode array and DWDM grid."""

import numpy as np
import pytest

from repro.photonics.laser import DwdmGrid, LaserDiode, laser_array_power_w


class TestLaserDiode:
    def test_table_iii_power(self):
        ld = LaserDiode()
        assert ld.power_dbm == 10.0
        assert ld.optical_power_w == pytest.approx(10e-3)

    def test_wall_plug_efficiency(self):
        ld = LaserDiode(power_dbm=10.0, eta_wpe=0.1)
        assert ld.electrical_power_w == pytest.approx(0.1)

    def test_invalid_wpe_rejected(self):
        with pytest.raises(ValueError):
            _ = LaserDiode(eta_wpe=0.0).electrical_power_w


class TestDwdmGrid:
    def test_paper_capacity_200(self):
        assert DwdmGrid().max_channels() == 200

    def test_wavelengths_centered_and_spaced(self):
        grid = DwdmGrid()
        w = grid.wavelengths_nm(176)
        assert w.size == 176
        assert np.allclose(np.diff(w), 0.25)
        assert w.mean() == pytest.approx(grid.center_nm)

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            DwdmGrid().wavelengths_nm(201)

    def test_positive_channel_count_required(self):
        with pytest.raises(ValueError):
            DwdmGrid().wavelengths_nm(0)

    def test_all_unique(self):
        w = DwdmGrid().wavelengths_nm(200)
        assert np.unique(w).size == 200


class TestLaserArray:
    def test_array_power_scales(self):
        opt, elec = laser_array_power_w(176)
        assert opt == pytest.approx(176 * 10e-3)
        assert elec == pytest.approx(176 * 0.1)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            laser_array_power_w(0)
