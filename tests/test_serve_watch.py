"""The fleet watchtower: store math, SLO rules, alerts, self-healing.

The contracts under test:

* **Time-series store** - per-series rings evict oldest points (and
  count what they dropped), whole series evict least-recently-updated
  when the store is full, and counter math survives resets: a counter
  that restarts mid-window contributes its new absolute value, exactly
  as Prometheus ``increase`` defines it.
* **Burn-rate math** - multi-window burn rates match hand-computed
  windows, and the multi-window AND-gate holds: a short-window spike
  without long-window corroboration does not fire.
* **Alert lifecycle** - pending until ``for_s`` elapses, firing after,
  resolved on the first clean evaluation (both transitions logged);
  a pending alert that recovers dissolves without ever firing.
* **Exposition hardening** - duplicate ``(name, labels)`` samples and
  NaN-valued counters are rejected by ``parse_exposition``.
* **Live fleet** - scraping a real 2-replica fleet plus its router
  yields non-empty p99 and per-model energy series (the fleet-merged
  accel counters included), served over ``/v1/watch/*`` and rendered
  into the dashboard.
* **Self-healing** - SIGKILL one of two real replica processes under
  load: the ``replica_down`` alert fires as soon as the router's
  fleet section reports the death, auto-drain marks the corpse
  draining through ``/v1/router/drain``, and the load sees zero
  failures.
"""

import io
import json
import math
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.cnn.datasets import N_CLASSES, generate_dataset
from repro.cnn.inference import QuantizedModel
from repro.cnn.micro import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.serve import (
    BatchingPolicy,
    Router,
    RouterPolicy,
    SconnaClient,
    SconnaService,
    serve_http,
    serve_router,
)
from repro.serve.router import spawn_replicas
from repro.serve.telemetry import (
    StructuredLogger,
    parse_exposition,
    render_exposition,
)
from repro.serve.telemetry.watch import (
    ScrapeTarget,
    SLOEngine,
    TimeSeriesStore,
    Watchtower,
    default_rules,
    load_rules,
    make_rule,
    serve_watch,
)
from repro.utils.rng import make_rng


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ---------------------------------------------------------------------------
# time-series store
# ---------------------------------------------------------------------------

class TestTimeSeriesStore:
    def test_ring_evicts_oldest_points_and_counts_them(self):
        store = TimeSeriesStore(capacity_per_series=4)
        for t in range(10):
            store.observe("g", {"instance": "a"}, float(t), float(t))
        pts = store.points("g", {"instance": "a"})
        assert [v for _, v in pts] == [6.0, 7.0, 8.0, 9.0]
        stats = store.stats()
        assert stats["points_dropped"] == 6
        assert stats["series"] == 1

    def test_full_store_evicts_least_recently_updated_series(self):
        store = TimeSeriesStore(capacity_per_series=8, max_series=2)
        store.observe("a", None, 1.0, 1.0)
        store.observe("b", None, 1.0, 2.0)
        store.observe("a", None, 2.0, 3.0)   # "b" is now the LRU
        store.observe("c", None, 1.0, 4.0)   # evicts "b"
        assert store.names() == ["a", "c"]
        assert store.stats()["series_evicted"] == 1
        assert store.points("b", None) == []

    def test_increase_handles_counter_reset(self):
        store = TimeSeriesStore()
        # 0 -> 10 (delta 10), restart to 4 (contributes 4), 4 -> 9 (5)
        for t, v in [(0, 0), (1, 10), (2, 4), (3, 9)]:
            store.observe("c", None, float(v), float(t))
        assert store.increase("c", None, 10.0, 3.0) == pytest.approx(19.0)
        assert store.rate("c", None, 10.0, 3.0) == pytest.approx(19.0 / 3.0)

    def test_increase_respects_the_window(self):
        store = TimeSeriesStore()
        for t in range(11):
            store.observe("c", None, 10.0 * t, float(t))
        assert store.increase("c", None, 5.0, 10.0) == pytest.approx(50.0)
        assert store.increase("c", None, 100.0, 10.0) == pytest.approx(100.0)
        # fewer than two in-window points: no increase
        assert store.increase("c", None, 0.5, 10.0) == 0.0

    def test_rate_series_derivation_is_reset_aware(self):
        pts = [(0.0, 0.0), (1.0, 10.0), (2.0, 4.0)]
        derived = TimeSeriesStore.rate_series(pts)
        assert derived == [(1.0, 10.0), (2.0, 4.0)]

    def test_windowed_quantile_and_aggregates(self):
        store = TimeSeriesStore()
        for t, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            store.observe("g", None, v, float(t))
        assert store.quantile("g", None, 50.0, 10.0, 3.0) == pytest.approx(2.5)
        # window covering only the last two points
        assert store.quantile("g", None, 50.0, 1.0, 3.0) == pytest.approx(3.5)
        assert store.agg("g", None, "max", 10.0, 3.0) == 4.0
        assert store.agg("g", None, "mean", 10.0, 3.0) == pytest.approx(2.5)
        assert store.agg("g", None, "last", 10.0, 3.0) == 4.0
        assert store.quantile("missing", None, 50.0, 10.0, 3.0) is None
        with pytest.raises(ValueError, match="unknown aggregate"):
            store.agg("g", None, "median", 10.0, 3.0)

    def test_latest_honours_staleness(self):
        store = TimeSeriesStore()
        store.observe("g", None, 7.0, 100.0)
        assert store.latest("g", None) == 7.0
        assert store.latest("g", None, max_age_s=5.0, now=104.0) == 7.0
        assert store.latest("g", None, max_age_s=5.0, now=106.0) is None

    def test_label_sets_are_independent_series(self):
        store = TimeSeriesStore()
        store.observe("g", {"instance": "a"}, 1.0, 0.0)
        store.observe("g", {"instance": "b"}, 2.0, 0.0)
        matched = store.match("g", {"instance": "a"})
        assert len(matched) == 1
        assert matched[0][0] == {"instance": "a"}
        assert len(store.match("g")) == 2


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------

class TestRules:
    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(
            '[[rule]]\n'
            'name = "avail"\nkind = "burn_rate"\nseverity = "page"\n'
            'objective = 0.999\nwindows = [[60.0, 14.4], [300.0, 6.0]]\n'
            '\n'
            '[[rule]]\n'
            'name = "down"\nkind = "replica_down"\naction = "drain"\n'
            'for_s = 2.0\n'
        )
        rules = load_rules(str(path))
        assert [r.name for r in rules] == ["avail", "down"]
        assert rules[0].params["windows"] == [(60.0, 14.4), (300.0, 6.0)]
        assert rules[1].action == "drain"
        assert rules[1].for_s == 2.0

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"rule": [
            {"name": "queue", "kind": "threshold",
             "series": "sconna_queue_depth", "agg": "max",
             "op": ">", "value": 64},
        ]}))
        (rule,) = load_rules(str(path))
        assert rule.kind == "threshold"
        assert rule.params["value"] == 64.0

    def test_validation_failures(self, tmp_path):
        with pytest.raises(ValueError, match="unknown kind"):
            make_rule({"name": "x", "kind": "nope"})
        with pytest.raises(ValueError, match="objective"):
            make_rule({"name": "x", "kind": "burn_rate",
                       "objective": 1.5, "windows": [[60, 1]]})
        with pytest.raises(ValueError, match="windows"):
            make_rule({"name": "x", "kind": "burn_rate", "objective": 0.99})
        with pytest.raises(ValueError, match="only 'drain'"):
            make_rule({"name": "x", "kind": "replica_down",
                       "action": "reboot"})
        path = tmp_path / "dup.json"
        path.write_text(json.dumps({"rule": [
            {"name": "a", "kind": "replica_down"},
            {"name": "a", "kind": "replica_down"},
        ]}))
        with pytest.raises(ValueError, match="duplicate rule name"):
            load_rules(str(path))

    def test_default_rules_cover_the_advertised_kinds(self):
        kinds = {rule.kind for rule in default_rules()}
        assert kinds == {"burn_rate", "threshold", "replica_down",
                         "energy_budget"}
        drain = [r for r in default_rules() if r.action == "drain"]
        assert [r.kind for r in drain] == ["replica_down"]


# ---------------------------------------------------------------------------
# burn-rate math against hand-computed windows
# ---------------------------------------------------------------------------

class TestBurnRateMath:
    @staticmethod
    def _counters(store, errors_per_100):
        """Counters at 1 sample/s: 100 req/s, ``errors_per_100`` err/s."""
        for t in range(11):
            store.observe("sconna_requests_total", {"instance": "r"},
                          100.0 * t, float(t))
            store.observe("sconna_errors_total", {"instance": "r"},
                          float(errors_per_100) * t, float(t))

    def test_availability_burn_matches_hand_computation(self):
        store = TimeSeriesStore()
        self._counters(store, errors_per_100=10)  # 10% bad, budget 1%
        rule = make_rule({
            "name": "avail", "kind": "burn_rate", "objective": 0.99,
            "windows": [[5.0, 9.0], [10.0, 9.0]],
        })
        engine = SLOEngine(store, [rule])
        events = engine.evaluate(10.0)
        assert [tr for tr, _ in events] == ["firing"]
        (_, alert), = events
        # hand math: bad/total = 50/500 = 0.1; burn = 0.1 / 0.01 = 10
        assert alert.value == pytest.approx(10.0)

    def test_multi_window_gate_requires_every_window(self):
        store = TimeSeriesStore()
        # 9 clean seconds, then one second with 50 errors: the short
        # window burns hot, the long window stays under its threshold
        for t in range(11):
            store.observe("sconna_requests_total", {"instance": "r"},
                          100.0 * t, float(t))
            store.observe("sconna_errors_total", {"instance": "r"},
                          50.0 if t >= 10 else 0.0, float(t))
        rule = make_rule({
            "name": "avail", "kind": "burn_rate", "objective": 0.99,
            # short window: 50/200 / 0.01 = 25 > 20 (breaches);
            # long window: 50/1000 / 0.01 = 5 < 20 (holds the gate)
            "windows": [[2.0, 20.0], [10.0, 20.0]],
        })
        engine = SLOEngine(store, [rule])
        assert engine.evaluate(10.0) == []
        assert engine.active() == []

    def test_latency_burn_counts_quantile_votes(self):
        store = TimeSeriesStore()
        # p99 gauge sampled every second: 4 of the last 10 samples are
        # over 250 ms -> bad fraction 0.4, budget 0.1, burn 4.0
        for t in range(10):
            p99 = 0.400 if t >= 6 else 0.050
            store.observe("sconna_request_latency_seconds",
                          {"quantile": "0.99", "instance": "r"}, p99, float(t))
        rule = make_rule({
            "name": "lat", "kind": "burn_rate", "signal": "latency",
            "objective": 0.9, "threshold_ms": 250.0,
            "windows": [[20.0, 3.0]],
        })
        engine = SLOEngine(store, [rule])
        events = engine.evaluate(9.0)
        assert [tr for tr, _ in events] == ["firing"]
        assert events[0][1].value == pytest.approx(4.0)

    def test_energy_budget_per_image(self):
        store = TimeSeriesStore()
        for t in range(6):
            store.observe("sconna_accel_energy_joules_total",
                          {"model": "m", "instance": "r"}, 6.0 * t, float(t))
            store.observe("sconna_accel_images_total",
                          {"model": "m", "instance": "r"}, 2.0 * t, float(t))
        rule = make_rule({
            "name": "energy", "kind": "energy_budget",
            "window_s": 10.0, "max_joules_per_image": 2.5,
        })
        engine = SLOEngine(store, [rule])
        events = engine.evaluate(5.0)
        assert [tr for tr, _ in events] == ["firing"]
        assert events[0][1].value == pytest.approx(3.0)  # 30 J / 10 images


# ---------------------------------------------------------------------------
# alert lifecycle
# ---------------------------------------------------------------------------

class TestAlertLifecycle:
    @staticmethod
    def _engine(for_s=0.0, logger=None):
        store = TimeSeriesStore()
        rule = make_rule({"name": "down", "kind": "replica_down",
                          "severity": "page", "action": "drain",
                          "for_s": for_s})
        return store, SLOEngine(store, [rule], logger=logger)

    @staticmethod
    def _up(store, replica, up, t):
        store.observe("sconna_replica_up",
                      {"replica": replica, "instance": "router"},
                      1.0 if up else 0.0, float(t))

    def test_firing_and_resolved_transitions_are_logged(self):
        stream = io.StringIO()
        store, engine = self._engine(logger=StructuredLogger(stream=stream))
        self._up(store, "r0", True, 0)
        assert engine.evaluate(0.0) == []
        self._up(store, "r0", False, 1)
        events = engine.evaluate(1.0)
        assert [(tr, a.state) for tr, a in events] == [("firing", "firing")]
        assert events[0][1].labels == {"replica": "r0"}
        self._up(store, "r0", True, 2)
        events = engine.evaluate(2.0)
        assert [(tr, a.state) for tr, a in events] == [("resolved", "resolved")]
        records = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [(r["event"], r["phase"]) for r in records] == [
            ("alert", "firing"), ("alert", "resolved"),
        ]
        assert all(r["rule"] == "down" for r in records)
        # resolved alerts retire to history; nothing stays active
        assert engine.active() == []
        assert [a.rule for a in engine.history()] == ["down"]

    def test_for_s_holds_the_alert_pending(self):
        store, engine = self._engine(for_s=2.0)
        self._up(store, "r0", False, 0)
        assert engine.evaluate(0.0) == []
        (pending,) = engine.active()
        assert pending.state == "pending"
        self._up(store, "r0", False, 1)
        assert engine.evaluate(1.0) == []
        self._up(store, "r0", False, 2)
        events = engine.evaluate(2.0)
        assert [tr for tr, _ in events] == ["firing"]

    def test_pending_alert_dissolves_without_firing(self):
        stream = io.StringIO()
        store, engine = self._engine(
            for_s=5.0, logger=StructuredLogger(stream=stream)
        )
        self._up(store, "r0", False, 0)
        engine.evaluate(0.0)
        self._up(store, "r0", True, 1)
        assert engine.evaluate(1.0) == []
        assert engine.active() == []
        assert engine.history() == []
        assert stream.getvalue() == ""

    def test_stale_up_series_does_not_breach(self):
        store, engine = self._engine()
        self._up(store, "r0", False, 0)
        # 100 s later the sample is long stale (stale_s defaults to 10)
        assert engine.evaluate(100.0) == []


# ---------------------------------------------------------------------------
# exposition hardening + accel counters
# ---------------------------------------------------------------------------

class TestExpositionHardening:
    def test_duplicate_samples_rejected(self):
        text = (
            "# TYPE x_total counter\n"
            'x_total{model="a"} 1\n'
            'x_total{model="a"} 2\n'
        )
        with pytest.raises(ValueError, match="duplicate sample"):
            parse_exposition(text)

    def test_duplicate_detection_is_label_order_independent(self):
        text = (
            "# TYPE x_total counter\n"
            'x_total{a="1",b="2"} 1\n'
            'x_total{b="2",a="1"} 2\n'
        )
        with pytest.raises(ValueError, match="duplicate sample"):
            parse_exposition(text)

    def test_distinct_labels_are_not_duplicates(self):
        text = (
            "# TYPE x_total counter\n"
            'x_total{model="a"} 1\n'
            'x_total{model="b"} 2\n'
        )
        assert len(parse_exposition(text)) == 2

    def test_nan_counter_rejected(self):
        text = "# TYPE x_total counter\nx_total NaN\n"
        with pytest.raises(ValueError, match="NaN"):
            parse_exposition(text)

    def test_nan_gauge_still_allowed(self):
        text = "# TYPE x gauge\nx NaN\n"
        ((name, labels, value),) = parse_exposition(text)
        assert math.isnan(value)

    def test_accel_cost_counters_render_and_parse(self):
        snapshot = {
            "requests": 4,
            "accel_costs": {
                "mnet": {"energy_j": 1.25, "latency_s": 0.5, "images": 10},
            },
        }
        samples = parse_exposition(render_exposition(snapshot))
        by_name = {
            (name, labels.get("model")): value
            for name, labels, value in samples
        }
        assert by_name[("sconna_accel_energy_joules_total", "mnet")] == 1.25
        assert by_name[("sconna_accel_latency_seconds_total", "mnet")] == 0.5
        assert by_name[("sconna_accel_images_total", "mnet")] == 10.0


# ---------------------------------------------------------------------------
# live fleet scrape + HTTP surface
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def setup():
    rng = make_rng(0)
    model = Sequential(
        Conv2d(3, 6, 3, padding=1, rng=rng), ReLU(), MaxPool2d(4),
        Flatten(), Linear(6 * 6 * 6, N_CLASSES, rng=rng),
    )
    ds = generate_dataset(6, seed=3)
    qm = QuantizedModel.from_trained(model, ds.images[:24])
    return qm, ds


@pytest.fixture(scope="module")
def fleet(setup):
    """Two in-process replicas, a router, and traffic through it."""
    qm, ds = setup
    replicas = []
    for name in ("replica-a", "replica-b"):
        svc = SconnaService(
            policy=BatchingPolicy(max_batch_size=8, max_wait_ms=1.0),
            n_workers=1,
        )
        svc.add_model("tiny", qm)
        server, _ = serve_http(svc, replica_id=name)
        replicas.append((svc, server))
    router = Router(
        [server.url for _, server in replicas],
        policy=RouterPolicy(health_interval_s=30.0),
        probe_in_background=False,
    )
    router.probe_now()
    front, _ = serve_router(router)
    with SconnaClient(front.url, retry_429=50) as client:
        for i in range(24):
            client.predict(ds.images[i % 6], model="tiny", seed=7)
    yield replicas, router, front
    front.shutdown()
    router.close()
    for svc, server in replicas:
        server.shutdown()
        svc.close()


class TestLiveFleetScrape:
    def test_series_alerts_and_dashboard_over_http(self, fleet):
        replicas, router, front = fleet
        targets = [
            ScrapeTarget(name=name, url=server.url)
            for name, (_, server) in zip(
                ("replica-a", "replica-b"), replicas
            )
        ]
        targets.append(
            ScrapeTarget(name="router", url=front.url, role="router")
        )
        tower = Watchtower(targets, interval_s=0.2, router_url=front.url)
        watch_server = serve_watch(tower)
        try:
            t0 = time.monotonic()
            for k in range(3):
                summary = tower.tick(t0 + 0.2 * k)
            assert summary["scrape"]["failed"] == 0

            with SconnaClient(watch_server.url) as client:
                health = client.health()
                assert health["role"] == "watchtower"

                # non-empty p99 series from replicas and the router
                doc = client.watch_series(
                    "sconna_request_latency_seconds",
                    labels={"quantile": "0.99"},
                )
                assert doc["series"]
                assert all(s["points"] for s in doc["series"])
                instances = {
                    s["labels"]["instance"] for s in doc["series"]
                }
                assert "router" in instances

                # fleet-merged energy counters produce a rate series
                doc = client.watch_series(
                    "sconna_accel_energy_joules_total",
                    labels={"instance": "router"}, derive="rate",
                )
                assert doc["series"]
                assert all(s["points"] for s in doc["series"])
                assert doc["series"][0]["labels"]["model"] == "tiny"

                # series directory + alerts document
                directory = client.watch_series()
                assert "sconna_replica_up" in directory["names"]
                alerts = client.alerts()
                assert alerts["engine"]["evaluations"] == 3
                assert alerts["active"] == []

            # the dashboard renders with sparklines and the fleet table
            import urllib.request

            html = urllib.request.urlopen(
                watch_server.url + "/v1/watch/dashboard", timeout=10.0
            ).read().decode("utf-8")
            assert "<svg" in html
            assert "replica-a" in html
            assert "energy" in html
        finally:
            tower.close()
            watch_server.shutdown()

    def test_replica_exposition_carries_energy_counters(self, fleet):
        replicas, router, front = fleet
        import urllib.request

        # the fixture's traffic lands on the model's rendezvous-preferred
        # replica (which of the two depends on the ephemeral ports), so
        # check that one plus the router's fleet-merged view
        preferred = router.ranked("tiny")[0].url
        for url in (preferred, front.url):
            text = urllib.request.urlopen(
                url + "/v1/metrics?format=prometheus", timeout=10.0
            ).read().decode("utf-8")
            samples = parse_exposition(text)
            energy = {
                labels["model"]: value
                for name, labels, value in samples
                if name == "sconna_accel_energy_joules_total"
            }
            assert energy.get("tiny", 0.0) > 0.0

    def test_scrape_failure_is_a_synthetic_down_sample(self):
        tower = Watchtower(
            [ScrapeTarget(name="ghost",
                          url=f"http://127.0.0.1:{_free_port()}")],
            interval_s=0.2,
        )
        try:
            summary = tower.tick(0.0)
            assert summary["scrape"]["failed"] == 1
            assert tower.store.latest(
                "watch_scrape_up", {"instance": "ghost"}
            ) == 0.0
        finally:
            tower.close()


# ---------------------------------------------------------------------------
# the acceptance gate: SIGKILL + auto-drain, zero visible failures
# ---------------------------------------------------------------------------

class TestAutoDrainEndToEnd:
    def test_sigkill_fires_replica_down_and_auto_drains(self, setup, tmp_path):
        """Two real replica processes behind a router; SIGKILL one under
        load.  The watchtower's ``replica_down`` alert fires within two
        evaluation intervals of the router reporting the death,
        auto-drain marks the corpse draining, and every request the
        load sent completes."""
        from repro.serve.registry import ModelRegistry

        qm, ds = setup
        registry = ModelRegistry(tmp_path / "models")
        registry.save("tiny", qm)
        processes, urls = spawn_replicas(
            str(tmp_path / "models"), 2, _free_port(),
            extra_args=["--workers", "1", "--max-wait-ms", "1"],
            wait_s=60.0,
        )
        router = Router(
            urls,
            policy=RouterPolicy(
                health_interval_s=0.1, eject_after=2, readmit_after=2,
                max_retries=3,
            ),
        )
        front, _ = serve_router(router)
        interval_s = 0.15
        stream = io.StringIO()
        tower = Watchtower(
            [ScrapeTarget(name="router", url=front.url, role="router")],
            rules=[make_rule({
                "name": "replica-down", "kind": "replica_down",
                "severity": "page", "action": "drain",
            })],
            interval_s=interval_s,
            router_url=front.url,
            auto_drain=True,
            logger=StructuredLogger(stream=stream),
        )
        tower.start()

        failures: "list[Exception]" = []
        results: "list[np.ndarray]" = []
        lock = threading.Lock()

        def worker(n: int) -> None:
            try:
                with SconnaClient(front.url, retry_429=50) as client:
                    for _ in range(n):
                        got = client.predict(
                            ds.images[0], model="tiny", seed=11
                        )
                        with lock:
                            results.append(got.logits)
            except Exception as exc:  # noqa: BLE001 - recorded, asserted
                with lock:
                    failures.append(exc)

        try:
            with SconnaClient(urls[0]) as client:
                reference = client.predict(
                    ds.images[0], model="tiny", seed=11
                ).logits
            victim_url = router.ranked("tiny")[0].url
            victim = processes[urls.index(victim_url)]
            threads = [
                threading.Thread(target=worker, args=(8,)) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.4)
            victim.send_signal(signal.SIGKILL)
            for thread in threads:
                thread.join(timeout=120.0)

            # the alert fires once the router's fleet section reports
            # the corpse down
            deadline = time.monotonic() + 30.0
            firing = []
            while time.monotonic() < deadline:
                firing = [
                    a for a in tower.engine.firing()
                    if a.rule == "replica-down"
                ]
                if firing:
                    break
                time.sleep(0.05)
            assert firing, "replica_down never fired after SIGKILL"
            (alert,) = firing

            # fired within two evaluation intervals of the first
            # scraped down-sample (the acceptance bound)
            replica_label = alert.labels["replica"]
            up_points = tower.store.points(
                "sconna_replica_up",
                {"replica": replica_label, "instance": "router"},
            )
            first_zero_t = next(t for t, v in up_points if v == 0.0)
            assert alert.started_t - first_zero_t <= 2 * interval_s + 0.05

            # auto-drain acted: the router shows the corpse draining
            deadline = time.monotonic() + 10.0
            victim_replica = next(
                r for r in router.replicas if r.url == victim_url
            )
            while not victim_replica.draining and time.monotonic() < deadline:
                time.sleep(0.05)
            assert victim_replica.draining
            acted = [
                rec for rec in tower.alerts_doc()["remediations"]
                if rec.get("acted")
            ]
            assert acted and acted[0]["replica"] == replica_label

            # the remediation and alert were logged
            events = [
                json.loads(line)["event"]
                for line in stream.getvalue().splitlines()
            ]
            assert "alert" in events and "remediation" in events

            # zero client-visible failures, bit-identical answers
            assert failures == []
            assert len(results) == 4 * 8
            for logits in results:
                assert np.array_equal(logits, reference)
        finally:
            tower.close()
            front.shutdown()
            router.close()
            for proc in processes:
                proc.terminate()
            for proc in processes:
                try:
                    proc.wait(timeout=30.0)
                except Exception:
                    proc.kill()
