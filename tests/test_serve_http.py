"""HTTP wire paths: binary bodies, negotiation, streaming, admission.

The contract under test: whatever encoding a request or response rides,
the logits are bit-identical to the JSON path - the wire must never
change a number - and the HTTP layer behaves like a keep-alive HTTP/1.1
endpoint (one connection, many requests; ``Connection: close`` only on
errors that abort an unread body).
"""

import http.client
import json

import numpy as np
import pytest

from repro.cnn.datasets import N_CLASSES, generate_dataset
from repro.cnn.inference import QuantizedModel
from repro.cnn.micro import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.serve import (
    AdmissionError,
    AdmissionPolicy,
    AdmissionRejected,
    BatchingPolicy,
    ClientError,
    SconnaClient,
    SconnaService,
    serve_http,
)
from repro.serve.httpd import negotiate_response_type, parse_predict_fields
from repro.serve.wire import CONTENT_TYPE_FRAME, CONTENT_TYPE_JSON, CONTENT_TYPE_NPY
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def setup():
    rng = make_rng(0)
    model = Sequential(
        Conv2d(3, 6, 3, padding=1, rng=rng), ReLU(), MaxPool2d(4),
        Flatten(), Linear(6 * 6 * 6, N_CLASSES, rng=rng),
    )
    ds = generate_dataset(6, seed=3)
    qm = QuantizedModel.from_trained(model, ds.images[:24])
    return qm, ds


@pytest.fixture(scope="module")
def served(setup):
    qm, _ = setup
    svc = SconnaService(
        policy=BatchingPolicy(max_batch_size=8, max_wait_ms=2.0), n_workers=2
    )
    svc.add_model("tiny", qm)
    server, _ = serve_http(svc)
    yield svc, server
    server.shutdown()
    svc.close()


class TestBinaryEquivalence:
    def test_seeded_logits_bit_identical_across_wires(self, setup, served):
        """The acceptance gate: one seeded request, three encodings,
        one answer - to the last bit."""
        _, ds = setup
        _, server = served
        with SconnaClient(server.url) as client:
            kwargs = dict(model="tiny", seed=7, top_k=3)
            ref = client.predict(ds.images[2], wire_format="json", **kwargs)
            for wire_name in ("npy", "frame"):
                got = client.predict(ds.images[2], wire_format=wire_name,
                                     **kwargs)
                assert np.array_equal(got.logits, ref.logits), wire_name
                assert got.top_k == ref.top_k

    def test_frame_response_matches_direct_forward(self, setup, served):
        from repro.stochastic.error_models import SconnaErrorModel

        qm, ds = setup
        _, server = served
        direct = qm.forward(
            ds.images[1][None], mode="sconna",
            error_model=SconnaErrorModel(adc_mape=0.0),
        )
        with SconnaClient(server.url) as client:
            got = client.predict(ds.images[1], model="tiny", ideal=True)
        assert np.array_equal(got.logits, direct)

    def test_cost_annotation_rides_the_frame(self, setup, served):
        _, ds = setup
        _, server = served
        with SconnaClient(server.url) as client:
            got = client.predict(ds.images[0], model="tiny", cost=True)
        assert got.cost is not None
        assert got.cost["accelerator"] == "SCONNA"

    def test_npy_accept_returns_raw_logits(self, setup, served):
        _, ds = setup
        _, server = served
        with SconnaClient(server.url) as client:
            ref = client.predict(ds.images[3], model="tiny", seed=5,
                                 wire_format="json")
        from repro.serve import encode_npy, decode_npy

        conn = http.client.HTTPConnection(server.server_address[0],
                                          server.server_address[1])
        try:
            conn.request(
                "POST", "/v1/predict?model=tiny&seed=5",
                body=encode_npy(np.asarray(ds.images[3], dtype=np.float64)),
                headers={"Content-Type": CONTENT_TYPE_NPY,
                         "Accept": CONTENT_TYPE_NPY},
            )
            resp = conn.getresponse()
            body = resp.read()
            assert resp.status == 200
            assert resp.headers["Content-Type"] == CONTENT_TYPE_NPY
            assert np.array_equal(decode_npy(body), ref.logits)
            assert resp.headers["X-Sconna-Model"] == "tiny"
        finally:
            conn.close()


class TestStreaming:
    def test_streamed_reassembly_bit_identical_to_json(self, setup, served):
        """Chunked per-image frames, reassembled, equal the JSON logits
        for the same stack - split (ideal) and indivisible (seeded)."""
        _, ds = setup
        _, server = served
        stack = ds.images[:4]
        with SconnaClient(server.url) as client:
            for kwargs in (dict(ideal=True, top_k=2), dict(seed=11)):
                ref = client.predict(stack, model="tiny",
                                     wire_format="json", **kwargs)
                parts = list(client.predict_stream(stack, model="tiny",
                                                   **kwargs))
                assert [p.index for p in parts] == [0, 1, 2, 3]
                assert all(p.total == 4 for p in parts)
                reassembled = np.concatenate([p.logits for p in parts], axis=0)
                assert np.array_equal(reassembled, ref.logits), kwargs

    def test_stream_requires_frame_accept(self, setup, served):
        _, ds = setup
        _, server = served
        conn = http.client.HTTPConnection(*server.server_address[:2])
        try:
            conn.request(
                "POST", "/v1/predict",
                body=json.dumps({"model": "tiny", "stream": True,
                                 "image": ds.images[:2].tolist()}).encode(),
                headers={"Content-Type": CONTENT_TYPE_JSON,
                         "Accept": CONTENT_TYPE_JSON},
            )
            resp = conn.getresponse()
            resp.read()
            assert resp.status == 400
        finally:
            conn.close()

    def test_stream_unknown_model_is_clean_404(self, setup, served):
        _, ds = setup
        _, server = served
        with SconnaClient(server.url) as client:
            with pytest.raises(ClientError) as err:
                list(client.predict_stream(ds.images[:2], model="ghost"))
        assert err.value.status == 404


class TestKeepAliveAndErrors:
    def test_http11_keep_alive_single_connection(self, setup, served):
        _, ds = setup
        _, server = served
        with SconnaClient(server.url) as client:
            for wire_name in ("frame", "npy", "json"):
                client.predict(ds.images[0], model="tiny", ideal=True,
                               wire_format=wire_name)
            client.models()
            client.metrics()
            assert client.opened == 1  # every call rode one connection

    def test_protocol_version_is_1_1(self, served):
        _, server = served
        conn = http.client.HTTPConnection(*server.server_address[:2])
        try:
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            resp.read()
            assert resp.version == 11
            # keep-alive: a second request on the same socket succeeds
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            assert json.loads(resp.read()) == {"status": "ok"}
        finally:
            conn.close()

    def test_oversized_body_is_413_connection_close(self, served, monkeypatch):
        import repro.serve.httpd as httpd_module

        _, server = served
        monkeypatch.setattr(httpd_module, "MAX_BODY_BYTES", 64)
        conn = http.client.HTTPConnection(*server.server_address[:2])
        try:
            conn.request(
                "POST", "/v1/predict", body=b"x" * 65,
                headers={"Content-Type": CONTENT_TYPE_JSON},
            )
            resp = conn.getresponse()
            body = resp.read()
            assert resp.status == 413
            assert "cap" in json.loads(body)["error"]
            # the unread body poisons the socket: the server must close
            assert resp.headers["Connection"] == "close"
        finally:
            conn.close()

    def test_missing_length_is_411_connection_close(self, served):
        _, server = served
        conn = http.client.HTTPConnection(*server.server_address[:2])
        try:
            conn.putrequest("POST", "/v1/predict")
            conn.putheader("Content-Type", CONTENT_TYPE_JSON)
            conn.endheaders()  # no Content-Length, no body
            resp = conn.getresponse()
            resp.read()
            assert resp.status == 411
            assert resp.headers["Connection"] == "close"
        finally:
            conn.close()

    def test_unsupported_content_type_is_415(self, served):
        _, server = served
        conn = http.client.HTTPConnection(*server.server_address[:2])
        try:
            conn.request("POST", "/v1/predict", body=b"a,b,c",
                         headers={"Content-Type": "text/csv"})
            resp = conn.getresponse()
            body = resp.read()
            assert resp.status == 415
            assert "x-sconna-frame" in json.loads(body)["error"]
        finally:
            conn.close()

    def test_malformed_frame_body_is_400(self, served):
        _, server = served
        conn = http.client.HTTPConnection(*server.server_address[:2])
        try:
            conn.request("POST", "/v1/predict",
                         body=b"XXXX" + b"\x00" * 20,
                         headers={"Content-Type": CONTENT_TYPE_FRAME})
            resp = conn.getresponse()
            body = resp.read()
            assert resp.status == 400
            assert "magic" in json.loads(body)["error"]
        finally:
            conn.close()

    def test_client_falls_back_to_json_on_415(self, setup, served, monkeypatch):
        """A server predating the binary wire answers 415; the client
        downgrades to JSON transparently and stays there."""
        from repro.serve.httpd import _ServeHandler

        _, ds = setup
        _, server = served
        original = _ServeHandler._parse_request

        def legacy(self, ctype, body, query):
            if ctype != CONTENT_TYPE_JSON:
                raise NotImplementedError(ctype)
            return original(self, ctype, body, query)

        monkeypatch.setattr(_ServeHandler, "_parse_request", legacy)
        with SconnaClient(server.url) as client:
            got = client.predict(ds.images[0], model="tiny", seed=3)
            assert client._json_fallback
            again = client.predict(ds.images[0], model="tiny", seed=3)
        assert np.array_equal(got.logits, again.logits)


class TestAdmission:
    def make_service(self, qm, **admission_kwargs):
        svc = SconnaService(
            n_workers=1, admission=AdmissionPolicy(**admission_kwargs)
        )
        svc.add_model("tiny", qm)
        return svc

    def test_shed_is_429_with_retry_after(self, setup):
        qm, ds = setup
        svc = self.make_service(qm, max_queued_bytes=64, retry_after_s=0.25)
        server, _ = serve_http(svc)
        try:
            with SconnaClient(server.url) as client:
                with pytest.raises(AdmissionRejected) as err:
                    client.predict(ds.images[0], model="tiny")
                assert err.value.status == 429
                assert err.value.retry_after_s == pytest.approx(0.25)
                snap = client.metrics()
            assert snap["shed"] == 1
            assert snap["admission"]["shed"] == 1
            assert snap["admission"]["in_flight"] == 0
            assert snap["admission"]["policy"]["max_queued_bytes"] == 64
        finally:
            server.shutdown()
            svc.close()

    def test_max_inflight_sheds_then_recovers(self, setup):
        """Hold one request open in the scheduler; the second is shed;
        after the first completes the service admits again."""
        qm, ds = setup
        svc = SconnaService(
            n_workers=1,
            policy=BatchingPolicy(max_batch_size=8, max_wait_ms=500.0,
                                  min_fill=8),
            admission=AdmissionPolicy(max_inflight=1),
        )
        svc.add_model("tiny", qm)
        try:
            held = svc.predict_async("tiny", ds.images[0], ideal=True)
            with pytest.raises(AdmissionError):
                svc.predict("tiny", ds.images[1], ideal=True)
            held.result(timeout=30.0)  # the open batch flushes on its own
            ok = svc.predict("tiny", ds.images[1], ideal=True, timeout=30.0)
            assert ok.logits.shape == (1, N_CLASSES)
            assert svc.admission.stats()["shed"] == 1
            assert svc.admission.stats()["in_flight"] == 0
        finally:
            svc.close()

    def test_release_even_when_request_fails(self, setup):
        qm, _ = setup
        svc = self.make_service(qm, max_inflight=2)
        try:
            bad = np.zeros((1, 3, 10, 10))  # wrong geometry for the FC
            for _ in range(4):  # more failures than max_inflight
                with pytest.raises(Exception):
                    svc.predict("tiny", bad, timeout=10.0)
            assert svc.admission.stats()["in_flight"] == 0
        finally:
            svc.close()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queued_bytes=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(retry_after_s=-1.0)


class TestNegotiationHelpers:
    def test_accept_priorities(self):
        assert negotiate_response_type(
            CONTENT_TYPE_FRAME, CONTENT_TYPE_JSON) == CONTENT_TYPE_FRAME
        assert negotiate_response_type(
            f"{CONTENT_TYPE_JSON}, {CONTENT_TYPE_FRAME}",
            CONTENT_TYPE_JSON) == CONTENT_TYPE_FRAME
        assert negotiate_response_type(
            CONTENT_TYPE_NPY, CONTENT_TYPE_JSON) == CONTENT_TYPE_NPY
        assert negotiate_response_type(
            "text/html", CONTENT_TYPE_FRAME) == CONTENT_TYPE_JSON

    def test_wildcard_mirrors_request_type(self):
        assert negotiate_response_type(None, CONTENT_TYPE_FRAME) \
            == CONTENT_TYPE_FRAME
        assert negotiate_response_type("*/*", CONTENT_TYPE_NPY) \
            == CONTENT_TYPE_NPY
        assert negotiate_response_type("*/*", CONTENT_TYPE_JSON) \
            == CONTENT_TYPE_JSON

    def test_parse_predict_fields(self):
        fields = parse_predict_fields(
            {"model": "m", "seed": "5", "top_k": "3", "ideal": "true",
             "cost": 1, "stream": "0"}
        )
        assert fields == {"model": "m", "seed": 5, "top_k": 3,
                          "ideal": True, "cost": True, "stream": False}
        assert parse_predict_fields({})["model"] is None
        with pytest.raises(ValueError):
            parse_predict_fields({"ideal": "maybe"})
