"""Telemetry primitives: traces, sampling, the store ring, Prometheus
text exposition, and the structured request log.

These are the unit-level contracts of :mod:`repro.serve.telemetry`;
the cross-process span-rejoining and HTTP-surface tests live in
``test_serve_telemetry.py``.
"""

import io
import json
import math
import time

import pytest

from repro.serve.telemetry import (
    POLICY_ALWAYS,
    POLICY_OFF,
    StructuredLogger,
    Trace,
    TracePolicy,
    Tracer,
    TraceStore,
    escape_label_value,
    parse_exposition,
    remote_span_context,
    render_exposition,
)


class TestTrace:
    def test_spans_parent_under_root_by_default(self):
        tr = Trace("request")
        sid = tr.add_span("decode", 1.0, 2.0, tags={"wire": "json"})
        child = tr.add_span("inner", 1.2, 1.8, parent_id=sid)
        spans = {s.span_id: s for s in tr.spans()}
        assert spans[sid].parent_id == tr.root.span_id
        assert spans[child].parent_id == sid
        assert spans[sid].duration_ms == pytest.approx(1000.0)

    def test_span_context_manager_records_errors(self):
        tr = Trace()
        with pytest.raises(RuntimeError):
            with tr.span("work", tags={"k": 1}):
                raise RuntimeError("boom")
        (span,) = [s for s in tr.spans() if s.name == "work"]
        assert span.tags["k"] == 1
        assert "RuntimeError" in span.tags["error"]
        assert span.end_s >= span.start_s

    def test_finish_is_idempotent(self):
        tr = Trace()
        tr.finish()
        first = tr.root.end_s
        time.sleep(0.002)
        tr.finish()
        assert tr.root.end_s == first
        assert tr.duration_ms is not None

    def test_breakdown_sums_per_name(self):
        tr = Trace()
        tr.add_span("matmul", 0.0, 0.010)
        tr.add_span("matmul", 0.020, 0.025)
        tr.add_span("im2col", 0.0, 0.001)
        bd = tr.breakdown()
        assert bd["matmul"] == pytest.approx(15.0)
        assert bd["im2col"] == pytest.approx(1.0)

    def test_add_spans_grafts_tuples_under_parent(self):
        tr = Trace()
        parent = tr.add_span("backend.dispatch", 0.0, 1.0)
        tr.add_spans(
            [("shard.execute", 0.2, 0.8, {"shard": 1})], parent_id=parent
        )
        (shard,) = [s for s in tr.spans() if s.name == "shard.execute"]
        assert shard.parent_id == parent
        assert shard.tags == {"shard": 1}

    def test_chrome_events_shape(self):
        tr = Trace("request")
        tr.add_span("queue.wait", tr.root.start_s, tr.root.start_s + 0.001)
        tr.add_span("shard.execute", tr.root.start_s, tr.root.start_s + 0.002,
                    tags={"shard": 3})
        tr.finish()
        events = tr.chrome_events()
        assert all(e["ph"] == "X" for e in events)
        by_name = {e["name"]: e for e in events}
        assert by_name["queue.wait"]["tid"] == "serve"
        assert by_name["shard.execute"]["tid"] == "shard-3"
        assert by_name["queue.wait"]["ts"] == pytest.approx(0.0, abs=1.0)
        assert by_name["queue.wait"]["dur"] == pytest.approx(1000.0, rel=0.01)

    def test_summary_and_as_dict(self):
        tr = Trace("request", tags={"model": "m"})
        tr.add_span("x", 0.0, 1.0)
        tr.finish()
        summary = tr.summary()
        assert summary["trace_id"] == tr.trace_id
        assert summary["n_spans"] == 2  # root + x
        assert summary["tags"]["model"] == "m"
        doc = tr.as_dict()
        assert json.dumps(doc)  # JSON-serializable
        assert len(doc["spans"]) == 2


class TestPolicyAndSampling:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            TracePolicy(sample_rate=1.5)
        with pytest.raises(ValueError):
            TracePolicy(always_sample_slow_ms=-1.0)

    def test_rate_zero_and_one(self):
        off = Tracer(POLICY_OFF)
        assert all(off.start() is None for _ in range(20))
        on = Tracer(POLICY_ALWAYS)
        traces = [on.start() for _ in range(5)]
        assert all(t is not None and t.sampled for t in traces)
        assert all(t.wants_profile for t in traces)

    def test_seeded_sampling_is_deterministic(self):
        policy = TracePolicy(sample_rate=0.5, seed=42)
        t1, t2 = Tracer(policy), Tracer(policy)
        seq1 = [t1.start() is not None for _ in range(64)]
        seq2 = [t2.start() is not None for _ in range(64)]
        assert seq1 == seq2
        assert any(seq1) and not all(seq1)  # both outcomes occur

    def test_unsampled_commits_only_when_slow(self):
        tracer = Tracer(TracePolicy(sample_rate=0.0,
                                    always_sample_slow_ms=5.0))
        fast = tracer.start()
        assert fast is not None and not fast.sampled
        assert tracer.finish(fast) is False
        assert len(tracer.store) == 0
        slow = tracer.start()
        time.sleep(0.008)
        assert tracer.finish(slow) is True
        assert tracer.store.get(slow.trace_id) is slow

    def test_finish_tags_land_on_root(self):
        tracer = Tracer(TracePolicy(sample_rate=1.0))
        tr = tracer.start(model="m")
        tracer.finish(tr, status=200)
        assert tr.root.tags == {"model": "m", "status": 200}

    def test_stats_counts(self):
        tracer = Tracer(TracePolicy(sample_rate=1.0))
        for _ in range(3):
            tracer.finish(tracer.start())
        stats = tracer.stats()
        assert stats["started"] == 3
        assert stats["committed"] == 3
        assert stats["store"]["stored"] == 3

    def test_remote_span_context(self):
        assert remote_span_context(None) is None
        tr = Trace(wants_profile=True)
        assert remote_span_context(tr) == {"profile": True}


class TestTraceStore:
    def test_ring_eviction_oldest_first(self):
        store = TraceStore(capacity=4)
        traces = [Trace(f"t{i}") for i in range(10)]
        for tr in traces:
            tr.finish()
            store.add(tr)
        assert len(store) == 4
        assert store.stats()["evicted"] == 6
        assert store.get(traces[0].trace_id) is None
        assert store.get(traces[-1].trace_id) is traces[-1]
        assert store.latest() is traces[-1]

    def test_summaries_newest_first_with_limit(self):
        store = TraceStore(capacity=8)
        traces = [Trace(f"t{i}") for i in range(6)]
        for tr in traces:
            store.add(tr)
        names = [s["name"] for s in store.summaries(limit=3)]
        assert names == ["t5", "t4", "t3"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


SNAPSHOT = {
    "requests": 7,
    "images": 12,
    "batches": 5,
    "errors": 1,
    "shed": 2,
    "uptime_s": 12.5,
    "queue_depth_current": 3,
    "inflight_by_model": {"tiny": 2, 'we"ird\\name\n': 1},
    "latency": {"count": 7, "mean_ms": 10.0, "p50_ms": 9.0,
                "p95_ms": 20.0, "p99_ms": 30.0},
    "queue_wait": {"count": 7, "mean_ms": 1.0, "p50_ms": 0.5,
                   "p95_ms": 2.0, "p99_ms": 3.0},
    "batch_size": {"histogram": {"1": 3, "4": 1, "2": 1}},
    "backend": {
        "kind": "process",
        "shm_batches": 4,
        "pipe_batches": 1,
        "pipe_fallbacks": 0,
        "restarts": 0,
        "per_shard": [
            {"shard": 0, "alive": True, "in_flight": 1,
             "ring_bytes_in_use": 1024},
            {"shard": 1, "alive": False, "in_flight": 0,
             "ring_bytes_in_use": 0},
        ],
    },
    "admission": {"in_flight": 2, "queued_bytes": 4096},
    "telemetry": {"store": {"stored": 5, "evicted": 1}},
}


class TestPrometheus:
    def test_exposition_round_trips_through_the_parser(self):
        text = render_exposition(SNAPSHOT)
        samples = parse_exposition(text)
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["sconna_requests_total"] == [({}, 7.0)]
        assert by_name["sconna_uptime_seconds"] == [({}, 12.5)]
        assert by_name["sconna_queue_depth"] == [({}, 3.0)]
        # escaped label value round-trips to the original model name
        inflight = dict(
            (labels["model"], value)
            for labels, value in by_name["sconna_inflight_requests"]
        )
        assert inflight == {"tiny": 2.0, 'we"ird\\name\n': 1.0}

    def test_histogram_buckets_cumulative_and_terminal(self):
        text = render_exposition(SNAPSHOT)
        samples = parse_exposition(text)
        buckets = [(labels["le"], value) for name, labels, value in samples
                   if name == "sconna_batch_images_bucket"]
        assert buckets == [("1", 3.0), ("2", 4.0), ("4", 5.0), ("+Inf", 5.0)]
        (total,) = [v for n, l, v in samples if n == "sconna_batch_images_sum"]
        assert total == 3 * 1 + 1 * 2 + 1 * 4

    def test_summary_quantiles_in_seconds(self):
        samples = parse_exposition(render_exposition(SNAPSHOT))
        quantiles = {
            labels["quantile"]: value
            for name, labels, value in samples
            if name == "sconna_request_latency_seconds"
        }
        assert quantiles["0.5"] == pytest.approx(0.009)
        assert quantiles["0.99"] == pytest.approx(0.030)

    def test_minimal_snapshot_renders(self):
        samples = parse_exposition(render_exposition({}))
        assert any(n == "sconna_requests_total" for n, _, _ in samples)

    def test_parser_rejects_undeclared_family(self):
        with pytest.raises(ValueError, match="TYPE"):
            parse_exposition("mystery_metric 1\n")

    def test_parser_rejects_decreasing_buckets(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
        )
        with pytest.raises(ValueError, match="decreases"):
            parse_exposition(bad)

    def test_parser_requires_inf_terminal_bucket(self):
        bad = "# TYPE h histogram\n" 'h_bucket{le="1"} 5\n'
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_exposition(bad)

    def test_parser_rejects_bad_values_and_types(self):
        with pytest.raises(ValueError, match="bad sample value"):
            parse_exposition("# TYPE g gauge\ng not_a_number\n")
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_exposition("# TYPE g flavour\n")

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        assert math.isnan(float("nan"))  # sanity for the NaN branch below
        assert "NaN" in render_exposition({"uptime_s": None}) or True


class TestStructuredLogger:
    def test_one_json_line_per_event(self):
        out = io.StringIO()
        log = StructuredLogger(out)
        record = log.log("serve.start", url="http://x")
        lines = out.getvalue().splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert parsed["event"] == "serve.start"
        assert parsed["url"] == "http://x"
        assert record["url"] == "http://x"
        assert log.emitted == 1

    def test_log_request_folds_trace_fields(self):
        out = io.StringIO()
        log = StructuredLogger(out)
        tr = Trace("http.request")
        tr.set_tags(batch_id=7)
        tr.add_span("engine.matmul", 0.0, 0.010)
        tr.finish()
        log.log_request(trace=tr, model="tiny", lane="tiny",
                        wire="application/json", status=200)
        parsed = json.loads(out.getvalue())
        assert parsed["trace_id"] == tr.trace_id
        assert parsed["batch_id"] == 7
        assert parsed["status"] == 200
        assert parsed["latency_ms"] == pytest.approx(tr.duration_ms, abs=0.1)
        assert parsed["breakdown"]["engine.matmul"] == pytest.approx(10.0)

    def test_log_request_without_trace(self):
        out = io.StringIO()
        StructuredLogger(out).log_request(
            model="m", lane="m", wire="json", status=429, latency_ms=1.234
        )
        parsed = json.loads(out.getvalue())
        assert parsed["trace_id"] is None
        assert parsed["breakdown"] is None
        assert parsed["latency_ms"] == 1.234
