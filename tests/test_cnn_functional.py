"""Tests for the NumPy CNN kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnn.functional import (
    avg_pool2d,
    batchnorm_inference,
    channel_shuffle,
    conv2d,
    conv2d_direct,
    conv_output_hw,
    global_avg_pool,
    im2col,
    linear,
    max_pool2d,
    relu,
    softmax,
)


class TestOutputGeometry:
    def test_basic(self):
        assert conv_output_hw(224, 224, 7, 2, 3) == (112, 112)
        assert conv_output_hw(56, 56, 3, 1, 1) == (56, 56)
        assert conv_output_hw(8, 8, 2, 2, 0) == (4, 4)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            conv_output_hw(2, 2, 5, 1, 0)


class TestIm2col:
    def test_shape(self):
        x = np.arange(2 * 3 * 5 * 5, dtype=float).reshape(2, 3, 5, 5)
        cols = im2col(x, 3, 1, 1)
        assert cols.shape == (2, 27, 25)

    def test_single_image_squeeze(self):
        x = np.zeros((3, 5, 5))
        assert im2col(x, 3).shape == (27, 9)

    def test_column_is_receptive_field(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = im2col(x, 2, 1, 0)
        # first output pixel's patch: [0,1,4,5]
        assert list(cols[0, :, 0]) == [0.0, 1.0, 4.0, 5.0]


class TestConv2d:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 3), st.integers(1, 4), st.integers(1, 3),
        st.integers(1, 2), st.integers(0, 2), st.integers(5, 9),
    )
    def test_matches_direct_reference(self, c, l, k, stride, pad, hw):
        rng = np.random.default_rng(c * 100 + l * 10 + k)
        if hw + 2 * pad < k:
            return
        x = rng.normal(size=(c, hw, hw))
        w = rng.normal(size=(l, c, k, k))
        fast = conv2d(x, w, stride, pad)
        slow = conv2d_direct(x, w, stride, pad)
        assert np.allclose(fast, slow, atol=1e-10)

    def test_batch_dimension(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 3, 8, 8))
        w = rng.normal(size=(5, 3, 3, 3))
        out = conv2d(x, w, padding=1)
        assert out.shape == (4, 5, 8, 8)
        assert np.allclose(out[2], conv2d(x[2], w, padding=1))

    def test_depthwise_groups(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(6, 8, 8))
        w = rng.normal(size=(6, 1, 3, 3))
        out = conv2d(x, w, padding=1, groups=6)
        # each output channel is a single-channel conv of its input channel
        for ch in range(6):
            ref = conv2d(x[ch : ch + 1], w[ch : ch + 1], padding=1)
            assert np.allclose(out[ch], ref[0])

    def test_grouped_conv_channels(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(4, 6, 6))
        w = rng.normal(size=(8, 2, 1, 1))  # 2 groups of 2-in 4-out
        out = conv2d(x, w, groups=2)
        assert out.shape == (8, 6, 6)

    def test_bias(self):
        x = np.zeros((1, 4, 4))
        w = np.zeros((3, 1, 1, 1))
        out = conv2d(x, w, bias=np.array([1.0, 2.0, 3.0]))
        assert np.allclose(out[1], 2.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            conv2d(np.zeros((3, 5, 5)), np.zeros((2, 3, 3, 2)))  # non-square
        with pytest.raises(ValueError):
            conv2d(np.zeros((3, 5, 5)), np.zeros((2, 2, 3, 3)))  # chan mismatch
        with pytest.raises(ValueError):
            conv2d(np.zeros((4, 5, 5)), np.zeros((2, 2, 1, 1)), groups=3)


class TestPooling:
    def test_max_pool_values(self):
        x = np.array([[[1, 2, 3, 4], [5, 6, 7, 8], [1, 1, 1, 1], [2, 2, 2, 9]]], dtype=float)
        out = max_pool2d(x, 2)
        assert out.shape == (1, 2, 2)
        assert np.array_equal(out[0], [[6, 8], [2, 9]])

    def test_avg_pool_values(self):
        x = np.ones((2, 4, 4))
        assert np.allclose(avg_pool2d(x, 2), 1.0)

    def test_pool_batch(self):
        x = np.random.default_rng(0).normal(size=(3, 2, 6, 6))
        assert max_pool2d(x, 2).shape == (3, 2, 3, 3)

    def test_global_avg_pool(self):
        x = np.random.default_rng(0).normal(size=(2, 5, 4, 4))
        out = global_avg_pool(x)
        assert out.shape == (2, 5)
        assert np.allclose(out, x.mean(axis=(2, 3)))

    def test_max_ge_avg(self):
        x = np.random.default_rng(1).normal(size=(2, 8, 8))
        assert (max_pool2d(x, 2) >= avg_pool2d(x, 2) - 1e-12).all()


class TestElementwise:
    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_softmax_normalised(self):
        p = softmax(np.random.default_rng(0).normal(size=(4, 10)))
        assert np.allclose(p.sum(axis=1), 1.0)
        assert (p > 0).all()

    def test_softmax_shift_invariant(self):
        x = np.random.default_rng(1).normal(size=(2, 5))
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_linear(self):
        x = np.array([[1.0, 2.0]])
        w = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        out = linear(x, w, bias=np.array([0.0, 0.0, 1.0]))
        assert np.allclose(out, [[1.0, 2.0, 4.0]])

    def test_batchnorm_identity(self):
        x = np.random.default_rng(2).normal(size=(3, 4, 4))
        out = batchnorm_inference(
            x, mean=np.zeros(3), var=np.ones(3) - 1e-5,
            gamma=np.ones(3), beta=np.zeros(3),
        )
        assert np.allclose(out, x, atol=1e-5)

    def test_batchnorm_standardises(self):
        rng = np.random.default_rng(3)
        x = rng.normal(5.0, 3.0, size=(1, 2, 50, 50))
        mean = x.mean(axis=(0, 2, 3))
        var = x.var(axis=(0, 2, 3))
        out = batchnorm_inference(x, mean, var, np.ones(2), np.zeros(2))
        assert abs(out.mean()) < 1e-6
        assert abs(out.std() - 1.0) < 1e-3

    def test_channel_shuffle_roundtrip(self):
        x = np.arange(8 * 2 * 2, dtype=float).reshape(8, 2, 2)
        y = channel_shuffle(channel_shuffle(x, 2), 4)
        assert np.array_equal(y, x)

    def test_channel_shuffle_interleaves(self):
        x = np.arange(4, dtype=float).reshape(4, 1, 1)
        y = channel_shuffle(x, 2)
        assert list(y[:, 0, 0]) == [0.0, 2.0, 1.0, 3.0]

    def test_channel_shuffle_validation(self):
        with pytest.raises(ValueError):
            channel_shuffle(np.zeros((5, 2, 2)), 2)
