"""Tests for the TIR/PCA analog stage (Fig 7b) and ADC/DAC models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.converters import (
    ANALOG_ADC,
    ANALOG_DAC,
    SCONNA_ADC,
    AdcErrorModel,
    ConverterSpec,
    QuantizingADC,
)
from repro.photonics.tir import TIRParams, TimeIntegratingReceiver

BIT_30G = 1.0 / 30e9


class TestTIR:
    def test_paper_full_scale_voltage(self):
        """Section V-C configuration: ~0.9 V at alpha=100 % - no saturation."""
        tir = TimeIntegratingReceiver()
        v = tir.alpha_sweep(176, 256, BIT_30G, np.array([1.0]))[0]
        assert 0.85 < v < 1.0

    def test_linear_in_alpha(self):
        tir = TimeIntegratingReceiver()
        alphas = np.linspace(0.0, 1.0, 21)
        v = tir.alpha_sweep(176, 256, BIT_30G, alphas)
        # linearity: second differences vanish
        assert np.allclose(np.diff(v, 2), 0.0, atol=1e-12)

    def test_never_saturates_at_paper_point(self):
        assert TimeIntegratingReceiver().is_linear_up_to(176, 256, BIT_30G)

    def test_saturates_with_small_capacitor(self):
        params = TIRParams(capacitance_f=25e-12)  # 10x smaller than paper
        tir = TimeIntegratingReceiver(params)
        assert not tir.is_linear_up_to(176, 256, BIT_30G)
        v = tir.alpha_sweep(176, 256, BIT_30G, np.array([1.0]))[0]
        assert v == pytest.approx(params.supply_rail_v)

    def test_pulse_charge_value(self):
        p = TIRParams()
        # 1.2 A/W * 1.585 uW * 33.3 ps = 6.34e-17 C
        assert p.pulse_charge_c(BIT_30G) == pytest.approx(6.34e-17, rel=0.01)

    def test_voltage_proportional_to_ones(self):
        tir = TimeIntegratingReceiver()
        v1 = tir.output_voltage_v(1000, BIT_30G)
        v2 = tir.output_voltage_v(2000, BIT_30G)
        assert float(v2) == pytest.approx(2 * float(v1), rel=1e-9)

    def test_discharge_latency(self):
        p = TIRParams()
        assert p.discharge_latency_s() == pytest.approx(
            5.0 * 50.0 * 250e-12, rel=1e-9
        )

    def test_negative_ones_rejected(self):
        with pytest.raises(ValueError):
            TimeIntegratingReceiver().output_voltage_v(-1, BIT_30G)

    def test_bad_bit_period_rejected(self):
        with pytest.raises(ValueError):
            TIRParams().pulse_charge_c(0.0)

    def test_alpha_out_of_range_rejected(self):
        tir = TimeIntegratingReceiver()
        with pytest.raises(ValueError):
            tir.alpha_sweep(176, 256, BIT_30G, np.array([1.5]))

    @given(st.integers(min_value=1, max_value=45056))
    @settings(max_examples=50)
    def test_monotone_in_ones(self, n):
        tir = TimeIntegratingReceiver()
        assert float(tir.output_voltage_v(n, BIT_30G)) >= float(
            tir.output_voltage_v(n - 1, BIT_30G)
        )


class TestQuantizingADC:
    def test_endpoints(self):
        adc = QuantizingADC(SCONNA_ADC, full_scale=1.0)
        assert adc.convert(0.0) == 0
        assert adc.convert(1.0) == 255

    def test_clipping(self):
        adc = QuantizingADC(SCONNA_ADC, full_scale=1.0)
        assert adc.convert(2.0) == 255
        assert adc.convert(-1.0) == 0

    def test_roundtrip_error_bounded_by_half_lsb(self):
        adc = QuantizingADC(SCONNA_ADC, full_scale=1.0)
        v = np.linspace(0, 1, 1001)
        err = np.abs(adc.reconstruct(adc.convert(v)) - v)
        assert err.max() <= 0.5 / adc.levels + 1e-12

    def test_invalid_full_scale(self):
        with pytest.raises(ValueError):
            QuantizingADC(SCONNA_ADC, full_scale=0.0)


class TestConverterSpecs:
    def test_table_iv_sconna_adc(self):
        assert SCONNA_ADC.power_w == pytest.approx(2.55e-3)
        assert SCONNA_ADC.area_mm2 == pytest.approx(0.002)
        assert SCONNA_ADC.latency_s == pytest.approx(0.78e-9)

    def test_table_iv_analog_converters(self):
        assert ANALOG_ADC.power_w == pytest.approx(29e-3)
        assert ANALOG_DAC.power_w == pytest.approx(30e-3)

    def test_sconna_adc_10x_cheaper_than_analog(self):
        assert ANALOG_ADC.power_w / SCONNA_ADC.power_w > 10

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            ConverterSpec("bad", 0, 1e-9, 1e-3, 1e-3)
        with pytest.raises(ValueError):
            ConverterSpec("bad", 8, -1e-9, 1e-3, 1e-3)


class TestAdcErrorModel:
    def test_calibrated_mape(self):
        """Section V-C: the PCA's ADC shows 1.3 % MAPE."""
        m = AdcErrorModel(mape=0.013, seed=7)
        assert m.measured_mape() == pytest.approx(0.013, rel=0.05)

    def test_zero_mape_is_identity_rounding(self):
        m = AdcErrorModel(mape=0.0)
        vals = np.array([1.0, 2.4, 7.6])
        assert np.array_equal(m.apply(vals), np.array([1, 2, 8]))

    def test_apply_returns_integers(self):
        m = AdcErrorModel(seed=1)
        out = m.apply(np.array([100.0, 200.0]))
        assert out.dtype == np.int64

    def test_error_centered_on_truth(self):
        m = AdcErrorModel(seed=2)
        vals = np.full(100_000, 1000.0)
        out = m.apply(vals)
        assert abs(out.mean() - 1000.0) < 1.0

    def test_invalid_mape_rejected(self):
        with pytest.raises(ValueError):
            AdcErrorModel(mape=1.5)
        with pytest.raises(ValueError):
            AdcErrorModel(mape=-0.1)

    def test_seeded_reproducibility(self):
        a = AdcErrorModel(seed=9).apply(np.arange(100, 200, dtype=float))
        b = AdcErrorModel(seed=9).apply(np.arange(100, 200, dtype=float))
        assert np.array_equal(a, b)
