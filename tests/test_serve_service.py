"""Service facade, per-request reproducibility, costs, metrics, HTTP."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cnn.datasets import N_CLASSES, generate_dataset
from repro.cnn.inference import QuantizedModel
from repro.cnn.micro import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.serve import (
    BatchingPolicy,
    ModelRegistry,
    SconnaService,
    descriptor_from_quantized,
    percentile,
    serve_http,
)
from repro.stochastic.error_models import PerRequestErrorModels, SconnaErrorModel
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def setup():
    rng = make_rng(0)
    model = Sequential(
        Conv2d(3, 6, 3, padding=1, rng=rng), ReLU(), MaxPool2d(4),
        Flatten(), Linear(6 * 6 * 6, N_CLASSES, rng=rng),
    )
    ds = generate_dataset(6, seed=3)
    qm = QuantizedModel.from_trained(model, ds.images[:24])
    return qm, ds


@pytest.fixture()
def service(setup):
    qm, _ = setup
    svc = SconnaService(
        policy=BatchingPolicy(max_batch_size=8, max_wait_ms=2.0), n_workers=2
    )
    svc.add_model("tiny", qm)
    yield svc
    svc.close()


class TestPredict:
    def test_ideal_matches_direct_forward(self, setup, service):
        qm, ds = setup
        direct = qm.forward(
            ds.images[1][None], mode="sconna",
            error_model=SconnaErrorModel(adc_mape=0.0),
        )
        pred = service.predict("tiny", ds.images[1], ideal=True)
        assert np.array_equal(pred.logits, direct)

    def test_seeded_request_bit_identical_across_batch_compositions(
        self, setup, service
    ):
        """The reproducibility contract: one request, one RNG stream,
        regardless of which strangers shared the coalesced batch."""
        _, ds = setup
        solo = service.predict("tiny", ds.images[2], seed=5)
        for companions in (3, 7):
            futs = [
                service.predict_async("tiny", ds.images[i % 6], seed=100 + i)
                for i in range(companions)
            ]
            crowd = service.predict("tiny", ds.images[2], seed=5)
            for f in futs:
                f.result(10.0)
            assert np.array_equal(solo.logits, crowd.logits)

    def test_same_seed_same_result_repeated(self, setup, service):
        _, ds = setup
        a = service.predict("tiny", ds.images[0], seed=9)
        b = service.predict("tiny", ds.images[0], seed=9)
        assert np.array_equal(a.logits, b.logits)

    def test_multi_image_request_kept_whole(self, setup, service):
        _, ds = setup
        pred = service.predict("tiny", ds.images[:3], seed=1, top_k=2)
        assert pred.logits.shape == (3, N_CLASSES)
        assert len(pred.top_k) == 3
        assert all(len(per_image) == 2 for per_image in pred.top_k)

    def test_top_k_ordering(self, setup, service):
        _, ds = setup
        pred = service.predict("tiny", ds.images[4], ideal=True, top_k=3)
        logits = [v for _, v in pred.top_k[0]]
        assert logits == sorted(logits, reverse=True)
        assert pred.top_class == pred.top_k[0][0][0]

    def test_unknown_model_and_bad_input(self, setup, service):
        _, ds = setup
        with pytest.raises(KeyError):
            service.predict("ghost", ds.images[0])
        with pytest.raises(ValueError):
            service.predict("tiny", ds.images[0, 0])  # 2-D
        with pytest.raises(ValueError):
            service.predict("tiny", ds.images[0], top_k=0)

    def test_shape_mismatch_fails_caller_not_companions(self, setup, service):
        """A wrong-geometry image is rejected at submit time, so it can
        never poison the strangers it would have been batched with."""
        _, ds = setup
        service.predict("tiny", ds.images[0])  # pins the lane shape
        with pytest.raises(ValueError, match="serving shape"):
            service.predict("tiny", np.zeros((3, 32, 32)))
        ok = service.predict("tiny", ds.images[1], ideal=True)
        assert ok.logits.shape == (1, N_CLASSES)

    def test_close_then_predict_raises(self, setup):
        qm, ds = setup
        svc = SconnaService(n_workers=1)
        svc.add_model("m", qm)
        svc.close()
        with pytest.raises(RuntimeError):
            svc.predict("m", ds.images[0])


class TestCosts:
    def test_cost_annotation_fields_and_caching(self, setup, service):
        _, ds = setup
        pred = service.predict("tiny", ds.images[0], with_cost=True)
        cost = pred.cost
        assert cost is not None
        assert cost.accelerator == "SCONNA"
        assert cost.latency_s > 0 and cost.energy_j > 0
        assert cost.bottleneck in (
            "compute", "reduction", "memory", "activation", "weight_io"
        )
        # a second annotated request hits the simulation cache
        service.predict("tiny", ds.images[1], with_cost=True)
        assert len(service.costs.cache) == 1

    def test_cost_scales_with_image_count(self, setup, service):
        _, ds = setup
        one = service.predict("tiny", ds.images[0], with_cost=True).cost
        three = service.predict("tiny", ds.images[:3], with_cost=True).cost
        assert three.latency_s == pytest.approx(3 * one.latency_s)
        assert three.energy_j == pytest.approx(3 * one.energy_j)

    def test_descriptor_derivation_matches_structure(self, setup):
        qm, _ = setup
        desc = descriptor_from_quantized(qm, "tiny", (3, 24, 24))
        assert [l.name for l in desc.layers] == ["conv0", "fc4"]
        assert desc.layers[0].vector_size == 27
        assert desc.layers[1].in_channels == 6 * 6 * 6


class TestMetricsAndErrors:
    def test_snapshot_counts_requests_and_batches(self, setup, service):
        _, ds = setup
        futs = [
            service.predict_async("tiny", ds.images[i % 6], seed=i)
            for i in range(10)
        ]
        for f in futs:
            f.result(10.0)
        snap = service.metrics_snapshot()
        assert snap["requests"] >= 10
        assert snap["batches"] >= 1
        assert snap["latency"]["p99_ms"] >= snap["latency"]["p50_ms"]
        assert snap["models"] == ["tiny"]

    def test_percentile_helper(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 0) == 1.0
        assert percentile(vals, 100) == 4.0
        assert percentile(vals, 50) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_inference_failure_routed_to_future(self, setup):
        qm, ds = setup
        svc = SconnaService(n_workers=1)
        svc.add_model("m", qm)
        try:
            bad = np.zeros((1, 3, 10, 10))  # wrong spatial dims for the FC
            with pytest.raises(Exception):
                svc.predict("m", bad, timeout=10.0)
            snap = svc.metrics_snapshot()
            assert snap["errors"] >= 1
        finally:
            svc.close()


class TestPerRequestErrorModels:
    def test_ideal_passthrough_is_exact(self):
        counts = np.arange(24, dtype=np.int64).reshape(2, 3, 4)
        composite = PerRequestErrorModels([None, SconnaErrorModel(adc_mape=0.0)])
        assert composite.ideal()
        assert np.array_equal(composite.apply_to_counts(counts), counts)

    def test_mixed_batch_noisy_slice_only(self):
        counts = np.full((2, 2, 2), 1000.0)
        composite = PerRequestErrorModels([None, SconnaErrorModel(seed=0)])
        assert not composite.ideal()
        out = composite.apply_to_counts(counts)
        assert np.array_equal(out[0], counts[0])
        assert not np.array_equal(out[1], counts[1])

    def test_segment_sizes_respected(self):
        counts = np.zeros((5, 1, 1))
        composite = PerRequestErrorModels([None, None], sizes=[2, 3])
        assert composite.n_images == 5
        composite.apply_to_counts(counts)
        with pytest.raises(ValueError):
            composite.apply_to_counts(np.zeros((4, 1, 1)))
        with pytest.raises(ValueError):
            PerRequestErrorModels([None], sizes=[1, 2])


class TestHTTP:
    def test_registry_to_http_bit_identical(self, setup, tmp_path):
        """The acceptance path: save -> registry load -> serve -> HTTP
        round trip returns bit-identical logits under the ideal model."""
        qm, ds = setup
        registry = ModelRegistry(tmp_path)
        registry.save("tiny", qm, arch_model="MobileNet_V2")
        svc = SconnaService(n_workers=1)
        svc.add_from_registry(registry, "tiny")
        server, _ = serve_http(svc)
        try:
            direct = qm.forward(
                ds.images[2][None], mode="sconna",
                error_model=SconnaErrorModel(adc_mape=0.0),
            )
            # in-process path
            in_proc = svc.predict("tiny", ds.images[2], ideal=True)
            assert np.array_equal(in_proc.logits, direct)
            # HTTP path (JSON round-trips float64 exactly)
            body = json.dumps({
                "model": "tiny", "image": ds.images[2].tolist(),
                "ideal": True, "top_k": 3, "cost": True,
            }).encode()
            req = urllib.request.Request(
                server.url + "/v1/predict", data=body,
                headers={"Content-Type": "application/json"},
            )
            resp = json.loads(urllib.request.urlopen(req, timeout=30).read())
            assert np.array_equal(np.asarray(resp["logits"]), direct)
            assert resp["cost"]["accelerator"] == "SCONNA"
            assert resp["cost"]["model"] == "MobileNet_V2"
            assert len(resp["top_k"][0]) == 3
            # side endpoints
            models = json.loads(
                urllib.request.urlopen(server.url + "/v1/models", timeout=30).read()
            )
            assert models == {"models": ["tiny"]}
            health = json.loads(
                urllib.request.urlopen(server.url + "/healthz", timeout=30).read()
            )
            assert health == {"status": "ok"}
            metrics = json.loads(
                urllib.request.urlopen(server.url + "/v1/metrics", timeout=30).read()
            )
            assert metrics["requests"] >= 2
        finally:
            server.shutdown()
            svc.close()

    def test_http_error_statuses(self, setup):
        qm, ds = setup
        svc = SconnaService(n_workers=1)
        svc.add_model("tiny", qm)
        server, _ = serve_http(svc)
        try:
            def post(payload):
                req = urllib.request.Request(
                    server.url + "/v1/predict",
                    data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"},
                )
                return urllib.request.urlopen(req, timeout=30)

            with pytest.raises(urllib.error.HTTPError) as err:
                post({"model": "ghost", "image": ds.images[0].tolist()})
            assert err.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as err:
                post({"model": "tiny"})  # missing image
            assert err.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/nope", timeout=30)
            assert err.value.code == 404
        finally:
            server.shutdown()
            svc.close()

    def test_model_field_optional_with_single_model(self, setup):
        qm, ds = setup
        svc = SconnaService(n_workers=1)
        svc.add_model("only", qm)
        server, _ = serve_http(svc)
        try:
            req = urllib.request.Request(
                server.url + "/v1/predict",
                data=json.dumps({"image": ds.images[0].tolist()}).encode(),
                headers={"Content-Type": "application/json"},
            )
            resp = json.loads(urllib.request.urlopen(req, timeout=30).read())
            assert resp["model"] == "only"
        finally:
            server.shutdown()
            svc.close()
