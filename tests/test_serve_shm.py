"""Shared-memory shard transport: ring edge cases, placement, cleanup.

The transport's contract, beyond the bit-equivalence locked in
``test_serve_backends.py``: ring allocation wraps and reclaims out of
completion order, a batch larger than the ring degrades to the pipe
path (backpressure, not failure), a shard crash mid-batch redispatches
its work *and* reclaims its segments, ``close()`` is idempotent, and no
``/dev/shm/repro_*`` segment survives the backend under any exit path.
"""

import glob
import time

import numpy as np
import pytest

from repro.cnn.datasets import N_CLASSES, generate_dataset
from repro.cnn.inference import QuantizedModel
from repro.cnn.micro import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.serve import (
    BatchingPolicy,
    ModelRegistry,
    ProcessBackend,
    RingAllocator,
    SconnaService,
    ShardPlacement,
    ShmArena,
)
from repro.serve.shm import SEGMENT_PREFIX, attach_arena
from repro.utils.rng import make_rng

POLICY = BatchingPolicy(max_batch_size=8, max_wait_ms=2.0)


@pytest.fixture(scope="module")
def setup():
    rng = make_rng(0)
    model = Sequential(
        Conv2d(3, 6, 3, padding=1, rng=rng), ReLU(), MaxPool2d(4),
        Flatten(), Linear(6 * 6 * 6, N_CLASSES, rng=rng),
    )
    ds = generate_dataset(6, seed=3)
    qm = QuantizedModel.from_trained(model, ds.images[:24])
    return qm, ds


def segments_alive(names) -> "list[str]":
    return [n for n in names if glob.glob(f"/dev/shm/{n}")]


class TestRingAllocator:
    def test_wrap_around(self):
        """The cursor wraps to reclaimed space at the front of the ring."""
        ring = RingAllocator(100)
        a = ring.alloc(40)
        b = ring.alloc(40)
        assert (a, b) == (0, 40)
        assert ring.alloc(40) is None  # only 20 B left at the tail
        ring.free(a)
        wrapped = ring.alloc(40)
        assert wrapped == 0  # wrapped past the live region at 40..80
        assert ring.in_use == 80
        ring.free(b)
        ring.free(wrapped)
        assert ring.in_use == 0

    def test_out_of_order_free_cannot_strand_capacity(self):
        ring = RingAllocator(100)
        offsets = [ring.alloc(25) for _ in range(4)]
        assert ring.alloc(1) is None
        # free in reverse completion order - a head/tail ring would
        # strand everything behind the oldest live region
        for off in reversed(offsets[:3]):
            ring.free(off)
        assert ring.alloc(75) == 0
        ring.free(offsets[3])

    def test_oversized_and_full(self):
        ring = RingAllocator(64)
        assert ring.alloc(65) is None
        assert ring.alloc(64) == 0
        assert ring.alloc(1) is None

    def test_double_free_raises(self):
        ring = RingAllocator(16)
        off = ring.alloc(8)
        ring.free(off)
        with pytest.raises(KeyError):
            ring.free(off)

    def test_validation(self):
        with pytest.raises(ValueError):
            RingAllocator(0)


class TestShmArena:
    def test_roundtrip_bit_exact_and_prefixed(self):
        arena = ShmArena(1 << 16)
        try:
            assert arena.name.startswith(SEGMENT_PREFIX)
            data = np.arange(96, dtype=np.float64).reshape(2, 3, 4, 4)
            data += 1e-9  # non-trivial mantissas
            desc = arena.write_array(128, data)
            assert desc.offset == 128 and desc.dtype == "float64"
            out = arena.read_array(desc)
            assert np.array_equal(out, data)
            assert out.base is None  # a copy, never a view into the arena
        finally:
            arena.destroy()
        assert not glob.glob(f"/dev/shm/{arena.name}")

    def test_attach_sees_owner_writes(self):
        arena = ShmArena(4096)
        try:
            data = np.linspace(0.0, 1.0, 32, dtype=np.float64)
            desc = arena.write_array(0, data)
            attachment = attach_arena(arena.name, 4096)
            try:
                assert np.array_equal(attachment.read_array(desc), data)
            finally:
                attachment.close()
        finally:
            arena.destroy()

    @pytest.mark.parametrize("dtype", [np.uint8, np.int8])
    def test_integer_arrays_cross_ring_without_upcast(self, dtype):
        """uint8/int8 batches keep their dtype through the shm ring: the
        descriptor records the narrow dtype and the reader rebuilds the
        exact bytes - no float64 materialisation in transport."""
        arena = ShmArena(1 << 14)
        try:
            data = np.arange(2 * 3 * 4 * 4, dtype=dtype).reshape(2, 3, 4, 4)
            desc = arena.write_array(64, data)
            assert desc.dtype == np.dtype(dtype).name
            assert desc.nbytes == data.nbytes  # 1 byte/px: never widened
            out = arena.read_array(desc)
            assert out.dtype == np.dtype(dtype)
            assert np.array_equal(out, data)
            attachment = attach_arena(arena.name, 1 << 14)
            try:
                other = attachment.read_array(desc)
                assert other.dtype == np.dtype(dtype)
                assert np.array_equal(other, data)
            finally:
                attachment.close()
        finally:
            arena.destroy()

    def test_write_past_capacity_rejected(self):
        arena = ShmArena(64)
        try:
            with pytest.raises(ValueError, match="exceeds arena"):
                arena.write_array(32, np.zeros(8, dtype=np.float64))
        finally:
            arena.destroy()

    def test_destroy_idempotent(self):
        arena = ShmArena(4096)
        arena.destroy()
        arena.destroy()  # second unlink must not raise


class TestShardPlacement:
    def test_parse_and_as_dict(self):
        p = ShardPlacement.parse("a=0,1;b=2")
        assert p.as_dict() == {"a": [0, 1], "b": [2]}
        assert p.shards_for("a", 4) == (0, 1)
        assert p.shards_for("unplaced", 3) == (0, 1, 2)

    def test_out_of_range_slot_rejected_at_resolution(self):
        p = ShardPlacement({"a": [0, 5]})
        with pytest.raises(ValueError, match="only 2 shard"):
            p.shards_for("a", 2)

    def test_bad_specs(self):
        with pytest.raises(ValueError):
            ShardPlacement.parse("a")
        with pytest.raises(ValueError):
            ShardPlacement.parse("a=x")
        with pytest.raises(ValueError):
            ShardPlacement({"a": []})
        with pytest.raises(ValueError):
            ShardPlacement({"a": [-1]})

    def test_registry_manifest_round_trip(self, setup, tmp_path):
        qm, _ = setup
        registry = ModelRegistry(tmp_path)
        registry.save("pinned", qm, placement=[1, 0, 1])
        entry = registry.entry("pinned")
        assert entry.placement == (0, 1)
        assert entry.as_dict()["placement"] == [0, 1]
        registry.save("anywhere", qm)
        assert registry.entry("anywhere").placement is None
        with pytest.raises(ValueError):
            registry.save("bad", qm, placement=[])


class TestShmTransport:
    def test_batch_larger_than_ring_falls_back_to_pipe(self, setup):
        """A ring smaller than one image cannot carry any batch: every
        dispatch degrades to the pipe path and results are unchanged."""
        qm, ds = setup
        backend = ProcessBackend(n_shards=1, ring_bytes=4096)
        svc = SconnaService(policy=POLICY, backend=backend)
        svc.add_model("tiny", qm)
        try:
            direct = svc.predict("tiny", ds.images[0], ideal=True, timeout=120.0)
            info = backend.info()
            assert info["transport"] == "shm"
            assert info["pipe_fallbacks"] >= 1
            assert info["shm_batches"] == 0
            from repro.stochastic.error_models import SconnaErrorModel

            expected = qm.forward(
                ds.images[0][None], mode="sconna",
                error_model=SconnaErrorModel(adc_mape=0.0),
            )
            assert np.array_equal(direct.logits, expected)
        finally:
            svc.close()
        assert not segments_alive(backend.segment_names)

    def test_shm_batches_flow_through_rings(self, setup):
        qm, ds = setup
        backend = ProcessBackend(n_shards=1)
        svc = SconnaService(policy=POLICY, backend=backend)
        svc.add_model("tiny", qm)
        try:
            futs = [
                svc.predict_async("tiny", ds.images[i % 6], seed=i)
                for i in range(10)
            ]
            for f in futs:
                f.result(120.0)
            info = backend.info()
            assert info["shm_batches"] >= 1
            assert info["pipe_batches"] == 0
            # every completed batch returned its tx region
            assert info["per_shard"][0]["ring_bytes_in_use"] == 0
        finally:
            svc.close()

    def test_crash_mid_batch_redispatches_and_reclaims_segments(self, setup):
        qm, ds = setup
        backend = ProcessBackend(n_shards=2)
        svc = SconnaService(policy=POLICY, backend=backend)
        svc.add_model("tiny", qm)
        try:
            expected = svc.predict("tiny", ds.images[2], seed=5, timeout=120.0)
            before = set(backend.segment_names)
            restarts = backend.restarts
            victim = backend._shards[0]
            victim_names = {victim.tx.name, victim.rx.name}
            # keep requests in flight while the shard dies
            futs = [
                svc.predict_async("tiny", ds.images[i % 6], seed=100 + i)
                for i in range(8)
            ]
            victim.process.terminate()
            for f in futs:
                f.result(120.0)  # redispatched, not dropped
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if backend.info()["alive"] == 2 and backend.restarts > restarts:
                    break
                time.sleep(0.05)
            assert backend.restarts > restarts
            # the dead shard's rings are gone; the respawn got fresh ones
            assert not segments_alive(victim_names)
            assert len(set(backend.segment_names) - before) == 2
            after = svc.predict("tiny", ds.images[2], seed=5, timeout=120.0)
            assert np.array_equal(after.logits, expected.logits)
        finally:
            svc.close()
        assert not segments_alive(backend.segment_names)

    def test_close_idempotent_and_leak_free(self, setup):
        qm, ds = setup
        backend = ProcessBackend(n_shards=1)
        svc = SconnaService(policy=POLICY, backend=backend)
        svc.add_model("tiny", qm)
        svc.predict("tiny", ds.images[0], seed=1, timeout=120.0)
        svc.close()
        svc.close()  # second close is a no-op
        backend.close()  # and so is closing the already-closed backend
        assert not segments_alive(backend.segment_names)
        for shard in backend._shards:
            assert not shard.process.is_alive()

    def test_transport_validation(self):
        with pytest.raises(ValueError, match="unknown transport"):
            ProcessBackend(transport="carrier-pigeon")
        with pytest.raises(ValueError, match="ring_bytes"):
            ProcessBackend(ring_bytes=0)


class TestPlacementRouting:
    def test_model_runs_only_on_placed_shards(self, setup):
        qm, ds = setup
        backend = ProcessBackend(
            n_shards=2, placement=ShardPlacement({"tiny": [1]})
        )
        svc = SconnaService(policy=POLICY, backend=backend)
        svc.add_model("tiny", qm)
        try:
            futs = [
                svc.predict_async("tiny", ds.images[i % 6], seed=i)
                for i in range(8)
            ]
            for f in futs:
                f.result(120.0)
            info = backend.info()
            assert info["placement"] == {"tiny": [1]}
            assert info["per_shard"][0]["models"] == []
            assert info["per_shard"][1]["models"] == ["tiny"]
        finally:
            svc.close()

    def test_placement_out_of_range_fails_add(self, setup):
        qm, _ = setup
        backend = ProcessBackend(n_shards=2)
        svc = SconnaService(policy=POLICY, backend=backend)
        try:
            with pytest.raises(ValueError, match="only 2 shard"):
                svc.add_model("tiny", qm, placement=[3])
        finally:
            svc.close()

    def test_placement_survives_via_registry(self, setup, tmp_path):
        """A manifest-pinned model is served on its manifest slots."""
        qm, ds = setup
        registry = ModelRegistry(tmp_path)
        registry.save("tiny", qm, placement=[0])
        svc = SconnaService(policy=POLICY, backend="process", n_shards=2)
        svc.add_from_registry(registry, "tiny")
        try:
            pred = svc.predict("tiny", ds.images[0], seed=0, timeout=120.0)
            assert pred.logits.shape[1] == N_CLASSES
            info = svc.backend.info()
            assert info["placement"] == {"tiny": [0]}
        finally:
            svc.close()
