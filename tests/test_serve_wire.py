"""Wire-protocol codec: round trips, zero-copy, and hostile bodies."""

import io
import struct

import numpy as np
import pytest

from repro.serve import wire
from repro.serve.wire import WireError


class TestFrameRoundTrip:
    def test_multi_tensor_round_trip_exact(self):
        a = np.arange(24, dtype=np.float64).reshape(2, 3, 4) / 7.0
        b = np.arange(6, dtype=np.int8).reshape(3, 2)
        meta = {"model": "m", "seed": 3, "nested": {"k": [1, 2]}}
        out_meta, tensors = wire.decode_frame(
            wire.encode_frame(meta, {"image": a, "aux": b})
        )
        assert out_meta == meta
        assert np.array_equal(tensors["image"], a)
        assert tensors["image"].dtype == a.dtype
        assert np.array_equal(tensors["aux"], b)
        assert tensors["aux"].dtype == b.dtype

    def test_decode_is_zero_copy_c_contiguous(self):
        a = np.arange(1000, dtype=np.float64).reshape(10, 100)
        _, tensors = wire.decode_frame(wire.encode_frame({}, {"x": a}))
        out = tensors["x"]
        assert out.flags["C_CONTIGUOUS"]
        assert not out.flags["OWNDATA"]  # a view into the body, not a copy

    def test_non_contiguous_input_and_empty_tensor(self):
        strided = np.arange(24.0).reshape(4, 6)[:, ::2]
        empty = np.empty((0, 5))
        _, tensors = wire.decode_frame(
            wire.encode_frame({}, {"s": strided, "e": empty})
        )
        assert np.array_equal(tensors["s"], strided)
        assert tensors["e"].shape == (0, 5)

    def test_metadata_only_frame(self):
        meta, tensors = wire.decode_frame(wire.encode_frame({"done": True}))
        assert meta == {"done": True}
        assert tensors == {}

    def test_every_whitelisted_dtype_round_trips(self):
        for dtype in ("float64", "float32", "int64", "int32", "int16",
                      "int8", "uint8", "bool"):
            arr = np.ones((2, 2), dtype=dtype)
            _, tensors = wire.decode_frame(wire.encode_frame({}, {"x": arr}))
            assert tensors["x"].dtype == np.dtype(dtype)
            assert np.array_equal(tensors["x"], arr)

    def test_object_dtype_rejected_at_encode(self):
        with pytest.raises(WireError, match="whitelist"):
            wire.encode_frame({}, {"o": np.array([{}], dtype=object)})


class TestIntegerNativeFrames:
    """uint8/int8 image frames travel the wire without any upcast: the
    decoded view keeps the narrow dtype, batches of such views stack
    without promotion, and the decoded (read-only) tensor feeds the
    fused inference path to bit-identical logits - never touching
    float64 between socket and logits."""

    @pytest.mark.parametrize("dtype", [np.uint8, np.int8])
    def test_decoded_view_keeps_narrow_dtype(self, dtype):
        img = np.arange(2 * 3 * 4 * 4, dtype=dtype).reshape(2, 3, 4, 4)
        _, tensors = wire.decode_frame(
            wire.encode_frame({"model": "m"}, {"image": img})
        )
        out = tensors["image"]
        assert out.dtype == np.dtype(dtype)
        assert not out.flags["OWNDATA"]      # zero-copy body view
        assert not out.flags["WRITEABLE"]
        assert np.array_equal(out, img)
        # the batcher's stack must not promote a uniform narrow batch
        stacked = np.concatenate([out, out], axis=0)
        assert stacked.dtype == np.dtype(dtype)

    def test_uint8_frame_to_logits_equivalence(self):
        from repro.cnn.datasets import N_CLASSES, generate_dataset
        from repro.cnn.inference import QuantizedModel
        from repro.cnn.micro import Conv2d, Flatten, Linear, ReLU, Sequential
        from repro.utils.rng import make_rng

        rng = make_rng(0)
        model = Sequential(
            Conv2d(3, 4, 3, padding=1, rng=rng), ReLU(),
            Flatten(), Linear(4 * 24 * 24, N_CLASSES, rng=rng),
        )
        ds = generate_dataset(4, seed=1)
        qm = QuantizedModel.from_trained(model, ds.images[:16])
        img = (ds.images[:2] * 200).astype(np.uint8)
        _, tensors = wire.decode_frame(
            wire.encode_frame({"model": "m"}, {"image": img})
        )
        decoded = tensors["image"]
        assert decoded.dtype == np.uint8
        trace = []
        got = qm.forward(decoded, mode="int8", fused=True, trace=trace)
        assert np.array_equal(got, qm.forward(img, mode="int8", fused=False))
        # the dtype checkpoints at every seam stay integer until logits
        assert trace[0] == ("entry", "lut:uint8")
        assert all(
            np.dtype(d).kind == "u" for t, d in trace if t == "grid"
        )
        assert trace[-1] == ("logits", "float64")


class TestFrameValidation:
    def make(self):
        return wire.encode_frame(
            {"model": "m"}, {"image": np.arange(12.0).reshape(3, 4)}
        )

    def test_bad_magic(self):
        buf = self.make()
        with pytest.raises(WireError, match="magic"):
            wire.decode_frame(b"XXXX" + buf[4:])

    def test_bad_version(self):
        buf = bytearray(self.make())
        buf[4] = 99
        with pytest.raises(WireError, match="version"):
            wire.decode_frame(bytes(buf))

    def test_truncated_header_and_body(self):
        buf = self.make()
        with pytest.raises(WireError, match="truncated"):
            wire.decode_frame(buf[:10])
        with pytest.raises(WireError, match="truncated"):
            wire.decode_frame(buf[:-5])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(WireError, match="trailing"):
            wire.decode_frame(self.make() + b"zz")

    def test_payload_length_shape_mismatch(self):
        buf = bytearray(self.make())
        # the tensor's data_len field sits 8 bytes before its payload;
        # payload is the trailing 96 bytes (3*4 float64)
        offset = len(buf) - 96 - 8
        declared = struct.unpack_from("<Q", buf, offset)[0]
        assert declared == 96
        struct.pack_into("<Q", buf, offset, 88)
        with pytest.raises(WireError, match="declares"):
            wire.decode_frame(bytes(buf))

    def test_unknown_dtype_code(self):
        buf = bytearray(self.make())
        # tensor record: name_len(1) 'image'(5) dtype(1) ...
        offset = wire._HEADER.size + len(b'{"model":"m"}') + 1 + 5
        buf[offset] = 200
        with pytest.raises(WireError, match="dtype code"):
            wire.decode_frame(bytes(buf))

    def test_oversized_frame_vs_cap(self):
        buf = self.make()
        with pytest.raises(WireError, match="cap"):
            wire.decode_frame(buf, max_bytes=16)

    def test_meta_must_be_object(self):
        body = b"[1,2]"
        header = wire._HEADER.pack(
            wire.MAGIC, wire.WIRE_VERSION, 0, 0, len(body), len(body)
        )
        with pytest.raises(WireError, match="JSON object"):
            wire.decode_frame(header + body)

    def test_duplicate_tensor_names_rejected(self):
        single = wire.encode_frame({}, {"x": np.zeros(2)})
        meta_len = len(b"{}")
        record = single[wire._HEADER.size + meta_len:]
        header = wire._HEADER.pack(
            wire.MAGIC, wire.WIRE_VERSION, 0, 2, meta_len,
            meta_len + 2 * len(record),
        )
        with pytest.raises(WireError, match="duplicate"):
            wire.decode_frame(header + b"{}" + record + record)


class TestStreamReader:
    def test_frames_split_across_reads(self):
        frames = [
            wire.encode_frame({"i": i}, {"x": np.full((2,), float(i))})
            for i in range(3)
        ]
        stream = io.BytesIO(b"".join(frames))
        # a miserly reader: at most 7 bytes per call
        read = lambda n: stream.read(min(n, 7))
        seen = []
        while True:
            item = wire.read_frame(read)
            if item is None:
                break
            seen.append(item)
        assert [meta["i"] for meta, _ in seen] == [0, 1, 2]
        assert all(np.array_equal(t["x"], np.full((2,), float(i)))
                   for i, (_, t) in enumerate(seen))

    def test_eof_mid_frame_raises(self):
        buf = wire.encode_frame({}, {"x": np.zeros(4)})
        stream = io.BytesIO(buf[:-3])
        with pytest.raises(WireError, match="mid-frame"):
            while wire.read_frame(stream.read) is not None:
                pass


class TestNpy:
    def test_round_trip_zero_copy(self):
        a = np.arange(60, dtype=np.float32).reshape(3, 4, 5)
        out = wire.decode_npy(wire.encode_npy(a))
        assert np.array_equal(out, a) and out.dtype == a.dtype
        assert out.flags["C_CONTIGUOUS"] and not out.flags["OWNDATA"]

    def test_truncated_and_padded_payloads(self):
        buf = wire.encode_npy(np.arange(10.0))
        with pytest.raises(WireError, match="truncated"):
            wire.decode_npy(buf[:-4])
        with pytest.raises(WireError, match="oversized"):
            wire.decode_npy(buf + b"\x00" * 8)

    def test_garbage_header(self):
        with pytest.raises(WireError, match="NPY"):
            wire.decode_npy(b"not an npy body at all")

    def test_fortran_order_rejected(self):
        f_ordered = np.asfortranarray(np.arange(12.0).reshape(3, 4))
        out = io.BytesIO()
        np.lib.format.write_array(out, f_ordered, version=(1, 0))
        with pytest.raises(WireError, match="Fortran"):
            wire.decode_npy(out.getvalue())

    def test_object_payload_rejected(self):
        out = io.BytesIO()
        np.lib.format.write_array(
            out, np.array([{"a": 1}], dtype=object), allow_pickle=True
        )
        with pytest.raises(WireError, match="whitelist"):
            wire.decode_npy(out.getvalue())

    def test_cap_enforced(self):
        buf = wire.encode_npy(np.zeros(1000))
        with pytest.raises(WireError, match="cap"):
            wire.decode_npy(buf, max_bytes=64)
