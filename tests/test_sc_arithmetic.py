"""Tests for SC arithmetic: multiply, unscaled add, VDP, and the
bit-true == count-domain equivalence that the CNN simulations rely on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stochastic.arithmetic import (
    exact_sc_product,
    sc_products,
    sc_vdp,
    sc_vdp_bit_true,
    sc_vdp_relative_error,
    stochastic_multiply,
    unscaled_add,
)
from repro.stochastic.bitstream import Bitstream
from repro.stochastic.sng import generate_pair

operand8 = st.integers(min_value=0, max_value=256)


class TestMultiply:
    def test_fig3_multiplication(self):
        """Paper Fig. 3: I=4/8, W=6/8 -> AND has 3/8 = (4/8)*(6/8) ones."""
        i = Bitstream(np.array([1, 0, 1, 0, 1, 0, 1, 0], dtype=np.uint8))
        w = Bitstream(np.array([1, 1, 1, 1, 1, 1, 0, 0], dtype=np.uint8))
        assert i.value == pytest.approx(4 / 8)
        assert w.value == pytest.approx(6 / 8)
        assert stochastic_multiply(i, w).value == pytest.approx(3 / 8)

    @given(operand8, operand8)
    @settings(max_examples=100, deadline=None)
    def test_exact_product_matches_bit_true(self, ib, wb):
        i_s, w_s = generate_pair(ib, wb, 256)
        bit_true = stochastic_multiply(i_s, w_s).popcount
        assert bit_true == exact_sc_product(ib, wb, 8)

    def test_exact_product_floor_semantics(self):
        assert exact_sc_product(255, 255, 8) == (255 * 255) // 256
        assert exact_sc_product(1, 1, 8) == 0  # underflow to zero
        assert exact_sc_product(256, 256, 8) == 256

    def test_exact_product_range_check(self):
        with pytest.raises(ValueError):
            exact_sc_product(257, 1, 8)


class TestUnscaledAdd:
    def test_counts_all_ones(self):
        streams = [Bitstream.from_int(k, 16) for k in (1, 2, 3)]
        assert unscaled_add(streams) == 6

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            unscaled_add([])

    def test_rejects_mixed_lengths(self):
        with pytest.raises(ValueError):
            unscaled_add([Bitstream.from_int(1, 8), Bitstream.from_int(1, 16)])


class TestVectorisedProducts:
    def test_signed_weights(self):
        i = np.array([100, 100])
        w = np.array([50, -50])
        out = sc_products(i, w, 8)
        assert out[0] == (100 * 50) // 256
        assert out[1] == -((100 * 50) // 256)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            sc_products(np.array([300]), np.array([1]), 8)
        with pytest.raises(ValueError):
            sc_products(np.array([1]), np.array([-300]), 8)

    @given(
        st.lists(operand8, min_size=1, max_size=32),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_vdp_equals_bit_true_pipeline(self, i_vals, data):
        """Count-domain VDP == physically AND-ing LUT streams, always."""
        w_vals = data.draw(
            st.lists(
                st.integers(min_value=-256, max_value=256),
                min_size=len(i_vals),
                max_size=len(i_vals),
            )
        )
        fast = sc_vdp(np.array(i_vals), np.array(w_vals), 8)
        slow = sc_vdp_bit_true(i_vals, w_vals, 8)
        assert fast == slow


class TestVdp:
    def test_sign_split_counts(self):
        i = np.array([256, 256, 256])
        w = np.array([256, -256, 256])
        pos, neg = sc_vdp(i, w, 8)
        assert pos == 512
        assert neg == 256

    def test_signed_result_is_difference(self):
        rngi = np.random.default_rng(0)
        i = rngi.integers(0, 257, size=64)
        w = rngi.integers(-256, 257, size=64)
        pos, neg = sc_vdp(i, w, 8)
        prods = sc_products(i, w, 8)
        assert pos - neg == int(prods.sum())

    def test_relative_error_small_for_large_vdp(self):
        """Floor rounding stays sub-percent for realistic VDP sizes."""
        rng = np.random.default_rng(1)
        i = rng.integers(0, 257, size=176)
        w = rng.integers(1, 257, size=176)  # positive: no cancellation
        assert sc_vdp_relative_error(i, w, 8) < 0.01

    def test_relative_error_zero_cases(self):
        z = np.zeros(4, dtype=np.int64)
        assert sc_vdp_relative_error(z, z, 8) == 0.0

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_precision_sweep_error_shrinks(self, b):
        """Higher precision (longer streams) cannot increase VDP error."""
        rng = np.random.default_rng(42)
        size = 64
        # fixed real-valued operands quantized at each precision
        i_real = rng.random(size)
        w_real = rng.random(size)
        levels = 1 << b
        i_q = (i_real * levels).astype(np.int64)
        w_q = (w_real * levels).astype(np.int64)
        pos, neg = sc_vdp(i_q, w_q, b)
        measured = pos - neg  # count domain: one count = levels worth
        exact = float(np.dot(i_q, w_q)) / levels
        # floor rounding loses at most one count per vector element
        assert exact - measured <= size + 1e-9
        assert measured <= exact + 1e-9


class TestBitTrueValidation:
    def test_bit_true_rejects_bad_operands(self):
        with pytest.raises(ValueError):
            sc_vdp_bit_true([300], [1], 8)
        with pytest.raises(ValueError):
            sc_vdp_bit_true([1], [300], 8)

    def test_bit_true_mismatched_lengths(self):
        with pytest.raises(ValueError):
            sc_vdp_bit_true([1, 2], [1], 8)
