"""Cross-module integration tests.

Each test exercises a chain that crosses at least two subpackages,
locking the contracts the experiment harnesses rely on:

photonics -> core        (device envelopes feed the design point)
stochastic -> core       (bit-true streams == VDPE count domain)
core -> cnn              (VDPE results == quantized conv outputs)
cnn -> arch              (zoo shapes drive the simulator consistently)
arch end-to-end          (event kernel + designs + NoC agree)
"""

import numpy as np
import pytest

from repro.arch.designs import build_evaluated_designs, sconna_design
from repro.arch.simulator import AcceleratorSimulator, simulate_inference
from repro.cnn.functional import conv2d, im2col
from repro.cnn.shapes import ConvLayerShape, ModelDescriptor
from repro.cnn.stats import psum_workload
from repro.cnn.zoo import build_model
from repro.core.config import SconnaConfig
from repro.core.osm import OpticalStochasticMultiplier
from repro.core.vdpe import SconnaVDPE
from repro.photonics.oag import max_bitrate_for_fwhm
from repro.stochastic.arithmetic import sc_products
from repro.utils.rng import make_rng


class TestDeviceToDesignPoint:
    def test_design_bitrate_inside_device_envelope(self):
        """The SconnaConfig operating point must be physically reachable
        by its own OAG (Fig 7a envelope)."""
        cfg = SconnaConfig()
        assert max_bitrate_for_fwhm(cfg.oag_fwhm_nm) >= cfg.bitrate_hz

    def test_design_n_inside_budget(self):
        """N=176 with M=16 closes the Eq. 4 budget with margin."""
        from repro.photonics.link_budget import sconna_vdpc_budget

        cfg = SconnaConfig()
        budget = sconna_vdpc_budget(
            cfg.vdpe_size, cfg.vdpes_per_vdpc, cfg.laser_power_dbm
        )
        assert budget.closes(-30.0)

    def test_osm_device_matches_count_domain_at_design_point(self):
        """Full ring transient == arithmetic for random operands."""
        osm = OpticalStochasticMultiplier()
        rng = make_rng(3)
        for _ in range(10):
            ib = int(rng.integers(0, 256))
            wb = int(rng.integers(0, 256))
            assert osm.multiply_optical(ib, wb) == osm.multiply(ib, wb)


class TestVdpeEqualsQuantizedConv:
    def test_conv_output_via_vdpe_pipeline(self):
        """One conv output pixel computed by a SCONNA VDPE equals the
        count-domain result of the quantized convolution."""
        rng = make_rng(5)
        x_q = rng.integers(0, 257, size=(8, 6, 6))       # quantized acts
        w_q = rng.integers(-256, 257, size=(4, 8, 3, 3))  # quantized weights
        cols = im2col(x_q, 3, 1, 1)                       # (72, 36)
        vdpe = SconnaVDPE()
        for l in range(4):
            for p in (0, 17, 35):
                i_vec = cols[:, p]
                w_vec = w_q[l].reshape(-1)
                res = vdpe.compute_vdp(i_vec, w_vec, apply_adc_error=False)
                expected = int(sc_products(i_vec, w_vec, 8).sum())
                assert res.signed_count == expected

    def test_count_domain_tracks_float_conv(self):
        """Dequantized SC conv approximates the float conv."""
        rng = make_rng(6)
        x = rng.uniform(0, 1, size=(3, 8, 8))
        w = rng.normal(0, 0.2, size=(2, 3, 3, 3))
        from repro.cnn.quantize import (
            calibrate_activation,
            calibrate_weight,
            quantize,
        )

        act = calibrate_activation(x, percentile=100.0)
        wq = calibrate_weight(w)
        x_q = quantize(x, act)
        w_q = quantize(w, wq)
        cols = im2col(x_q, 3, 1, 1)  # (27, 64) with padding 1 on 8x8
        n_pos = cols.shape[1]
        sc_out = np.zeros((2, n_pos))
        for l in range(2):
            for p in range(n_pos):
                sc_out[l, p] = sc_products(cols[:, p], w_q[l].ravel(), 8).sum()
        sc_float = sc_out.reshape(2, 8, 8) * act.scale * wq.scale * 256
        ref = conv2d(x, w, padding=1)
        err = np.abs(sc_float - ref)
        assert err.mean() < 0.05 * np.abs(ref).mean() + 0.02


class TestZooToSimulator:
    def test_workload_invariant_pieces(self):
        """The simulator's per-layer piece counts agree with the stats
        module's independent accounting."""
        design = sconna_design()
        model = build_model("ShuffleNet_V2")
        expected = psum_workload(model, design.vdpe_size)["total_pieces"]
        total = sum(
            layer.n_vdps * design.pieces(layer.vector_size)
            for layer in model.layers
        )
        assert total == expected

    def test_fps_scales_with_model_size(self):
        """Smaller workloads run faster on every design."""
        designs = build_evaluated_designs()
        small = build_model("ShuffleNet_V2")
        big = build_model("ResNet50")
        for design in designs.values():
            assert (
                simulate_inference(design, small).fps
                > simulate_inference(design, big).fps
            )

    def test_simulator_deterministic(self):
        design = sconna_design()
        model = build_model("MobileNet_V2")
        a = simulate_inference(design, model)
        b = simulate_inference(design, model)
        assert a.latency_s == b.latency_s
        assert a.energy_j == b.energy_j

    def test_more_vdpes_never_slower(self):
        """Scaling the SCONNA array up cannot reduce FPS."""
        model = build_model("GoogleNet")
        small = sconna_design(SconnaConfig(n_tiles=16))
        # 64 tiles => 4096 VDPEs (same tile organisation)
        big = sconna_design(SconnaConfig(n_tiles=64))
        assert (
            simulate_inference(big, model).fps
            >= simulate_inference(small, model).fps
        )


class TestFailureInjection:
    def test_pca_saturation_detected_on_overload(self):
        """Driving a VDPE beyond its PCA capacity flags saturation."""
        from repro.core.pca import PhotoChargeAccumulator

        cfg = SconnaConfig()
        pca = PhotoChargeAccumulator(cfg, seed=0)
        pca.accumulate(2 * cfg.pca_capacity_ones)
        out = pca.readout()
        assert out.saturated
        assert out.converted_count <= cfg.pca_capacity_ones * 1.05

    def test_skirt_leakage_degrades_accuracy_monotonically(self):
        """Optical crosstalk (skirt leakage) inflates counts."""
        from repro.stochastic.error_models import SconnaErrorModel

        counts = np.full(1000, 5000.0)
        slots = np.full(1000, 20000.0)
        clean = SconnaErrorModel(adc_mape=0.0, skirt_leakage=0.0)
        leaky = SconnaErrorModel(adc_mape=0.0, skirt_leakage=0.05)
        c = clean.apply_to_counts(counts)
        l = leaky.apply_to_counts(counts, skirt_slots=slots)
        assert (l > c).all()
        assert l.mean() == pytest.approx(6000.0, rel=0.01)

    def test_degenerate_layer_shapes_rejected_early(self):
        with pytest.raises(ValueError):
            ConvLayerShape("bad", 3, 8, 9, 1, 0, 4, 4)  # kernel > input

    def test_simulator_handles_single_layer_model(self):
        m = ModelDescriptor("one")
        m.add(ConvLayerShape("only", 3, 8, 3, 1, 1, 8, 8))
        res = simulate_inference(sconna_design(), m)
        assert res.latency_s > 0
        assert len(res.layers) == 1


class TestEventDrivenPath:
    def test_simulator_uses_event_kernel(self):
        """Layer sequencing goes through the DES kernel."""
        design = sconna_design()
        sim = AcceleratorSimulator(design)
        model = build_model("ShuffleNet_V2")
        res = sim.simulate(model)
        assert res.log.counts["layers"] == len(model.layers)

    def test_reduction_resource_idle_for_sconna(self):
        design = sconna_design()
        sim = AcceleratorSimulator(design)
        m = ModelDescriptor("t")
        m.add(ConvLayerShape("c", 64, 64, 3, 1, 1, 8, 8))
        res = sim.simulate(m)
        assert all(l.reduction_s == 0.0 for l in res.layers)
