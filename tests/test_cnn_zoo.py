"""Tests for the layer-shape IR and the six-model zoo (Table II source)."""

import pytest

from repro.cnn.shapes import ConvLayerShape, fc_shape
from repro.cnn.stats import kernel_size_stats, psum_workload, vector_size_histogram
from repro.cnn.zoo import (
    EVALUATION_MODELS,
    MODEL_BUILDERS,
    TABLE2_MODELS,
    build_model,
)


class TestConvLayerShape:
    def test_vector_size_standard(self):
        l = ConvLayerShape("c", 64, 128, 3, 1, 1, 56, 56)
        assert l.vector_size == 3 * 3 * 64

    def test_vector_size_depthwise(self):
        l = ConvLayerShape("dw", 96, 96, 3, 1, 1, 28, 28, groups=96)
        assert l.vector_size == 9  # D = 1 per group

    def test_vdp_and_mac_counts(self):
        l = ConvLayerShape("c", 3, 64, 7, 2, 3, 224, 224)
        assert l.out_hw == (112, 112)
        assert l.n_vdps == 112 * 112 * 64
        assert l.macs == l.n_vdps * 147

    def test_fc_shape(self):
        l = fc_shape("fc", 2048, 1000)
        assert l.vector_size == 2048
        assert l.n_vdps == 1000
        assert l.is_fc

    def test_inner_1x1_conv_is_not_fc(self):
        l = ConvLayerShape("pw", 64, 128, 1, 1, 0, 56, 56)
        assert not l.is_fc

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvLayerShape("bad", 0, 1, 3, 1, 1, 8, 8)
        with pytest.raises(ValueError):
            ConvLayerShape("bad", 4, 6, 3, 1, 1, 8, 8, groups=4)


class TestZooStructure:
    def test_all_models_build(self):
        for name in MODEL_BUILDERS:
            m = build_model(name)
            assert len(m.layers) > 10
            assert m.total_macs > 1e8

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("AlexNet")

    def test_resnet50_structure(self):
        m = build_model("ResNet50")
        # 1 stem + 16 bottlenecks x 3 convs + 4 downsamples + 1 fc = 54
        assert len(m.layers) == 54
        assert m.max_vector_size() == 4608  # the paper's S example
        assert m.total_macs == pytest.approx(4.1e9, rel=0.05)

    def test_googlenet_structure(self):
        m = build_model("GoogleNet")
        # 3 stem convs + 9 inceptions x 6 convs + 1 fc = 58
        assert len(m.layers) == 58
        assert m.total_macs == pytest.approx(1.58e9, rel=0.05)

    def test_vgg16_structure(self):
        m = build_model("VGG16")
        assert len(m.layers) == 16  # 13 convs + 3 fc
        assert m.total_macs == pytest.approx(15.5e9, rel=0.05)
        assert m.max_vector_size() == 25088  # fc6

    def test_densenet_structure(self):
        m = build_model("DenseNet")
        # 1 stem + 58 dense layers x 2 + 3 transitions + 1 fc = 121 named
        assert len(m.layers) == 1 + 58 * 2 + 3 + 1
        assert m.total_macs == pytest.approx(2.85e9, rel=0.05)

    def test_mobilenet_depthwise_dominates(self):
        m = build_model("MobileNet_V2")
        hist = vector_size_histogram(m)
        assert hist.get(9, 0) > 1000  # depthwise kernels with S=9
        assert m.total_macs == pytest.approx(0.3e9, rel=0.1)

    def test_shufflenet_structure(self):
        m = build_model("ShuffleNet_V2")
        assert m.total_macs == pytest.approx(0.19e9, rel=0.15)
        hist = vector_size_histogram(m)
        assert hist.get(9, 0) > 1000

    def test_input_hw_parameter(self):
        small = build_model("VGG16", input_hw=32)
        assert small.total_macs < build_model("VGG16").total_macs


class TestTable2Stats:
    """Our S>44 kernel counts match paper Table II within a few percent."""

    PAPER = {
        "ResNet50": (1, 26562),
        "GoogleNet": (13, 7554),
        "VGG16": (69, 4168),
        "DenseNet": (1, 10242),
    }

    @pytest.mark.parametrize("name", TABLE2_MODELS)
    def test_large_kernel_counts_close_to_paper(self, name):
        stats = kernel_size_stats(name)  # exclude_fc=True convention
        _, paper_large = self.PAPER[name]
        assert stats.large_kernels == pytest.approx(paper_large, rel=0.05)

    def test_over_98_percent_need_large_vdpes(self):
        """Section III-B: >98 % of kernels have S > 44 for these CNNs."""
        for name in ["ResNet50", "VGG16", "DenseNet"]:
            stats = kernel_size_stats(name)
            assert stats.large_fraction > 0.98

    def test_small_models_have_many_small_kernels(self):
        for name in ["MobileNet_V2", "ShuffleNet_V2"]:
            stats = kernel_size_stats(name)
            assert stats.small_kernels > 1000  # depthwise-heavy

    def test_threshold_parameter(self):
        all_small = kernel_size_stats("VGG16", threshold=10**6)
        assert all_small.large_kernels == 0


class TestPsumWorkload:
    def test_sconna_needs_fewer_pieces(self):
        at_176 = psum_workload("ResNet50", 176)
        at_22 = psum_workload("ResNet50", 22)
        assert at_22["total_pieces"] > 6 * at_176["total_pieces"]

    def test_eval_model_list(self):
        assert set(EVALUATION_MODELS) <= set(MODEL_BUILDERS)
        assert len(EVALUATION_MODELS) == 4
