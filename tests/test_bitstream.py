"""Tests for the unipolar stochastic number representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stochastic.bitstream import Bitstream, stream_length_for_precision
from repro.utils.rng import make_rng


class TestConstruction:
    def test_from_int_prefix(self):
        s = Bitstream.from_int(3, 8)
        assert list(s.bits) == [1, 1, 1, 0, 0, 0, 0, 0]

    def test_from_int_bounds(self):
        assert Bitstream.from_int(0, 4).popcount == 0
        assert Bitstream.from_int(4, 4).popcount == 4
        with pytest.raises(ValueError):
            Bitstream.from_int(5, 4)
        with pytest.raises(ValueError):
            Bitstream.from_int(-1, 4)
        with pytest.raises(ValueError):
            Bitstream.from_int(0, 0)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            Bitstream(np.array([0, 1, 2], dtype=np.uint8))

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            Bitstream(np.array([], dtype=np.uint8))
        with pytest.raises(ValueError):
            Bitstream(np.zeros((2, 2), dtype=np.uint8))

    def test_from_probability(self):
        s = Bitstream.from_probability(0.5, 10_000, make_rng(0))
        assert 0.45 < s.value < 0.55
        with pytest.raises(ValueError):
            Bitstream.from_probability(1.5, 8, make_rng(0))

    def test_immutability(self):
        s = Bitstream.from_int(2, 4)
        with pytest.raises(ValueError):
            s.bits[0] = 0


class TestDecoding:
    @given(st.integers(min_value=1, max_value=10), st.data())
    def test_roundtrip_exact(self, b, data):
        """Encode->decode is exact for every value at every precision."""
        length = 1 << b
        v = data.draw(st.integers(min_value=0, max_value=length))
        s = Bitstream.from_int(v, length)
        assert s.popcount == v
        assert s.to_int() == v
        assert s.value == pytest.approx(v / length)

    def test_paper_example_fig3(self):
        """Fig. 3: I=4/8, W=6/8, AND -> 3/8."""
        i = Bitstream(np.array([1, 0, 1, 0, 1, 0, 1, 0], dtype=np.uint8))
        w = Bitstream(np.array([1, 1, 1, 1, 1, 1, 0, 0], dtype=np.uint8))
        a = i & w
        assert i.value == 4 / 8
        assert w.value == 6 / 8
        assert a.value == 3 / 8  # == (4/8)*(6/8)


class TestOperations:
    def test_and_is_elementwise(self):
        a = Bitstream(np.array([1, 1, 0, 0], dtype=np.uint8))
        b = Bitstream(np.array([1, 0, 1, 0], dtype=np.uint8))
        assert list((a & b).bits) == [1, 0, 0, 0]

    def test_or_and_invert(self):
        a = Bitstream(np.array([1, 0], dtype=np.uint8))
        b = Bitstream(np.array([0, 0], dtype=np.uint8))
        assert list((a | b).bits) == [1, 0]
        assert list((~a).bits) == [0, 1]

    def test_length_mismatch_rejected(self):
        a = Bitstream.from_int(1, 4)
        b = Bitstream.from_int(1, 8)
        with pytest.raises(ValueError):
            _ = a & b

    def test_equality_and_hash(self):
        a = Bitstream.from_int(3, 8)
        b = Bitstream.from_int(3, 8)
        c = Bitstream.from_int(4, 8)
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_pack_unpack_roundtrip(self):
        s = Bitstream(np.array([1, 0, 1, 1, 0, 0, 1, 0, 1, 1], dtype=np.uint8))
        assert Bitstream.unpack(s.packed(), len(s)) == s

    @given(st.integers(min_value=0, max_value=64), st.integers(min_value=0, max_value=64))
    @settings(max_examples=50)
    def test_demorgan(self, x, y):
        a = Bitstream.from_int(x, 64)
        b = Bitstream.from_int(y, 64)
        assert ~(a & b) == (~a) | (~b)


class TestStreamLength:
    def test_paper_stream_length(self):
        # B=8 -> 256-bit streams (Section V-C).
        assert stream_length_for_precision(8) == 256

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            stream_length_for_precision(0)
