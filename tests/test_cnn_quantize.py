"""Tests for post-training quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnn.quantize import (
    QuantParams,
    calibrate_activation,
    calibrate_weight,
    dequantize,
    quantization_error,
    quantize,
)


class TestCalibration:
    def test_activation_unsigned(self):
        p = calibrate_activation(np.linspace(0, 2, 1000))
        assert not p.signed
        assert p.levels == 256
        assert p.scale == pytest.approx(2.0 / 256, rel=0.01)

    def test_weight_symmetric(self):
        p = calibrate_weight(np.array([-0.5, 0.25, 0.1]))
        assert p.signed
        assert p.scale == pytest.approx(0.5 / 256)

    def test_percentile_clips_outliers(self):
        data = np.concatenate([np.ones(10_000), [1e6]])
        p = calibrate_activation(data, percentile=99.0)
        assert p.scale < 1.0  # the outlier did not blow up the scale

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            calibrate_activation(np.array([]))
        with pytest.raises(ValueError):
            calibrate_weight(np.array([]))

    def test_precision_parameter(self):
        p = calibrate_activation(np.linspace(0, 1, 100), precision_bits=4)
        assert p.levels == 16


class TestQuantizeDequantize:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=10_000)
        p = calibrate_activation(x, percentile=100.0)
        assert quantization_error(x, p) <= p.scale / 2 + 1e-12

    def test_signed_roundtrip_error_bounded(self):
        rng = np.random.default_rng(1)
        w = rng.normal(0, 0.1, size=10_000)
        p = calibrate_weight(w)
        assert quantization_error(w, p) <= p.scale / 2 + 1e-12

    def test_unsigned_clips_negative(self):
        p = QuantParams(scale=0.01, levels=256, signed=False)
        assert quantize(np.array([-1.0]), p)[0] == 0

    def test_signed_clips_to_range(self):
        p = QuantParams(scale=0.01, levels=256, signed=True)
        assert quantize(np.array([100.0]), p)[0] == 256
        assert quantize(np.array([-100.0]), p)[0] == -256

    def test_integer_output_dtype(self):
        p = QuantParams(scale=0.5, levels=256, signed=False)
        assert quantize(np.array([1.0]), p).dtype == np.int64

    def test_dequantize_inverse_on_grid(self):
        p = QuantParams(scale=0.25, levels=16, signed=True)
        grid = np.arange(-16, 17)
        assert np.allclose(quantize(dequantize(grid, p), p), grid)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0, levels=256, signed=False)
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, levels=0, signed=False)

    @given(st.integers(2, 10))
    @settings(max_examples=9, deadline=None)
    def test_error_shrinks_with_precision(self, bits):
        x = np.linspace(0, 1, 1000)
        lo = calibrate_activation(x, precision_bits=bits, percentile=100.0)
        hi = calibrate_activation(x, precision_bits=bits + 1, percentile=100.0)
        assert quantization_error(x, hi) <= quantization_error(x, lo) + 1e-12
