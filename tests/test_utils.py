"""Tests for repro.utils: unit conversions, tables, rng."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import (
    Table,
    db_to_linear,
    dbm_to_mw,
    dbm_to_watts,
    format_engineering,
    geometric_mean,
    linear_to_db,
    make_rng,
    mw_to_dbm,
    watts_to_dbm,
)


class TestUnitConversions:
    def test_db_zero_is_unity(self):
        assert db_to_linear(0.0) == 1.0

    def test_db_10_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_db_3_is_about_two(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_negative_db_attenuates(self):
        assert db_to_linear(-20.0) == pytest.approx(0.01)

    def test_dbm_zero_is_one_mw(self):
        assert dbm_to_mw(0.0) == pytest.approx(1.0)
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_table_iii_laser_power(self):
        # Table III: 10 dBm laser = 10 mW.
        assert dbm_to_mw(10.0) == pytest.approx(10.0)

    def test_pd_sensitivity_minus_28_dbm(self):
        # Section V: P_PD-opt = -28 dBm = 1.585 uW.
        assert dbm_to_watts(-28.0) == pytest.approx(1.585e-6, rel=1e-3)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            linear_to_db(-1.0)

    def test_mw_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mw_to_dbm(0.0)

    @given(st.floats(min_value=-80.0, max_value=80.0))
    def test_db_roundtrip(self, db):
        assert linear_to_db(db_to_linear(db)) == pytest.approx(db, abs=1e-9)

    @given(st.floats(min_value=-80.0, max_value=40.0))
    def test_dbm_roundtrip(self, dbm):
        assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm, abs=1e-9)
        assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm, abs=1e-9)


class TestGeometricMean:
    def test_singleton(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_paper_style_speedups(self):
        # gmean of per-CNN speedups is how the paper reports 66.5x.
        vals = [100.0, 80.0, 40.0, 60.0]
        expected = math.exp(sum(math.log(v) for v in vals) / 4)
        assert geometric_mean(vals) == pytest.approx(expected)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=20))
    def test_between_min_and_max(self, vals):
        g = geometric_mean(vals)
        assert min(vals) * (1 - 1e-9) <= g <= max(vals) * (1 + 1e-9)


class TestFormatEngineering:
    def test_giga(self):
        assert format_engineering(30e9, "bps") == "30 Gbps"

    def test_milli(self):
        assert format_engineering(2.55e-3, "W") == "2.55 mW"

    def test_zero(self):
        assert format_engineering(0.0, "W") == "0 W"

    def test_unit_scale(self):
        assert format_engineering(5.0, "s") == "5 s"


class TestTable:
    def test_render_contains_headers_and_rows(self):
        t = Table(["model", "FPS"], title="demo")
        t.add_row(["ResNet50", "12.3"])
        out = t.render()
        assert "demo" in out
        assert "ResNet50" in out
        assert "FPS" in out

    def test_row_width_mismatch_raises(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(["only-one"])

    def test_column_alignment(self):
        t = Table(["name", "v"])
        t.add_row(["x", "1"])
        t.add_row(["longer-name", "2"])
        lines = t.render().splitlines()
        # all data lines share the same width
        assert len(lines[1]) == len(lines[3])


class TestMakeRng:
    def test_seeded_reproducible(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_passthrough_generator(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)
