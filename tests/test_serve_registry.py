"""Model-registry round trips and manifest handling."""

import numpy as np
import pytest

from repro.cnn.datasets import N_CLASSES, generate_dataset
from repro.cnn.inference import QuantizedModel
from repro.cnn.micro import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.serve import ModelRegistry
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def tiny_qmodel():
    rng = make_rng(0)
    model = Sequential(
        Conv2d(3, 5, 3, padding=1, rng=rng), ReLU(), MaxPool2d(4),
        Flatten(), Linear(5 * 6 * 6, N_CLASSES, rng=rng),
    )
    ds = generate_dataset(4, seed=1)
    return QuantizedModel.from_trained(model, ds.images[:16]), ds


class TestRegistry:
    def test_save_load_round_trip(self, tiny_qmodel, tmp_path):
        qm, ds = tiny_qmodel
        reg = ModelRegistry(tmp_path)
        entry = reg.save("tiny", qm, arch_model="ShuffleNet_V2",
                         metadata={"note": "unit test"})
        assert entry.precision_bits == 8
        assert "tiny" in reg and reg.names() == ["tiny"]
        loaded = reg.load("tiny")
        assert np.array_equal(
            qm.forward(ds.images[:4], mode="int8"),
            loaded.forward(ds.images[:4], mode="int8"),
        )

    def test_manifest_fields(self, tiny_qmodel, tmp_path):
        qm, _ = tiny_qmodel
        reg = ModelRegistry(tmp_path)
        reg.save("m1", qm, arch_model="GoogleNet")
        entry = reg.entry("m1")
        assert entry.arch_model == "GoogleNet"
        assert entry.path.exists()
        assert entry.created_at > 0

    def test_unknown_arch_model_rejected(self, tiny_qmodel, tmp_path):
        qm, _ = tiny_qmodel
        with pytest.raises(ValueError, match="arch_model"):
            ModelRegistry(tmp_path).save("m", qm, arch_model="AlexNet")

    def test_invalid_names_rejected(self, tiny_qmodel, tmp_path):
        qm, _ = tiny_qmodel
        reg = ModelRegistry(tmp_path)
        for bad in ("../escape", "a/b", "", ".hidden"):
            with pytest.raises(ValueError):
                reg.save(bad, qm)

    def test_missing_model_raises_keyerror(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        with pytest.raises(KeyError):
            reg.entry("ghost")
        with pytest.raises(KeyError):
            reg.delete("ghost")

    def test_delete_removes_entry(self, tiny_qmodel, tmp_path):
        qm, _ = tiny_qmodel
        reg = ModelRegistry(tmp_path)
        reg.save("gone", qm)
        reg.delete("gone")
        assert "gone" not in reg and len(reg) == 0

    def test_overwrite_updates_entry(self, tiny_qmodel, tmp_path):
        qm, _ = tiny_qmodel
        reg = ModelRegistry(tmp_path)
        reg.save("m", qm)
        reg.save("m", qm, metadata={"v": 2})
        assert reg.entry("m").metadata == {"v": 2}
        assert len(reg) == 1


class TestAutotuneManifest:
    """The registry manifest mirrors the model's autotuned kernel
    choices so operators can inspect them, and a loaded model serves
    pre-tuned (no timing pass at load time)."""

    def _tuned_model(self, monkeypatch):
        from repro.cnn.graph_plan import AUTOTUNE_ENV
        from repro.stochastic.error_models import SconnaErrorModel

        monkeypatch.setenv(AUTOTUNE_ENV, "1")
        rng = make_rng(3)
        model = Sequential(
            Conv2d(3, 5, 3, padding=1, rng=rng), ReLU(), MaxPool2d(4),
            Flatten(), Linear(5 * 6 * 6, N_CLASSES, rng=rng),
        )
        ds = generate_dataset(4, seed=2)
        qm = QuantizedModel.from_trained(model, ds.images[:16])
        qm.forward(ds.images[:2], mode="sconna",
                   error_model=SconnaErrorModel(adc_mape=0.0), fused=True)
        assert qm.autotune
        return qm, ds

    def test_manifest_carries_choices(self, tmp_path, monkeypatch):
        import json

        qm, _ = self._tuned_model(monkeypatch)
        reg = ModelRegistry(tmp_path)
        reg.save("tuned", qm, arch_model="MobileNet_V2")
        entry = reg.entry("tuned")
        assert entry.autotune == qm.autotune
        # and it is plain JSON in the manifest, not pickled state
        manifest = json.loads((tmp_path / "tuned.json").read_text())
        assert manifest["autotune"] == qm.autotune

    def test_loaded_model_is_pretuned(self, tmp_path, monkeypatch):
        from repro.stochastic.error_models import SconnaErrorModel

        qm, ds = self._tuned_model(monkeypatch)
        reg = ModelRegistry(tmp_path)
        reg.save("tuned", qm)
        loaded = reg.load("tuned")
        assert loaded.autotune == qm.autotune
        em = SconnaErrorModel(adc_mape=0.0)
        x = ds.images[:3]
        assert np.array_equal(
            loaded.forward(x, mode="sconna", error_model=em, fused=True),
            qm.forward(x, mode="sconna", error_model=em, fused=False),
        )

    def test_untuned_model_has_empty_autotune(self, tiny_qmodel, tmp_path):
        qm, _ = tiny_qmodel
        reg = ModelRegistry(tmp_path)
        reg.save("plain", qm, arch_model="GoogleNet")
        assert reg.entry("plain").autotune == dict(
            getattr(qm, "autotune", {}) or {}
        )
