"""Model-registry round trips and manifest handling."""

import numpy as np
import pytest

from repro.cnn.datasets import N_CLASSES, generate_dataset
from repro.cnn.inference import QuantizedModel
from repro.cnn.micro import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.serve import ModelRegistry
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def tiny_qmodel():
    rng = make_rng(0)
    model = Sequential(
        Conv2d(3, 5, 3, padding=1, rng=rng), ReLU(), MaxPool2d(4),
        Flatten(), Linear(5 * 6 * 6, N_CLASSES, rng=rng),
    )
    ds = generate_dataset(4, seed=1)
    return QuantizedModel.from_trained(model, ds.images[:16]), ds


class TestRegistry:
    def test_save_load_round_trip(self, tiny_qmodel, tmp_path):
        qm, ds = tiny_qmodel
        reg = ModelRegistry(tmp_path)
        entry = reg.save("tiny", qm, arch_model="ShuffleNet_V2",
                         metadata={"note": "unit test"})
        assert entry.precision_bits == 8
        assert "tiny" in reg and reg.names() == ["tiny"]
        loaded = reg.load("tiny")
        assert np.array_equal(
            qm.forward(ds.images[:4], mode="int8"),
            loaded.forward(ds.images[:4], mode="int8"),
        )

    def test_manifest_fields(self, tiny_qmodel, tmp_path):
        qm, _ = tiny_qmodel
        reg = ModelRegistry(tmp_path)
        reg.save("m1", qm, arch_model="GoogleNet")
        entry = reg.entry("m1")
        assert entry.arch_model == "GoogleNet"
        assert entry.path.exists()
        assert entry.created_at > 0

    def test_unknown_arch_model_rejected(self, tiny_qmodel, tmp_path):
        qm, _ = tiny_qmodel
        with pytest.raises(ValueError, match="arch_model"):
            ModelRegistry(tmp_path).save("m", qm, arch_model="AlexNet")

    def test_invalid_names_rejected(self, tiny_qmodel, tmp_path):
        qm, _ = tiny_qmodel
        reg = ModelRegistry(tmp_path)
        for bad in ("../escape", "a/b", "", ".hidden"):
            with pytest.raises(ValueError):
                reg.save(bad, qm)

    def test_missing_model_raises_keyerror(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        with pytest.raises(KeyError):
            reg.entry("ghost")
        with pytest.raises(KeyError):
            reg.delete("ghost")

    def test_delete_removes_entry(self, tiny_qmodel, tmp_path):
        qm, _ = tiny_qmodel
        reg = ModelRegistry(tmp_path)
        reg.save("gone", qm)
        reg.delete("gone")
        assert "gone" not in reg and len(reg) == 0

    def test_overwrite_updates_entry(self, tiny_qmodel, tmp_path):
        qm, _ = tiny_qmodel
        reg = ModelRegistry(tmp_path)
        reg.save("m", qm)
        reg.save("m", qm, metadata={"v": 2})
        assert reg.entry("m").metadata == {"v": 2}
        assert len(reg) == 1
