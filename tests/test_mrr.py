"""Tests for the microring resonator device model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.photonics.mrr import MicroringResonator, max_dwdm_channels


class TestLorentzianResponse:
    def test_peak_on_resonance(self):
        ring = MicroringResonator(drop_loss_db=0.0)
        assert ring.drop_transmission(ring.resonance_nm) == pytest.approx(1.0)

    def test_drop_loss_scales_peak(self):
        ring = MicroringResonator(drop_loss_db=3.0103)
        assert ring.drop_transmission(ring.resonance_nm) == pytest.approx(0.5, rel=1e-4)

    def test_half_power_at_half_fwhm(self):
        ring = MicroringResonator(fwhm_nm=0.8, drop_loss_db=0.0)
        t = ring.drop_transmission(ring.resonance_nm + 0.4)
        assert t == pytest.approx(0.5, rel=1e-6)

    def test_symmetric_about_resonance(self):
        ring = MicroringResonator(fwhm_nm=0.5)
        up = ring.drop_transmission(ring.resonance_nm + 0.3)
        dn = ring.drop_transmission(ring.resonance_nm - 0.3)
        assert up == pytest.approx(dn)

    def test_monotone_decay_off_resonance(self):
        ring = MicroringResonator(fwhm_nm=0.4)
        dets = np.linspace(0, 5.0, 50)
        t = ring.drop_transmission(ring.resonance_nm + dets)
        assert (np.diff(t) < 0).all()

    def test_fsr_periodicity(self):
        ring = MicroringResonator(fsr_nm=50.0)
        t0 = ring.drop_transmission(ring.resonance_nm + 0.1)
        t1 = ring.drop_transmission(ring.resonance_nm + 0.1 + 50.0)
        assert t0 == pytest.approx(t1, rel=1e-9)

    def test_through_complements_drop(self):
        ring = MicroringResonator(drop_loss_db=0.0, through_floor_db=60.0)
        lam = ring.resonance_nm + np.linspace(-10, 10, 81)
        drop = ring.drop_transmission(lam)
        through = ring.through_transmission(lam)
        assert np.all(drop + through <= 1.0 + 1e-6)
        # far off resonance (many FWHM away), nearly all power passes
        assert through[0] > 0.99

    def test_extra_shift_moves_passband(self):
        ring = MicroringResonator(fwhm_nm=0.4, drop_loss_db=0.0)
        # shifting the resonance onto the probe restores the peak
        probe = ring.resonance_nm + 0.8
        assert ring.drop_transmission(probe) < 0.1
        assert ring.drop_transmission(probe, extra_shift_nm=0.8) == pytest.approx(1.0)


class TestRingProperties:
    def test_quality_factor(self):
        ring = MicroringResonator(resonance_nm=1550.0, fwhm_nm=0.8)
        assert ring.quality_factor == pytest.approx(1550.0 / 0.8)

    def test_photon_lifetime_vs_fwhm(self):
        narrow = MicroringResonator(fwhm_nm=0.1)
        wide = MicroringResonator(fwhm_nm=0.8)
        assert narrow.photon_lifetime_s > wide.photon_lifetime_s
        # 0.8 nm at 1550 nm -> ~1.6 ps
        assert wide.photon_lifetime_s == pytest.approx(1.59e-12, rel=0.05)

    def test_bandwidth_lifetime_product(self):
        ring = MicroringResonator(fwhm_nm=0.4)
        # tau_p * (2 pi f_3dB) == 1 by construction
        assert ring.photon_lifetime_s * 2 * np.pi * ring.optical_bandwidth_hz == (
            pytest.approx(1.0, rel=1e-6)
        )

    def test_program_to_sets_effective_resonance(self):
        ring = MicroringResonator(resonance_nm=1550.0)
        ring.program_to(1551.2)
        assert ring.effective_resonance_nm == pytest.approx(1551.2)

    def test_operand_shift_validation(self):
        ring = MicroringResonator()
        assert ring.operand_shift_nm(0) == 0.0
        assert ring.operand_shift_nm(2) == pytest.approx(2 * ring.junction_shift_nm)
        with pytest.raises(ValueError):
            ring.operand_shift_nm(3)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            MicroringResonator(fwhm_nm=0.0)
        with pytest.raises(ValueError):
            MicroringResonator(fsr_nm=-1.0)
        with pytest.raises(ValueError):
            MicroringResonator(fwhm_nm=60.0, fsr_nm=50.0)

    @given(st.floats(min_value=0.05, max_value=2.0))
    def test_transmission_bounded(self, fwhm):
        ring = MicroringResonator(fwhm_nm=fwhm)
        lam = ring.resonance_nm + np.linspace(-25, 25, 101)
        t = ring.drop_transmission(lam)
        assert np.all((t >= 0.0) & (t <= 1.0))


class TestDwdmCapacity:
    def test_paper_channel_count(self):
        # Section V-B: FSR 50 nm / 0.25 nm spacing = 200 channels.
        assert max_dwdm_channels(50.0, 0.25) == 200

    def test_rejects_bad_spacing(self):
        with pytest.raises(ValueError):
            max_dwdm_channels(50.0, 0.0)
